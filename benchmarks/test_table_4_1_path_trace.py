"""Table 4.1: a sample path trace for a packet structure on the tx path.

The paper's example shows a network-packet path trace whose early entries
hit the local L1 cheaply and whose transmit-side entry runs on a
*different* CPU and is served from a foreign cache at ~200 cycles.  The
stock memcached run reproduces exactly that shape for the payload/skbuff
types.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.dprof.report import render_path_trace, render_path_traces
from repro.hw.events import CacheLevel


def bouncing_traces(session, type_name):
    return [t for t in session.dprof.path_traces(type_name) if t.bounces]


def test_table_4_1_path_trace(benchmark, memcached_session):
    session = memcached_session
    traces = session.dprof.path_traces("skbuff")
    assert traces, "no skbuff path traces collected"

    rendered = benchmark(render_path_trace, traces[0])
    write_artifact(
        "table_4_1_path_trace.txt",
        render_path_traces(session.dprof.path_traces("skbuff"), limit=3)
        + "\n\n"
        + render_path_traces(session.dprof.path_traces("size-1024"), limit=2),
    )
    assert "Path trace" in rendered

    # The paper's headline shape: some path of the packet types crosses
    # CPUs mid-lifetime...
    bouncing = bouncing_traces(session, "skbuff") + bouncing_traces(
        session, "size-1024"
    )
    assert bouncing, "expected a cross-CPU path trace for packet types"

    # ...and the post-transition access is served remotely (foreign cache
    # or DRAM) while same-CPU accesses early in the path hit locally.
    found_expensive_transition = False
    for trace in bouncing:
        for entry in trace.entries:
            if entry.cpu_changed and entry.sample_count > 0:
                if entry.remote_probability > 0.3:
                    found_expensive_transition = True
    assert found_expensive_transition

    # Path traces carry frequencies: the most common path dominates.
    freqs = [t.frequency for t in session.dprof.path_traces("skbuff")]
    assert freqs == sorted(freqs, reverse=True)
    assert sum(freqs) > 10


def test_path_trace_timestamps_monotone_per_chunk(memcached_session):
    # Within one watched chunk, merged timestamps must increase along the
    # path (they are averages of per-object RDTSC deltas).
    for trace in memcached_session.dprof.path_traces("skbuff"):
        per_chunk: dict = {}
        for entry in trace.entries:
            per_chunk.setdefault(entry.offsets[0] // 4, []).append(entry.mean_time)
        for times in per_chunk.values():
            assert times == sorted(times)


def test_path_trace_hit_probabilities_are_probabilities(memcached_session):
    for type_name in ("skbuff", "size-1024"):
        for trace in memcached_session.dprof.path_traces(type_name):
            for entry in trace.entries:
                total = sum(entry.hit_probabilities.values())
                assert total <= 1.0 + 1e-9
                for level, p in entry.hit_probabilities.items():
                    assert isinstance(level, CacheLevel)
                    assert 0.0 <= p <= 1.0
