"""Table 6.1: working set + data profile views for memcached.

Paper's table (stock kernel, 16 cores):

    size-1024    packet payload     14.6MB   45.40%  yes
    slab         SLAB bookkeeping    2.55MB  10.48%  yes
    array-cache  SLAB per-core       128B     9.51%  yes
    net_device   device struct       128B     6.03%  yes
    udp-sock     UDP socket          1024B    5.24%  yes
    skbuff       packet bookkeeping 20.55MB   5.20%  yes
    Total                           37.7MB   81.86%

The shape claims: the payload pool dominates misses by a wide margin, the
allocator's own bookkeeping types and the shared device structure rank
high, *everything* in the top group bounces between cores, and the top
handful of types covers most of all L1 misses.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact

PAPER_TOP_TYPES = {
    "size-1024",
    "slab",
    "array_cache",
    "net_device",
    "udp_sock",
    "skbuff",
}


def test_table_6_1_memcached_data_profile(benchmark, memcached_session):
    session = memcached_session
    profile = benchmark(session.dprof.data_profile)
    write_artifact("table_6_1_memcached_profile.txt", profile.render(8))

    names = [r.type_name for r in profile.rows]
    present = PAPER_TOP_TYPES & set(names)
    assert present == PAPER_TOP_TYPES, f"missing types: {PAPER_TOP_TYPES - present}"

    # size-1024 dominates the miss profile, well clear of skbuff.
    top = profile.rows[0]
    assert top.type_name == "size-1024"
    payload = profile.row_for("size-1024")
    skbuff = profile.row_for("skbuff")
    assert payload.miss_share > 0.25
    assert payload.miss_share > 2 * skbuff.miss_share

    # Every paper-table type bounces between cores on the stock kernel.
    for name in PAPER_TOP_TYPES:
        assert profile.row_for(name).bounce, f"{name} should bounce"

    # The top types cover the bulk of all L1 misses (paper: 81.86%).
    assert profile.covered_share(8) > 0.6


def test_table_6_1_working_set_sizes(memcached_session):
    profile = memcached_session.dprof.data_profile()
    payload = profile.row_for("size-1024")
    skbuff = profile.row_for("skbuff")
    net_device = profile.row_for("net_device")
    slab = profile.row_for("slab")

    # Dynamic packet types have a real live working set; the single
    # net_device is exactly one 128B structure; slab descriptors span
    # many objects (paper: 2.55MB of them).
    assert payload.working_set_bytes > 10_000
    assert skbuff.working_set_bytes > 1_000
    assert net_device.working_set_bytes == 128.0
    assert slab.working_set_bytes > 1_000


def test_table_6_1_descriptions_match_thesis_vocabulary(memcached_session):
    profile = memcached_session.dprof.data_profile()
    assert profile.row_for("size-1024").description == "packet payload"
    assert (
        profile.row_for("skbuff").description == "packet bookkeeping structure"
    )
    assert "SLAB" in profile.row_for("array_cache").description
