"""Ablation: pairwise sampling vs time-only merging of histories.

Section 5.3 motivates pairwise sampling: single-offset histories must be
interleaved by "matching up common access patterns", and mean
time-since-allocation is the only orderable signal -- which is noisy.
Pairwise histories observe true cross-member orderings.  The ablation
builds synthetic histories from a known ground-truth access sequence with
jittered timestamps and measures how often each merge strategy recovers
the true order.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.dprof.pathtrace import PathTraceBuilder
from repro.dprof.records import HistoryElement, ObjectAccessHistory
from repro.kernel.symbols import SymbolTable
from repro.util.rng import DeterministicRng

#: Ground-truth access sequence: (chunk offset, function, base time).
TRUE_SEQUENCE = [
    (0, "init_fn", 10),
    (8, "fill_fn", 18),
    (0, "queue_fn", 26),
    (16, "drain_fn", 34),
    (8, "send_fn", 42),
    (16, "free_prep_fn", 50),
]

CHUNKS = [(0, 4), (8, 4), (16, 4)]


def make_symbols():
    symbols = SymbolTable()
    ips = {fn: symbols.ip_for(fn, "site") for _o, fn, _t in TRUE_SEQUENCE}
    return symbols, ips


def synthesize(rng, ips, pair, cookie, jitter):
    """One object's history: jittered times, single chunk or a pair."""
    if pair:
        chunk_pair = rng.sample(CHUNKS, 2)
        watched = tuple(sorted(chunk_pair))
    else:
        watched = (rng.choice(CHUNKS),)
    h = ObjectAccessHistory(
        type_name="widget",
        object_base=0x1000,
        object_cookie=cookie,
        offsets=watched,
        alloc_cpu=0,
        alloc_cycle=0,
    )
    lo_set = {c[0] for c in watched}
    for offset, fn, base_time in TRUE_SEQUENCE:
        if offset in lo_set:
            h.elements.append(
                HistoryElement(
                    offset=offset,
                    ip=ips[fn],
                    cpu=0,
                    time=max(1, base_time + rng.randint(-jitter, jitter)),
                    is_write=False,
                )
            )
    h.free_cycle = 100
    return h


def merged_order(builder, histories):
    traces = builder.build("widget", histories)
    if len(traces) != 1:
        return None  # fragmented: no single full-object order recovered
    return [e.fn for e in traces[0].entries]


def accuracy(rng_label, pair, jitter, trials=40):
    symbols, ips = make_symbols()
    builder = PathTraceBuilder(symbols)
    rng = DeterministicRng(7, rng_label)
    truth = [fn for _o, fn, _t in TRUE_SEQUENCE]
    correct = 0
    for trial in range(trials):
        histories = [
            synthesize(rng, ips, pair, cookie=trial * 100 + i, jitter=jitter)
            for i in range(12)
        ]
        if merged_order(builder, histories) == truth:
            correct += 1
    return correct / trials


def test_ablation_pairwise_beats_time_merge(benchmark):
    results = {}
    for jitter in (0, 6, 12):
        results[jitter] = {
            "single": accuracy(f"s{jitter}", pair=False, jitter=jitter),
            "pair": accuracy(f"p{jitter}", pair=True, jitter=jitter),
        }

    lines = ["Ablation: merge accuracy (fraction of exact orders recovered)", ""]
    for jitter, accs in results.items():
        lines.append(
            f"  timestamp jitter +/-{jitter:2d}: "
            f"single-offset {accs['single'] * 100:5.1f}%   "
            f"pairwise {accs['pair'] * 100:5.1f}%"
        )
    write_artifact("ablation_pairwise_merge.txt", "\n".join(lines))

    # With heavy jitter (comparable to inter-access gaps), time-only
    # merging of single-offset histories cannot reliably recover the
    # order -- and mostly cannot even connect the chunks into one family.
    assert results[12]["single"] < 0.5
    # Pairwise sampling recovers the exact order regardless of jitter.
    assert results[0]["pair"] == 1.0
    assert results[12]["pair"] > 0.9

    # Benchmark one pairwise merge.
    symbols, ips = make_symbols()
    builder = PathTraceBuilder(symbols)
    rng = DeterministicRng(9, "bench")
    histories = [
        synthesize(rng, ips, pair=True, cookie=i, jitter=6) for i in range(12)
    ]
    benchmark(builder.build, "widget", histories)
