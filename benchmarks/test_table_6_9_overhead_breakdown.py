"""Table 6.9: history-collection overhead breakdown.

Paper's split (Apache): the cost divides into debug-register interrupts
(5-60%), memory-subsystem reservation (5-10%), and cross-core
communication for debug-register setup (30-90%), with communication
dominating for most types ("At high histories per second rates, the
dominating factor is the debug registers setup overhead").
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.util.tables import TextTable, format_percent


def render_breakdown(title, study):
    table = TextTable(
        ["Data Type", "Interrupts", "Memory", "Communication"], title=title
    )
    for name, stats in study.collections.items():
        shares = stats.overhead.shares()
        table.add_row(
            name,
            format_percent(shares["interrupts"], 0),
            format_percent(shares["memory"], 0),
            format_percent(shares["communication"], 0),
        )
    return table.render()


def test_table_6_9_overhead_breakdown(benchmark, apache_history_study):
    study = apache_history_study
    rendered = benchmark(render_breakdown, "Apache", study)
    write_artifact("table_6_9_overhead_breakdown.txt", rendered)

    for name, stats in study.collections.items():
        shares = stats.overhead.shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9, name
        # Communication (the all-core debug-register broadcast) is the
        # dominant component for every type, as the paper reports for
        # tcp_sock (75%), size-1024 (70%), and skbuff_fclone (90%).
        assert shares["communication"] > shares["memory"], name
        assert shares["communication"] >= 0.3, name
        # Memory-subsystem reservation is the smallest fixed slice.
        assert shares["memory"] < 0.5, name


def test_table_6_9_interrupt_share_tracks_access_density(apache_history_study):
    # Types whose watched members are touched more per lifetime spend
    # proportionally more on traps (the paper's skbuff at 60% interrupts
    # vs skbuff_fclone at 5%).
    study = apache_history_study
    by_density = sorted(
        study.collections.values(), key=lambda s: s.elements_per_history
    )
    low, high = by_density[0], by_density[-1]
    if high.elements_per_history > 2 * max(low.elements_per_history, 0.1):
        assert (
            high.overhead.shares()["interrupts"]
            >= low.overhead.shares()["interrupts"]
        )
