"""Figure 6-1: the skbuff data flow view for memcached.

The figure's diagnosis: skbuffs on the transmit path jump from one core to
another between ``pfifo_fast_enqueue`` and ``pfifo_fast_dequeue`` (bold
edge), and the post-jump functions have high access latencies (dark
boxes).  The case study then uses the graph to bound the search: only
functions *above* ``pfifo_fast_enqueue`` can be responsible for the queue
choice -- and ``skb_tx_hash`` sits right there.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.dprof.views.data_flow import DataFlowView


def test_figure_6_1_skbuff_data_flow(benchmark, memcached_session):
    session = memcached_session
    traces = session.dprof.path_traces("skbuff")
    flow = benchmark(DataFlowView, "skbuff", traces)
    write_artifact(
        "figure_6_1_skbuff_data_flow.txt",
        flow.render_text() + "\n\n" + flow.to_dot(),
    )

    # The graph covers the rx path and the tx path from kalloc to kfree.
    for fn in ("kalloc", "kfree", "pfifo_fast_enqueue", "pfifo_fast_dequeue"):
        assert fn in flow.nodes, f"{fn} missing from the flow graph"

    # The bold line: a CPU transition between enqueue and dequeue.
    bold = {(e.src, e.dst) for e in flow.cpu_change_edges()}
    assert ("pfifo_fast_enqueue", "pfifo_fast_dequeue") in bold

    # Dark boxes: the post-transition consumer is expensive.
    hot = {n.name for n in flow.hot_nodes(latency_threshold=100)}
    assert hot & {"pfifo_fast_dequeue", "skb_dma_map", "dev_hard_start_xmit"}


def test_figure_6_1_narrows_the_search(memcached_session):
    flow = memcached_session.dprof.data_flow("skbuff")
    before = flow.functions_before("pfifo_fast_enqueue")
    # The functions that decide the queue are upstream of the enqueue --
    # exactly where skb_tx_hash is called from.
    assert "dev_queue_xmit" in before or "skb_put" in before
    # ...and the scope is a strict subset of the whole graph, so the
    # programmer reads fewer functions than OProfile's 20+ candidates.
    # (Merged statistical graphs can contain noisy back-edges, so the
    # claim is about narrowing, not a perfect cut.)
    assert len(before) < len(flow.nodes) - 2


def test_figure_6_1_fix_removes_cross_cpu_edges(memcached_case_study):
    # After installing local queue selection, re-profiling shows no
    # enqueue->dequeue CPU transition; here we check the underlying
    # behaviour directly: no alien frees and no foreign qdisc traffic.
    fixed = memcached_case_study.fixed_workload
    assert fixed.stack.skbuff_cache.alien_frees == 0
    assert fixed.stack.size1024_cache.alien_frees == 0
