"""Table 6.8: average object access history collection rates.

Paper's columns: elements per history, histories per second, elements per
second -- e.g. memcached skbuff collects 4.2 elements/history at 56
histories/s.  Shape claims: collection rate is set by object lifetime and
setup cost (so short-lived packet types collect faster than tcp_socks at
drop-off), and elements/history reflects how hot the watched member is.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.util.tables import TextTable


def render_rates(title, study):
    table = TextTable(
        [
            "Data Type",
            "Elements/History",
            "Histories/Mcycle",
            "Elements/Mcycle",
        ],
        title=title,
    )
    for name, stats in study.collections.items():
        table.add_row(
            name,
            f"{stats.elements_per_history:.2f}",
            f"{stats.histories_per_second:.2f}",
            f"{stats.histories_per_second * stats.elements_per_history:.2f}",
        )
    return table.render()


def test_table_6_8_collection_rates(
    benchmark, memcached_history_study, apache_history_study
):
    mem = memcached_history_study
    apa = apache_history_study
    rendered = benchmark(render_rates, "memcached", mem)
    write_artifact(
        "table_6_8_history_rates.txt",
        rendered + "\n\n" + render_rates("Apache", apa),
    )

    for study in (mem, apa):
        for name, stats in study.collections.items():
            assert stats.histories_per_second > 0, name

    # skbuff histories carry multiple elements (the paper's 4.2-4.8):
    # several functions touch the watched members during one lifetime.
    skb = mem.collections["skbuff"]
    assert skb.elements_per_history > 0.5

    # Rates are bounded above by the per-job setup cost: with ~220k
    # cycles of setup per history, no type can exceed ~1/setup histories
    # per cycle even with instant lifetimes.
    setup = mem.kernel.machine.interconnect.object_setup_cost(mem.kernel.ncores)
    for stats in mem.collections.values():
        assert stats.histories_per_second <= 1e6 / setup * 1.5
