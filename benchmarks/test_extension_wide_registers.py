"""Extension ablation (Section 7): variable-size debug registers.

The thesis: "DProf is also limited by having access to only four debug
registers ... computing object access histories requires pairwise tracing
of all offset pairs in a data structure. ... having a variable-size debug
register would greatly help DProf."

The simulation grants the wish and measures what it buys on the memcached
workload: one whole-object job replaces thousands of pairwise jobs, the
recovered path is exact rather than heuristically merged, and collection
cycles drop by orders of magnitude.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.dprof import DProf, DProfConfig
from repro.dprof.extensions import (
    collect_whole_object_histories,
    pairwise_job_count,
)
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel
from repro.workloads import MemcachedWorkload

NCORES = 8


def run_wide_register_collection(objects=12):
    kernel = Kernel(
        MachineConfig(ncores=NCORES, seed=81, variable_debug_registers=True)
    )
    workload = MemcachedWorkload(kernel)
    workload.setup()
    workload.start()
    kernel.run(until_cycle=150_000)
    dprof = DProf(kernel, DProfConfig(ibs_interval=400))
    dprof.attach()
    kernel.run(until_cycle=kernel.elapsed_cycles() + 300_000)
    start = kernel.elapsed_cycles()
    jobs = collect_whole_object_histories(dprof, "skbuff", objects=objects)
    kernel.run(
        until_cycle=start + 30_000_000, stop_when=lambda: dprof.histories_done
    )
    cycles = kernel.elapsed_cycles() - start
    dprof.detach()
    return kernel, dprof, jobs, cycles


def test_extension_wide_registers(benchmark, memcached_history_study):
    kernel, dprof, jobs, cycles = run_wide_register_collection()
    histories = dprof.history.histories_for("skbuff")
    assert len(histories) == jobs

    # Exactness: every whole-object history is a complete, totally
    # ordered record -- path traces need no cross-chunk inference.
    traces = benchmark(dprof.path_traces, "skbuff")
    assert traces
    for h in histories:
        # Element order is the true access order.  Timestamps from one
        # core are strictly monotone; across cores the per-core clocks
        # (like unsynchronized RDTSC reads) may disagree by at most a
        # scheduling quantum's worth of drift.
        per_cpu: dict = {}
        for el in h.elements:
            per_cpu.setdefault(el.cpu, []).append(el.time)
        for times in per_cpu.values():
            assert times == sorted(times)
        all_times = [el.time for el in h.elements]
        for a, b in zip(all_times, all_times[1:]):
            assert b >= a - 5_000, "cross-core clock drift exceeded bound"

    # Economy: jobs per covered object collapse from C(chunks, 2) to 1.
    pairwise_jobs = pairwise_job_count(256)
    assert pairwise_jobs == 2016

    # Compare cycles per *fully ordered object* against the stock
    # pairwise study (which needed many jobs for partial coverage).
    stock = memcached_history_study.pair_collections["skbuff"]
    stock_cycles_per_object_equivalent = (
        stock.collection_cycles / max(stock.jobs_completed, 1)
    )
    wide_cycles_per_object = cycles / max(jobs, 1)
    # One wide job costs about as much as one pair job (setup dominates
    # both) -- but it delivers the *entire* object, not one pair.
    assert wide_cycles_per_object < 10 * stock_cycles_per_object_equivalent

    write_artifact(
        "extension_wide_registers.txt",
        "\n".join(
            [
                "Extension: variable-size debug registers (Section 7)",
                "",
                f"stock hardware: full skbuff pairwise coverage = {pairwise_jobs}"
                " jobs (one object lifetime + ~setup each)",
                f"wide registers: 1 job per object; {jobs} objects collected in"
                f" {cycles / 1e6:.2f} Mcycles",
                f"cycles per fully-ordered object history: {wide_cycles_per_object:,.0f}",
                f"(vs {stock_cycles_per_object_equivalent:,.0f} cycles per"
                " *single pair* job on stock hardware)",
                "",
                f"paths recovered exactly, no pairwise merge heuristics: "
                f"{len(traces)} distinct paths from {len(histories)} objects",
            ]
        ),
    )


def test_extension_wide_registers_capture_everything():
    _kernel, dprof, _jobs, _cycles = run_wide_register_collection(objects=6)
    for h in dprof.history.histories_for("skbuff"):
        # A whole-object watch sees every access the machine made to the
        # object: at minimum the allocation-side writes and the free-side
        # reads (rx path: ~20+ accesses).
        assert len(h.elements) >= 8
        offsets = {el.offset for el in h.elements}
        assert len(offsets) >= 4  # multiple members, one history
