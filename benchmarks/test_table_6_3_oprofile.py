"""Table 6.3: OProfile's view of the memcached workload.

The paper's table lists 29 kernel functions above 1% CLK, headed by kfree
(4.4%), ixgbe_clean_rx_irq, __alloc_skb, ixgbe_xmit_frame -- and its point
is the *dilution*: the misses that DProf pins on two data types spread
thinly across dozens of functions, with no function standing out and no
hint that the entries share a common cause.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact

#: Userspace work is excluded, as the paper profiles the kernel.
USER_FUNCTIONS = frozenset({"memcached_get", "apache_handler"})

#: Functions from the paper's Table 6.3 that our simulated kernel
#: implements on the same paths.
PAPER_FUNCTIONS = {
    "kfree",
    "ixgbe_clean_rx_irq",
    "__alloc_skb",
    "ixgbe_xmit_frame",
    "kmem_cache_free",
    "udp_recvmsg",
    "dev_queue_xmit",
    "ixgbe_clean_tx_irq",
    "skb_put",
    "ep_poll_callback",
    "copy_user_generic_string",
    "__kfree_skb",
    "skb_tx_hash",
    "sock_def_write_space",
    "ip_rcv",
    "lock_sock_nested",
    "eth_type_trans",
    "dev_kfree_skb_irq",
    "__qdisc_run",
    "skb_copy_datagram_iovec",
    "__wake_up_sync_key",
    "skb_dma_map",
    "kmem_cache_alloc_node",
    "udp_sendmsg",
}


def test_table_6_3_memcached_oprofile(benchmark, memcached_session):
    prof = memcached_session.oprofile
    rows = benchmark(prof.rows, USER_FUNCTIONS)
    write_artifact("table_6_3_memcached_oprofile.txt", prof.render(29, USER_FUNCTIONS))

    names = {r.fn for r in rows}
    present = PAPER_FUNCTIONS & names
    # The simulated kernel exercises nearly all of the paper's functions.
    assert len(present) >= 20, f"only {len(present)} paper functions present"

    # Dilution claim 1: many functions carry >1% of kernel cycles.
    over_1pct = prof.functions_over(0.01, USER_FUNCTIONS)
    assert len(over_1pct) >= 12

    # Dilution claim 2: no single function explains the problem -- the
    # top entry holds well under half the cycles (our simulated kernel is
    # leaner than Linux, so bulk copies concentrate more than the paper's
    # 4.4% top entry, but "start at the top" still gives no answer).
    top = rows[0]
    assert top.clk_share < 0.45

    # Dilution claim 3: the misses DProf concentrates on two data types
    # are spread across many functions here, none holding a majority.
    l2_carriers = [r for r in rows if r.l2_miss_share > 0.01]
    assert len(l2_carriers) >= 8
    assert max(r.l2_miss_share for r in rows) < 0.5


def test_table_6_3_interesting_function_not_at_top(memcached_session):
    # The paper: "Before getting to the interesting dev_queue_xmit
    # function, the programmer needs to figure out why the first 6
    # functions are popular."  Our leaner kernel buries it less deeply,
    # but the decision point still does not lead the profile.
    rows = memcached_session.oprofile.rows(USER_FUNCTIONS)
    position = [r.fn for r in rows].index("dev_queue_xmit")
    assert position >= 1
