"""Ablation: the conflict-vs-capacity heuristic's factor-of-2 threshold.

Section 4.3: a set suffers conflict misses when it is assigned more lines
than its ways *and* "a factor of 2 more than average"; if most sets look
alike, the diagnosis is capacity instead.  The ablation drives both
synthetic extremes through DProf's cache simulation and sweeps the
threshold factor, showing that the paper's choice separates the cases
while extreme factors break one side or the other.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.dprof.cachesim import DProfCacheSim
from repro.dprof.records import AddressSet
from repro.hw.cache import CacheGeometry
from repro.util.rng import DeterministicRng


def conflict_address_set(geometry, hot_lines=40, background=320, seed=3):
    """Objects crowding one set, over a noisy random background.

    The background is randomly placed (Poisson-like per-set counts), so an
    overly permissive threshold factor will flag ordinary sets too.
    """
    aset = AddressSet()
    rng = DeterministicRng(seed, "bg")
    stride = geometry.num_sets * geometry.line_size
    for i in range(hot_lines):
        aset.record_alloc("hot", i * stride, 64, 1, 0, i)
    for i in range(background):
        line = rng.randint(1, geometry.num_sets * 64 - 1)
        aset.record_alloc("bg", line * geometry.line_size, 64, 1, 0, 100 + i)
    return aset


def capacity_address_set(geometry, multiple=4):
    """Uniform pressure at several times the cache capacity."""
    aset = AddressSet()
    for i in range(geometry.num_lines * multiple):
        aset.record_alloc("big", i * geometry.line_size, 64, 1, 0, i)
    return aset


def test_ablation_conflict_factor(benchmark):
    geometry = CacheGeometry(16 * 1024, 8, 64)
    sim = DProfCacheSim(geometry, DeterministicRng(5, "ablation"))
    conflict_result = sim.simulate(conflict_address_set(geometry), {})
    capacity_result = sim.simulate(capacity_address_set(geometry), {})

    factors = [1.2, 1.5, 2.0, 3.0, 6.0, 12.0]
    lines = ["Ablation: conflict-set detection vs threshold factor", ""]
    rows = []
    for factor in factors:
        conflict_sets = conflict_result.conflict_sets(factor)
        false_sets = capacity_result.conflict_sets(factor)
        rows.append((factor, len(conflict_sets), len(false_sets)))
        lines.append(
            f"  factor {factor:5.1f}: conflict workload -> "
            f"{len(conflict_sets)} flagged sets; "
            f"capacity workload -> {len(false_sets)} (false) flagged sets"
        )
    write_artifact("ablation_conflict_heuristic.txt", "\n".join(lines))

    by_factor = {f: (c, fp) for f, c, fp in rows}
    # The paper's factor of 2: catches the genuinely overloaded set and
    # raises no false conflicts on uniform capacity pressure.
    assert by_factor[2.0][0] >= 1
    assert by_factor[2.0][1] == 0
    # A permissive threshold flags more sets (noise) than the paper's
    # choice; a huge threshold misses the real conflict entirely.
    assert by_factor[1.2][0] > by_factor[2.0][0]
    assert by_factor[12.0][0] == 0

    # Benchmark the histogram analysis itself.
    benchmark(conflict_result.conflict_sets, 2.0)


def test_ablation_capacity_detection_insensitive_to_factor():
    geometry = CacheGeometry(16 * 1024, 8, 64)
    sim = DProfCacheSim(geometry, DeterministicRng(5, "ablation2"))
    result = sim.simulate(capacity_address_set(geometry), {})
    assert result.capacity_pressured()
    # A light background keeps the conflict case unambiguous: one hot set
    # over otherwise-unpressured neighbours is conflict, not capacity.
    conflict_result = sim.simulate(
        conflict_address_set(geometry, background=60), {}
    )
    assert not conflict_result.capacity_pressured()
