"""Table 6.7: object access history collection times and overhead.

Paper's rows (memcached: size-1024, skbuff; Apache: size-1024, skbuff,
skbuff_fclone, tcp_sock) report histories collected, collection time, and
overhead between 0.8% and 16%.  Absolute times don't transfer from the
testbed; the reproduced structure is: every type's collection completes,
overhead stays in the single-digit-to-tens percent band, bigger objects
need more histories per set, and the per-job setup cost (reserve +
debug-register broadcast) dominates the cycle bill.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.util.tables import TextTable, format_percent


def render_study(title, study):
    table = TextTable(
        ["Data Type", "Size", "Histories", "Sets", "Mcycles", "Overhead"],
        title=title,
    )
    for name, stats in study.collections.items():
        cache = study.kernel.slab.caches.get(name)
        size = cache.obj_size if cache else 0
        table.add_row(
            name,
            size,
            stats.jobs_completed,
            max((h.set_index for h in stats.histories), default=-1) + 1,
            f"{stats.collection_cycles / 1e6:.2f}",
            format_percent(stats.overhead_fraction),
        )
    return table.render()


def test_table_6_7_memcached_history_overhead(
    benchmark, memcached_history_study, apache_history_study
):
    mem = memcached_history_study
    apa = apache_history_study
    rendered = benchmark(render_study, "memcached", mem)
    write_artifact(
        "table_6_7_history_overhead.txt",
        rendered + "\n\n" + render_study("Apache", apa),
    )

    for study in (mem, apa):
        for name, stats in study.collections.items():
            assert stats.jobs_completed > 0, f"{name}: nothing collected"
            # Overhead band: the paper spans 0.8%-16%.
            assert stats.overhead_fraction < 0.4, f"{name} overhead too high"
            assert stats.collection_cycles > 0


def test_table_6_7_collection_time_grows_with_jobs(memcached_history_study):
    # More jobs -> proportionally more collection time (each job owns one
    # object's lifetime plus a fixed ~220k-cycle setup).
    stats = list(memcached_history_study.collections.values())
    for s in stats:
        per_job = s.collection_cycles / max(s.jobs_completed, 1)
        setup = memcached_history_study.kernel.machine.interconnect.object_setup_cost(
            memcached_history_study.kernel.ncores
        )
        assert per_job > 0.5 * setup


def test_table_6_7_tcp_sock_needs_more_coverage(apache_history_study):
    # The paper: "the bigger the object the more runs are needed".  A
    # full set for tcp_sock (1600B) has 400 chunks vs skbuff's 64; with
    # hot-chunk focusing both collect, but the full-coverage set size
    # ratio is pinned by the type sizes.
    kernel = apache_history_study.kernel
    from repro.dprof.history import chunks_for_type

    tcp_chunks = len(chunks_for_type(kernel.slab.cache("tcp_sock").obj_size))
    skb_chunks = len(chunks_for_type(kernel.slab.cache("skbuff").obj_size))
    assert tcp_chunks == 400  # paper: 32000 histories / 80 sets
    assert skb_chunks == 64  # paper: 64 histories per set
