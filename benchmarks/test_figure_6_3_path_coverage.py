"""Figure 6-3: percent of unique paths captured vs history sets collected.

The paper collects a 720-set reference profile per type, then asks how
many of its unique execution paths smaller profiles capture, finding that
30-100 sets suffice for most paths and that the curve saturates.  The
reproduction uses a scaled-down reference (24 sets on the scaled
workload) and checks the same saturating shape: coverage grows
monotonically with sets and reaches most of the reference well before the
full count.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.dprof.pathtrace import PathTraceBuilder


def coverage_curve(histories, max_sets):
    """Fraction of reference unique paths captured after k sets."""
    reference = PathTraceBuilder.unique_paths(histories)
    points = []
    for k in range(1, max_sets + 1):
        subset = [h for h in histories if h.set_index < k]
        captured = PathTraceBuilder.unique_paths(subset)
        points.append((k, len(captured) / max(len(reference), 1)))
    return reference, points


def test_figure_6_3_unique_path_coverage(benchmark, path_coverage_study):
    study = path_coverage_study
    histories = study.collections["skbuff"].histories
    assert histories, "no histories collected"
    max_sets = max(h.set_index for h in histories) + 1
    assert max_sets >= 12

    reference, points = benchmark(coverage_curve, histories, max_sets)

    lines = [
        "Figure 6-3: % of unique skbuff paths captured vs history sets",
        f"reference profile: {max_sets} sets, {len(reference)} unique paths",
        "",
    ]
    for k, fraction in points:
        bar = "#" * int(fraction * 40)
        lines.append(f"  {k:3d} sets: {fraction * 100:5.1f}% {bar}")
    write_artifact("figure_6_3_path_coverage.txt", "\n".join(lines))

    fractions = [f for _k, f in points]
    # Monotone non-decreasing by construction.
    assert all(b >= a for a, b in zip(fractions, fractions[1:]))
    # The paper's claim, scaled: a fraction of the reference set count
    # already captures most unique paths...
    two_thirds = fractions[(2 * max_sets) // 3 - 1]
    assert two_thirds >= 0.75
    # ...while a single set is not enough (the curve really does grow).
    assert fractions[0] < fractions[-1]
    assert fractions[-1] == 1.0


def test_figure_6_3_multiple_paths_exist(path_coverage_study):
    # The curve is only meaningful because skbuffs genuinely take
    # multiple execution paths (rx vs tx at minimum).
    histories = path_coverage_study.collections["skbuff"].histories
    reference = PathTraceBuilder.unique_paths(histories)
    assert len(reference) >= 3
