"""Table 6.6: lock statistics for the overloaded Apache run.

Paper's table has a single prominent row -- the futex lock (6.6%
overhead, via do_futex / futex_wait / futex_wake) -- and the paper's
point: "This analysis does not reveal anything about the problem."  The
futexes are Apache's worker handoff, nothing to do with the accept-queue
working set.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.baselines import LockStatReport


def test_table_6_6_apache_lockstat(benchmark, apache_case_study):
    kernel = apache_case_study.stock_kernel
    report = LockStatReport(kernel.lockstat, kernel.machine.total_cycles())
    rows = benchmark(report.rows)
    write_artifact("table_6_6_apache_lockstat.txt", report.render(8))

    by_name = {r.name: r for r in rows}
    assert "futex lock" in by_name
    futex = by_name["futex lock"]
    callers = set(futex.top_functions(6))
    assert {"futex_wait", "futex_wake"} <= callers

    # The misleading part, reproduced: the lock-stat output carries no
    # mention of the accept queue or tcp_sock machinery at any
    # significant level -- the real problem is invisible here.
    accept = by_name.get("accept queue lock")
    if accept is not None:
        assert accept.overhead < 0.01


def test_table_6_6_futex_unchanged_by_the_real_fix(apache_case_study):
    # Admission control fixes throughput without touching futex usage --
    # evidence that the futex contention was a red herring.
    stock = apache_case_study.stock_kernel
    fixed = apache_case_study.fixed_kernel
    stock_report = LockStatReport(stock.lockstat, stock.machine.total_cycles())
    fixed_report = LockStatReport(fixed.lockstat, fixed.machine.total_cycles())
    stock_futex = stock_report.row_for("futex lock")
    fixed_futex = fixed_report.row_for("futex lock")
    assert stock_futex is not None and fixed_futex is not None
    # Futexes are acquired per request on both kernels.
    assert fixed_futex.acquisitions > 0
