"""Baseline comparison (Section 2.2): Intel PTU vs DProf on memcached.

The paper's criticism of the closest prior tool, measured: PTU attributes
samples to cache lines and can only *name* lines inside static
structures, so on a kernel workload -- where the hot data is slab
memory -- most of the missing lines stay anonymous, there is no
aggregation by type, and the working set is a count of addresses.  DProf,
on the same run, names every one of those lines by type.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.baselines.ptu import run_ptu
from repro.dprof import DProf, DProfConfig
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel
from repro.workloads import MemcachedWorkload

NCORES = 8


def run_comparison():
    kernel = Kernel(MachineConfig(ncores=NCORES, seed=37))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    ptu, pebs = run_ptu(kernel.machine, kernel.slab, interval=80)
    dprof = DProf(kernel, DProfConfig(ibs_interval=300))
    pebs.attach()
    dprof.attach()
    workload.run(700_000, warmup_cycles=150_000)
    dprof.detach()
    pebs.detach()
    return kernel, ptu, pebs, dprof


def test_ptu_vs_dprof_attribution(benchmark):
    kernel, ptu, pebs, dprof = run_comparison()
    report = benchmark(ptu.report)

    profile = dprof.data_profile()
    lines = [
        "Baseline comparison: Intel-PTU-style view vs DProf (memcached)",
        "",
        report.render(10),
        "",
        f"lines PTU could name:            {report.attributed_fraction:8.1%}",
        f"misses on lines PTU could name:  {report.attributed_miss_fraction():8.1%}",
        "",
        "DProf's view of the same run:",
        profile.render(6),
    ]
    write_artifact("baseline_ptu_comparison.txt", "\n".join(lines))

    # The paper's criticism, quantified: the majority of sampled misses
    # land on dynamic (slab) lines PTU cannot name...
    assert report.rows
    assert report.attributed_miss_fraction() < 0.5
    # ...while DProf attributes the bulk of all misses to concrete types.
    assert profile.covered_share(8) > 0.6
    assert profile.rows[0].type_name in ("size-1024", "skbuff")

    # PTU's working set is an address count, not a type breakdown.
    assert report.working_set_lines > 50


def test_ptu_hitm_counters_spot_the_shared_device(benchmark):
    kernel, ptu, pebs, _dprof = run_comparison()
    suspects = benchmark(pebs.sharing_suspect_lines, 4)
    assert suspects
    # The Intel-counter recipe does find *line-level* sharing: the shared
    # net_device / qdisc lines show up among the top HITM lines.  What it
    # cannot do is say which type or which code transition -- that is
    # DProf's data flow view.
    named = set()
    for line, _hitm, _miss in suspects[:10]:
        obj = kernel.slab.find_object(line * 64)
        if obj is not None:
            named.add(obj.otype.name)
    assert named & {"net_device", "Qdisc", "kmem_list3", "wait_queue_head",
                    "array_cache", "eventpoll", "udp_sock"}
