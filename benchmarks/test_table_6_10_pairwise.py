"""Table 6.10: history collection using pairwise sampling.

Pairwise profiling needs quadratically more histories per set (every pair
of watched chunks, one object each), so collection takes longer and costs
more than single-offset profiling of the same members -- the paper's
skbuff goes from 64 histories/set to 2017, and overheads roughly double.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.dprof.history import all_pairs, chunks_for_type
from repro.util.tables import TextTable, format_percent


def render_pairwise(title, study):
    table = TextTable(
        ["Data Type", "Histories/Set", "Mcycles", "Overhead"], title=title
    )
    for name, stats in study.pair_collections.items():
        table.add_row(
            name,
            stats.jobs_scheduled,
            f"{stats.collection_cycles / 1e6:.2f}",
            format_percent(stats.overhead_fraction),
        )
    return table.render()


def test_table_6_10_pairwise_costs(
    benchmark, memcached_history_study, apache_history_study
):
    mem = memcached_history_study
    apa = apache_history_study
    rendered = benchmark(render_pairwise, "memcached", mem)
    write_artifact(
        "table_6_10_pairwise.txt", rendered + "\n\n" + render_pairwise("Apache", apa)
    )

    for study in (mem, apa):
        for name, stats in study.pair_collections.items():
            assert stats.pair
            assert stats.jobs_completed > 0, name
            # A pair set over k chunks is C(k, 2) histories: more than
            # the k histories a single-offset set needs.
            k_singles = None
            single = study.collections.get(name)
            if single is not None:
                k_singles = single.jobs_scheduled / max(
                    max((h.set_index for h in single.histories), default=0) + 1, 1
                )

    # The quadratic growth claim, pinned exactly on full coverage: the
    # paper's skbuff needs 64 single histories but 2016 pairs per set.
    chunks = chunks_for_type(256, 4)
    assert len(chunks) == 64
    assert len(all_pairs(chunks)) == 2016
    tcp_chunks = chunks_for_type(1600, 4)
    assert len(all_pairs(tcp_chunks)) == 79800  # paper: 79801/1


def test_table_6_10_pairwise_slower_per_covered_member(memcached_history_study):
    # For the same watched members, pairwise collection burns more cycles
    # per set than single-offset collection (quadratic vs linear jobs).
    study = memcached_history_study
    for name, pair_stats in study.pair_collections.items():
        single_stats = study.collections.get(name)
        if single_stats is None or single_stats.jobs_completed == 0:
            continue
        pair_sets = max((h.set_index for h in pair_stats.histories), default=0) + 1
        single_sets = max((h.set_index for h in single_stats.histories), default=0) + 1
        pair_per_set = pair_stats.collection_cycles / max(pair_sets, 1)
        single_per_set = single_stats.collection_cycles / max(single_sets, 1)
        # Pair sets cover fewer chunks here (4 vs 8) yet still cost at
        # least comparably much per set.
        assert pair_per_set > 0.5 * single_per_set, name
