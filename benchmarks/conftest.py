"""Shared machinery for the reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper's evaluation
(Section 6).  The expensive full-system runs -- a profiled memcached, the
two Apache operating points, the history-collection sessions -- are built
once per pytest session and shared by every benchmark that reads from
them.  Each benchmark then times a cheap, deterministic piece of DProf
itself (view construction, trace merging, report rendering) through
pytest-benchmark, and asserts the paper's *shape* claims on the shared
data.

Rendered tables/figures are written to ``benchmarks/out/`` so they can be
inspected and diffed against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.baselines import OProfile
from repro.dprof import DProf, DProfConfig
from repro.dprof.history import OverheadBreakdown
from repro.dprof.records import ObjectAccessHistory
from repro.fixes import apply_admission_control, install_local_queue_selection
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel
from repro.workloads import (
    ApacheConfig,
    ApacheWorkload,
    MemcachedConfig,
    MemcachedWorkload,
)

OUT_DIR = Path(__file__).parent / "out"


def pytest_collection_modifyitems(items) -> None:
    """Mark everything in this directory ``bench``.

    Tier-1 CI runs ``-m "not bench"`` over tests/; the benchmark job
    selects ``-m bench`` explicitly (see .github/workflows/ci.yml).
    """
    for item in items:
        item.add_marker(pytest.mark.bench)

#: Apache operating points (cycles between arrivals per core), found by
#: the calibration sweep: throughput peaks near PEAK and falls past it.
APACHE_PEAK_PERIOD = 22_000
APACHE_DROPOFF_PERIOD = 11_000


def write_artifact(name: str, content: str) -> Path:
    """Persist one rendered table/figure under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(content + "\n")
    return path


# ----------------------------------------------------------------------
# History-collection bookkeeping
# ----------------------------------------------------------------------


@dataclass
class TypeCollection:
    """Per-type history collection statistics (for Tables 6.7-6.10)."""

    type_name: str
    pair: bool
    jobs_scheduled: int
    jobs_completed: int = 0
    histories: list[ObjectAccessHistory] = field(default_factory=list)
    collection_cycles: int = 0
    overhead: OverheadBreakdown = field(default_factory=OverheadBreakdown)
    window_cycles: int = 0
    requests_during: int = 0

    @property
    def total_elements(self) -> int:
        return sum(len(h.elements) for h in self.histories)

    @property
    def overhead_fraction(self) -> float:
        """Profiling cycles as a share of machine time during collection.

        The paper reports overhead as % throughput reduction; charged
        profiling cycles over total cycles is the same quantity in a
        closed system.
        """
        if self.window_cycles == 0:
            return 0.0
        return min(1.0, self.overhead.total / self.window_cycles)

    @property
    def histories_per_second(self) -> float:
        """Completed histories per million cycles (the paper's 'per
        second', in simulation time units)."""
        if self.collection_cycles == 0:
            return 0.0
        return self.jobs_completed * 1e6 / self.collection_cycles

    @property
    def elements_per_history(self) -> float:
        if not self.histories:
            return 0.0
        return self.total_elements / len(self.histories)


def collect_type(
    kernel: Kernel,
    dprof: DProf,
    type_name: str,
    sets: int,
    hot_chunks: int | None,
    pair: bool = False,
    max_extra_cycles: int = 40_000_000,
    member_offsets: list[int] | None = None,
) -> TypeCollection:
    """Collect history sets for one type on a live machine, with deltas."""
    collector = dprof.history
    jobs_before = collector.jobs_completed
    elements_before = len(collector.histories)
    overhead_before = OverheadBreakdown(
        collector.overhead.interrupt_cycles,
        collector.overhead.memory_cycles,
        collector.overhead.communication_cycles,
    )
    start_cycle = kernel.elapsed_cycles()
    jobs = dprof.collect_histories(
        type_name,
        sets=sets,
        pair=pair,
        hot_chunks=hot_chunks,
        member_offsets=member_offsets,
    )
    kernel.run(
        until_cycle=start_cycle + max_extra_cycles,
        stop_when=lambda: dprof.histories_done,
    )
    end_cycle = kernel.elapsed_cycles()
    stats = TypeCollection(
        type_name=type_name,
        pair=pair,
        jobs_scheduled=jobs,
        jobs_completed=collector.jobs_completed - jobs_before,
        histories=collector.histories[elements_before:],
        collection_cycles=end_cycle - start_cycle,
        window_cycles=(end_cycle - start_cycle) * kernel.ncores,
    )
    stats.overhead = OverheadBreakdown(
        collector.overhead.interrupt_cycles - overhead_before.interrupt_cycles,
        collector.overhead.memory_cycles - overhead_before.memory_cycles,
        collector.overhead.communication_cycles - overhead_before.communication_cycles,
    )
    # Abandon any unfinished work so the next type starts clean (a stale
    # reservation must not deliver an old-type object to the next job).
    collector.jobs.clear()
    collector.abandon_current()
    return stats


# ----------------------------------------------------------------------
# Session: profiled memcached (stock kernel) -- T4.1, T6.1-6.3, F6.1
# ----------------------------------------------------------------------


@dataclass
class MemcachedSession:
    kernel: Kernel
    workload: MemcachedWorkload
    dprof: DProf
    oprofile: OProfile
    throughput: float
    collections: dict[str, TypeCollection]


@pytest.fixture(scope="session")
def memcached_session() -> MemcachedSession:
    """The paper's Section 6.1 run: 16 pinned instances, stock TX path."""
    kernel = Kernel(MachineConfig(ncores=16, seed=101))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    oprofile = OProfile(kernel.machine)
    oprofile.attach()
    workload.start()
    kernel.run(until_cycle=200_000)  # warm up

    dprof = DProf(kernel, DProfConfig(ibs_interval=400))
    dprof.attach()
    base = workload.counter.total
    start = kernel.elapsed_cycles()
    kernel.run(until_cycle=start + 1_000_000)
    throughput = (
        (workload.counter.total - base) * 1e6 / (kernel.elapsed_cycles() - start)
    )
    collections = {
        # skb->next (offset 0) is pinned into the watched set: it is the
        # queue-linkage member the enqueue/dequeue transition shows up on.
        "skbuff": collect_type(
            kernel, dprof, "skbuff", sets=3, hot_chunks=6, member_offsets=[0]
        ),
        # Pairwise sets order accesses *across* members -- the paper's
        # prerequisite for building the data flow view (Section 6.4).
        # Multiple sets are needed because each pair job samples one
        # object, which may take either the rx or the tx path (the
        # coverage effect Figure 6-3 measures).
        "skbuff-pairs": collect_type(
            kernel,
            dprof,
            "skbuff",
            sets=6,
            hot_chunks=4,
            member_offsets=[0],
            pair=True,
        ),
        "size-1024": collect_type(kernel, dprof, "size-1024", sets=3, hot_chunks=6),
    }
    dprof.detach()
    oprofile.detach()
    return MemcachedSession(
        kernel=kernel,
        workload=workload,
        dprof=dprof,
        oprofile=oprofile,
        throughput=throughput,
        collections=collections,
    )


# ----------------------------------------------------------------------
# Session: memcached case study (stock vs fixed, unprofiled) -- CS1
# ----------------------------------------------------------------------


@dataclass
class CaseStudyResult:
    stock_throughput: float
    fixed_throughput: float
    stock_kernel: Kernel
    fixed_kernel: Kernel
    stock_workload: MemcachedWorkload
    fixed_workload: MemcachedWorkload

    @property
    def improvement(self) -> float:
        return self.fixed_throughput / self.stock_throughput - 1


@pytest.fixture(scope="session")
def memcached_case_study() -> CaseStudyResult:
    """Stock vs local-queue-selection memcached at full (paper) scale."""

    def run(fixed: bool):
        kernel = Kernel(MachineConfig(ncores=16, seed=11))
        workload = MemcachedWorkload(kernel)
        workload.setup()
        if fixed:
            install_local_queue_selection(workload.stack.dev)
        result = workload.run(1_500_000, warmup_cycles=300_000)
        return result.throughput, kernel, workload

    stock_thr, stock_k, stock_w = run(False)
    fixed_thr, fixed_k, fixed_w = run(True)
    return CaseStudyResult(
        stock_throughput=stock_thr,
        fixed_throughput=fixed_thr,
        stock_kernel=stock_k,
        fixed_kernel=fixed_k,
        stock_workload=stock_w,
        fixed_workload=fixed_w,
    )


# ----------------------------------------------------------------------
# Sessions: Apache peak / drop-off (profiled) and admission fix -- CS2
# ----------------------------------------------------------------------


@dataclass
class ApacheSession:
    kernel: Kernel
    workload: ApacheWorkload
    dprof: DProf
    throughput: float


def _profiled_apache(period: int, seed: int, warmup: int = 2_000_000) -> ApacheSession:
    kernel = Kernel(MachineConfig(ncores=16, seed=seed))
    workload = ApacheWorkload(kernel, config=ApacheConfig(arrival_period=period))
    workload.setup()
    workload.start()
    start = kernel.elapsed_cycles()
    workload.schedule_arrivals(warmup + 6_000_000, start_cycle=start)
    kernel.run(until_cycle=start + warmup)  # reach steady state
    dprof = DProf(kernel, DProfConfig(ibs_interval=150))
    dprof.attach()
    base = workload.counter.total
    measure_start = kernel.elapsed_cycles()
    kernel.run(until_cycle=measure_start + 4_000_000)
    throughput = (
        (workload.counter.total - base)
        * 1e6
        / (kernel.elapsed_cycles() - measure_start)
    )
    dprof.detach()
    return ApacheSession(kernel=kernel, workload=workload, dprof=dprof, throughput=throughput)


@pytest.fixture(scope="session")
def apache_peak_session() -> ApacheSession:
    """Apache at peak load (Table 6.4)."""
    return _profiled_apache(APACHE_PEAK_PERIOD, seed=61)


@pytest.fixture(scope="session")
def apache_dropoff_session() -> ApacheSession:
    """Apache past the drop-off point (Tables 6.5, 6.6)."""
    # Deep-backlog steady state takes longer to fill (the accept
    # queues hold 128 connections each before the first drop).
    return _profiled_apache(APACHE_DROPOFF_PERIOD, seed=62, warmup=3_500_000)


@pytest.fixture(scope="session")
def apache_case_study() -> CaseStudyResult:
    """Drop-off load, stock vs admission control (the paper's 16% fix)."""

    def run(admission: int | None):
        kernel = Kernel(MachineConfig(ncores=16, seed=63))
        workload = ApacheWorkload(
            kernel, config=ApacheConfig(arrival_period=APACHE_DROPOFF_PERIOD)
        )
        workload.setup()
        if admission is not None:
            apply_admission_control(workload.listeners.values(), admission)
        result = workload.run(3_000_000, warmup_cycles=3_500_000)
        return result.throughput, kernel, workload

    stock_thr, stock_k, stock_w = run(None)
    fixed_thr, fixed_k, fixed_w = run(8)
    return CaseStudyResult(
        stock_throughput=stock_thr,
        fixed_throughput=fixed_thr,
        stock_kernel=stock_k,
        fixed_kernel=fixed_k,
        stock_workload=stock_w,
        fixed_workload=fixed_w,
    )


# ----------------------------------------------------------------------
# Sessions: history-collection measurements (8-core, Tables 6.7-6.10,
# Figure 6-3).  Absolute times differ from the 16-core testbed; the
# tables' structure (per-type costs, overhead split) is what reproduces.
# ----------------------------------------------------------------------


@dataclass
class HistoryStudy:
    kernel: Kernel
    dprof: DProf
    collections: dict[str, TypeCollection]
    pair_collections: dict[str, TypeCollection]


@pytest.fixture(scope="session")
def memcached_history_study() -> HistoryStudy:
    """Per-type history collection costs on memcached (8 cores)."""
    kernel = Kernel(MachineConfig(ncores=8, seed=71))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    workload.start()
    kernel.run(until_cycle=150_000)
    dprof = DProf(kernel, DProfConfig(ibs_interval=400))
    dprof.attach()
    kernel.run(until_cycle=kernel.elapsed_cycles() + 500_000)
    collections = {
        "size-1024": collect_type(kernel, dprof, "size-1024", sets=2, hot_chunks=8),
        "skbuff": collect_type(kernel, dprof, "skbuff", sets=2, hot_chunks=8),
    }
    pair_collections = {
        "size-1024": collect_type(
            kernel, dprof, "size-1024", sets=1, hot_chunks=4, pair=True
        ),
        "skbuff": collect_type(kernel, dprof, "skbuff", sets=1, hot_chunks=4, pair=True),
    }
    dprof.detach()
    return HistoryStudy(kernel, dprof, collections, pair_collections)


@pytest.fixture(scope="session")
def apache_history_study() -> HistoryStudy:
    """Per-type history collection costs on Apache.

    Runs at the paper's 16 cores: the Table 6.9 breakdown depends on the
    all-core debug-register broadcast dominating the per-object setup,
    which is a property of the core count.  Load is kept comfortably
    below saturation: profiling overhead itself slows the server, and at
    the peak operating point that feedback deepens the accept queues and
    stretches every watched object's lifetime (an effect worth knowing
    about, but one that would let a single type eat the whole budget).
    """
    kernel = Kernel(MachineConfig(ncores=16, seed=72))
    workload = ApacheWorkload(
        kernel, config=ApacheConfig(arrival_period=30_000)
    )
    workload.setup()
    workload.start()
    start = kernel.elapsed_cycles()
    workload.schedule_arrivals(250_000_000, start_cycle=start)
    kernel.run(until_cycle=start + 500_000)
    dprof = DProf(kernel, DProfConfig(ibs_interval=400))
    dprof.attach()
    kernel.run(until_cycle=kernel.elapsed_cycles() + 400_000)
    collections = {
        "size-1024": collect_type(
            kernel, dprof, "size-1024", sets=2, hot_chunks=6, max_extra_cycles=25_000_000
        ),
        "skbuff": collect_type(
            kernel, dprof, "skbuff", sets=2, hot_chunks=6, max_extra_cycles=25_000_000
        ),
        "skbuff_fclone": collect_type(
            kernel, dprof, "skbuff_fclone", sets=2, hot_chunks=6, max_extra_cycles=25_000_000
        ),
        "tcp_sock": collect_type(
            kernel, dprof, "tcp_sock", sets=2, hot_chunks=6, max_extra_cycles=25_000_000
        ),
    }
    pair_collections = {
        "skbuff_fclone": collect_type(
            kernel, dprof, "skbuff_fclone", sets=1, hot_chunks=4, pair=True,
            max_extra_cycles=25_000_000,
        ),
        "tcp_sock": collect_type(
            kernel, dprof, "tcp_sock", sets=1, hot_chunks=4, pair=True,
            max_extra_cycles=25_000_000,
        ),
    }
    dprof.detach()
    return HistoryStudy(kernel, dprof, collections, pair_collections)


@pytest.fixture(scope="session")
def path_coverage_study() -> HistoryStudy:
    """Many small skbuff history sets for the Figure 6-3 coverage curve."""
    kernel = Kernel(MachineConfig(ncores=8, seed=73))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    workload.start()
    kernel.run(until_cycle=150_000)
    dprof = DProf(kernel, DProfConfig(ibs_interval=400))
    dprof.attach()
    kernel.run(until_cycle=kernel.elapsed_cycles() + 400_000)
    collections = {
        "skbuff": collect_type(
            kernel, dprof, "skbuff", sets=24, hot_chunks=3, max_extra_cycles=60_000_000
        ),
    }
    dprof.detach()
    return HistoryStudy(kernel, dprof, collections, {})
