"""Table 6.2: lock statistics for the stock memcached run.

Paper's rows: epoll lock (2.20%), wait queue (1.89%), Qdisc lock (4.04%,
from dev_queue_xmit / __qdisc_run), SLAB cache lock (0.16%, from
cache_alloc_refill / __drain_alien_cache).  The shape claims: the Qdisc
lock is the largest contender, the wakeup locks are visible, the SLAB
lock is present-but-small, and the caller lists match -- yet none of this
names the data or the decision point, which is the paper's argument for
DProf.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.baselines import LockStatReport

PAPER_LOCKS = {"Qdisc lock", "wait queue lock", "epoll lock", "SLAB cache lock"}


def test_table_6_2_memcached_lockstat(benchmark, memcached_case_study):
    kernel = memcached_case_study.stock_kernel
    report = LockStatReport(kernel.lockstat, kernel.machine.total_cycles())
    rows = benchmark(report.rows)
    write_artifact("table_6_2_memcached_lockstat.txt", report.render(8))

    by_name = {r.name: r for r in rows}
    assert PAPER_LOCKS <= set(by_name), f"missing locks: {PAPER_LOCKS - set(by_name)}"

    qdisc = by_name["Qdisc lock"]
    # Qdisc is the top contender, a few percent of CPU time (paper 4.04%).
    assert 0.005 < qdisc.overhead < 0.15
    assert qdisc.wait_cycles >= by_name["SLAB cache lock"].wait_cycles
    assert {"dev_queue_xmit", "__qdisc_run"} <= set(qdisc.top_functions(6))

    slab = by_name["SLAB cache lock"]
    assert slab.overhead < qdisc.overhead
    callers = set(slab.top_functions(6))
    assert "cache_alloc_refill" in callers
    assert "__drain_alien_cache" in callers

    wq = by_name["wait queue lock"]
    assert "__wake_up_sync_key" in set(wq.top_functions(4))


def test_table_6_2_fix_eliminates_contention(memcached_case_study):
    # Section 6.1: "installing a local queue selection function ...
    # eliminated all lock contention."
    fixed = memcached_case_study.fixed_kernel
    stock = memcached_case_study.stock_kernel
    fixed_report = LockStatReport(fixed.lockstat, fixed.machine.total_cycles())
    stock_report = LockStatReport(stock.lockstat, stock.machine.total_cycles())
    fixed_qdisc = fixed_report.row_for("Qdisc lock")
    stock_qdisc = stock_report.row_for("Qdisc lock")
    assert fixed_qdisc is not None and stock_qdisc is not None
    assert fixed_qdisc.wait_cycles < 0.05 * stock_qdisc.wait_cycles
