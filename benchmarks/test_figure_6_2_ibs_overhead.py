"""Figure 6-2: DProf overhead vs IBS sampling rate.

The paper measures percent connection-throughput reduction for Apache and
memcached as the IBS sampling rate grows, finding overhead proportional
to the rate (each sample costs a ~2,000-cycle interrupt): roughly 0-12%
over 0-18k samples/s/core.  The reproduction sweeps the sampling interval
on both workloads and checks the same proportionality.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import APACHE_PEAK_PERIOD, write_artifact
from repro.dprof import DProf, DProfConfig
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel
from repro.workloads import ApacheConfig, ApacheWorkload, MemcachedWorkload

#: IBS tag intervals swept (instructions between samples); 0 = disabled.
INTERVALS = [0, 4000, 1000, 400, 200]

NCORES = 8


def run_memcached(interval: int) -> float:
    kernel = Kernel(MachineConfig(ncores=NCORES, seed=44))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    dprof = None
    if interval:
        dprof = DProf(kernel, DProfConfig(ibs_interval=interval))
        dprof.attach()
    result = workload.run(900_000, warmup_cycles=150_000)
    if dprof is not None:
        dprof.detach()
    return result.throughput


def run_apache(interval: int) -> float:
    kernel = Kernel(MachineConfig(ncores=NCORES, seed=45))
    workload = ApacheWorkload(
        kernel, config=ApacheConfig(arrival_period=APACHE_PEAK_PERIOD)
    )
    workload.setup()
    dprof = None
    if interval:
        dprof = DProf(kernel, DProfConfig(ibs_interval=interval))
        dprof.attach()
    result = workload.run(1_500_000, warmup_cycles=400_000)
    if dprof is not None:
        dprof.detach()
    return result.throughput


@pytest.fixture(scope="module")
def overhead_curves():
    curves = {}
    for name, runner in (("memcached", run_memcached), ("apache", run_apache)):
        baseline = runner(0)
        points = []
        for interval in INTERVALS[1:]:
            throughput = runner(interval)
            reduction = max(0.0, 1.0 - throughput / baseline)
            # Samples per million cycles per core, the x-axis analogue of
            # the paper's "thousands of samples/s/core".
            rate = 1e6 / interval / 5  # ~5 cycles per instruction average
            points.append((interval, rate, reduction))
        curves[name] = (baseline, points)
    return curves


def test_figure_6_2_overhead_proportional_to_rate(benchmark, overhead_curves):
    lines = ["Figure 6-2: throughput reduction vs IBS sampling rate", ""]
    for name, (baseline, points) in overhead_curves.items():
        lines.append(f"{name} (baseline {baseline:.1f} req/Mcycle):")
        for interval, rate, reduction in points:
            lines.append(
                f"  interval {interval:6d} instr  "
                f"(~{rate:7.1f} samples/Mcycle/core): "
                f"{reduction * 100:5.2f}% reduction"
            )
        lines.append("")
    write_artifact("figure_6_2_ibs_overhead.txt", "\n".join(lines))

    for name, (_baseline, points) in overhead_curves.items():
        reductions = [r for _i, _rate, r in points]
        # Monotone-ish: the highest sampling rate costs the most, the
        # lowest costs the least.
        assert reductions[-1] >= reductions[0], name
        # The shape is the paper's: noticeable but bounded overhead at
        # the top rate (paper: ~3-12%), near-zero at low rates.
        assert reductions[0] < 0.08, f"{name} low-rate overhead too high"
        assert 0.005 < reductions[-1] < 0.5, f"{name} high-rate overhead off"

    # Proportionality: quadrupling the rate multiplies overhead several
    # times (paper's straight lines through the origin).
    mem = overhead_curves["memcached"][1]
    low = mem[0][2] or 1e-4
    assert mem[-1][2] / low > 2.0

    # Benchmark the per-sample cost path itself: one IBS delivery.
    kernel = Kernel(MachineConfig(ncores=2, seed=46))
    from repro.dprof.access_sampler import AccessSampleCollector
    from repro.dprof.resolver import TypeResolver
    from repro.hw.ibs import IbsSample
    from repro.hw.events import CacheLevel

    collector = AccessSampleCollector(kernel.machine, TypeResolver(kernel.slab))
    sample = IbsSample(
        cycle=1,
        cpu=0,
        ip=7,
        fn="fn",
        kind="load",
        addr=0x100,
        size=8,
        level=CacheLevel.L1,
        latency=3,
    )
    benchmark(collector._on_sample, sample)
