"""Case study Section 6.2: the 16% Apache admission-control fix.

"We implemented admission control by limiting the size of the queues ...
This change improved performance by 16% when the server underwent the
same request rate stress as the drop off point."
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.fixes import apply_admission_control
from repro.kernel.net.tcp import ListenSock


def test_case_study_apache_admission_control(benchmark, apache_case_study):
    cs = apache_case_study
    improvement = cs.improvement
    write_artifact(
        "case_study_apache.txt",
        "\n".join(
            [
                "Case study 6.2: Apache at drop-off, stock vs admission control",
                f"stock throughput: {cs.stock_throughput:10.1f} req/Mcycle",
                f"fixed throughput: {cs.fixed_throughput:10.1f} req/Mcycle",
                f"improvement:      {improvement * 100:9.1f}%  (paper: 16%)",
                f"stock mean accept wait: {cs.stock_workload.mean_accept_wait():12.0f} cycles",
                f"fixed mean accept wait: {cs.fixed_workload.mean_accept_wait():12.0f} cycles",
                f"stock drops: {cs.stock_workload.total_dropped()}",
                f"fixed drops: {cs.fixed_workload.total_dropped()}",
            ]
        ),
    )
    # Paper: +16%.  Accept the same-shape band around it.
    assert 0.05 < improvement < 0.35, f"improvement {improvement:.2%} out of band"

    # The mechanism: bounded queues keep accepted sockets warm.
    assert (
        cs.fixed_workload.mean_accept_wait()
        < 0.5 * cs.stock_workload.mean_accept_wait()
    )
    # Admission control sheds load at SYN time instead of accepting cold.
    assert cs.fixed_workload.total_dropped() > 0

    # The fix itself is trivially cheap to apply (a backlog rewrite).
    listeners = list(cs.fixed_workload.listeners.values())
    benchmark(apply_admission_control, listeners, 8)
    assert all(l.backlog == 8 for l in listeners)


def test_case_study_apache_queue_depths(apache_case_study):
    for listener in apache_case_study.fixed_workload.listeners.values():
        assert isinstance(listener, ListenSock)
        assert len(listener.accept_queue) <= 8
