"""Case study Section 6.1: the 57% memcached fix.

"Implementing a local queue selection function increased performance by
57% and eliminated all lock contention."  The reproduced claim is the
shape: a large double-digit throughput win from keeping transmits
core-local, with the cross-core symptoms (alien frees, qdisc contention)
going to zero.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.fixes import install_local_queue_selection
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel
from repro.workloads import MemcachedWorkload


def test_case_study_memcached_fix(benchmark, memcached_case_study):
    cs = memcached_case_study
    improvement = cs.improvement
    write_artifact(
        "case_study_memcached.txt",
        "\n".join(
            [
                "Case study 6.1: memcached, stock vs local TX-queue selection",
                f"stock throughput:  {cs.stock_throughput:10.1f} req/Mcycle",
                f"fixed throughput:  {cs.fixed_throughput:10.1f} req/Mcycle",
                f"improvement:       {improvement * 100:9.1f}%  (paper: 57%)",
                f"stock alien frees: {cs.stock_workload.stack.skbuff_cache.alien_frees}",
                f"fixed alien frees: {cs.fixed_workload.stack.skbuff_cache.alien_frees}",
            ]
        ),
    )
    # Paper: +57%.  Accept the same-shape band around it.
    assert 0.35 < improvement < 0.85, f"improvement {improvement:.2%} out of band"

    # The fix works by eliminating cross-core packet movement entirely.
    assert cs.fixed_workload.stack.skbuff_cache.alien_frees == 0
    assert cs.stock_workload.stack.skbuff_cache.alien_frees > 100

    # Benchmark the fix's queue-selection hook itself: it must be cheap
    # (a handful of instructions) since it runs per packet.
    kernel = Kernel(MachineConfig(ncores=4, seed=5))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    install_local_queue_selection(workload.stack.dev)
    dev = workload.stack.dev
    skb_holder = []

    def make_skb():
        from repro.kernel.net.skbuff import alloc_skb

        skb_holder.append((yield from alloc_skb(workload.stack, 0, 64)))

    kernel.spawn("mk", 0, make_skb())
    kernel.run()
    skb = skb_holder[0]

    def run_select_queue():
        gen = dev.select_queue(workload.stack, 0, dev, skb)
        steps = 0
        try:
            while True:
                next(gen)
                steps += 1
        except StopIteration as stop:
            return steps, stop.value

    steps, queue = benchmark(run_select_queue)
    assert queue == 0  # local queue for cpu 0
    assert steps <= 4  # a few instructions, as a driver hook must be


def test_case_study_per_core_scaling(memcached_case_study):
    # The fixed kernel serves requests evenly across all 16 cores.
    per_core = memcached_case_study.fixed_workload.counter.per_core
    counts = [n for n in per_core.values()]
    assert min(counts) > 0
    assert max(counts) < 2.5 * min(counts)
