"""Table 6.5: working set + data profile for Apache past the drop-off.

Paper's contrast with Table 6.4: tcp_sock's working set explodes from
1.11MB to 11.56MB (its miss share nearly doubles to 21.47%), the total
working set more than doubles, and the data flow view shows the time from
allocation to deallocation of tcp_socks growing sharply -- the accept
queue is the culprit.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.util.stats import mean


def tcp_sock_lifetimes(session):
    return [
        e.free_cycle - e.alloc_cycle
        for e in session.dprof.address_set.by_type().get("tcp_sock", [])
        if e.free_cycle is not None
    ]


def test_table_6_5_apache_dropoff_profile(
    benchmark, apache_peak_session, apache_dropoff_session
):
    drop = apache_dropoff_session
    profile = benchmark(drop.dprof.data_profile)
    write_artifact("table_6_5_apache_dropoff.txt", profile.render(8))

    peak_profile = apache_peak_session.dprof.data_profile()
    tcp_peak = peak_profile.row_for("tcp_sock")
    tcp_drop = profile.row_for("tcp_sock")

    # The headline: the tcp_sock working set explodes (paper: ~10x; our
    # "peak" operating point is itself slightly queued, so the ratio is
    # somewhat smaller but unmistakable).
    assert tcp_drop.working_set_bytes > 4 * tcp_peak.working_set_bytes

    # And tcp_sock stays at the head of the miss profile (paper: 21.47%;
    # it trades the top spot with the payload pool within seed noise).
    assert "tcp_sock" in [r.type_name for r in profile.top(2)]
    assert tcp_drop.miss_share > 0.15

    # Throughput at drop-off is below peak despite higher offered load.
    assert drop.throughput < apache_peak_session.throughput


def test_table_6_5_differential_lifetime_analysis(
    apache_peak_session, apache_dropoff_session
):
    # Section 6.2.1: "the time from allocation to deallocation of
    # tcp_sock objects increased significantly from the peak case to the
    # drop off case" -- DProf's differential analysis.
    peak_life = mean(tcp_sock_lifetimes(apache_peak_session))
    drop_life = mean(tcp_sock_lifetimes(apache_dropoff_session))
    assert drop_life > 3 * peak_life


def test_table_6_5_accept_latency_grows(
    apache_peak_session, apache_dropoff_session
):
    # The paper's mechanism: tcp_sock lines go cold while queued, so the
    # average access cost at accept time triples (50 -> 150 cycles).
    def mean_tcp_latency(session):
        samples = [
            s
            for s in session.dprof.sampler.samples
            if s.type_name == "tcp_sock"
        ]
        if not samples:
            return 0.0
        return mean(s.latency for s in samples)

    peak_latency = mean_tcp_latency(apache_peak_session)
    drop_latency = mean_tcp_latency(apache_dropoff_session)
    assert peak_latency > 0
    assert drop_latency > 1.5 * peak_latency
