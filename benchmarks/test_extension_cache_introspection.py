"""Extension ablation (Section 7): hardware cache-contents inspection.

The thesis: "DProf estimates working set sizes based on allocation,
memory access, and deallocation events.  Having hardware support for
examining the contents of CPU caches would greatly simplify this task,
and improve its precision."

The simulation can read its own caches, so this ablation measures the
precision gap directly: DProf's offline working-set estimate vs the
ground-truth per-type residency, on the memcached workload.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.dprof.extensions import CacheContentsInspector, estimation_error


def test_extension_cache_introspection(benchmark, memcached_session):
    session = memcached_session
    kernel = session.kernel
    inspector = CacheContentsInspector(kernel.machine, kernel.slab)
    snapshot = benchmark(inspector.snapshot)

    truth = dict(snapshot.per_type_lines)
    assert truth, "caches should not be empty after the run"

    # Ground truth agrees with the data profile on what matters: the
    # packet types really are resident in quantity.
    top_types = [name for name, _count in snapshot.top(6)]
    assert "size-1024" in top_types

    # DProf's estimate (offline simulation over the address set) gets the
    # *ranking* of major dynamic types right...
    ws = session.dprof.working_set()
    est = {row.type_name: row.mean_resident_lines for row in ws.rows}
    dynamic = [
        name
        for name in ("size-1024", "skbuff", "udp_sock")
        if truth.get(name, 0) > 0 and est.get(name, 0) > 0
    ]
    assert len(dynamic) >= 2
    truth_ranked = sorted(dynamic, key=lambda n: truth[n], reverse=True)
    est_ranked = sorted(dynamic, key=lambda n: est[n], reverse=True)
    # The estimate identifies the same heavy hitters (top-2 sets agree);
    # exact rank order between close types is within estimation noise.
    assert set(truth_ranked[:2]) == set(est_ranked[:2])

    # ...but with substantial per-type error -- the imprecision the paper
    # says hardware introspection would remove.
    errors = estimation_error(est, {k: float(v) for k, v in truth.items()})
    lines = [
        "Extension: cache-contents introspection (Section 7)",
        "",
        f"snapshot at cycle {snapshot.cycle:,}: "
        f"{sum(truth.values())} resolved lines, "
        f"{snapshot.unresolved_lines} unresolved",
        "",
        f"{'type':>16}  {'truth lines':>12}  {'DProf estimate':>14}  {'rel. error':>10}",
    ]
    for name, true_lines in snapshot.top(8):
        est_lines = est.get(name, 0.0)
        err = errors.get(name)
        lines.append(
            f"{name:>16}  {true_lines:>12}  {est_lines:>14.1f}  "
            f"{(f'{err:.0%}' if err is not None else '-'):>10}"
        )
    write_artifact("extension_cache_introspection.txt", "\n".join(lines))

    # The hardware snapshot is exact by construction; the estimate is
    # not.  Quantify that at least one major type is off by >10%.
    major_errors = [errors[n] for n in dynamic if n in errors]
    assert major_errors
    assert max(major_errors) > 0.10


def test_introspection_tracks_live_objects(memcached_session):
    kernel = memcached_session.kernel
    inspector = CacheContentsInspector(kernel.machine, kernel.slab)
    snap = inspector.snapshot()
    # Allocator bookkeeping is resident too -- the same types the data
    # profile surfaces (array_cache, slab).
    resident_types = set(dict(snap.top(None)).keys())
    assert "array_cache" in resident_types
