"""Table 6.4: working set + data profile for Apache at peak.

Paper's table: tcp_sock 1.11MB/11.00%, task_struct 1.19MB/21.37%,
net_device 128B/3.40% (bounce), size-1024 4.23MB/5.19%, skbuff
4.27MB/3.28% -- totalling 10.8MB and 44.24% of misses.  Shape claims: the
profile is headed by tcp_sock and task_struct rather than packet buffers,
only net_device bounces (TCP responses stay core-local), and the tcp_sock
working set is small at peak.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact

PAPER_TYPES = {"tcp_sock", "task_struct", "net_device", "size-1024", "skbuff"}


def test_table_6_4_apache_peak_profile(benchmark, apache_peak_session):
    session = apache_peak_session
    profile = benchmark(session.dprof.data_profile)
    write_artifact("table_6_4_apache_peak.txt", profile.render(8))

    names = {r.type_name for r in profile.rows}
    assert PAPER_TYPES <= names, f"missing: {PAPER_TYPES - names}"

    tcp = profile.row_for("tcp_sock")
    task = profile.row_for("task_struct")
    skbuff = profile.row_for("skbuff")

    # tcp_sock heads the profile and task_struct ranks among the top
    # types (paper: 11.00% and 21.37%) -- socket and scheduler state
    # outweigh the packet bookkeeping type.
    assert profile.rows[0].type_name == "tcp_sock"
    assert tcp.miss_share > skbuff.miss_share
    assert task.miss_share > 0.08
    names_top5 = [r.type_name for r in profile.top(5)]
    assert "task_struct" in names_top5

    # At peak, live tcp_socks are far below the backlog capacity (the
    # queues are shallow; paper: 1.11MB vs 11.56MB at drop-off).
    assert tcp.working_set_bytes < 0.3 * 1600 * 128 * 16

    # Only the shared device structure bounces; TCP responses are local.
    assert profile.row_for("net_device").bounce
    assert not tcp.bounce
    assert not profile.row_for("size-1024").bounce
    assert not skbuff.bounce


def test_table_6_4_no_drops_at_peak(apache_peak_session):
    # At peak the queues are occupied but bounded (the paper's peak held
    # ~45 sockets per core live); nothing is dropped, and waits sit an
    # order of magnitude below the drop-off case's ~2M cycles.
    assert apache_peak_session.workload.total_dropped() == 0
    assert apache_peak_session.workload.mean_accept_wait() < 500_000
