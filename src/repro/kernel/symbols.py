"""Symbol table: function names <-> fake instruction pointers.

Profilers work in instruction pointers; programmers think in function
names.  Real DProf resolves ips through the kernel's symbol table; here we
invert the construction: every simulated kernel function reserves an ip
region, and each distinct access site inside it interns a stable ip.
Stable ips are essential -- DProf aggregates access samples and object
access histories by (type, offset, ip), and merges execution paths by ip
sequence, so the same source line must produce the same ip on every run.
"""

from __future__ import annotations

from repro.errors import ResolveError

#: Size of the ip region reserved per function ("function length").
FUNCTION_REGION = 4096

#: Base of the fake kernel text segment.
TEXT_BASE = 0xFFFF_0000_0000


class SymbolTable:
    """Interns (function, site) pairs as stable instruction pointers."""

    def __init__(self) -> None:
        self._fn_base: dict[str, int] = {}
        self._fn_sites: dict[str, dict[str, int]] = {}
        self._ip_to_sym: dict[int, tuple[str, str]] = {}
        self._next_base = TEXT_BASE

    def ip_for(self, fn: str, site: str) -> int:
        """Return the stable ip of access site *site* inside function *fn*."""
        base = self._fn_base.get(fn)
        if base is None:
            base = self._next_base
            self._fn_base[fn] = base
            self._fn_sites[fn] = {}
            self._next_base += FUNCTION_REGION
        sites = self._fn_sites[fn]
        offset = sites.get(site)
        if offset is None:
            offset = len(sites) + 1
            if offset >= FUNCTION_REGION:
                raise ResolveError(f"function {fn} exceeded {FUNCTION_REGION} sites")
            sites[site] = offset
        ip = base + offset
        self._ip_to_sym[ip] = (fn, site)
        return ip

    def resolve(self, ip: int) -> str:
        """Function name containing *ip* (what OProfile prints)."""
        sym = self._ip_to_sym.get(ip)
        if sym is None:
            raise ResolveError(f"ip {ip:#x} is not a known symbol")
        return sym[0]

    def resolve_site(self, ip: int) -> tuple[str, str]:
        """(function, site) pair for *ip*."""
        sym = self._ip_to_sym.get(ip)
        if sym is None:
            raise ResolveError(f"ip {ip:#x} is not a known symbol")
        return sym

    def try_resolve(self, ip: int) -> str | None:
        """Like :meth:`resolve` but returns None for unknown ips."""
        sym = self._ip_to_sym.get(ip)
        return sym[0] if sym else None

    def functions(self) -> list[str]:
        """Every function that has interned at least one site."""
        return list(self._fn_base.keys())
