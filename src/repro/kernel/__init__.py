"""Simulated Linux-like kernel substrate.

DProf profiles the *kernel's* data structures: the paper's case studies are
about skbuffs, tcp_socks, SLAB bookkeeping, and qdisc queues inside Linux.
This package provides a small but faithful kernel substrate for the
simulated machine:

- :mod:`repro.kernel.symbols` -- function-name <-> instruction-pointer map.
- :mod:`repro.kernel.layout` -- C-style struct layout (types, fields,
  offsets), the vocabulary DProf attributes misses to.
- :mod:`repro.kernel.kenv` -- the instruction-emission DSL kernel code is
  written in.
- :mod:`repro.kernel.slab` -- typed SLAB allocator with per-core array
  caches and alien-cache handling, plus the address-to-type metadata DProf's
  resolver consumes.
- :mod:`repro.kernel.locks` / :mod:`repro.kernel.lockstat` -- spinlocks
  with lock-statistics collection (the paper's lock-stat comparison tool).
- :mod:`repro.kernel.net` -- skbuff / qdisc / NIC / UDP / TCP stack used by
  the memcached and Apache case studies.
"""

from repro.kernel.kernel import Kernel
from repro.kernel.layout import StructType
from repro.kernel.symbols import SymbolTable

__all__ = ["Kernel", "StructType", "SymbolTable"]
