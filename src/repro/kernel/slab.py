"""Typed SLAB allocator with per-core array caches and NUMA-node lists.

This mirrors the Linux SLAB design the paper instruments:

- one :class:`KmemCache` per object type, carved into page-backed slabs;
- a per-core ``array_cache`` of free objects for lock-free fast paths;
- per-NUMA-node shared lists, each protected by its own list lock taken on
  refill (``cache_alloc_refill``) and flush (``cache_flusharray``) -- the
  paper's 16-core AMD testbed had four nodes of four cores;
- an *alien* path for objects freed on a different **node** than allocated
  them: remote frees buffer in per-node alien arrays and drain in batches
  (``__drain_alien_cache``) under the home node's list lock.  This is
  precisely the cross-core behaviour the memcached case study exposes.

Crucially for DProf, the allocator's own bookkeeping is made of real typed
objects: every ``array_cache``, every per-slab ``slab`` descriptor, and
every node's ``kmem_list3`` is a :class:`~repro.kernel.layout.KObject`
with an address, so allocator-induced cache misses show up in the data
profile attributed to the ``array_cache`` and ``slab`` types -- exactly as
in the paper's Table 6.1.

The allocator also implements DProf's two integration points (Section 5):
it records every allocation and free (the *address set*), and it lets a
profiler reserve the next allocation of a type (used to arm debug
registers on a fresh object for access-history collection).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import AllocationError, ResolveError
from repro.hw.addr import PAGE_SIZE
from repro.kernel.kenv import KernelEnv
from repro.kernel.layout import KObject, StructType
from repro.kernel.locks import SpinLock
from repro.kernel.lockstat import LockStatRegistry

#: Free objects kept per core before flushing back to the shared lists.
ARRAY_CACHE_LIMIT = 96

#: Objects moved between the shared lists and an array cache at once.
BATCH_COUNT = 64

#: Remote frees buffered per alien array before draining under the home
#: node's list lock (Linux's alien array_cache batching).
ALIEN_BATCH = 32

#: Cores per NUMA node (the paper's testbed: 16 cores = 4 nodes of 4).
CORES_PER_NODE = 4

#: Layout of the per-core free-object cache (a real 128-byte object).
ARRAY_CACHE_TYPE = StructType(
    "array_cache",
    [("avail", 4), ("limit", 4), ("batchcount", 4), ("touched", 4), ("entries", 112)],
    object_size=128,
    description="SLAB per-core bookkeeping structure",
)

#: Layout of the per-slab descriptor (one per slab of objects).
SLAB_TYPE = StructType(
    "slab",
    [("list_next", 8), ("list_prev", 8), ("s_mem", 8), ("inuse", 4), ("free", 4)],
    object_size=64,
    description="SLAB bookkeeping structure",
)

#: Layout of a node's shared-list head holding the list lock.
KMEM_LIST_TYPE = StructType(
    "kmem_list3",
    [("list_lock", 4), ("free_objects", 4), ("slabs_partial", 8), ("slabs_free", 8)],
    object_size=64,
    description="SLAB per-node shared lists",
)

AllocListener = Callable[[KObject, int, int], None]
FreeListener = Callable[[KObject, int, int], None]


@dataclass
class Slab:
    """One contiguous slab of objects plus its descriptor object."""

    base: int
    cache: "KmemCache"
    descriptor: KObject
    objects: list[KObject]

    @property
    def end(self) -> int:
        """Address one past the slab's object area."""
        return self.base + len(self.objects) * self.cache.obj_size


class KmemCache:
    """A typed object cache (one per kernel data type)."""

    def __init__(self, system: "SlabSystem", otype: StructType) -> None:
        self.system = system
        self.otype = otype
        self.name = otype.name
        self.obj_size = otype.size
        self.objs_per_slab = max(1, PAGE_SIZE // self.obj_size)
        self.slabs: list[Slab] = []
        self.total_allocs = 0
        self.total_frees = 0
        self.alien_frees = 0
        nodes = system.num_nodes
        # Per-node shared lists, locks, and alien arrays.  Every node lock
        # shares the "SLAB cache lock" class name for lock-stat purposes.
        self.shared_free: list[deque[KObject]] = [deque() for _ in range(nodes)]
        self.list3: list[KObject] = []
        self.list_lock: list[SpinLock] = []
        self.alien_caches: list[KObject] = []
        self.alien_pending: list[list[KObject]] = []
        for node in range(nodes):
            list3 = system.new_static(KMEM_LIST_TYPE, f"kmem_list3.{self.name}.{node}")
            self.list3.append(list3)
            self.list_lock.append(
                SpinLock(
                    f"SLAB cache lock ({self.name}/{node})",
                    list3,
                    "list_lock",
                    system.lockstat,
                )
            )
            alien = system.new_static(
                ARRAY_CACHE_TYPE, f"alien_cache.{self.name}.{node}"
            )
            self.alien_caches.append(alien)
            self.alien_pending.append([])
        # Per-core fast-path caches; each is backed by a real array_cache
        # object so its memory traffic is attributable.
        self.array_caches: list[KObject] = []
        self.local_free: list[deque[KObject]] = []
        for cpu in range(system.ncores):
            ac = system.new_static(ARRAY_CACHE_TYPE, f"array_cache.{self.name}.{cpu}")
            self.array_caches.append(ac)
            self.local_free.append(deque())

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------

    #: Distinct slab colours (successive slabs start at staggered line
    #: offsets, spreading objects over associativity sets -- the real
    #: SLAB's cache colouring).  One full page of colours makes
    #: consecutive slabs cover every associativity set.
    NUM_COLOURS = 64

    def _grow(self, node: int) -> None:
        """Add one slab of fresh objects to a node's shared list."""
        size = self.objs_per_slab * self.obj_size
        colour = (len(self.slabs) % self.NUM_COLOURS) * 64
        base = self.system.env.machine.address_space.alloc_region(
            size + colour, align=PAGE_SIZE, label=f"slab.{self.name}"
        ) + colour
        descriptor = self.system.new_static(
            SLAB_TYPE, f"slab.{self.name}.{len(self.slabs)}"
        )
        objects = [
            KObject(self.otype, base + i * self.obj_size)
            for i in range(self.objs_per_slab)
        ]
        slab = Slab(base=base, cache=self, descriptor=descriptor, objects=objects)
        self.slabs.append(slab)
        self.system.register_slab(slab)
        self.shared_free[node].extend(objects)

    # ------------------------------------------------------------------
    # Allocation / free paths (kernel generators)
    # ------------------------------------------------------------------

    def alloc(self, cpu: int) -> Iterator:
        """Allocate one object on *cpu*; ``obj = yield from cache.alloc(cpu)``."""
        env = self.system.env
        fn = "kmem_cache_alloc_node"
        ac = self.array_caches[cpu]
        free = self.local_free[cpu]
        yield env.read(fn, ac, "avail")
        # Re-check after each refill: another thread on this core may have
        # consumed the refilled batch between our yields.
        while not free:
            yield from self._refill(cpu)
        # Fast path: pop from the per-core cache.
        obj = free.pop()
        slot = len(free) % 14
        yield env.read_range(fn, ac, 16 + slot * 8, 8)
        yield env.write(fn, ac, "avail")
        obj.alive = True
        obj.home_cpu = cpu
        obj.cookie += 1
        obj.alloc_cycle = env.cycle(cpu)
        self.total_allocs += 1
        self.system.notify_alloc(obj, cpu, obj.alloc_cycle)
        return obj

    def _refill(self, cpu: int) -> Iterator:
        """``cache_alloc_refill``: pull a batch under the node's list lock."""
        env = self.system.env
        fn = "cache_alloc_refill"
        node = self.system.node_of(cpu)
        lock = self.list_lock[node]
        list3 = self.list3[node]
        shared = self.shared_free[node]
        yield from lock.acquire(env, fn, cpu)
        yield env.read(fn, list3, "free_objects")
        if len(shared) < BATCH_COUNT:
            self._grow(node)
        moved = 0
        free = self.local_free[cpu]
        touched_slabs: set[int] = set()
        while moved < BATCH_COUNT and shared:
            obj = shared.popleft()
            touched_slabs.add(self.system.slab_of(obj.base).base)
            free.append(obj)
            moved += 1
        # Bookkeeping traffic attributed to the ``slab`` type: one
        # read/update per distinct slab descriptor in the batch.
        for slab_base in sorted(touched_slabs):
            slab = self.system.slab_of(slab_base)
            yield env.read(fn, slab.descriptor, "free")
            yield env.write(fn, slab.descriptor, "inuse")
        yield env.write(fn, list3, "free_objects")
        yield from lock.release(env, fn, cpu)

    def free(self, cpu: int, obj: KObject, fn: str = "kmem_cache_free") -> Iterator:
        """Free *obj* on *cpu*; takes the alien path for cross-node frees."""
        env = self.system.env
        if not obj.alive:
            raise AllocationError(f"double free of {obj!r}")
        obj.alive = False
        obj.free_cycle = env.cycle(cpu)
        self.total_frees += 1
        self.system.notify_free(obj, cpu, obj.free_cycle)
        if self.system.node_of(obj.home_cpu) != self.system.node_of(cpu):
            yield from self._alien_free(cpu, obj)
            return
        ac = self.array_caches[cpu]
        free = self.local_free[cpu]
        yield env.read(fn, ac, "avail")
        slot = len(free) % 14
        yield env.write_range(fn, ac, 16 + slot * 8, 8)
        yield env.write(fn, ac, "avail")
        free.append(obj)
        if len(free) > ARRAY_CACHE_LIMIT:
            yield from self._flusharray(cpu)

    def _flusharray(self, cpu: int) -> Iterator:
        """``cache_flusharray``: push a batch back under the node's lock."""
        env = self.system.env
        fn = "cache_flusharray"
        node = self.system.node_of(cpu)
        lock = self.list_lock[node]
        yield from lock.acquire(env, fn, cpu)
        free = self.local_free[cpu]
        # Bound by the live deque, not a pre-computed count: same-core
        # threads may allocate from it between our yields.
        moved = 0
        touched_slabs: set[int] = set()
        while free and moved < BATCH_COUNT:
            moved += 1
            obj = free.popleft()
            touched_slabs.add(self.system.slab_of(obj.base).base)
            self.shared_free[node].append(obj)
        for slab_base in sorted(touched_slabs):
            slab = self.system.slab_of(slab_base)
            yield env.write(fn, slab.descriptor, "inuse")
            yield env.write(fn, slab.descriptor, "free")
        yield env.write(fn, self.list3[node], "free_objects")
        yield from lock.release(env, fn, cpu)

    def _alien_free(self, cpu: int, obj: KObject) -> Iterator:
        """Cross-node free: buffer in the home node's alien array.

        Each remote free writes into the home node's alien array (cheap,
        but it bounces that ``array_cache`` line between nodes -- the
        bounce Table 6.1 shows); every :data:`ALIEN_BATCH` frees,
        ``__drain_alien_cache`` returns the batch to the home node's
        shared list under its list lock -- the "SLAB cache lock"
        contention with ``__drain_alien_cache`` in its caller list
        (Table 6.2).
        """
        env = self.system.env
        fn = "kmem_cache_free"
        self.alien_frees += 1
        home_node = self.system.node_of(obj.home_cpu)
        alien = self.alien_caches[home_node]
        pending = self.alien_pending[home_node]
        yield env.read(fn, alien, "avail")
        slot = len(pending) % 14
        yield env.write_range(fn, alien, 16 + slot * 8, 8)
        yield env.write(fn, alien, "avail")
        pending.append(obj)
        if len(pending) < ALIEN_BATCH:
            return
        drain_fn = "__drain_alien_cache"
        lock = self.list_lock[home_node]
        yield from lock.acquire(env, drain_fn, cpu)
        touched_slabs: set[int] = set()
        while pending:
            drained = pending.pop()
            touched_slabs.add(self.system.slab_of(drained.base).base)
            self.shared_free[home_node].append(drained)
        for slab_base in sorted(touched_slabs):
            slab = self.system.slab_of(slab_base)
            yield env.write(drain_fn, slab.descriptor, "inuse")
        yield env.write(drain_fn, alien, "touched")
        yield env.write(drain_fn, self.list3[home_node], "free_objects")
        yield from lock.release(env, drain_fn, cpu)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def live_objects(self) -> int:
        """Objects currently allocated (alive)."""
        return self.total_allocs - self.total_frees

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KmemCache({self.name}, {self.obj_size}B, live={self.live_objects()})"


class SlabSystem:
    """All kmem caches plus the address-to-object index DProf resolves with."""

    def __init__(
        self,
        env: KernelEnv,
        lockstat: LockStatRegistry,
        cores_per_node: int = CORES_PER_NODE,
    ) -> None:
        self.env = env
        self.lockstat = lockstat
        self.ncores = env.machine.config.ncores
        self.cores_per_node = max(1, cores_per_node)
        self.num_nodes = max(1, (self.ncores + self.cores_per_node - 1) // self.cores_per_node)
        self.caches: dict[str, KmemCache] = {}
        self._page_map: dict[int, Slab] = {}
        self._static_pages: dict[int, list[KObject]] = {}
        self._static_by_type: dict[str, list[KObject]] = {}
        self._alloc_listeners: list[AllocListener] = []
        self._free_listeners: list[FreeListener] = []
        self._reservations: dict[str, deque[AllocListener]] = {}

    def node_of(self, cpu: int) -> int:
        """NUMA node containing *cpu*."""
        return cpu // self.cores_per_node

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------

    def create_cache(self, otype: StructType) -> KmemCache:
        """Create (or return the existing) cache for a struct type."""
        cache = self.caches.get(otype.name)
        if cache is None:
            cache = KmemCache(self, otype)
            self.caches[otype.name] = cache
        return cache

    def cache(self, name: str) -> KmemCache:
        """Look up a cache by type name."""
        try:
            return self.caches[name]
        except KeyError:
            raise AllocationError(f"no kmem cache named {name!r}") from None

    def kfree(self, cpu: int, obj: KObject) -> Iterator:
        """Generic free: route *obj* back to its owning cache."""
        cache = self.caches.get(obj.otype.name)
        if cache is None:
            raise AllocationError(f"{obj!r} was not slab-allocated")
        yield from cache.free(cpu, obj, fn="kfree")

    # ------------------------------------------------------------------
    # Static objects (allocator bookkeeping, devices, ...)
    # ------------------------------------------------------------------

    def new_static(self, otype: StructType, label: str) -> KObject:
        """Allocate a statically-lived typed object outside any slab."""
        base = self.env.machine.address_space.alloc_region(
            otype.size, align=64, label=label
        )
        obj = KObject(otype, base)
        obj.alive = True
        obj.home_cpu = 0
        self.register_static(obj)
        return obj

    def register_static(self, obj: KObject) -> None:
        """Make *obj* resolvable by address."""
        for page in range(obj.base // PAGE_SIZE, (obj.end - 1) // PAGE_SIZE + 1):
            self._static_pages.setdefault(page, []).append(obj)
        self._static_by_type.setdefault(obj.otype.name, []).append(obj)

    def static_objects_by_type(self) -> dict[str, list[KObject]]:
        """Every registered static object, grouped by type name."""
        return dict(self._static_by_type)

    def static_bytes(self, type_name: str) -> int:
        """Total footprint of static objects of one type.

        This is what the thesis reports as the "working set size" of
        never-freed types like ``net_device`` (128B, one instance) and
        ``slab`` (megabytes: one descriptor per slab).
        """
        return sum(o.otype.size for o in self._static_by_type.get(type_name, ()))

    def register_slab(self, slab: Slab) -> None:
        """Index a new slab's pages for address resolution."""
        for page in range(slab.base // PAGE_SIZE, (slab.end - 1) // PAGE_SIZE + 1):
            self._page_map[page] = slab

    # ------------------------------------------------------------------
    # Address resolution (DProf's Section 5.2)
    # ------------------------------------------------------------------

    def slab_of(self, addr: int) -> Slab:
        """The slab containing *addr* (must be a slab address)."""
        slab = self._page_map.get(addr // PAGE_SIZE)
        if slab is None or not slab.base <= addr < slab.end:
            raise ResolveError(f"address {addr:#x} is not in any slab")
        return slab

    def find_object(self, addr: int) -> KObject | None:
        """Resolve *addr* to the typed object containing it, if any.

        Works for both slab-allocated and static objects; returns the
        object even when it is currently free (the type of recycled memory
        is still meaningful to DProf).
        """
        page = addr // PAGE_SIZE
        slab = self._page_map.get(page)
        if slab is not None and slab.base <= addr < slab.end:
            index = (addr - slab.base) // slab.cache.obj_size
            return slab.objects[index]
        for obj in self._static_pages.get(page, ()):
            if obj.base <= addr < obj.end:
                return obj
        return None

    # ------------------------------------------------------------------
    # DProf integration: address-set events and reservations
    # ------------------------------------------------------------------

    def add_alloc_listener(self, listener: AllocListener) -> None:
        """Observe every allocation (obj, cpu, cycle)."""
        self._alloc_listeners.append(listener)

    def remove_alloc_listener(self, listener: AllocListener) -> None:
        """Stop observing allocations."""
        self._alloc_listeners.remove(listener)

    def add_free_listener(self, listener: FreeListener) -> None:
        """Observe every free (obj, cpu, cycle)."""
        self._free_listeners.append(listener)

    def remove_free_listener(self, listener: FreeListener) -> None:
        """Stop observing frees."""
        self._free_listeners.remove(listener)

    def reserve_next(self, type_name: str, callback: AllocListener) -> None:
        """Deliver the *next* allocation of *type_name* to *callback*.

        This is DProf's hook for access-history collection: it waits for a
        fresh object of the chosen type, then arms debug registers on it
        (Section 5.3).
        """
        self._reservations.setdefault(type_name, deque()).append(callback)

    def cancel_reservations(self, type_name: str | None = None) -> None:
        """Drop pending reservations (all types when *type_name* is None)."""
        if type_name is None:
            self._reservations.clear()
        else:
            self._reservations.pop(type_name, None)

    def notify_alloc(self, obj: KObject, cpu: int, cycle: int) -> None:
        """Fan an allocation event out to listeners and reservations."""
        for listener in self._alloc_listeners:
            listener(obj, cpu, cycle)
        pending = self._reservations.get(obj.otype.name)
        if pending:
            callback = pending.popleft()
            callback(obj, cpu, cycle)

    def notify_free(self, obj: KObject, cpu: int, cycle: int) -> None:
        """Fan a free event out to listeners."""
        for listener in self._free_listeners:
            listener(obj, cpu, cycle)
