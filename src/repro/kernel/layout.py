"""C-style struct layout: the type/offset vocabulary DProf reports in.

DProf assumes C-style data types "whose objects are contiguous in memory,
and whose fields are located at well-known offsets from the top-level
object's base address" (Section 5.2).  :class:`StructType` captures exactly
that: an ordered list of named fields with sizes, laid out sequentially
with natural alignment, optionally padded to a fixed object size (kernel
slab objects are padded -- an skbuff slab object is 256 bytes even if its
fields need less).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class Field:
    """One struct member: its name, byte offset, and size."""

    name: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        """Offset one past the field's last byte."""
        return self.offset + self.size


class StructType:
    """A named C-style struct: ordered fields at computed offsets."""

    def __init__(
        self,
        name: str,
        fields: list[tuple[str, int]],
        object_size: int | None = None,
        description: str = "",
    ) -> None:
        self.name = name
        self.description = description
        self.fields: dict[str, Field] = {}
        self._ordered: list[Field] = []
        offset = 0
        for fname, fsize in fields:
            if fsize <= 0:
                raise ConfigError(f"{name}.{fname}: field size must be positive")
            if fname in self.fields:
                raise ConfigError(f"{name}: duplicate field {fname}")
            # Natural alignment up to 8 bytes, like a C compiler would.
            align = min(8, fsize) if fsize in (1, 2, 4, 8) else 8
            offset = (offset + align - 1) // align * align
            field = Field(fname, offset, fsize)
            self.fields[fname] = field
            self._ordered.append(field)
            offset += fsize
        self.size = object_size if object_size is not None else offset
        if self.size < offset:
            raise ConfigError(
                f"{name}: object_size {object_size} smaller than fields ({offset})"
            )

    def field(self, name: str) -> Field:
        """Look up a field by name."""
        try:
            return self.fields[name]
        except KeyError:
            raise ConfigError(f"{self.name} has no field {name!r}") from None

    def field_at(self, offset: int) -> Field | None:
        """The field covering byte *offset*, or None for padding bytes."""
        for field in self._ordered:
            if field.offset <= offset < field.end:
                return field
        return None

    def ordered_fields(self) -> list[Field]:
        """Fields in declaration order."""
        return list(self._ordered)

    def __repr__(self) -> str:
        return f"StructType({self.name}, {self.size}B, {len(self._ordered)} fields)"


class KObject:
    """A live (or recycled) kernel object: a typed region of memory.

    Created by the slab allocator.  ``home_cpu`` is the core that allocated
    the object -- freeing on a different core takes the SLAB alien path,
    one of the cache-bouncing behaviours the memcached case study exposes.
    """

    __slots__ = ("otype", "base", "home_cpu", "alive", "alloc_cycle", "free_cycle", "cookie")

    def __init__(self, otype: StructType, base: int) -> None:
        self.otype = otype
        self.base = base
        self.home_cpu = -1
        self.alive = False
        self.alloc_cycle = 0
        self.free_cycle = 0
        #: Incremented on every reallocation so stale references are
        #: detectable (an address may be recycled to a new logical object).
        self.cookie = 0

    def field_addr(self, name: str) -> tuple[int, int]:
        """(address, size) of a named field of this object."""
        field = self.otype.field(name)
        return (self.base + field.offset, field.size)

    def offset_addr(self, offset: int, size: int) -> tuple[int, int]:
        """(address, size) of a raw [offset, offset+size) range."""
        if offset < 0 or offset + size > self.otype.size:
            raise ConfigError(
                f"range [{offset}, {offset + size}) outside {self.otype.name} "
                f"({self.otype.size}B)"
            )
        return (self.base + offset, size)

    @property
    def end(self) -> int:
        """Address one past the object's last byte."""
        return self.base + self.otype.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.alive else "free"
        return f"KObject({self.otype.name}@{self.base:#x}, {state})"
