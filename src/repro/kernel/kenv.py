"""The instruction-emission DSL simulated kernel code is written in.

Kernel functions are Python generators that yield instructions; the
machine executes each yielded instruction against the cache hierarchy.
:class:`KernelEnv` builds those instructions: it assigns every distinct
access site a stable instruction pointer (via the symbol table) so that
profilers see consistent code addresses, and it resolves object fields to
physical addresses through the struct layout.

Example kernel function::

    def skb_put(env, cpu, skb, length):
        fn = "skb_put"
        yield env.read(fn, skb, "tail")
        yield env.write(fn, skb, "tail")
        yield env.write(fn, skb, "len")

Code between ``yield`` statements runs atomically with respect to other
threads (the machine resumes a generator immediately after executing its
instruction, within the same scheduling quantum), which is what makes the
spinlock implementation in :mod:`repro.kernel.locks` sound.
"""

from __future__ import annotations

from repro.hw.events import Instr
from repro.hw.machine import Machine
from repro.kernel.layout import KObject
from repro.kernel.symbols import SymbolTable


class KernelEnv:
    """Builds instructions with stable ips for simulated kernel code."""

    #: Default cache-line stride for bulk copies: one access per line is
    #: what matters to the cache model, whatever the real copy width.
    BULK_STRIDE = 64

    def __init__(self, machine: Machine, symbols: SymbolTable) -> None:
        self.machine = machine
        self.symbols = symbols

    # ------------------------------------------------------------------
    # Field-level accesses (the common case)
    # ------------------------------------------------------------------

    def read(self, fn: str, obj: KObject, field: str, work: int = 1) -> Instr:
        """Load of one struct field."""
        addr, size = obj.field_addr(field)
        ip = self.symbols.ip_for(fn, f"R.{obj.otype.name}.{field}")
        return Instr("load", fn, ip, addr=addr, size=size, work=work)

    def write(self, fn: str, obj: KObject, field: str, work: int = 1) -> Instr:
        """Store to one struct field."""
        addr, size = obj.field_addr(field)
        ip = self.symbols.ip_for(fn, f"W.{obj.otype.name}.{field}")
        return Instr("store", fn, ip, addr=addr, size=size, work=work)

    def read_range(
        self, fn: str, obj: KObject, offset: int, size: int, work: int = 1
    ) -> Instr:
        """Load of a raw offset range of an object (untyped data)."""
        addr, _ = obj.offset_addr(offset, size)
        ip = self.symbols.ip_for(fn, f"R.{obj.otype.name}+{offset}")
        return Instr("load", fn, ip, addr=addr, size=size, work=work)

    def write_range(
        self, fn: str, obj: KObject, offset: int, size: int, work: int = 1
    ) -> Instr:
        """Store to a raw offset range of an object (untyped data)."""
        addr, _ = obj.offset_addr(offset, size)
        ip = self.symbols.ip_for(fn, f"W.{obj.otype.name}+{offset}")
        return Instr("store", fn, ip, addr=addr, size=size, work=work)

    # ------------------------------------------------------------------
    # Raw-address accesses (page tables, static data, lock words, ...)
    # ------------------------------------------------------------------

    def read_at(self, fn: str, site: str, addr: int, size: int, work: int = 1) -> Instr:
        """Load of an arbitrary address under an explicit site label."""
        return Instr(
            "load", fn, self.symbols.ip_for(fn, site), addr=addr, size=size, work=work
        )

    def write_at(self, fn: str, site: str, addr: int, size: int, work: int = 1) -> Instr:
        """Store to an arbitrary address under an explicit site label."""
        return Instr(
            "store", fn, self.symbols.ip_for(fn, site), addr=addr, size=size, work=work
        )

    # ------------------------------------------------------------------
    # Compute and bulk helpers
    # ------------------------------------------------------------------

    def work(self, fn: str, cycles: int, site: str = "compute") -> Instr:
        """Pure compute: burns *cycles* without touching memory."""
        return Instr("exec", fn, self.symbols.ip_for(fn, site), work=cycles)

    def bulk(
        self,
        fn: str,
        obj: KObject,
        offset: int,
        length: int,
        write: bool,
        stride: int | None = None,
        work_per_access: int = 1,
    ):
        """Yield one access per cache line over [offset, offset+length).

        Models memcpy-style bulk transfers (packet payload copies): the
        cache sees one access per line regardless of the copy width, so a
        line-stride walk reproduces the right miss behaviour at a fraction
        of the simulation cost.
        """
        stride = stride or self.BULK_STRIDE
        pos = offset
        end = offset + length
        while pos < end:
            size = min(8, end - pos)
            if write:
                yield self.write_range(fn, obj, pos, size, work=work_per_access)
            else:
                yield self.read_range(fn, obj, pos, size, work=work_per_access)
            pos += stride

    # ------------------------------------------------------------------
    # Clock access
    # ------------------------------------------------------------------

    def cycle(self, cpu: int) -> int:
        """Current cycle count (RDTSC) of core *cpu*."""
        return self.machine.cores[cpu].cycle
