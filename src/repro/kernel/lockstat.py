"""Lock statistics collection (the kernel side of Linux's lock-stat).

The paper compares DProf against lock-stat, which reports "for all Linux
kernel locks, how long each lock is held, the wait time to acquire the
lock, and the functions that acquire and release the lock" (Section 6).
The spinlock implementation feeds this registry; the report tool in
:mod:`repro.baselines.lockstat` formats it like Tables 6.2 and 6.6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.stats import Histogram


@dataclass
class LockStat:
    """Accumulated statistics for one named lock."""

    name: str
    acquisitions: int = 0
    contentions: int = 0
    wait_cycles: int = 0
    hold_cycles: int = 0
    acquirer_functions: Histogram = field(default_factory=Histogram)

    @property
    def mean_wait(self) -> float:
        """Average cycles spent waiting per acquisition."""
        if self.acquisitions == 0:
            return 0.0
        return self.wait_cycles / self.acquisitions

    @property
    def contention_rate(self) -> float:
        """Fraction of acquisitions that found the lock held."""
        if self.acquisitions == 0:
            return 0.0
        return self.contentions / self.acquisitions


class LockStatRegistry:
    """Machine-wide lock statistics, keyed by lock name."""

    def __init__(self) -> None:
        self._stats: dict[str, LockStat] = {}
        self.enabled = True

    def stat(self, name: str) -> LockStat:
        """Fetch (creating if needed) the statistics row for a lock."""
        st = self._stats.get(name)
        if st is None:
            st = LockStat(name)
            self._stats[name] = st
        return st

    def record_acquire(self, name: str, fn: str, wait: int, contended: bool) -> None:
        """Record one successful acquisition from function *fn*."""
        if not self.enabled:
            return
        st = self.stat(name)
        st.acquisitions += 1
        st.wait_cycles += wait
        if contended:
            st.contentions += 1
        st.acquirer_functions.add(fn)

    def record_release(self, name: str, fn: str, hold: int) -> None:
        """Record the hold time of one critical section."""
        if not self.enabled:
            return
        st = self.stat(name)
        st.hold_cycles += hold
        st.acquirer_functions.add(fn)

    def all_stats(self) -> list[LockStat]:
        """Every lock's row, sorted by descending total wait time."""
        return sorted(
            self._stats.values(), key=lambda s: s.wait_cycles, reverse=True
        )

    def reset(self) -> None:
        """Forget everything (profiling run boundary)."""
        self._stats.clear()
