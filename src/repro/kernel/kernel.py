"""The Kernel facade: wires the substrate onto a simulated machine."""

from __future__ import annotations

from repro.hw.machine import Machine, MachineConfig
from repro.kernel.kenv import KernelEnv
from repro.kernel.lockstat import LockStatRegistry
from repro.kernel.slab import SlabSystem
from repro.kernel.symbols import SymbolTable


class Kernel:
    """Bundles machine + symbols + env + lock stats + slab allocator.

    Everything above this layer (the network stack, the workloads, the
    profilers) reaches the substrate through a ``Kernel`` instance::

        kernel = Kernel(MachineConfig(ncores=16))
        cache = kernel.slab.create_cache(SKBUFF_TYPE)
        kernel.machine.spawn("worker", 0, some_kernel_generator(kernel, 0))
        kernel.machine.run(until_cycle=1_000_000)
    """

    def __init__(self, config: MachineConfig | None = None, machine: Machine | None = None) -> None:
        self.machine = machine if machine is not None else Machine(config)
        self.symbols = SymbolTable()
        self.env = KernelEnv(self.machine, self.symbols)
        self.lockstat = LockStatRegistry()
        self.slab = SlabSystem(self.env, self.lockstat)

    @property
    def ncores(self) -> int:
        """Number of cores on the underlying machine."""
        return self.machine.config.ncores

    def spawn(self, name: str, cpu: int, body):
        """Spawn a kernel thread pinned to *cpu*."""
        return self.machine.spawn(name, cpu, body)

    def run(self, **kwargs) -> None:
        """Run the machine (see :meth:`repro.hw.machine.Machine.run`)."""
        self.machine.run(**kwargs)

    def elapsed_cycles(self) -> int:
        """Wall-clock proxy for the run so far."""
        return self.machine.elapsed_cycles()
