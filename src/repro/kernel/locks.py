"""Spinlocks over simulated memory.

A lock word lives inside a real simulated object (usually a field of the
structure it protects), so lock operations generate genuine coherence
traffic: every contended test-and-set bounces the lock's cache line
between cores exactly the way the paper's Qdisc and SLAB locks did.

Usage from kernel code (generators)::

    yield from lock.acquire(env, "dev_queue_xmit", cpu)
    ... critical section ...
    yield from lock.release(env, "dev_queue_xmit", cpu)

Atomicity relies on the machine's scheduling contract: the code between a
yielded instruction and the next yield runs before any other thread's
instruction, so test-and-set outcomes are race-free (see
:mod:`repro.kernel.kenv`).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.kernel.kenv import KernelEnv
from repro.kernel.layout import KObject
from repro.kernel.lockstat import LockStatRegistry

#: Compute cycles burned per failed acquisition attempt (spin backoff).
SPIN_BACKOFF_CYCLES = 40


class SpinLock:
    """A test-and-set spinlock stored in a field of a kernel object."""

    def __init__(
        self,
        name: str,
        obj: KObject,
        lock_field: str,
        lockstat: LockStatRegistry | None = None,
    ) -> None:
        self.name = name
        self.obj = obj
        self.lock_field = lock_field
        self.lockstat = lockstat
        self.held = False
        self.holder_cpu: int | None = None
        self._acquired_at = 0
        self._acquired_fn = ""

    def acquire(self, env: KernelEnv, fn: str, cpu: int):
        """Spin until the lock is taken; generator to ``yield from``."""
        start = env.cycle(cpu)
        attempts = 0
        while True:
            # Atomic test-and-set: a store to the lock word (invalidates
            # other cores' copies, bouncing the line under contention).
            yield env.write(fn, self.obj, self.lock_field)
            if not self.held:
                self.held = True
                self.holder_cpu = cpu
                self._acquired_at = env.cycle(cpu)
                self._acquired_fn = fn
                if self.lockstat is not None:
                    self.lockstat.record_acquire(
                        self.name,
                        fn,
                        wait=self._acquired_at - start,
                        contended=attempts > 0,
                    )
                return
            attempts += 1
            # Spin politely: re-read the lock word, then back off.
            yield env.read(fn, self.obj, self.lock_field)
            yield env.work(fn, SPIN_BACKOFF_CYCLES, site="spin")

    def release(self, env: KernelEnv, fn: str, cpu: int):
        """Release the lock; generator to ``yield from``."""
        if not self.held:
            raise SimulationError(f"lock {self.name} released while free")
        if self.holder_cpu != cpu:
            raise SimulationError(
                f"lock {self.name} released by cpu {cpu}, held by {self.holder_cpu}"
            )
        if self.lockstat is not None:
            self.lockstat.record_release(
                self.name, fn, hold=env.cycle(cpu) - self._acquired_at
            )
        self.held = False
        self.holder_cpu = None
        yield env.write(fn, self.obj, self.lock_field)
