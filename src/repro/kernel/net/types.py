"""Struct layouts for the simulated network stack.

Object sizes match the ones the thesis reports (Tables 6.1, 6.7): skbuff
256B, skbuff_fclone 512B, packet payloads from the generic ``size-1024``
pool, udp_sock 1024B, tcp_sock 1600B, net_device and array_cache 128B.
Field lists are abridged to the members the simulated paths actually
touch; padding brings each object to its slab size.
"""

from __future__ import annotations

from repro.kernel.layout import StructType

#: Packet bookkeeping structure (struct sk_buff), 256 bytes.
SKBUFF_TYPE = StructType(
    "skbuff",
    [
        ("next", 8),
        ("prev", 8),
        ("sk", 8),
        ("dev", 8),
        ("len", 4),
        ("data_len", 4),
        ("queue_mapping", 4),
        ("hash", 4),
        ("cb", 48),
        ("data", 8),
        ("head", 8),
        ("tail", 8),
        ("end", 8),
        ("truesize", 4),
        ("users", 4),
        ("protocol", 2),
    ],
    object_size=256,
    description="packet bookkeeping structure",
)

#: Fast-clone skbuff pair used on the TCP transmit path, 512 bytes.
SKBUFF_FCLONE_TYPE = StructType(
    "skbuff_fclone",
    [
        ("next", 8),
        ("prev", 8),
        ("sk", 8),
        ("dev", 8),
        ("len", 4),
        ("data_len", 4),
        ("queue_mapping", 4),
        ("hash", 4),
        ("cb", 48),
        ("data", 8),
        ("head", 8),
        ("tail", 8),
        ("end", 8),
        ("truesize", 4),
        ("users", 4),
        ("protocol", 2),
        ("clone_ref", 4),
    ],
    object_size=512,
    description="packet bookkeeping structure (TCP fast clone)",
)

#: Generic 1 KiB allocation pool holding packet payloads.
SIZE_1024_TYPE = StructType(
    "size-1024",
    [("payload", 1024)],
    object_size=1024,
    description="packet payload",
)

#: Network device structure (abridged struct net_device), 128 bytes.
NET_DEVICE_TYPE = StructType(
    "net_device",
    [
        ("flags", 4),
        ("num_tx_queues", 4),
        ("tx_packets", 8),
        ("tx_bytes", 8),
        ("rx_packets", 8),
        ("rx_bytes", 8),
        ("tx_dropped", 8),
        ("qdisc", 8),
        ("features", 8),
        ("mtu", 4),
    ],
    object_size=128,
    description="network device structure",
)

#: Packet scheduler queue (struct Qdisc, pfifo_fast), 128 bytes.
QDISC_TYPE = StructType(
    "Qdisc",
    [
        ("qlen", 4),
        ("lock", 4),
        ("state", 4),
        ("flags", 4),
        ("head", 8),
        ("tail", 8),
        ("dev_queue", 8),
    ],
    object_size=128,
    description="packet transmit queue",
)

#: One hardware descriptor ring of the 16-queue NIC, 192 bytes.
IXGBE_RING_TYPE = StructType(
    "ixgbe_ring",
    [
        ("desc", 8),
        ("next_to_use", 4),
        ("next_to_clean", 4),
        ("count", 4),
        ("queue_index", 4),
        ("stats_packets", 8),
        ("stats_bytes", 8),
        ("tail_register", 4),
    ],
    object_size=192,
    description="NIC descriptor ring",
)

#: UDP socket (abridged struct udp_sock), 1024 bytes.
UDP_SOCK_TYPE = StructType(
    "udp_sock",
    [
        ("state", 4),
        ("sk_lock", 4),
        ("receive_queue_head", 8),
        ("receive_queue_tail", 8),
        ("rmem_alloc", 4),
        ("wmem_alloc", 4),
        ("sk_wq", 8),
        ("sk_data_ready", 8),
        ("sk_write_space", 8),
        ("port", 2),
        ("hash", 4),
        ("drops", 4),
    ],
    object_size=1024,
    description="UDP socket structure",
)

#: TCP socket (abridged struct tcp_sock), 1600 bytes.
TCP_SOCK_TYPE = StructType(
    "tcp_sock",
    [
        ("state", 4),
        ("sk_lock", 4),
        ("receive_queue_head", 8),
        ("receive_queue_tail", 8),
        ("write_queue_head", 8),
        ("write_queue_tail", 8),
        ("rmem_alloc", 4),
        ("wmem_alloc", 4),
        ("sk_wq", 8),
        ("accept_q_next", 8),
        ("rcv_nxt", 4),
        ("snd_nxt", 4),
        ("snd_una", 4),
        ("srtt", 4),
        ("window", 4),
        ("saddr", 4),
        ("daddr", 4),
        ("sport", 2),
        ("dport", 2),
        ("icsk_retransmits", 4),
        ("copied_seq", 4),
    ],
    object_size=1600,
    description="TCP socket structure",
)

#: Listening-socket state: accept queue head plus its lock, 256 bytes.
LISTEN_SOCK_TYPE = StructType(
    "inet_listen_sock",
    [
        ("state", 4),
        ("lock", 4),
        ("accept_head", 8),
        ("accept_tail", 8),
        ("qlen", 4),
        ("backlog", 4),
        ("port", 2),
    ],
    object_size=256,
    description="TCP listening socket",
)

#: Event-poll context (abridged struct eventpoll), 192 bytes.
EVENTPOLL_TYPE = StructType(
    "eventpoll",
    [
        ("lock", 4),
        ("mtx", 4),
        ("wq", 8),
        ("poll_wait", 8),
        ("rdllist_head", 8),
        ("rdllist_tail", 8),
        ("ovflist", 8),
    ],
    object_size=192,
    description="epoll instance",
)

#: Wait queue head used by socket and epoll wakeups, 64 bytes.
WAIT_QUEUE_TYPE = StructType(
    "wait_queue_head",
    [("lock", 4), ("task_list_head", 8), ("task_list_tail", 8)],
    object_size=64,
    description="wait queue head",
)

#: Memory-mapped static file served by Apache (MMapFile), 1024 bytes.
MMAP_FILE_TYPE = StructType(
    "mmap_file",
    [("content", 1024)],
    object_size=1024,
    description="memory-mapped static file",
)

#: Fast user mutex bucket (abridged futex hash bucket), 64 bytes.
FUTEX_TYPE = StructType(
    "futex",
    [("lock", 4), ("waiters", 4), ("chain_head", 8), ("chain_tail", 8)],
    object_size=64,
    description="fast user mutex bucket",
)

#: Task structure (abridged struct task_struct), 1216 bytes.
TASK_STRUCT_TYPE = StructType(
    "task_struct",
    [
        ("state", 8),
        ("stack", 8),
        ("flags", 4),
        ("cpu", 4),
        ("prio", 4),
        ("se_vruntime", 8),
        ("se_sum_exec", 8),
        ("mm", 8),
        ("files", 8),
        ("sighand", 8),
        ("utime", 8),
        ("stime", 8),
        ("run_list_next", 8),
        ("run_list_prev", 8),
    ],
    object_size=1216,
    description="task structure",
)

#: All slab-allocated network types, for convenient cache creation.
DYNAMIC_TYPES = [
    SKBUFF_TYPE,
    SKBUFF_FCLONE_TYPE,
    SIZE_1024_TYPE,
    UDP_SOCK_TYPE,
    TCP_SOCK_TYPE,
    TASK_STRUCT_TYPE,
]
