"""Simulated Linux network stack.

Implements the kernel paths the paper's two case studies run through:

- RX: ``ixgbe_clean_rx_irq`` -> ``eth_type_trans`` -> ``ip_rcv`` ->
  UDP/TCP demux into sockets (one NIC RX queue pinned per core);
- TX: ``dev_queue_xmit`` -> TX-queue selection (``skb_tx_hash`` by default,
  the root cause of the memcached bottleneck) -> ``pfifo_fast_enqueue`` ->
  the owning core's ``__qdisc_run`` -> ``dev_hard_start_xmit`` ->
  ``ixgbe_xmit_frame`` -> completion and skb free;
- UDP sockets (memcached) and TCP listen/accept queues (Apache).

All packet memory is real simulated memory: skbuffs and payloads are slab
objects, queues and devices are typed structures, and locks are fields of
those structures -- so the cache-line traffic DProf observes is generated
mechanically by the same design decisions the real kernel made.
"""

from repro.kernel.net.types import (
    EVENTPOLL_TYPE,
    FUTEX_TYPE,
    IXGBE_RING_TYPE,
    NET_DEVICE_TYPE,
    QDISC_TYPE,
    SIZE_1024_TYPE,
    SKBUFF_FCLONE_TYPE,
    SKBUFF_TYPE,
    TASK_STRUCT_TYPE,
    TCP_SOCK_TYPE,
    UDP_SOCK_TYPE,
)
from repro.kernel.net.skbuff import SkBuff
from repro.kernel.net.netdevice import NetDevice
from repro.kernel.net.stack import NetStack

__all__ = [
    "EVENTPOLL_TYPE",
    "FUTEX_TYPE",
    "IXGBE_RING_TYPE",
    "NET_DEVICE_TYPE",
    "QDISC_TYPE",
    "SIZE_1024_TYPE",
    "SKBUFF_FCLONE_TYPE",
    "SKBUFF_TYPE",
    "TASK_STRUCT_TYPE",
    "TCP_SOCK_TYPE",
    "UDP_SOCK_TYPE",
    "SkBuff",
    "NetDevice",
    "NetStack",
]
