"""UDP sockets: the memcached case study's transport.

Each memcached instance owns one UDP socket pinned (with its NIC queue
pair) to one core.  The receive path enqueues packets into the socket and
fires the epoll wakeup; ``udp_recvmsg`` copies the payload out and frees
the request; ``udp_sendmsg`` builds the response and hands it to
``dev_queue_xmit``.  The socket's ``write_space`` callback runs at
transmit *completion* time -- on whatever core owns the chosen TX queue --
which is why ``udp_sock`` shows up as "bouncing" in the paper's Table 6.1.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.kernel.layout import KObject
from repro.kernel.locks import SpinLock
from repro.kernel.net.skbuff import (
    SkBuff,
    alloc_skb,
    kfree_skb,
    skb_copy_datagram_iovec,
    skb_put,
)
from repro.kernel.net.wakeup import EventPoll, ep_poll_callback, wake_up_sync_key, WaitQueue


class UdpSock:
    """A bound UDP socket: typed object + receive queue + wakeup hooks."""

    def __init__(self, stack, obj: KObject, port: int, cpu: int) -> None:
        self.stack = stack
        self.obj = obj
        self.port = port
        self.cpu = cpu
        self.lock = SpinLock("sock lock", obj, "sk_lock", stack.lockstat)
        self.receive_queue: deque[SkBuff] = deque()
        self.wq = WaitQueue(stack, f"udp.{port}")
        self.epoll: EventPoll | None = None

    def write_space(self, stack, cpu: int) -> Iterator:
        """``sock_def_write_space``: credit send buffer at TX completion."""
        env = stack.env
        fn = "sock_def_write_space"
        yield env.read(fn, self.obj, "wmem_alloc")
        yield env.write(fn, self.obj, "wmem_alloc")
        yield env.read(fn, self.obj, "sk_wq")
        yield from wake_up_sync_key(stack, cpu, self.wq)


def udp_sock_create(stack, cpu: int, port: int) -> Iterator:
    """Allocate and initialize a UDP socket bound to *port*."""
    env = stack.env
    fn = "inet_create"
    obj = yield from stack.udp_sock_cache.alloc(cpu)
    sock = UdpSock(stack, obj, port, cpu)
    yield env.write(fn, obj, "state")
    yield env.write(fn, obj, "port")
    yield env.write(fn, obj, "hash")
    yield env.write(fn, obj, "sk_data_ready")
    yield env.write(fn, obj, "sk_write_space")
    return sock


def udp_rcv(stack, cpu: int, sock: UdpSock, skb: SkBuff) -> Iterator:
    """``udp_rcv``: deliver an incoming packet into the socket.

    Called from ``ip_rcv`` context on the RX softirq core.
    """
    env = stack.env
    fn = "udp_rcv"
    yield env.read(fn, sock.obj, "port")
    yield env.read(fn, sock.obj, "hash")
    yield env.write(fn, skb.obj, "sk")
    yield env.read(fn, sock.obj, "rmem_alloc")
    yield env.write(fn, sock.obj, "rmem_alloc")
    yield env.write(fn, sock.obj, "receive_queue_tail")
    yield env.write(fn, skb.obj, "next")
    sock.receive_queue.append(skb)
    yield env.read(fn, sock.obj, "sk_data_ready")
    if sock.epoll is not None:
        yield from ep_poll_callback(stack, cpu, sock.epoll, sock)


def udp_recvmsg(stack, cpu: int, sock: UdpSock) -> Iterator:
    """``udp_recvmsg``: pop one datagram, copy it out, free it.

    Returns the consumed skb, or None when the queue is empty.
    """
    env = stack.env
    fn = "udp_recvmsg"
    yield from lock_sock_nested(stack, cpu, sock)
    yield env.read(fn, sock.obj, "receive_queue_head")
    if not sock.receive_queue:
        yield from release_sock(stack, cpu, sock)
        return None
    skb = sock.receive_queue.popleft()
    yield env.write(fn, sock.obj, "receive_queue_head")
    yield env.read(fn, sock.obj, "rmem_alloc")
    yield env.write(fn, sock.obj, "rmem_alloc")
    yield from skb_copy_datagram_iovec(stack, cpu, skb, skb.length)
    yield env.work("getnstimeofday", 8)
    yield from release_sock(stack, cpu, sock)
    yield from kfree_skb(stack, cpu, skb)
    return skb


def udp_sendmsg(stack, cpu: int, sock: UdpSock, length: int, flow_hash: int) -> Iterator:
    """``udp_sendmsg``: build a datagram and transmit it.

    Returns the skb handed to the device layer.  ``flow_hash`` models the
    packet-content hash ``skb_tx_hash`` will use for queue selection: for
    UDP responses it is effectively unrelated to the receive steering,
    which is the root of the memcached bottleneck.
    """
    env = stack.env
    fn = "udp_sendmsg"
    yield env.read(fn, sock.obj, "state")
    yield env.read(fn, sock.obj, "wmem_alloc")
    skb = yield from alloc_skb(stack, cpu, length)
    skb.sock = sock
    skb.flow_hash = flow_hash
    yield env.write(fn, skb.obj, "sk")
    yield env.write(fn, skb.obj, "hash")
    # Copy the response body from userspace into the payload.
    yield from env.bulk(
        "copy_user_generic_string", skb.payload, 0, length, write=True, work_per_access=2
    )
    yield from skb_put(stack, cpu, skb, length)
    yield env.write(fn, sock.obj, "wmem_alloc")
    yield env.work("ip_route_output_flow", 10)
    yield from stack.dev_queue_xmit(cpu, skb)
    return skb


def lock_sock_nested(stack, cpu: int, sock) -> Iterator:
    """``lock_sock_nested``: take the socket's user lock."""
    yield from sock.lock.acquire(stack.env, "lock_sock_nested", cpu)


def release_sock(stack, cpu: int, sock) -> Iterator:
    """``release_sock``: drop the socket's user lock."""
    yield from sock.lock.release(stack.env, "release_sock", cpu)
