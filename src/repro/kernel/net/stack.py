"""NetStack: ties device, queues, sockets, and softirq loops together.

The workload layer (memcached / Apache) interacts with the stack in three
places:

- it pushes :class:`Arrival` descriptors onto RX queues (the load
  generators of the paper's testbed);
- it provides ``deliver``, the protocol demux invoked for each received
  packet (UDP delivery for memcached, TCP connection setup for Apache);
- it may register ``on_tx_complete`` to observe response completions
  (used for closed-loop flow control and throughput accounting).

Per core there are two softirq threads (``net_rx_action`` and
``net_tx_action``) plus whatever server threads the workload spawns --
matching the pinned one-instance-per-core setup of the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ConfigError
from repro.hw.events import Pause
from repro.kernel.kernel import Kernel
from repro.kernel.net.netdevice import (
    NetDevice,
    RxQueue,
    dev_queue_xmit,
    ixgbe_clean_tx_irq,
    qdisc_run,
)
from repro.kernel.net.skbuff import SkBuff, alloc_skb, eth_type_trans
from repro.kernel.net.types import (
    SIZE_1024_TYPE,
    SKBUFF_FCLONE_TYPE,
    SKBUFF_TYPE,
    TASK_STRUCT_TYPE,
    TCP_SOCK_TYPE,
    UDP_SOCK_TYPE,
)


@dataclass(slots=True)
class Arrival:
    """One packet (or connection) arriving on an RX queue."""

    due: int
    flow_hash: int
    length: int = 64
    kind: str = "request"
    meta: dict = field(default_factory=dict)


DeliverFn = Callable[["NetStack", int, RxQueue, SkBuff, Arrival], Iterator]
TxCompleteFn = Callable[[SkBuff, int], None]


class NetStack:
    """The simulated network stack bound to one kernel instance."""

    #: Idle sleep for softirq loops with no pending work, in cycles.
    IDLE_PAUSE = 400

    #: Packets processed per RX softirq invocation (NAPI budget).
    RX_BUDGET = 16

    def __init__(self, kernel: Kernel, num_queues: int | None = None) -> None:
        self.kernel = kernel
        self.env = kernel.env
        self.slab = kernel.slab
        self.lockstat = kernel.lockstat
        num_queues = num_queues if num_queues is not None else kernel.ncores
        if num_queues > kernel.ncores:
            raise ConfigError("cannot have more NIC queues than cores")
        self.skbuff_cache = kernel.slab.create_cache(SKBUFF_TYPE)
        self.fclone_cache = kernel.slab.create_cache(SKBUFF_FCLONE_TYPE)
        self.size1024_cache = kernel.slab.create_cache(SIZE_1024_TYPE)
        self.udp_sock_cache = kernel.slab.create_cache(UDP_SOCK_TYPE)
        self.tcp_sock_cache = kernel.slab.create_cache(TCP_SOCK_TYPE)
        self.task_struct_cache = kernel.slab.create_cache(TASK_STRUCT_TYPE)
        self.dev = NetDevice(self, num_queues)
        self.deliver: DeliverFn | None = None
        self.on_tx_complete_cb: TxCompleteFn | None = None
        self.stopping = False
        self.rx_processed = 0
        self.tx_completed = 0

    # ------------------------------------------------------------------
    # TX entry points
    # ------------------------------------------------------------------

    def dev_queue_xmit(self, cpu: int, skb: SkBuff) -> Iterator:
        """Transmit one packet (queue selection + qdisc enqueue)."""
        yield from dev_queue_xmit(self, cpu, self.dev, skb)

    def on_tx_complete(self, skb: SkBuff, cpu: int) -> None:
        """Called by the driver when a transmit fully completes."""
        self.tx_completed += 1
        if self.on_tx_complete_cb is not None:
            self.on_tx_complete_cb(skb, cpu)

    # ------------------------------------------------------------------
    # RX path
    # ------------------------------------------------------------------

    def ip_rcv(self, cpu: int, skb: SkBuff) -> Iterator:
        """``ip_rcv``: IP header parsing and sanity checks."""
        env = self.env
        fn = "ip_rcv"
        yield env.read(fn, skb.obj, "len")
        yield env.read_range(fn, skb.payload, 16, 8)  # IP header
        yield env.write(fn, skb.obj, "data")

    def ixgbe_clean_rx_irq(self, cpu: int, rxq: RxQueue, budget: int | None = None) -> Iterator:
        """``ixgbe_clean_rx_irq``: reap due arrivals from one RX queue.

        For each arrival: allocate skb + payload, model the DMA'd packet
        data landing in memory, parse headers, and hand the packet to the
        workload's ``deliver`` demux.  Returns packets processed.
        """
        env = self.env
        fn = "ixgbe_clean_rx_irq"
        budget = budget if budget is not None else self.RX_BUDGET
        processed = 0
        while (
            rxq.arrivals
            and rxq.arrivals[0].due <= env.cycle(cpu)
            and processed < budget
        ):
            arrival = rxq.arrivals.popleft()
            yield env.read(fn, rxq.ring, "next_to_clean")
            yield env.write(fn, rxq.ring, "next_to_clean")
            skb = yield from alloc_skb(self, cpu, arrival.length)
            skb.flow_hash = arrival.flow_hash
            skb.origin_queue = rxq.index
            # DMA'd packet contents: the NIC wrote the payload into memory
            # (DMA-to-cache, as the paper notes, avoids compulsory misses
            # only when lines are pulled in; here the writes are the pull).
            yield from env.bulk(fn, skb.payload, 0, arrival.length, write=True)
            yield from eth_type_trans(self, cpu, skb)
            yield env.write(fn, self.dev.obj, "rx_packets")
            yield env.write(fn, self.dev.obj, "rx_bytes")
            self.dev.rx_count += 1
            yield from self.ip_rcv(cpu, skb)
            if self.deliver is None:
                raise ConfigError("NetStack.deliver is not set")
            yield from self.deliver(self, cpu, rxq, skb, arrival)
            self.rx_processed += 1
            processed += 1
        return processed

    # ------------------------------------------------------------------
    # Softirq thread bodies
    # ------------------------------------------------------------------

    def net_rx_action(self, cpu: int) -> Iterator:
        """RX softirq loop for the RX queue owned by *cpu*."""
        rxq = self.dev.rx_queues[cpu]
        while not self.stopping:
            n = yield from self.ixgbe_clean_rx_irq(cpu, rxq)
            if n == 0:
                yield Pause(self.IDLE_PAUSE)

    def net_tx_action(self, cpu: int) -> Iterator:
        """TX softirq loop: drain qdiscs and completions of owned queues."""
        owned = [q for q in self.dev.tx_queues if q.owner_cpu == cpu]
        while not self.stopping:
            did_work = False
            for txq in owned:
                while txq.qdisc.skbs:
                    sent = yield from qdisc_run(self, cpu, self.dev, txq)
                    if not sent:
                        break
                    did_work = True
                if txq.completions:
                    yield from ixgbe_clean_tx_irq(self, cpu, self.dev, txq)
                    did_work = True
            if not did_work:
                yield Pause(self.IDLE_PAUSE)

    def spawn_softirq_threads(self) -> None:
        """Spawn RX+TX softirq threads on every core that owns a queue."""
        for rxq in self.dev.rx_queues:
            self.kernel.spawn(f"rx.{rxq.index}", rxq.owner_cpu, self.net_rx_action(rxq.owner_cpu))
        tx_cores = {q.owner_cpu for q in self.dev.tx_queues}
        for cpu in sorted(tx_cores):
            self.kernel.spawn(f"tx.{cpu}", cpu, self.net_tx_action(cpu))
