"""pfifo_fast packet scheduler queues.

One :class:`Qdisc` guards each NIC TX queue.  The memcached case study's
smoking gun (Figure 6-1) is skbuffs crossing cores between
``pfifo_fast_enqueue`` and ``pfifo_fast_dequeue``: the submitting core
enqueues, but the queue's *owner* core dequeues, so whenever the default
``skb_tx_hash`` picks a remote queue, every line of the packet crosses the
interconnect right here.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.kernel.locks import SpinLock
from repro.kernel.net.skbuff import SkBuff
from repro.kernel.net.types import QDISC_TYPE


class Qdisc:
    """A pfifo_fast queue: a typed object, its lock, and the skb list."""

    def __init__(self, stack, index: int) -> None:
        self.index = index
        self.obj = stack.slab.new_static(QDISC_TYPE, f"qdisc.{index}")
        # All qdisc instances share the "Qdisc lock" class name, matching
        # how Linux lock-stat aggregates by lock class (Table 6.2).
        self.lock = SpinLock("Qdisc lock", self.obj, "lock", stack.lockstat)
        self.skbs: deque[SkBuff] = deque()

    def __len__(self) -> int:
        return len(self.skbs)


def pfifo_fast_enqueue(stack, cpu: int, qdisc: Qdisc, skb: SkBuff) -> Iterator:
    """``pfifo_fast_enqueue``: link the skb onto the queue tail.

    Caller must hold ``qdisc.lock``.
    """
    env = stack.env
    fn = "pfifo_fast_enqueue"
    yield env.write(fn, skb.obj, "next")
    yield env.read(fn, qdisc.obj, "tail")
    yield env.write(fn, qdisc.obj, "tail")
    yield env.read(fn, qdisc.obj, "qlen")
    yield env.write(fn, qdisc.obj, "qlen")
    qdisc.skbs.append(skb)


def pfifo_fast_dequeue(stack, cpu: int, qdisc: Qdisc) -> Iterator:
    """``pfifo_fast_dequeue``: unlink the head skb; returns it or None.

    Caller must hold ``qdisc.lock``.
    """
    env = stack.env
    fn = "pfifo_fast_dequeue"
    yield env.read(fn, qdisc.obj, "head")
    if not qdisc.skbs:
        return None
    skb = qdisc.skbs.popleft()
    yield env.read(fn, skb.obj, "next")
    yield env.write(fn, qdisc.obj, "head")
    yield env.read(fn, qdisc.obj, "qlen")
    yield env.write(fn, qdisc.obj, "qlen")
    return skb
