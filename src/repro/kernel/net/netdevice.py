"""The multiqueue NIC and the transmit path.

Models the paper's Intel IXGBE 10 GbE card: 16 TX and 16 RX queues, each
RX queue interrupting one specific core (the testbed steered each load
generator's flows to a different core).  The transmit path is where the
memcached case study's bug lives: without a driver-provided
``select_queue`` function, ``dev_queue_xmit`` falls back to
``skb_tx_hash``, which picks a TX queue by hashing packet contents -- on
the memcached workload that is usually a *remote* queue, so the packet's
cache lines (payload, skbuff, qdisc) all migrate to the owning core.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.kernel.net.qdisc import Qdisc, pfifo_fast_dequeue, pfifo_fast_enqueue
from repro.kernel.net.skbuff import SkBuff, dev_kfree_skb_irq, skb_dma_map
from repro.kernel.net.types import IXGBE_RING_TYPE, NET_DEVICE_TYPE

#: Signature of a driver queue-selection override (the case-study fix).
SelectQueue = Callable[["NetStackLike", int, "NetDevice", SkBuff], int]


class TxQueue:
    """One hardware TX queue: descriptor ring + qdisc + completion list."""

    def __init__(self, stack, index: int, owner_cpu: int) -> None:
        self.index = index
        self.owner_cpu = owner_cpu
        self.ring = stack.slab.new_static(IXGBE_RING_TYPE, f"tx_ring.{index}")
        self.qdisc = Qdisc(stack, index)
        self.completions: deque[SkBuff] = deque()


class RxQueue:
    """One hardware RX queue: descriptor ring + pending arrivals."""

    def __init__(self, stack, index: int, owner_cpu: int) -> None:
        self.index = index
        self.owner_cpu = owner_cpu
        self.ring = stack.slab.new_static(IXGBE_RING_TYPE, f"rx_ring.{index}")
        #: Arrival descriptors pushed by the workload's load generator.
        self.arrivals: deque = deque()


class NetDevice:
    """An IXGBE-like device: one queue pair per core by default."""

    def __init__(self, stack, num_queues: int) -> None:
        self.obj = stack.slab.new_static(NET_DEVICE_TYPE, "net_device.eth0")
        self.num_queues = num_queues
        self.tx_queues = [TxQueue(stack, i, i) for i in range(num_queues)]
        self.rx_queues = [RxQueue(stack, i, i) for i in range(num_queues)]
        #: Driver queue-selection override; None means the kernel default
        #: (``skb_tx_hash``).  Installing a local-queue policy here is the
        #: memcached case-study fix (Section 6.1).
        self.select_queue: SelectQueue | None = None
        self.tx_count = 0
        self.rx_count = 0


def skb_tx_hash(stack, cpu: int, dev: NetDevice, skb: SkBuff) -> Iterator:
    """``skb_tx_hash``: default TX queue choice, by flow hash.

    Balances transmit load across all queues -- which for per-core request
    loops means the chosen queue is usually on a *different* core than the
    one processing the request.
    """
    env = stack.env
    fn = "skb_tx_hash"
    yield env.read(fn, skb.obj, "hash")
    yield env.read(fn, dev.obj, "num_tx_queues")
    yield env.work(fn, 6, site="hash")
    return skb.flow_hash % dev.num_queues


def dev_queue_xmit(stack, cpu: int, dev: NetDevice, skb: SkBuff) -> Iterator:
    """``dev_queue_xmit``: pick a TX queue and enqueue under the Qdisc lock."""
    env = stack.env
    fn = "dev_queue_xmit"
    yield env.read(fn, skb.obj, "len")
    yield env.read(fn, dev.obj, "flags")
    if dev.select_queue is not None:
        queue_index = yield from dev.select_queue(stack, cpu, dev, skb)
    else:
        queue_index = yield from skb_tx_hash(stack, cpu, dev, skb)
    yield env.write(fn, skb.obj, "queue_mapping")
    txq = dev.tx_queues[queue_index]
    yield from txq.qdisc.lock.acquire(env, fn, cpu)
    yield from pfifo_fast_enqueue(stack, cpu, txq.qdisc, skb)
    yield from txq.qdisc.lock.release(env, fn, cpu)


def qdisc_run(stack, cpu: int, dev: NetDevice, txq: TxQueue) -> Iterator:
    """``__qdisc_run``: dequeue one packet and hand it to the driver.

    Returns True when a packet was transmitted, False on an empty queue.
    """
    env = stack.env
    fn = "__qdisc_run"
    yield from txq.qdisc.lock.acquire(env, fn, cpu)
    skb = yield from pfifo_fast_dequeue(stack, cpu, txq.qdisc)
    yield from txq.qdisc.lock.release(env, fn, cpu)
    if skb is None:
        return False
    yield from dev_hard_start_xmit(stack, cpu, dev, txq, skb)
    return True


def dev_hard_start_xmit(
    stack, cpu: int, dev: NetDevice, txq: TxQueue, skb: SkBuff
) -> Iterator:
    """``dev_hard_start_xmit``: driver entry for one packet."""
    env = stack.env
    fn = "dev_hard_start_xmit"
    yield env.read(fn, skb.obj, "len")
    yield env.read(fn, skb.obj, "data")
    yield from ixgbe_xmit_frame(stack, cpu, dev, txq, skb)


def ixgbe_xmit_frame(
    stack, cpu: int, dev: NetDevice, txq: TxQueue, skb: SkBuff
) -> Iterator:
    """``ixgbe_xmit_frame``: fill a descriptor and bump device stats.

    The statistics stores on the single shared ``net_device`` object are
    what make that 128-byte structure both miss-heavy and bouncing in the
    paper's data profiles (Tables 6.1, 6.4, 6.5).
    """
    env = stack.env
    fn = "ixgbe_xmit_frame"
    yield from skb_dma_map(stack, cpu, skb)
    yield env.read(fn, txq.ring, "next_to_use")
    yield env.write(fn, txq.ring, "next_to_use")
    yield env.write(fn, txq.ring, "tail_register")
    yield env.write(fn, dev.obj, "tx_packets")
    yield env.write(fn, dev.obj, "tx_bytes")
    dev.tx_count += 1
    txq.completions.append(skb)


def ixgbe_clean_tx_irq(stack, cpu: int, dev: NetDevice, txq: TxQueue) -> Iterator:
    """``ixgbe_clean_tx_irq``: reap completed transmits and free packets.

    Runs on the queue's owner core.  For packets enqueued from a different
    core this is where the skbuff and its payload are freed *remotely*,
    sending them down the SLAB alien path -- the cross-core churn visible
    in the memcached data profile.
    """
    env = stack.env
    fn = "ixgbe_clean_tx_irq"
    cleaned = 0
    while txq.completions:
        skb = txq.completions.popleft()
        yield env.read(fn, txq.ring, "next_to_clean")
        yield env.write(fn, txq.ring, "next_to_clean")
        yield env.write(fn, txq.ring, "stats_packets")
        sock = skb.sock
        yield from dev_kfree_skb_irq(stack, cpu, skb)
        if sock is not None:
            yield from sock.write_space(stack, cpu)
        stack.on_tx_complete(skb, cpu)
        cleaned += 1
    return cleaned
