"""skbuff allocation, manipulation, and free paths.

An :class:`SkBuff` pairs two slab objects: the 256-byte (or 512-byte
fast-clone) bookkeeping structure and the ``size-1024`` payload buffer.
The memcached case study's top two miss types (Table 6.1) are exactly
these: ``size-1024`` at 45.40% and ``skbuff`` at 5.20%, both bouncing
between cores -- behaviour that emerges here from where the TX path frees
them, not from anything hard-coded.

All functions are kernel generators (``yield`` instructions) named after
their Linux counterparts so OProfile output matches the paper's Table 6.3.
"""

from __future__ import annotations

from typing import Iterator

from repro.kernel.layout import KObject


class SkBuff:
    """A simulated packet: bookkeeping object + payload object + metadata.

    The Python-side fields (``flow_hash``, ``origin_queue``, ...) stand in
    for values the real kernel stores in the object's memory; memory
    traffic for them is emitted by the kernel functions that logically
    read/write those fields.
    """

    __slots__ = (
        "obj",
        "payload",
        "sock",
        "flow_hash",
        "origin_queue",
        "alloc_cpu",
        "length",
        "meta",
    )

    def __init__(self, obj: KObject, payload: KObject, length: int) -> None:
        self.obj = obj
        self.payload = payload
        self.length = length
        self.sock = None
        self.flow_hash = 0
        self.origin_queue: int | None = None
        self.alloc_cpu = -1
        self.meta: dict = {}

    @property
    def fclone(self) -> bool:
        """True for TCP fast-clone skbuffs."""
        return self.obj.otype.name == "skbuff_fclone"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkBuff({self.obj.otype.name}@{self.obj.base:#x}, len={self.length})"


def alloc_skb(stack, cpu: int, length: int, fclone: bool = False) -> Iterator:
    """``__alloc_skb``: allocate bookkeeping + payload, initialize fields."""
    env = stack.env
    fn = "__alloc_skb"
    cache = stack.fclone_cache if fclone else stack.skbuff_cache
    obj = yield from cache.alloc(cpu)
    payload = yield from stack.size1024_cache.alloc(cpu)
    skb = SkBuff(obj, payload, length)
    skb.alloc_cpu = cpu
    yield env.write(fn, obj, "head")
    yield env.write(fn, obj, "data")
    yield env.write(fn, obj, "tail")
    yield env.write(fn, obj, "end")
    yield env.write(fn, obj, "truesize")
    yield env.write(fn, obj, "users")
    yield env.write(fn, obj, "len")
    return skb


def skb_put(stack, cpu: int, skb: SkBuff, length: int) -> Iterator:
    """``skb_put``: extend the data area by *length* bytes."""
    env = stack.env
    fn = "skb_put"
    yield env.read(fn, skb.obj, "tail")
    yield env.write(fn, skb.obj, "tail")
    yield env.write(fn, skb.obj, "len")


def eth_type_trans(stack, cpu: int, skb: SkBuff) -> Iterator:
    """``eth_type_trans``: parse the link-layer header."""
    env = stack.env
    fn = "eth_type_trans"
    yield env.read(fn, skb.obj, "data")
    yield env.read_range(fn, skb.payload, 0, 8)  # ethernet header
    yield env.write(fn, skb.obj, "protocol")


def skb_copy_datagram_iovec(stack, cpu: int, skb: SkBuff, length: int) -> Iterator:
    """``skb_copy_datagram_iovec``: copy payload to userspace.

    The inner per-line copy is attributed to ``copy_user_generic_string``,
    which appears as its own entry in OProfile output (Table 6.3).
    """
    env = stack.env
    yield env.read("skb_copy_datagram_iovec", skb.obj, "data")
    yield env.read("skb_copy_datagram_iovec", skb.obj, "len")
    yield from env.bulk(
        "copy_user_generic_string",
        skb.payload,
        0,
        min(length, skb.payload.otype.size),
        write=False,
        work_per_access=2,
    )


def skb_dma_map(stack, cpu: int, skb: SkBuff) -> Iterator:
    """``skb_dma_map``: set up DMA mappings for transmit."""
    env = stack.env
    fn = "skb_dma_map"
    yield env.read(fn, skb.obj, "head")
    yield env.read(fn, skb.obj, "data")
    yield env.read(fn, skb.obj, "len")
    yield env.read_range(fn, skb.payload, 0, 8)


def kfree_skb(stack, cpu: int, skb: SkBuff, fn: str = "__kfree_skb") -> Iterator:
    """``__kfree_skb``: release the payload (``kfree``) and the skbuff."""
    env = stack.env
    yield env.read(fn, skb.obj, "users")
    yield env.write(fn, skb.obj, "users")
    yield from stack.slab.kfree(cpu, skb.payload)
    cache = stack.fclone_cache if skb.fclone else stack.skbuff_cache
    yield from cache.free(cpu, skb.obj)


def dev_kfree_skb_irq(stack, cpu: int, skb: SkBuff) -> Iterator:
    """``dev_kfree_skb_irq``: free from transmit-completion context."""
    env = stack.env
    fn = "dev_kfree_skb_irq"
    yield env.read(fn, skb.obj, "users")
    yield from kfree_skb(stack, cpu, skb, fn="__kfree_skb")
