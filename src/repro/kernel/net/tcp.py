"""TCP listen/accept machinery: the Apache case study's transport.

The Apache bottleneck (Section 6.2) is a *working set* problem: each
instance lets many connections pile up on its accept queue, and by the
time Apache accepts one, the ``tcp_sock``'s cache lines have been flushed
from the caches close to the core -- average access latency tripled and
the live ``tcp_sock`` working set grew by an order of magnitude
(Tables 6.4 vs 6.5).  This module provides the pieces that make that
happen mechanically: connection setup allocates a 1600-byte ``tcp_sock``,
the accept queue (bounded only by the configured backlog) delays its next
use, and accept/recv/send walk enough of the structure to feel the misses.

TCP responses hash to the flow's own RX queue (consistent flow hashing),
so unlike memcached's UDP responses they stay core-local -- matching the
paper's Tables 6.4/6.5 where skbuff and payload do *not* bounce.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.kernel.layout import KObject
from repro.kernel.locks import SpinLock
from repro.kernel.net.skbuff import (
    SkBuff,
    alloc_skb,
    kfree_skb,
    skb_copy_datagram_iovec,
    skb_put,
)
from repro.kernel.net.types import LISTEN_SOCK_TYPE
from repro.kernel.net.wakeup import EventPoll, ep_poll_callback, WaitQueue

#: Offsets sampled when code "walks" a tcp_sock: real TCP code touches
#: state spread across the whole 1600-byte structure (icsk, tcp, and
#: socket sections), so accesses span multiple cache lines.
TCP_SOCK_SECTIONS = (0, 384, 768, 1152, 1536)


class ListenSock:
    """A listening TCP socket with its bounded accept queue."""

    def __init__(self, stack, cpu: int, port: int, backlog: int) -> None:
        self.stack = stack
        self.cpu = cpu
        self.port = port
        self.backlog = backlog
        self.obj = stack.slab.new_static(LISTEN_SOCK_TYPE, f"listen.{port}")
        self.lock = SpinLock("accept queue lock", self.obj, "lock", stack.lockstat)
        self.accept_queue: deque[TcpConn] = deque()
        self.wq = WaitQueue(stack, f"listen.{port}")
        self.epoll: EventPoll | None = None
        self.accepted = 0
        self.dropped = 0


class TcpConn:
    """An established connection: its tcp_sock object + pending request."""

    __slots__ = ("obj", "request", "flow_hash", "enqueue_cycle", "accept_cycle", "meta")

    def __init__(self, obj: KObject, request: SkBuff, flow_hash: int) -> None:
        self.obj = obj
        self.request = request
        self.flow_hash = flow_hash
        self.enqueue_cycle = 0
        self.accept_cycle = 0
        self.meta: dict = {}

    def write_space(self, stack, cpu: int) -> Iterator:
        """``sock_def_write_space`` for an established TCP socket."""
        env = stack.env
        fn = "sock_def_write_space"
        yield env.read(fn, self.obj, "wmem_alloc")
        yield env.write(fn, self.obj, "wmem_alloc")


def tcp_v4_rcv(
    stack, cpu: int, listener: ListenSock, skb: SkBuff, flow_hash: int
) -> Iterator:
    """``tcp_v4_rcv``: handle a new connection carrying its request.

    Models connection establishment collapsed into one packet: allocates
    the ``tcp_sock``, initializes it, and queues it (with the request skb)
    on the listener's accept queue.  Returns the new connection, or None
    when the backlog is full and the connection is dropped.
    """
    env = stack.env
    fn = "tcp_v4_rcv"
    yield env.read(fn, listener.obj, "port")
    yield env.read(fn, listener.obj, "qlen")
    yield env.read(fn, listener.obj, "backlog")
    if len(listener.accept_queue) >= listener.backlog:
        listener.dropped += 1
        yield from kfree_skb(stack, cpu, skb)
        return None

    alloc_fn = "tcp_v4_syn_recv_sock"
    obj = yield from stack.tcp_sock_cache.alloc(cpu)
    conn = TcpConn(obj, skb, flow_hash)
    conn.enqueue_cycle = env.cycle(cpu)
    yield env.write(alloc_fn, obj, "state")
    yield env.write(alloc_fn, obj, "saddr")
    yield env.write(alloc_fn, obj, "daddr")
    yield env.write(alloc_fn, obj, "sport")
    yield env.write(alloc_fn, obj, "dport")
    yield env.write(alloc_fn, obj, "rcv_nxt")
    yield env.write(alloc_fn, obj, "snd_nxt")
    yield env.write(alloc_fn, obj, "window")
    # Initialization touches the whole structure (memset + icsk setup).
    for offset in TCP_SOCK_SECTIONS:
        yield env.write_range(alloc_fn, obj, offset, 8)
    yield env.write(fn, skb.obj, "sk")

    yield from listener.lock.acquire(env, fn, cpu)
    yield env.write(fn, listener.obj, "accept_tail")
    yield env.write(fn, listener.obj, "qlen")
    listener.accept_queue.append(conn)
    yield from listener.lock.release(env, fn, cpu)
    if listener.epoll is not None:
        yield from ep_poll_callback(stack, cpu, listener.epoll, listener)
    return conn


def inet_csk_accept(stack, cpu: int, listener: ListenSock) -> Iterator:
    """``inet_csk_accept``: pop the next established connection.

    Returns the connection or None.  The reads of the connection's
    ``tcp_sock`` here are the ones whose latency explodes in the drop-off
    case: the longer the connection waited, the colder its lines.
    """
    env = stack.env
    fn = "inet_csk_accept"
    yield from listener.lock.acquire(env, fn, cpu)
    yield env.read(fn, listener.obj, "accept_head")
    if not listener.accept_queue:
        yield from listener.lock.release(env, fn, cpu)
        return None
    conn = listener.accept_queue.popleft()
    yield env.write(fn, listener.obj, "accept_head")
    yield env.write(fn, listener.obj, "qlen")
    yield from listener.lock.release(env, fn, cpu)
    listener.accepted += 1
    conn.accept_cycle = env.cycle(cpu)
    yield env.read(fn, conn.obj, "state")
    yield env.write(fn, conn.obj, "state")
    yield env.read(fn, conn.obj, "saddr")
    yield env.read(fn, conn.obj, "dport")
    for offset in TCP_SOCK_SECTIONS:
        yield env.read_range(fn, conn.obj, offset, 8)
    return conn


def tcp_recvmsg(stack, cpu: int, conn: TcpConn) -> Iterator:
    """``tcp_recvmsg``: copy the pending request out and free it."""
    env = stack.env
    fn = "tcp_recvmsg"
    yield env.read(fn, conn.obj, "state")
    yield env.read(fn, conn.obj, "receive_queue_head")
    yield env.read(fn, conn.obj, "rcv_nxt")
    yield env.write(fn, conn.obj, "copied_seq")
    skb = conn.request
    if skb is None:
        return None
    conn.request = None
    yield from skb_copy_datagram_iovec(stack, cpu, skb, skb.length)
    yield env.write(fn, conn.obj, "rmem_alloc")
    yield from kfree_skb(stack, cpu, skb)
    return skb


def tcp_sendmsg(
    stack, cpu: int, conn: TcpConn, length: int, file_obj: KObject
) -> Iterator:
    """``tcp_sendmsg``: build the response from the mmap'd file and send.

    Uses a fast-clone skbuff (TCP keeps a clone for retransmission), which
    is why ``skbuff_fclone`` appears in the Apache overhead tables.
    """
    env = stack.env
    fn = "tcp_sendmsg"
    yield env.read(fn, conn.obj, "state")
    yield env.read(fn, conn.obj, "wmem_alloc")
    skb = yield from alloc_skb(stack, cpu, length, fclone=True)
    skb.sock = conn
    skb.flow_hash = conn.flow_hash
    yield env.write(fn, skb.obj, "sk")
    yield env.write(fn, skb.obj, "hash")
    # Copy the served file into the payload, line by line.
    copy_fn = "copy_user_generic_string"
    pos = 0
    while pos < length:
        size = min(8, length - pos)
        yield env.read_range(copy_fn, file_obj, pos % file_obj.otype.size, size)
        yield env.write_range(copy_fn, skb.payload, pos, size, work=2)
        pos += env.BULK_STRIDE
    yield from skb_put(stack, cpu, skb, length)
    yield env.write(fn, conn.obj, "wmem_alloc")
    yield from tcp_transmit_skb(stack, cpu, conn, skb)
    return skb


def tcp_transmit_skb(stack, cpu: int, conn: TcpConn, skb: SkBuff) -> Iterator:
    """``tcp_transmit_skb``: stamp sequence numbers and hand to the device."""
    env = stack.env
    fn = "tcp_transmit_skb"
    yield env.read(fn, conn.obj, "snd_nxt")
    yield env.write(fn, conn.obj, "snd_nxt")
    yield env.write(fn, conn.obj, "snd_una")
    yield env.write(fn, conn.obj, "write_queue_tail")
    yield from stack.dev_queue_xmit(cpu, skb)


def tcp_close(stack, cpu: int, conn: TcpConn) -> Iterator:
    """``tcp_close``: tear the connection down and free its tcp_sock."""
    env = stack.env
    fn = "tcp_close"
    yield env.write(fn, conn.obj, "state")
    yield env.read(fn, conn.obj, "wmem_alloc")
    if conn.request is not None:
        yield from kfree_skb(stack, cpu, conn.request)
        conn.request = None
    yield from stack.tcp_sock_cache.free(cpu, conn.obj)
