"""Wait queues, epoll, and futexes -- the wakeup machinery.

These are the subsystems behind the lock-stat rows in the paper's
comparison tables: "epoll lock", "wait queue" (Table 6.2, memcached) and
"futex lock" (Table 6.6, Apache).  The point the paper makes is that
lock-stat surfaces *these* locks prominently while the actual bottleneck
is elsewhere; reproducing the comparison requires the locks to exist and
be exercised on the same paths.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.kernel.locks import SpinLock
from repro.kernel.net.types import EVENTPOLL_TYPE, FUTEX_TYPE, WAIT_QUEUE_TYPE


class WaitQueue:
    """A wait queue head with its own lock."""

    def __init__(self, stack, label: str) -> None:
        self.obj = stack.slab.new_static(WAIT_QUEUE_TYPE, f"waitq.{label}")
        self.lock = SpinLock("wait queue lock", self.obj, "lock", stack.lockstat)


def wake_up_sync_key(stack, cpu: int, wq: WaitQueue) -> Iterator:
    """``__wake_up_sync_key``: walk the waiter list under the queue lock."""
    env = stack.env
    fn = "__wake_up_sync_key"
    yield from wq.lock.acquire(env, fn, cpu)
    yield env.read(fn, wq.obj, "task_list_head")
    yield from wq.lock.release(env, fn, cpu)


class EventPoll:
    """An epoll instance: ready list + lock + its wait queue."""

    def __init__(self, stack, label: str) -> None:
        self.obj = stack.slab.new_static(EVENTPOLL_TYPE, f"epoll.{label}")
        self.lock = SpinLock("epoll lock", self.obj, "lock", stack.lockstat)
        self.wq = WaitQueue(stack, f"epoll.{label}")
        self.ready: deque = deque()


def ep_poll_callback(stack, cpu: int, ep: EventPoll, source) -> Iterator:
    """``ep_poll_callback``: a watched fd became ready."""
    env = stack.env
    fn = "ep_poll_callback"
    yield from ep.lock.acquire(env, fn, cpu)
    yield env.write(fn, ep.obj, "rdllist_tail")
    ep.ready.append(source)
    yield from ep.lock.release(env, fn, cpu)
    yield from wake_up_sync_key(stack, cpu, ep.wq)


def sys_epoll_wait(stack, cpu: int, ep: EventPoll) -> Iterator:
    """``sys_epoll_wait`` / ``ep_scan_ready_list``: harvest ready fds.

    Returns the list of ready sources (possibly empty).
    """
    env = stack.env
    fn = "sys_epoll_wait"
    yield from ep.lock.acquire(env, fn, cpu)
    yield env.read(fn, ep.obj, "rdllist_head")
    ready = list(ep.ready)
    ep.ready.clear()
    yield env.write("ep_scan_ready_list", ep.obj, "rdllist_head")
    yield from ep.lock.release(env, fn, cpu)
    return ready


class Futex:
    """A fast-user-mutex hash bucket."""

    def __init__(self, stack, label: str) -> None:
        self.obj = stack.slab.new_static(FUTEX_TYPE, f"futex.{label}")
        self.lock = SpinLock("futex lock", self.obj, "lock", stack.lockstat)


def futex_wait(stack, cpu: int, futex: Futex) -> Iterator:
    """``futex_wait`` (via ``do_futex``): enqueue as a waiter."""
    env = stack.env
    yield env.work("do_futex", 4)
    fn = "futex_wait"
    yield from futex.lock.acquire(env, fn, cpu)
    yield env.write(fn, futex.obj, "waiters")
    yield env.write(fn, futex.obj, "chain_tail")
    yield from futex.lock.release(env, fn, cpu)


def futex_wake(stack, cpu: int, futex: Futex) -> Iterator:
    """``futex_wake`` (via ``do_futex``): pop and wake a waiter."""
    env = stack.env
    yield env.work("do_futex", 4)
    fn = "futex_wake"
    yield from futex.lock.acquire(env, fn, cpu)
    yield env.read(fn, futex.obj, "waiters")
    yield env.write(fn, futex.obj, "chain_head")
    yield from futex.lock.release(env, fn, cpu)
