"""Streaming statistics helpers used across the profiler and reports."""

from __future__ import annotations

from collections import Counter
from typing import Iterable


class OnlineStats:
    """Single-pass mean / min / max / variance accumulator (Welford)."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "OnlineStats") -> None:
        """Fold another accumulator into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)  # type: ignore[type-var]
        self.max = max(self.max, other.max)  # type: ignore[type-var]

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return self.variance ** 0.5

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineStats(count={self.count}, mean={self.mean:.3f}, "
            f"min={self.min}, max={self.max})"
        )


class Histogram:
    """A counting histogram over hashable keys with share/ranking helpers."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def add(self, key, weight: int = 1) -> None:
        """Add *weight* observations of *key*."""
        self._counts[key] += weight

    def count(self, key) -> int:
        """Observations recorded for *key* (0 when never seen)."""
        return self._counts.get(key, 0)

    @property
    def total(self) -> int:
        """Total observations across all keys."""
        return sum(self._counts.values())

    def share(self, key) -> float:
        """Fraction of all observations attributed to *key*."""
        total = self.total
        if total == 0:
            return 0.0
        return self._counts.get(key, 0) / total

    def top(self, n: int | None = None) -> list[tuple[object, int]]:
        """Keys ordered by descending count; all of them when *n* is None."""
        items = self._counts.most_common(n)
        return items

    def keys(self) -> Iterable:
        """All keys with at least one observation."""
        return self._counts.keys()

    def items(self) -> Iterable[tuple[object, int]]:
        """(key, count) pairs in arbitrary order."""
        return self._counts.items()

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(total={self.total}, keys={len(self._counts)})"


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of *values*; 0.0 for an empty iterable."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(sorted_values: list[float], q: float) -> float:
    """The *q*-th percentile (0-100) of an already-sorted list.

    Linear interpolation between closest ranks; raises ``ValueError``
    for an empty list or a q outside [0, 100].
    """
    if not sorted_values:
        raise ValueError("percentile of an empty list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def weighted_mean(pairs: Iterable[tuple[float, float]]) -> float:
    """Mean of (value, weight) pairs; 0.0 when total weight is zero."""
    total_weight = 0.0
    total = 0.0
    for value, weight in pairs:
        total += value * weight
        total_weight += weight
    if total_weight == 0:
        return 0.0
    return total / total_weight
