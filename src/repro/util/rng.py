"""Deterministic random number generation for reproducible simulations.

Every stochastic component in the simulator (IBS tag jitter, packet flow
hashes, workload think times) draws from a :class:`DeterministicRng` seeded
from a single root seed, so that a whole experiment replays bit-identically.
Components derive child generators by name, which keeps streams independent
of each other and of the order in which components are constructed.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng:
    """A named, seedable random stream.

    Wraps :class:`random.Random` and adds :meth:`child`, which derives an
    independent stream from this one by hashing the parent seed with a label.
    Two children with different labels never share state; the same label
    always yields the same stream.
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = seed
        self.label = label
        self._random = random.Random(self._mix(seed, label))

    @staticmethod
    def _mix(seed: int, label: str) -> int:
        digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def child(self, label: str) -> "DeterministicRng":
        """Derive an independent stream named *label* from this one."""
        return DeterministicRng(self._mix(self.seed, self.label), label)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi], inclusive on both ends."""
        return self._random.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in [0.0, 1.0)."""
        return self._random.random()

    def choice(self, seq):
        """Uniformly pick one element of a non-empty sequence."""
        return self._random.choice(seq)

    def shuffle(self, seq) -> None:
        """Shuffle *seq* in place."""
        self._random.shuffle(seq)

    def sample(self, seq, k: int):
        """Sample *k* distinct elements from *seq*."""
        return self._random.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival draw with the given rate."""
        return self._random.expovariate(rate)

    def jitter(self, base: int, fraction: float = 0.25) -> int:
        """Return *base* perturbed by up to +/- *fraction* of its value.

        Used for IBS sampling intervals, which real hardware randomizes to
        avoid lockstep with periodic program behaviour.
        """
        if base <= 0:
            return base
        spread = max(1, int(base * fraction))
        return max(1, base + self._random.randint(-spread, spread))
