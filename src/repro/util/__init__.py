"""Small shared utilities: deterministic RNG, statistics, text tables."""

from repro.util.rng import DeterministicRng
from repro.util.stats import OnlineStats, Histogram
from repro.util.tables import TextTable, format_bytes, format_percent

__all__ = [
    "DeterministicRng",
    "OnlineStats",
    "Histogram",
    "TextTable",
    "format_bytes",
    "format_percent",
]
