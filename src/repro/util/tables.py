"""Plain-text table rendering for profiler reports.

The thesis presents every view as a table (Tables 4.1, 6.1-6.10); this
module renders equivalent monospaced tables without external dependencies.
"""

from __future__ import annotations

from typing import Sequence


class TextTable:
    """A simple left/right-aligned monospaced table builder."""

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        """Append one row; cells are stringified with str()."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table, right-aligning cells that look numeric."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            parts = []
            for i, cell in enumerate(cells):
                if _looks_numeric(cell):
                    parts.append(cell.rjust(widths[i]))
                else:
                    parts.append(cell.ljust(widths[i]))
            return "  ".join(parts).rstrip()

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.headers))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(fmt_row(row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _looks_numeric(cell: str) -> bool:
    stripped = cell.rstrip("%").replace(",", "")
    if stripped.endswith(("B", "KB", "MB", "GB")):
        stripped = stripped.rstrip("BKMG")
    try:
        float(stripped)
    except ValueError:
        return False
    return True


def format_bytes(n: float) -> str:
    """Render a byte count the way the thesis does (128B, 2.55MB, ...)."""
    if n < 1024:
        return f"{int(n)}B"
    if n < 1024 * 1024:
        return f"{n / 1024:.2f}KB"
    return f"{n / (1024 * 1024):.2f}MB"


def format_percent(fraction: float, digits: int = 2) -> str:
    """Render a 0..1 fraction as a percentage string."""
    return f"{fraction * 100:.{digits}f}%"
