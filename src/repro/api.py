"""``repro.api`` -- the one blessed import surface for the reproduction.

Everything a caller needs to profile, analyze, serve, and trace lives
here, re-exported from its defining module.  Deep imports of internal
modules keep working but are not covered by any stability promise, and
the old package-level conveniences (``from repro.dprof import DProf``,
``from repro.serve import ProfilingServer``) now emit a
:class:`DeprecationWarning` pointing at this module.

Groups:

- **profiling**: :class:`DProf`, :class:`DProfConfig`,
  :class:`DataQuality`, :class:`Diagnosis`, :func:`analyze_histories`;
- **simulation**: :class:`MachineConfig`, :func:`build_kernel`,
  ``SCENARIOS``, :func:`collect_history_session`;
- **sessions**: :func:`export_session`, :func:`load_session`,
  :class:`OfflineSession`;
- **service**: :class:`JobSpec`, :class:`ProfilingServer`,
  :class:`ServeClient`, :func:`request_once`, :func:`execute_job`,
  :func:`execute_job_to_store`, :class:`SessionStore`;
- **federation**: :class:`ClusterConfig`, :class:`ClusterServer`,
  :class:`RetryPolicy`, :class:`RetryExhaustedError`;
- **configuration**: :class:`RunConfig`;
- **tracing**: :class:`Tracer`, ``NULL_TRACER``, :class:`SimProbe`,
  :func:`load_trace`, :func:`render_tree`, :func:`stage_totals`,
  :func:`critical_path`, :func:`reconcile_serve`;
- **metrics & kernels**: :class:`MetricsSummary`, :func:`machine_counters`,
  :class:`KernelSpec`, ``KERNEL_FAMILIES``, :func:`expected_metrics`.

The ``__all__`` tuple is the public API contract and is pinned by
``tests/test_api_facade.py``; additions are fine, removals and renames
are breaking changes.
"""

from __future__ import annotations

from repro.bench import collect_history_session
from repro.config import RunConfig
from repro.dprof.analysis import ANALYSIS_MODES, analyze_histories
from repro.dprof.diagnosis import Diagnosis, Finding
from repro.dprof.profiler import DProf, DProfConfig
from repro.dprof.quality import DataQuality
from repro.dprof.session_io import OfflineSession, export_session, load_session
from repro.hw.machine import MachineConfig
from repro.metrics import MetricsSummary, machine_counters
from repro.serve.cluster import ClusterConfig, ClusterServer
from repro.serve.jobs import JobSpec
from repro.serve.protocol import ServeClient, request_once
from repro.serve.retry import RetryExhaustedError, RetryPolicy
from repro.serve.server import ProfilingServer
from repro.serve.store import SessionStore
from repro.serve.workers import execute_job, execute_job_to_store
from repro.trace import (
    NULL_TRACER,
    SimProbe,
    Tracer,
    critical_path,
    load_trace,
    reconcile_serve,
    render_tree,
    stage_totals,
)
from repro.workloads import SCENARIOS, build_kernel
from repro.workloads.kernels import KERNEL_FAMILIES, KernelSpec, expected_metrics

__all__ = (
    "ANALYSIS_MODES",
    "ClusterConfig",
    "ClusterServer",
    "DProf",
    "DProfConfig",
    "DataQuality",
    "Diagnosis",
    "Finding",
    "JobSpec",
    "KERNEL_FAMILIES",
    "KernelSpec",
    "MachineConfig",
    "MetricsSummary",
    "NULL_TRACER",
    "OfflineSession",
    "ProfilingServer",
    "RetryExhaustedError",
    "RetryPolicy",
    "RunConfig",
    "SCENARIOS",
    "ServeClient",
    "SessionStore",
    "SimProbe",
    "Tracer",
    "analyze_histories",
    "build_kernel",
    "collect_history_session",
    "critical_path",
    "execute_job",
    "execute_job_to_store",
    "expected_metrics",
    "export_session",
    "load_session",
    "load_trace",
    "machine_counters",
    "reconcile_serve",
    "render_tree",
    "request_once",
    "stage_totals",
)
