"""``RunConfig`` -- the one set of knobs shared by every pipeline layer.

``seed``, ``engine``, ``analysis``, and ``analysis_workers`` were
historically duplicated across :class:`~repro.dprof.profiler.DProfConfig`,
:class:`~repro.hw.machine.MachineConfig`, and
:class:`~repro.serve.jobs.JobSpec`, each with its own default and its own
validation.  :class:`RunConfig` folds them into a single frozen value
accepted by :class:`~repro.dprof.profiler.DProf`, the CLI, the bench
harness, and :meth:`~repro.serve.jobs.JobSpec.create` -- while the
legacy per-layer configs keep working unchanged via the adapter methods
(:meth:`RunConfig.machine_config`, :meth:`RunConfig.dprof_config`,
:meth:`RunConfig.job_kwargs`), which are tested to produce bit-identical
sessions to the old kwargs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Valid access-simulation engines (mirrors MachineConfig validation).
ENGINES = ("reference", "fast")


@dataclass(frozen=True)
class RunConfig:
    """The knobs every layer shares, stated once.

    ``seed`` drives the machine RNG, the workload, and deterministic
    trace ids; ``engine`` picks the access-simulation implementation;
    ``analysis``/``analysis_workers`` select the path-trace pipeline.
    ``trace`` turns on span tracing for the run.
    """

    seed: int = 42
    engine: str = "reference"
    analysis: str = "indexed"
    analysis_workers: int = 0
    trace: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r} (choose {' or '.join(ENGINES)})"
            )
        # Analysis modes are validated here too so a bad RunConfig fails
        # at construction, not deep inside analyze_histories.
        from repro.dprof.analysis import ANALYSIS_MODES

        if self.analysis not in ANALYSIS_MODES:
            raise ConfigError(
                f"unknown analysis mode {self.analysis!r} "
                f"(choose {' or '.join(ANALYSIS_MODES)})"
            )
        if self.analysis_workers < 0:
            raise ConfigError("analysis_workers must be >= 0")

    # ------------------------------------------------------------------
    # Adapters to the legacy per-layer configs
    # ------------------------------------------------------------------

    def machine_config(self, **overrides):
        """A :class:`~repro.hw.machine.MachineConfig` with these knobs.

        Extra machine-only kwargs (``ncores``, cache geometry, ...) pass
        through unchanged.
        """
        from repro.hw.machine import MachineConfig

        kwargs = {"seed": self.seed, "engine": self.engine}
        kwargs.update(overrides)
        return MachineConfig(**kwargs)

    def dprof_config(self, **overrides):
        """A :class:`~repro.dprof.profiler.DProfConfig` with these knobs.

        Note: DProfConfig's ``seed`` is the *profiler* seed (defaults to
        99, independent of the machine seed) so it is NOT overridden
        here unless passed explicitly -- matching how every existing
        call site builds the two configs.
        """
        from repro.dprof.profiler import DProfConfig

        kwargs = {
            "analysis": self.analysis,
            "analysis_workers": self.analysis_workers,
        }
        kwargs.update(overrides)
        return DProfConfig(**kwargs)

    def job_kwargs(self) -> dict:
        """The :meth:`~repro.serve.jobs.JobSpec.create` kwargs this
        config implies."""
        return {
            "seed": self.seed,
            "engine": self.engine,
            "analysis": self.analysis,
            "trace": self.trace,
        }
