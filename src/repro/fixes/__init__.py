"""The two case-study fixes from the paper's evaluation.

- :mod:`repro.fixes.txqueue` -- local TX-queue selection for the NIC
  driver (Section 6.1: +57% memcached throughput);
- :mod:`repro.fixes.admission` -- accept-queue admission control
  (Section 6.2: +16% Apache throughput at the drop-off load).
"""

from repro.fixes.txqueue import install_local_queue_selection, ixgbe_select_queue
from repro.fixes.admission import apply_admission_control

__all__ = [
    "install_local_queue_selection",
    "ixgbe_select_queue",
    "apply_admission_control",
]
