"""Fix 1: local TX-queue selection (paper Section 6.1).

"The problem is that the IXGBE driver does not provide its own custom
queue selection function that overrides the suboptimal default. [...]
Implementing a local queue selection function increased performance by 57%
and eliminated all lock contention."

The fix installs exactly that driver hook: pick the TX queue owned by the
core doing the transmit, so packets are enqueued, dequeued, transmitted,
and *freed* on the same core -- no qdisc-lock contention, no cross-core
payload transfers, no SLAB alien frees.
"""

from __future__ import annotations

from typing import Iterator

from repro.kernel.net.netdevice import NetDevice
from repro.kernel.net.skbuff import SkBuff


def ixgbe_select_queue(stack, cpu: int, dev: NetDevice, skb: SkBuff) -> Iterator:
    """Driver queue-selection hook: always the current core's own queue."""
    env = stack.env
    fn = "ixgbe_select_queue"
    yield env.read(fn, dev.obj, "num_tx_queues")
    yield env.work(fn, 2, site="smp_processor_id")
    return cpu % dev.num_queues


def install_local_queue_selection(dev: NetDevice) -> None:
    """Install the fix on a device (replaces the skb_tx_hash default)."""
    dev.select_queue = ixgbe_select_queue
