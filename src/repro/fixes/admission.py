"""Fix 2: accept-queue admission control (paper Section 6.2).

"We implemented admission control by limiting the size of the queues to
cut down on the number of in flight TCP connection requests.  This change
improved performance by 16% when the server underwent the same request
rate stress as the drop off point."

Capping the accept backlog keeps every queued ``tcp_sock`` recently
touched: excess connections are dropped at SYN time (cheap) instead of
being accepted cold (expensive).
"""

from __future__ import annotations

from typing import Iterable

from repro.kernel.net.tcp import ListenSock

#: The paper's fix shrinks backlogs to a handful of in-flight connections.
DEFAULT_ADMISSION_LIMIT = 8


def apply_admission_control(
    listeners: Iterable[ListenSock], limit: int = DEFAULT_ADMISSION_LIMIT
) -> None:
    """Cap the accept backlog of every listener to *limit*."""
    for listener in listeners:
        listener.backlog = limit
