"""Bounded retry with exponential backoff and full jitter.

Every RPC the service makes twice-removed from a human -- a client
resubmitting after a ``queue_full`` reject, a cluster node forwarding a
submission to the consistent-hash owner -- needs the same discipline:
a bounded number of attempts, exponentially growing delays, *full*
jitter (uniform in ``[0, delay]``) so a burst of rejected clients does
not resynchronize into a thundering herd, and an overall deadline so a
dead peer fails fast instead of consuming the whole backoff budget.

:class:`RetryPolicy` is the one definition of that discipline.  It is
deliberately transport-agnostic: :meth:`RetryPolicy.call` retries any
zero-argument callable on the caller's chosen exceptions, and
:meth:`RetryPolicy.delays` exposes the raw schedule for tests.  The
jitter stream defaults to :mod:`random` but accepts any object with a
``random()`` method, so tests pin the schedule with a
:class:`~repro.util.rng.DeterministicRng`.
"""

from __future__ import annotations

import random as _random
import time
from dataclasses import dataclass, field

from repro.errors import ServeError


class RetryExhaustedError(ServeError):
    """Every attempt failed (or the deadline passed).  Carries the last
    underlying exception as ``__cause__`` and the attempt count."""

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter.

    ``attempts`` bounds the total number of tries (not retries);
    ``base_delay_s`` seeds the exponential schedule (``base * 2**k``,
    capped at ``max_delay_s``); ``timeout_s`` is the overall deadline
    measured on the monotonic clock -- once it passes, no further
    attempt starts.  A server-provided hint (``retry_after_s`` on a
    backpressure reject) takes precedence over the exponential term for
    that step, but is still jittered and capped.
    """

    attempts: int = 3
    base_delay_s: float = 0.25
    max_delay_s: float = 5.0
    timeout_s: float = 30.0
    #: Jitter source; anything with ``random() -> [0, 1)``.
    rng: object = field(default_factory=lambda: _random, compare=False)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ServeError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.timeout_s <= 0:
            raise ServeError("retry delays must be non-negative, timeout positive")

    def backoff_s(self, attempt: int, hint_s: float | None = None) -> float:
        """The jittered delay before retry number *attempt* (0-based).

        Full jitter: uniform in ``[0, d]`` where ``d`` is the capped
        exponential (or the server's ``retry_after_s`` hint, when one
        was given -- the server knows its queue better than we do).
        """
        ceiling = min(self.max_delay_s, self.base_delay_s * (2.0 ** attempt))
        if hint_s is not None:
            ceiling = min(self.max_delay_s, max(hint_s, self.base_delay_s))
        return ceiling * self.rng.random()

    def delays(self, hints: list[float | None] | None = None) -> list[float]:
        """The whole jittered schedule (attempts - 1 delays), for tests."""
        hints = hints or [None] * (self.attempts - 1)
        return [
            self.backoff_s(k, hints[k] if k < len(hints) else None)
            for k in range(self.attempts - 1)
        ]

    def call(
        self,
        fn,
        *,
        retry_on: tuple[type[BaseException], ...] = (
            ConnectionError,
            OSError,
            TimeoutError,
        ),
        describe: str = "request",
        sleep=time.sleep,
        clock=time.monotonic,
    ):
        """Call *fn* until it returns, retrying on *retry_on*.

        Raises :class:`RetryExhaustedError` (with the last failure as
        ``__cause__``) when attempts run out or the deadline passes.
        ``sleep``/``clock`` are seams for deterministic tests.
        """
        deadline = clock() + self.timeout_s
        last: BaseException | None = None
        made = 0
        for attempt in range(self.attempts):
            made = attempt + 1
            try:
                return fn()
            except retry_on as exc:
                last = exc
                if made >= self.attempts:
                    break
                delay = self.backoff_s(attempt)
                if clock() + delay > deadline:
                    break
                sleep(delay)
        raise RetryExhaustedError(
            f"{describe} failed after {made} attempt(s): {last}",
            attempts=made,
        ) from last
