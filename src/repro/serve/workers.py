"""Job execution and the multiprocessing worker pool.

:func:`execute_job` is the single definition of "run one profiling
session": build a kernel with the job's engine and seed, attach DProf
(with the job's fault plan, if any), drive the scenario from the
``SCENARIOS`` registry, detach, and serialize the session.  Everything
that runs jobs -- pool workers, the CLI's one-shot ``run-once``, and the
benchmark's service-throughput scenario -- goes through this function,
which is what makes service results bit-identical to one-shot runs.

The pool itself is deliberately simple: N long-lived processes pulling
``(job_id, spec)`` tuples from a shared task queue and pushing
``(kind, worker_id, payload)`` events to a shared result queue.  The
*server* owns scheduling (it holds jobs in a priority queue and only
dispatches when a worker slot is free), so the mp queues never hold more
than one task per worker and priority inversion cannot occur.  Workers
that die mid-job are detected by liveness polling; the server requeues
the orphaned job and calls :meth:`WorkerPool.restart`.
"""

from __future__ import annotations

import json
import multiprocessing
import signal
import time

from repro.dprof.profiler import DProf, DProfConfig
from repro.dprof.session_io import export_session
from repro.serve.jobs import JobSpec, status_from_exit_code
from repro.serve.store import SessionStore
from repro.trace import (
    TRACE_SUFFIX,
    NULL_TRACER,
    SimProbe,
    Tracer,
    config_fingerprint,
)
from repro.workloads import SCENARIOS, build_kernel

#: Poison pill telling a worker to exit its loop.
_STOP = None


def execute_job(spec: JobSpec, tracer=None) -> tuple[str, str, dict]:
    """Run one profiling session; returns (status, archive_text, info).

    Deterministic: equal specs yield byte-identical ``archive_text``
    (the simulation, fault plans, and JSON encoding are all seed-driven
    and order-stable).  ``status`` maps the session's
    :class:`~repro.dprof.quality.DataQuality` to ok/degraded/failed the
    same way the one-shot CLI maps it to exit codes 0/3/4.

    ``spec.trace`` (or an explicit *tracer*) records run -> scenario ->
    machine-sim spans; the simulator is observed through a cheap sampled
    :class:`~repro.trace.SimProbe`, never per-event spans, so tracing
    does not perturb the archive bytes.
    """
    if tracer is None:
        tracer = Tracer(seed=spec.seed) if spec.trace else NULL_TRACER
    with tracer.span("run", scenario=spec.scenario, engine=spec.engine):
        kernel = build_kernel(spec.cores, seed=spec.seed, engine=spec.engine)
        dprof = DProf(
            kernel,
            DProfConfig(ibs_interval=spec.interval, analysis=spec.analysis),
            faults=spec.fault_plan(),
            tracer=tracer,
        )
        dprof.attach()
        try:
            with tracer.span("scenario", scenario=spec.scenario):
                probe = SimProbe() if tracer.enabled else None
                kernel.machine.trace_probe = probe
                try:
                    with tracer.span("machine-sim"):
                        result = SCENARIOS[spec.scenario](kernel, spec.duration)
                        if probe is not None:
                            tracer.add(**probe.counters())
                finally:
                    kernel.machine.trace_probe = None
        finally:
            dprof.detach()
        quality = dprof.data_quality()
        archive_text = json.dumps(export_session(dprof))
        code = quality.exit_code()
        tracer.add(
            instructions=kernel.machine.total_instructions,
            archive_bytes=len(archive_text),
        )
    info = {
        "throughput": round(result.throughput, 3),
        "quality": quality.coverage_line(),
        "exit_code": code,
    }
    return status_from_exit_code(code), archive_text, info


def execute_job_to_store(spec: JobSpec, store_root) -> dict:
    """Execute *spec* and land its archive in the store; returns the
    outcome blob the service attaches to the job record.

    With ``spec.trace`` set, the span trace is written next to the
    archive as ``<digest>.trace.jsonl`` (manifest first line) and the
    raw span blobs ride along in the outcome so the server can adopt
    them into its own trace.
    """
    t0 = time.perf_counter()
    tracer = Tracer(seed=spec.seed) if spec.trace else NULL_TRACER
    status, archive_text, info = execute_job(spec, tracer=tracer)
    store = SessionStore(store_root)
    put = tracer.begin("store-put")
    digest = store.put_text(archive_text)
    if put is not None:
        tracer.end(put, bytes=len(archive_text))
    outcome = {
        "status": status,
        "digest": digest,
        "wall_s": time.perf_counter() - t0,
        **info,
    }
    if tracer.enabled:
        manifest = tracer.manifest(
            fingerprint=config_fingerprint(spec.canonical()),
            engine=spec.engine,
            analysis=spec.analysis,
            quality=info.get("quality", ""),
            scenario=spec.scenario,
            digest=digest,
        )
        trace_path = store.path_for(digest).with_name(digest + TRACE_SUFFIX)
        tracer.write_jsonl(trace_path, manifest)
        outcome["trace_path"] = str(trace_path)
        outcome["spans"] = tracer.to_blobs()
    return outcome


def worker_main(worker_id: int, task_q, result_q, store_root: str) -> None:
    """One pool worker's loop (runs in a child process).

    SIGINT is ignored (Ctrl-C belongs to the server, which drains);
    SIGTERM keeps its default so the server can terminate a stuck worker
    during drain and requeue its job.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        item = task_q.get()
        if item is _STOP:
            result_q.put(("exit", worker_id, None))
            return
        job_id, spec_wire = item
        result_q.put(("started", worker_id, job_id))
        try:
            spec = JobSpec.from_wire(spec_wire)
            outcome = execute_job_to_store(spec, store_root)
            result_q.put(("done", worker_id, (job_id, outcome)))
        except Exception as exc:  # noqa: BLE001 - report, don't die
            result_q.put(
                ("failed", worker_id, (job_id, f"{type(exc).__name__}: {exc}"))
            )


def _mp_context():
    """Fork where available (fast, inherits the imported simulator);
    platform default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class WorkerPool:
    """N worker processes around shared task/result queues."""

    def __init__(self, nworkers: int, store_root) -> None:
        self.nworkers = nworkers
        self.store_root = str(store_root)
        self._ctx = _mp_context()
        self.task_q = self._ctx.Queue()
        self.result_q = self._ctx.Queue()
        self.procs: dict[int, multiprocessing.Process] = {}
        self._next_id = 0

    def start(self) -> None:
        for _ in range(self.nworkers):
            self._spawn()

    def _spawn(self) -> int:
        worker_id = self._next_id
        self._next_id += 1
        proc = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self.task_q, self.result_q, self.store_root),
            daemon=True,
            name=f"repro-serve-worker-{worker_id}",
        )
        proc.start()
        self.procs[worker_id] = proc
        return worker_id

    def submit(self, job_id: str, spec: JobSpec) -> None:
        self.task_q.put((job_id, spec.to_wire()))

    def dead_workers(self) -> list[int]:
        """Workers whose process has exited without being stopped."""
        return [wid for wid, proc in self.procs.items() if not proc.is_alive()]

    def restart(self, worker_id: int) -> int:
        """Reap a dead worker and spawn its replacement."""
        proc = self.procs.pop(worker_id, None)
        if proc is not None:
            proc.join(timeout=0.1)
        return self._spawn()

    def terminate_worker(self, worker_id: int) -> None:
        """Forcibly stop one worker (drain-timeout path)."""
        proc = self.procs.pop(worker_id, None)
        if proc is not None:
            proc.terminate()
            proc.join(timeout=2.0)

    def stop(self, grace_s: float = 5.0) -> None:
        """Poison-pill every worker, then terminate stragglers."""
        for _ in self.procs:
            self.task_q.put(_STOP)
        deadline = time.monotonic() + grace_s
        for proc in list(self.procs.values()):
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for wid, proc in list(self.procs.items()):
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            self.procs.pop(wid, None)
