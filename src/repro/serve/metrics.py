"""Live service counters and the ``metrics`` endpoint's rendering.

Counter semantics are chosen so the books always balance: every accepted
submission ends in exactly one of ``done``, ``failed``, or ``requeued``
(handed back at drain), so at shutdown::

    submitted == done + failed + requeued

and while running the same identity holds with the queue depth and
running count added.  :meth:`ServeMetrics.reconciled` checks exactly
that; the drain path and the smoke tests assert it.  Crash-recovery
retries are counted separately (``job_retries``) because a retried job
still terminates in one of the three buckets -- folding retries into
``requeued`` would double-count.

Wall times are kept per scenario (bounded reservoir) and exposed as
p50/p95, matching how one would alert on a real profiling service.
"""

from __future__ import annotations

from repro.util.stats import percentile

#: Per-scenario wall-time samples kept for percentile estimates.
WALL_RESERVOIR = 1024


class ServeMetrics:
    """Mutable counter registry for one server process."""

    def __init__(self) -> None:
        self.jobs_submitted = 0
        self.jobs_rejected = 0
        self.jobs_done = 0
        self.jobs_degraded = 0  # subset of jobs_done
        self.jobs_failed = 0
        self.jobs_requeued = 0
        self.job_retries = 0
        self.worker_restarts = 0
        # Cluster-mode counters.  Routed jobs are *not* in jobs_submitted
        # (the owning peer counts them when it accepts); reclaimed jobs
        # *are* (the reclaimer becomes the submitter of record), with
        # jobs_reclaimed marking the subset that arrived via lease-scan.
        # The per-node identity submitted == done + failed + requeued
        # (+ depth + running) therefore still holds on every node, and
        # summing it over live nodes plus the dead node's persisted
        # counters reconciles the whole cluster.
        self.jobs_routed = 0
        self.jobs_reclaimed = 0  # subset of jobs_submitted
        self.forward_failures = 0
        self.heartbeats_sent = 0
        self.peers_suspected = 0
        self.peers_declared_dead = 0
        #: Memoized-view cache traffic, mirrored from the store's
        #: :class:`~repro.serve.store.ViewCache` at snapshot time.
        self.view_cache_hits = 0
        self.view_cache_misses = 0
        self._wall: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def observe_wall(self, scenario: str, seconds: float) -> None:
        """Record one completed job's wall time."""
        samples = self._wall.setdefault(scenario, [])
        samples.append(seconds)
        if len(samples) > WALL_RESERVOIR:
            del samples[0]

    def wall_percentile(self, scenario: str, q: float) -> float | None:
        samples = self._wall.get(scenario)
        if not samples:
            return None
        return percentile(sorted(samples), q)

    def mean_wall_s(self) -> float | None:
        """Mean wall time across all scenarios (retry-after estimates)."""
        total = count = 0.0
        for samples in self._wall.values():
            total += sum(samples)
            count += len(samples)
        return total / count if count else None

    def retry_after_s(self, queue_depth: int, workers: int) -> float:
        """How long a rejected submitter should wait before retrying."""
        mean = self.mean_wall_s() or 1.0
        return round(max(0.25, queue_depth * mean / max(workers, 1)), 3)

    # ------------------------------------------------------------------
    # Reconciliation and export
    # ------------------------------------------------------------------

    def reconciled(self, queue_depth: int = 0, running: int = 0) -> bool:
        """True when every accepted job is accounted for exactly once."""
        return self.jobs_submitted == (
            self.jobs_done
            + self.jobs_failed
            + self.jobs_requeued
            + queue_depth
            + running
        )

    def counters(self, queue_depth: int, running: int) -> dict:
        """JSON-compatible snapshot for the ``metrics`` op."""
        blob = {
            "jobs_submitted": self.jobs_submitted,
            "jobs_rejected": self.jobs_rejected,
            "jobs_done": self.jobs_done,
            "jobs_degraded": self.jobs_degraded,
            "jobs_failed": self.jobs_failed,
            "jobs_requeued": self.jobs_requeued,
            "job_retries": self.job_retries,
            "worker_restarts": self.worker_restarts,
            "jobs_routed": self.jobs_routed,
            "jobs_reclaimed": self.jobs_reclaimed,
            "forward_failures": self.forward_failures,
            "heartbeats_sent": self.heartbeats_sent,
            "peers_suspected": self.peers_suspected,
            "peers_declared_dead": self.peers_declared_dead,
            "view_cache_hits": self.view_cache_hits,
            "view_cache_misses": self.view_cache_misses,
            "queue_depth": queue_depth,
            "jobs_running": running,
            "reconciled": self.reconciled(queue_depth, running),
            "wall_seconds": {},
        }
        for scenario in sorted(self._wall):
            blob["wall_seconds"][scenario] = {
                "count": len(self._wall[scenario]),
                "p50": round(self.wall_percentile(scenario, 50.0), 4),
                "p95": round(self.wall_percentile(scenario, 95.0), 4),
            }
        return blob

    def render(self, queue_depth: int, running: int) -> str:
        """Prometheus-style text exposition of every counter."""
        blob = self.counters(queue_depth, running)
        wall = blob.pop("wall_seconds")
        blob.pop("reconciled")
        lines = [
            f"repro_serve_{name} {value}" for name, value in blob.items()
        ]
        for scenario, stats in wall.items():
            for quantile in ("p50", "p95"):
                lines.append(
                    f'repro_serve_wall_seconds{{scenario="{scenario}",'
                    f'quantile="{quantile[1:]}"}} {stats[quantile]}'
                )
        return "\n".join(lines)
