"""Content-addressed on-disk session store.

Completed profiling sessions land here as ``session_io`` archive-v2
files, named by the SHA-256 of their bytes::

    <root>/<digest>.session.json

Content addressing buys three properties the service needs:

- **dedup** -- resubmitting an identical (scenario, seed, engine, ...)
  spec produces the identical archive, so the second job costs one
  hash + stat, not a second file;
- **integrity** -- ``verify()`` re-hashes a file; a mismatch means disk
  corruption, not a service bug, and the reader's per-section checksums
  (archive v2) then recover what they can;
- **concurrency** -- writers write to a private temp file in the same
  directory and ``os.replace`` it into place, so two processes (or a
  worker and a crash) can never interleave bytes: readers see the old
  file, the new file, or no file -- never a torn hybrid.

Views are rendered from archives via
:class:`~repro.dprof.session_io.OfflineSession`, i.e. without re-running
any simulation -- the "decouple collection from analysis" half of the
service.

Rendered views are themselves memoized by :class:`ViewCache`: the
archive digest pins the raw input exactly (content addressing), so a
(digest, view, params) key can never serve stale text, and re-fetching
an already-rendered view is one file read instead of a full offline
analysis (clustering + merge + cache simulation).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.dprof.session_io import OfflineSession, atomic_write_text, load_session
from repro.errors import ServeError

#: Archive filename suffix inside a store directory.
ARCHIVE_SUFFIX = ".session.json"

#: Prefix for in-flight temp files (swept by :meth:`SessionStore.sweep_tmp`).
TMP_PREFIX = ".tmp-"

#: Drained-but-unfinished jobs persist here so a restarted server (or an
#: operator) can resubmit them; written atomically like archives.
REQUEUE_FILE = "requeue.json"

#: The views ``fetch`` can render from a stored archive.
VIEW_NAMES = (
    "data-profile",
    "working-set",
    "miss-class",
    "data-flow",
    "quality",
    "metrics",
    "archive",
)


#: Bump when any view's rendering changes; stale cache entries from an
#: older build then simply never match and age out.
VIEW_CACHE_VERSION = 2

#: Subdirectory of a store root holding memoized view renderings.
VIEW_CACHE_DIR = "views"

#: Cached-view filename suffix.
VIEW_SUFFIX = ".view"


def content_digest(text: str) -> str:
    """SHA-256 hex digest of an archive's exact bytes."""
    return hashlib.sha256(text.encode()).hexdigest()


class ViewCache:
    """Content-addressed memoization of rendered views.

    Keys are the SHA-256 of (cache version, archive digest, view name,
    view params); because the archive digest already pins the raw input
    bytes, a hit is guaranteed to equal what a fresh render would
    produce.  Entries are written with the same same-directory-temp +
    ``os.replace`` discipline as archives, so concurrent renderers race
    harmlessly.  Hit/miss counters feed :class:`~repro.serve.metrics.ServeMetrics`.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key(self, digest: str, view: str, type_name: str | None, top: int) -> str:
        material = json.dumps(
            [VIEW_CACHE_VERSION, digest, view, type_name, top],
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{VIEW_SUFFIX}"

    def get(self, key: str) -> str | None:
        """The cached rendering, or None (counted as hit/miss)."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return text

    def put(self, key: str, text: str) -> None:
        """Memoize one rendering (atomic, idempotent)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        if not path.exists():
            atomic_write_text(path, text)

    def entry_count(self) -> int:
        """Cached renderings currently on disk."""
        return sum(1 for _ in self.root.glob(f"*{VIEW_SUFFIX}"))

    def sweep_tmp(self) -> int:
        """Remove stale temp files from crashed writers."""
        removed = 0
        for tmp in self.root.glob(f"{TMP_PREFIX}*"):
            tmp.unlink(missing_ok=True)
            removed += 1
        return removed


class SessionStore:
    """A directory of content-addressed session archives."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.views = ViewCache(self.root / VIEW_CACHE_DIR)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def put_text(self, text: str) -> str:
        """Store one archive's exact text; returns its digest.

        Idempotent: an archive already present (same digest) is not
        rewritten, so concurrent workers completing the same spec race
        harmlessly.
        """
        digest = content_digest(text)
        path = self.path_for(digest)
        if not path.exists():
            atomic_write_text(path, text)
        return digest

    def write_requeue(self, specs: list[dict]) -> Path:
        """Persist drained job specs for resubmission after a restart."""
        path = self.root / REQUEUE_FILE
        atomic_write_text(path, json.dumps({"requeued": specs}, indent=2) + "\n")
        return path

    def read_requeue(self) -> list[dict]:
        """Specs persisted by the last drain ([] when none)."""
        path = self.root / REQUEUE_FILE
        if not path.exists():
            return []
        try:
            return json.loads(path.read_text()).get("requeued", [])
        except (json.JSONDecodeError, AttributeError) as exc:
            raise ServeError(f"corrupt requeue file {path}: {exc}") from exc

    def sweep_tmp(self) -> int:
        """Remove stale temp files (crashed writers); returns the count."""
        removed = 0
        for tmp in self.root.glob(f"{TMP_PREFIX}*"):
            tmp.unlink(missing_ok=True)
            removed += 1
        return removed + self.views.sweep_tmp()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}{ARCHIVE_SUFFIX}"

    def has(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def read_text(self, digest: str) -> str:
        path = self.path_for(digest)
        if not path.exists():
            raise ServeError(f"no archive {digest[:12]}... in store {self.root}")
        return path.read_text()

    def verify(self, digest: str) -> bool:
        """Re-hash the stored bytes; False means on-disk corruption."""
        return content_digest(self.read_text(digest)) == digest

    def open(self, digest: str) -> OfflineSession:
        """Offline-analysis handle for one archive (may raise
        :class:`~repro.errors.SessionFormatError` on damage)."""
        path = self.path_for(digest)
        if not path.exists():
            raise ServeError(f"no archive {digest[:12]}... in store {self.root}")
        return load_session(path)

    def digests(self) -> list[str]:
        """All stored archive digests, sorted."""
        return sorted(
            p.name[: -len(ARCHIVE_SUFFIX)]
            for p in self.root.glob(f"*{ARCHIVE_SUFFIX}")
        )

    def listing(self) -> list[dict]:
        """Digest + size for every archive (the ``list`` op's payload)."""
        return [
            {
                "digest": digest,
                "bytes": self.path_for(digest).stat().st_size,
            }
            for digest in self.digests()
        ]

    # ------------------------------------------------------------------
    # View rendering (no recomputation: archives carry everything)
    # ------------------------------------------------------------------

    def render_view(
        self,
        digest: str,
        view: str,
        type_name: str | None = None,
        top: int = 8,
        use_cache: bool = True,
        tracer=None,
    ) -> str:
        """Render one stored session as a named DProf view.

        Renders are memoized through :attr:`views` (content-addressed,
        so never stale); ``use_cache=False`` forces recomputation.  The
        ``archive`` view is the raw file itself and bypasses the cache.
        A :class:`repro.trace.Tracer` records the render as a
        ``view-render`` span carrying the cache hit/miss outcome.
        """
        if view not in VIEW_NAMES:
            raise ServeError(
                f"unknown view {view!r} (known: {', '.join(VIEW_NAMES)})"
            )
        if tracer is None:
            from repro.trace import NULL_TRACER

            tracer = NULL_TRACER
        if view == "archive":
            return self.read_text(digest)
        if not self.has(digest):
            raise ServeError(f"no archive {digest[:12]}... in store {self.root}")
        with tracer.span("view-render", view=view):
            key = self.views.key(digest, view, type_name, top)
            if use_cache:
                cached = self.views.get(key)
                if cached is not None:
                    tracer.add(cache_hits=1)
                    return cached
            tracer.add(cache_misses=1)
            text = self._render_view_uncached(digest, view, type_name, top)
            self.views.put(key, text)
        return text

    def _render_view_uncached(
        self, digest: str, view: str, type_name: str | None, top: int
    ) -> str:
        session = self.open(digest)
        if view == "data-profile":
            return session.data_profile().render(top)
        if view == "working-set":
            return session.working_set().render(top)
        if view == "quality":
            return session.data_quality.render()
        if view == "metrics":
            summary = session.metrics()
            if summary is None:
                raise ServeError(
                    f"archive {digest} predates hardware-counter export "
                    "(no metrics section)"
                )
            return summary.render()
        # miss-class and data-flow are per-type views.
        if type_name is None:
            available = sorted({h.type_name for h in session.histories})
            raise ServeError(
                f"view {view!r} needs a type= argument"
                + (f" (histories cover: {', '.join(available)})" if available else
                   " (this session recorded no histories)")
            )
        if view == "miss-class":
            return session.miss_classification(type_name).render()
        return session.data_flow(type_name).render_text()
