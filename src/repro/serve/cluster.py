"""Multi-node federation for the profiling service.

Several :class:`~repro.serve.server.ProfilingServer` processes federate
over one shared content-addressed :class:`~repro.serve.store.SessionStore`
-- the store *is* the control plane.  There is no coordinator process and
no peer list to configure: a node announces itself by writing a record
under ``<store>/cluster/nodes/``, discovers peers by scanning the same
directory, and everything else (leases, claims, results) lives in
sibling directories written with the store's atomic-replace discipline.

Layout (all under ``<store>/cluster/``)::

    nodes/<node_id>.json      registration + heartbeat counter
    leases/<job_key>.json     who owns each in-flight job
    claims/<job_key>.gen<N>   one-shot reclaim arbitration (O_EXCL)
    results/<job_key>.json    at-most-once result commit (O_EXCL)

**Skew-proof liveness.**  Neither node records nor leases carry wall
timestamps -- only monotonically increasing counters (``heartbeat_seq``,
``renew_seq``).  Every observer judges staleness by *its own* monotonic
clock: "this counter has not advanced for T seconds *of my time*".  A
node whose wall clock steps forward or back therefore cannot expire a
peer's leases early, hold its own forever, or be falsely declared dead;
only an actually-silent peer trips the detector.  Peer state transitions
``alive -> suspect -> dead`` at configurable thresholds, and a dead
node's seq advancing again resurrects it.

**Lease lifecycle.**  Accepting a job acquires a lease (owner, spec,
``renew_seq=0``, ``generation``); every heartbeat tick renews all held
leases; terminal transitions commit a result record and release the
lease.  A graceful drain releases leases for jobs it hands back via
``requeue.json`` (so peers do not also reclaim them); a SIGKILL leaves
leases behind, and any surviving peer's lease-scan reclaims them once
(a) the owner is *dead* per the failure detector and (b) the lease has
not been renewed for ``lease_timeout_s`` of local time.  Racing
reclaimers are arbitrated by an ``O_CREAT|O_EXCL`` claim file keyed by
(job_key, generation + 1): exactly one winner per generation.

**At-most-once results.**  Execution is at-least-once (a reclaim may
race a slow-but-alive owner), but commit is at-most-once: the first
``O_EXCL`` result record wins, archives are bit-identical anyway
(deterministic specs + content-addressed idempotent puts), so a losing
duplicate changes no bytes and commits no second record.

**Routing.**  Submissions hash to an owner on a consistent-hash ring
over the spec's content digest (so identical specs land on the same
node and dedup in place); non-owners forward with bounded
retry/backoff + jitter and fall back to local execution when the owner
is unreachable.  ``route: "local"`` pins a job to the receiving node
(used by chaos tests to aim work at a victim).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ServeError
from repro.serve.jobs import JobSpec, Lease, MonotonicClock
from repro.serve.protocol import error_response, request_once
from repro.serve.retry import RetryExhaustedError, RetryPolicy
from repro.serve.server import ProfilingServer

#: Subdirectory names under ``<store>/cluster/``.
CLUSTER_DIR = "cluster"
NODES_DIR = "nodes"
LEASES_DIR = "leases"
CLAIMS_DIR = "claims"
RESULTS_DIR = "results"

#: Peer liveness states, in order of decay.
PEER_STATES = ("alive", "suspect", "dead")


def _atomic_write(path: Path, text: str) -> None:
    # Same same-directory-temp + replace discipline as the store, local
    # so the cluster files do not depend on session_io.
    tmp = path.parent / f".tmp-{os.getpid()}-{path.name}"
    tmp.write_text(text)
    os.replace(tmp, path)


def _create_exclusive(path: Path, text: str) -> bool:
    """O_CREAT|O_EXCL write: True iff this caller created the file."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as handle:
        handle.write(text)
    return True


def _read_json(path: Path) -> dict | None:
    """Parse one cluster file; None for missing or torn/foreign junk."""
    try:
        blob = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return blob if isinstance(blob, dict) else None


@dataclass(frozen=True)
class ClusterConfig:
    """Federation knobs for one node."""

    node_id: str
    #: Seconds between heartbeat ticks (also lease renewal cadence).
    heartbeat_interval_s: float = 0.5
    #: No heartbeat advance for this long (observer time) -> suspect.
    suspect_after_s: float = 2.0
    #: ... for this long -> dead (and removed from the routing ring).
    dead_after_s: float = 5.0
    #: A dead owner's lease is reclaimable after this long without a
    #: renewal (observer time).  Keep >= dead_after_s so the detector
    #: always fires first.
    lease_timeout_s: float = 8.0
    #: Virtual points per node on the consistent-hash ring.
    ring_replicas: int = 64

    def __post_init__(self) -> None:
        if not self.node_id or "/" in self.node_id:
            raise ServeError(f"bad node_id {self.node_id!r}")
        if self.heartbeat_interval_s <= 0:
            raise ServeError("heartbeat_interval_s must be positive")
        if not 0 < self.suspect_after_s < self.dead_after_s:
            raise ServeError("need 0 < suspect_after_s < dead_after_s")
        if self.lease_timeout_s < self.dead_after_s:
            raise ServeError("lease_timeout_s must be >= dead_after_s")
        if self.ring_replicas < 1:
            raise ServeError("ring_replicas must be >= 1")


@dataclass
class NodeRecord:
    """One node's registration, heartbeat counter included."""

    node_id: str
    host: str
    port: int
    heartbeat_seq: int = 0
    draining: bool = False

    def to_wire(self) -> dict:
        return {
            "node_id": self.node_id,
            "host": self.host,
            "port": self.port,
            "heartbeat_seq": self.heartbeat_seq,
            "draining": self.draining,
        }

    @classmethod
    def from_wire(cls, blob: dict) -> "NodeRecord":
        try:
            return cls(
                node_id=blob["node_id"],
                host=blob["host"],
                port=int(blob["port"]),
                heartbeat_seq=int(blob.get("heartbeat_seq", 0)),
                draining=bool(blob.get("draining", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed node record: {exc}") from exc


class HashRing:
    """Consistent hashing: spec digest -> owning node.

    Each node contributes ``replicas`` virtual points (SHA-256 of
    ``"<node>#<k>"``); a key maps to the first point clockwise from its
    own hash.  Membership churn moves only the keys adjacent to the
    joining/leaving node's points, so a node death does not reshuffle
    the whole cluster's routing.
    """

    def __init__(self, replicas: int = 64) -> None:
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []

    @staticmethod
    def _hash(material: str) -> int:
        return int(hashlib.sha256(material.encode()).hexdigest(), 16)

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def add(self, node_id: str) -> None:
        if node_id in self._nodes:
            return
        self._nodes.add(node_id)
        for k in range(self.replicas):
            bisect.insort(self._points, (self._hash(f"{node_id}#{k}"), node_id))

    def remove(self, node_id: str) -> None:
        if node_id not in self._nodes:
            return
        self._nodes.discard(node_id)
        self._points = [p for p in self._points if p[1] != node_id]

    def rebuild(self, node_ids) -> None:
        """Converge membership to exactly *node_ids*."""
        wanted = set(node_ids)
        for node_id in self.nodes - wanted:
            self.remove(node_id)
        for node_id in wanted - self._nodes:
            self.add(node_id)

    def owner(self, key: str) -> str | None:
        """The node owning *key* (a hex digest), or None when empty."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, (self._hash(key), "￿"))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


class FailureDetector:
    """Observer-side liveness from heartbeat counters.

    Feed it ``{node_id: heartbeat_seq}`` snapshots via :meth:`observe`;
    it judges each peer by how long (on *this* observer's monotonic
    clock) the counter has failed to advance.  Wall-clock skew on the
    observed node is invisible by construction -- the records carry no
    timestamps to mistrust.
    """

    def __init__(
        self,
        suspect_after_s: float,
        dead_after_s: float,
        clock=None,
    ) -> None:
        self.suspect_after_s = suspect_after_s
        self.dead_after_s = dead_after_s
        self.clock = clock or MonotonicClock()
        #: node_id -> (last seq, local time that seq was first seen).
        self._seen: dict[str, tuple[int, float]] = {}
        self._state: dict[str, str] = {}

    def observe(self, seqs: dict[str, int]) -> list[tuple[str, str, str]]:
        """Ingest a snapshot; returns ``(node, old_state, new_state)``
        transitions (new nodes appear as ``("", "alive")``)."""
        now = self.clock.now()
        transitions = []
        for node_id, seq in seqs.items():
            seen = self._seen.get(node_id)
            if seen is None or seq > seen[0]:
                self._seen[node_id] = (seq, now)
        for node_id in list(self._seen):
            if node_id not in seqs:
                # Record withdrawn: graceful departure, forget entirely.
                old = self._state.pop(node_id, "")
                del self._seen[node_id]
                if old and old != "dead":
                    transitions.append((node_id, old, "gone"))
                continue
            silent_s = now - self._seen[node_id][1]
            if silent_s >= self.dead_after_s:
                state = "dead"
            elif silent_s >= self.suspect_after_s:
                state = "suspect"
            else:
                state = "alive"
            old = self._state.get(node_id, "")
            if state != old:
                self._state[node_id] = state
                transitions.append((node_id, old, state))
        return transitions

    def state(self, node_id: str) -> str:
        return self._state.get(node_id, "unknown")

    def states(self) -> dict[str, str]:
        return dict(self._state)


class LeaseManager:
    """Persisted job leases plus claim/result arbitration files.

    One instance per node.  Held leases (this node's) are renewed by
    bumping ``renew_seq``; foreign leases are watched with the same
    counter-advance-vs-local-clock rule the failure detector uses, and
    become reclaim candidates after ``lease_timeout_s`` of silence.
    """

    def __init__(
        self,
        store_root: str | Path,
        node_id: str,
        lease_timeout_s: float = 8.0,
        clock=None,
    ) -> None:
        self.node_id = node_id
        self.lease_timeout_s = lease_timeout_s
        self.clock = clock or MonotonicClock()
        base = Path(store_root) / CLUSTER_DIR
        self.leases_dir = base / LEASES_DIR
        self.claims_dir = base / CLAIMS_DIR
        self.results_dir = base / RESULTS_DIR
        for directory in (self.leases_dir, self.claims_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
        #: job_key -> Lease owned by this node.
        self.held: dict[str, Lease] = {}
        #: job_key -> (last renew_seq, local time it advanced).
        self._watch: dict[str, tuple[int, float]] = {}

    def _path(self, job_key: str) -> Path:
        return self.leases_dir / f"{job_key}.json"

    # -- ownership ------------------------------------------------------

    def acquire(self, job_key: str, spec_wire: dict, generation: int = 0) -> Lease:
        lease = Lease(
            job_key=job_key,
            owner=self.node_id,
            spec=spec_wire,
            generation=generation,
        )
        _atomic_write(self._path(job_key), json.dumps(lease.to_wire()))
        self.held[job_key] = lease
        return lease

    def renew_all(self) -> int:
        """Bump and persist every held lease; returns the count."""
        for lease in self.held.values():
            lease.renew_seq += 1
            _atomic_write(self._path(lease.job_key), json.dumps(lease.to_wire()))
        return len(self.held)

    def release(self, job_key: str) -> None:
        self.held.pop(job_key, None)
        self._path(job_key).unlink(missing_ok=True)

    # -- scanning and reclaim -------------------------------------------

    def read_all(self) -> dict[str, Lease]:
        """Every lease on disk (including this node's own)."""
        leases = {}
        for path in self.leases_dir.glob("*.json"):
            blob = _read_json(path)
            if blob is None:
                continue
            try:
                lease = Lease.from_wire(blob)
            except ServeError:
                continue
            leases[lease.job_key] = lease
        return leases

    def expired(self, owner_dead) -> list[Lease]:
        """Foreign leases whose owner is dead *and* whose ``renew_seq``
        has not advanced for ``lease_timeout_s`` of local time.

        *owner_dead* is a predicate (node_id -> bool), normally the
        failure detector; requiring both signals keeps reclaim
        conservative -- a slow-but-heartbeating owner is never robbed.
        """
        now = self.clock.now()
        candidates = []
        on_disk = self.read_all()
        for job_key in list(self._watch):
            if job_key not in on_disk:
                del self._watch[job_key]  # released or reclaimed away
        for lease in on_disk.values():
            if lease.owner == self.node_id:
                continue
            watched = self._watch.get(lease.job_key)
            if watched is None or lease.renew_seq > watched[0]:
                # First sighting (or a renewal): the silence timer
                # starts from *our* observation, never from any claim
                # the lease file itself could make.
                self._watch[lease.job_key] = (lease.renew_seq, now)
                continue
            if now - watched[1] < self.lease_timeout_s:
                continue
            if owner_dead(lease.owner):
                candidates.append(lease)
        return candidates

    def try_claim(self, lease: Lease) -> Lease | None:
        """Atomically take over an expired lease; None if another node
        won this generation's claim."""
        claim = self.claims_dir / f"{lease.job_key}.gen{lease.generation + 1}"
        if not _create_exclusive(claim, self.node_id):
            return None
        taken = Lease(
            job_key=lease.job_key,
            owner=self.node_id,
            spec=lease.spec,
            generation=lease.generation + 1,
        )
        _atomic_write(self._path(taken.job_key), json.dumps(taken.to_wire()))
        self.held[taken.job_key] = taken
        self._watch.pop(taken.job_key, None)
        return taken

    # -- at-most-once results -------------------------------------------

    def commit_result(self, job_key: str, payload: dict) -> bool:
        """First-writer-wins result record; False when already
        committed (a duplicate execution -- same bytes, no-op)."""
        path = self.results_dir / f"{job_key}.json"
        return _create_exclusive(path, json.dumps(payload, indent=2) + "\n")

    def result_committed(self, job_key: str) -> bool:
        return (self.results_dir / f"{job_key}.json").exists()

    def results(self) -> dict[str, dict]:
        """All committed result records, by job key."""
        out = {}
        for path in self.results_dir.glob("*.json"):
            blob = _read_json(path)
            if blob is not None:
                out[path.stem] = blob
        return out


class ClusterServer(ProfilingServer):
    """A :class:`ProfilingServer` that federates through the store.

    Adds: node registration + heartbeats, the failure detector, lease
    ownership for every accepted job, lease-scan reclaim of dead peers'
    jobs, consistent-hash routing with forwarding, and the
    ``cluster-status`` / ``stall-heartbeats`` ops.
    """

    def __init__(
        self,
        store_root,
        cluster: ClusterConfig,
        retry: RetryPolicy | None = None,
        clock=None,
        **kwargs,
    ) -> None:
        super().__init__(store_root, **kwargs)
        self.cluster = cluster
        self.node_id = cluster.node_id
        self.clock = clock or MonotonicClock()
        self.retry = retry or RetryPolicy(
            attempts=3, base_delay_s=0.1, max_delay_s=1.0, timeout_s=10.0
        )
        self.ring = HashRing(cluster.ring_replicas)
        self.ring.add(self.node_id)
        self.detector = FailureDetector(
            cluster.suspect_after_s, cluster.dead_after_s, clock=self.clock
        )
        self.leases = LeaseManager(
            self.store.root,
            self.node_id,
            lease_timeout_s=cluster.lease_timeout_s,
            clock=self.clock,
        )
        self.nodes_dir = self.store.root / CLUSTER_DIR / NODES_DIR
        self.nodes_dir.mkdir(parents=True, exist_ok=True)
        self._record = NodeRecord(self.node_id, self.host, 0)
        self._peers: dict[str, NodeRecord] = {}
        #: Event-loop time before which heartbeats are suppressed (the
        #: ``stall-heartbeats`` chaos op sets this).
        self._stall_until = 0.0
        self._federate_task: asyncio.Task | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        self._record = NodeRecord(self.node_id, self.host, self.port)
        self._write_record()
        self._observe_peers()
        self._federate_task = asyncio.ensure_future(self._federate())

    async def drain(self) -> None:
        if self.draining:
            return
        await super().drain()
        # Jobs handed back via requeue.json are no longer ours to run;
        # releasing their leases stops peers from *also* reclaiming them
        # (which would duplicate work after an operator resubmits).
        for job_key in list(self.leases.held):
            self.leases.release(job_key)
        (self.nodes_dir / f"{self.node_id}.json").unlink(missing_ok=True)
        if self._federate_task is not None:
            self._federate_task.cancel()

    # -- federation loop ------------------------------------------------

    def _write_record(self) -> None:
        _atomic_write(
            self.nodes_dir / f"{self.node_id}.json",
            json.dumps(self._record.to_wire()),
        )

    async def _federate(self) -> None:
        """Heartbeat, observe peers, reclaim dead peers' leases."""
        while not self.draining:
            await asyncio.sleep(self.cluster.heartbeat_interval_s)
            if asyncio.get_running_loop().time() >= self._stall_until:
                self._heartbeat()
            self._observe_peers()
            self._reclaim_expired()

    def _heartbeat(self) -> None:
        self._record.heartbeat_seq += 1
        self._write_record()
        self.leases.renew_all()
        self.metrics.heartbeats_sent += 1

    def _read_peer_records(self) -> dict[str, NodeRecord]:
        peers = {}
        for path in self.nodes_dir.glob("*.json"):
            blob = _read_json(path)
            if blob is None:
                continue
            try:
                record = NodeRecord.from_wire(blob)
            except ServeError:
                continue
            if record.node_id != self.node_id:
                peers[record.node_id] = record
        return peers

    def _observe_peers(self) -> None:
        self._peers = self._read_peer_records()
        transitions = self.detector.observe(
            {
                node_id: record.heartbeat_seq
                for node_id, record in self._peers.items()
                if not record.draining
            }
        )
        for _node, _old, new in transitions:
            if new == "suspect":
                self.metrics.peers_suspected += 1
            elif new == "dead":
                self.metrics.peers_declared_dead += 1
        # Route only to nodes still plausibly alive; forwarding to a
        # suspect is allowed (the retry + local fallback absorbs a miss).
        members = {self.node_id} | {
            node_id
            for node_id in self._peers
            if self.detector.state(node_id) in ("alive", "suspect")
        }
        self.ring.rebuild(members)

    def _reclaim_expired(self) -> None:
        if self.draining:
            return
        for lease in self.leases.expired(
            lambda owner: self.detector.state(owner) in ("dead", "unknown")
        ):
            if self.leases.result_committed(lease.job_key):
                # The owner finished before dying; just tidy the lease.
                self.leases.release(lease.job_key)
                continue
            taken = self.leases.try_claim(lease)
            if taken is None:
                continue  # another survivor won this generation
            try:
                spec = JobSpec.from_wire(dict(lease.spec))
            except ServeError:
                self.leases.release(lease.job_key)
                continue
            self.metrics.jobs_reclaimed += 1
            # force=True: a reclaim must never bounce off a full queue.
            self._accept(spec, job_id=lease.job_key, force=True)

    # -- submission routing ---------------------------------------------

    def _next_job_id(self, spec: JobSpec) -> str:
        job_id = f"cj-{self.node_id}-{self._seq:05d}-{spec.digest()[:8]}"
        self._seq += 1
        return job_id

    def _accept(
        self, spec: JobSpec, job_id: str | None = None, force: bool = False
    ) -> dict:
        if job_id is None:
            job_id = self._next_job_id(spec)
        response = super()._accept(spec, job_id=job_id, force=force)
        if response.get("ok") and job_id not in self.leases.held:
            self.leases.acquire(job_id, spec.to_wire())
        return response

    def _job_finished(self, job) -> None:
        self.leases.commit_result(
            job.job_id,
            {
                "job_key": job.job_id,
                "node": self.node_id,
                "state": job.state,
                "status": job.status,
                "digest": job.digest,
            },
        )
        self.leases.release(job.job_id)

    def _op_submit(self, message: dict):
        if self.draining:
            return error_response("server is draining", code="draining")
        spec = JobSpec.from_wire(message)
        if message.get("forwarded") or message.get("route") == "local":
            # Forwarded once already (loop guard) or pinned here.
            return self._accept(spec)
        owner = self.ring.owner(spec.digest())
        if owner is None or owner == self.node_id or owner not in self._peers:
            return self._accept(spec)
        return self._forward(owner, spec, message)

    async def _forward(self, owner: str, spec: JobSpec, message: dict) -> dict:
        """Hand a submission to its ring owner; fall back to running it
        locally when the owner cannot be reached in time."""
        peer = self._peers[owner]
        payload = {k: v for k, v in message.items() if k != "route"}
        payload["forwarded"] = True
        loop = asyncio.get_running_loop()

        def rpc() -> dict:
            return request_once(
                peer.host, peer.port, payload, timeout=self.retry.timeout_s
            )

        try:
            response = await loop.run_in_executor(
                None,
                lambda: self.retry.call(rpc, describe=f"forward to {owner}"),
            )
        except RetryExhaustedError as exc:
            self.metrics.forward_failures += 1
            response = self._accept(spec)
            if response.get("ok"):
                response["routed_to"] = self.node_id
                response["forward_error"] = str(exc)
            return response
        if not response.get("ok") and response.get("code") == "draining":
            # Owner is leaving; run it here rather than bouncing the
            # client between nodes mid-shutdown.
            return self._accept(spec)
        if response.get("ok"):
            self.metrics.jobs_routed += 1
            response.setdefault("routed_to", owner)
        return response

    # -- cluster ops ----------------------------------------------------

    def _op_cluster_status(self, _message: dict) -> dict:
        nodes = [
            {
                **self._record.to_wire(),
                "state": "self",
            }
        ]
        for node_id in sorted(self._peers):
            nodes.append(
                {
                    **self._peers[node_id].to_wire(),
                    "state": self.detector.state(node_id),
                }
            )
        return {
            "ok": True,
            "node_id": self.node_id,
            "nodes": nodes,
            "ring": sorted(self.ring.nodes),
            "leases_held": sorted(self.leases.held),
            "results_committed": len(self.leases.results()),
        }

    def _op_stall_heartbeats(self, message: dict) -> dict:
        """Chaos op: suppress heartbeats (and lease renewals) for a
        while, so tests can drive suspect/dead transitions without
        killing the process."""
        duration_s = float(message.get("duration_s", 5.0))
        if duration_s < 0:
            raise ServeError("duration_s must be non-negative")
        loop = asyncio.get_running_loop()
        self._stall_until = loop.time() + duration_s
        return {"ok": True, "stalled_for_s": duration_s}
