r"""The asyncio profiling server: transports, scheduling, drain.

Architecture (one process, one event loop)::

    TCP clients --\                        /-- worker 0 (process)
    stdio client ---> ProfilingServer ----+--- worker 1
                      | JobQueue (prio)    \-- worker N-1
                      | SessionStore            |
                      | ServeMetrics       result queue
                      \--- result pump thread <-/

The server owns all scheduling state on the event loop thread: jobs wait
in a bounded priority queue and are dispatched to the multiprocessing
pool only when a worker slot is free, so the mp task queue never buffers
more than one job per worker and priorities hold.  A small pump thread
blocks on the pool's result queue and trampolines events onto the loop
with ``call_soon_threadsafe``; a monitor task polls worker liveness and
requeues orphaned jobs from crashed workers (restart counted in
metrics).

Shutdown (SIGTERM, SIGINT, or the ``shutdown`` op) drains: new submits
are rejected, queued jobs are handed back (state ``requeued``, persisted
to ``requeue.json`` in the store), running jobs get ``drain_grace_s`` to
finish, stragglers are terminated and requeued too.  After a drain the
metrics reconcile exactly: submitted == done + failed + requeued.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import queue as queue_mod
import signal
import sys
import threading
import time
from dataclasses import replace

from repro import __version__
from repro.errors import ProtocolError, QueueFullError, ServeError
from repro.serve.jobs import Job, JobQueue, JobSpec
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    DEFAULT_HOST,
    MAX_LINE_BYTES,
    decode_line,
    encode,
    error_response,
)
from repro.serve.store import SessionStore
from repro.serve.workers import WorkerPool
from repro.trace import NULL_TRACER, Tracer
from repro.workloads import SCENARIOS

#: How often the monitor task checks worker liveness (seconds).
MONITOR_INTERVAL_S = 0.2


class ProfilingServer:
    """Long-running profiling-as-a-service frontend."""

    def __init__(
        self,
        store_root,
        workers: int = 2,
        queue_size: int = 32,
        host: str = DEFAULT_HOST,
        port: int = 0,
        drain_grace_s: float = 30.0,
        trace: bool = False,
    ) -> None:
        self.store = SessionStore(store_root)
        self.metrics = ServeMetrics()
        #: Server-side span tracer.  Seed 0: the server's own spans are
        #: identified by submission order, not by any job's seed.
        self.tracer = Tracer(seed=0) if trace else NULL_TRACER
        #: job_id -> open queue-wait span (accepted, not yet dispatched).
        self._wait_spans: dict[str, object] = {}
        #: job_id -> open worker-execute span (dispatched, not finished).
        self._exec_spans: dict[str, object] = {}
        self.queue = JobQueue(queue_size)
        self.pool = WorkerPool(workers, store_root)
        self.jobs: dict[str, Job] = {}
        #: job_id -> worker_id (None until the worker's 'started' event).
        self.running: dict[str, int | None] = {}
        self.host = host
        self.port = port
        self.drain_grace_s = drain_grace_s
        self.draining = False
        self.finished = asyncio.Event()
        self._seq = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._tcp_server: asyncio.AbstractServer | None = None
        self._monitor_task: asyncio.Task | None = None
        self._pump_thread: threading.Thread | None = None
        self._pump_stop = threading.Event()
        self._drain_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Boot workers, the result pump, and the TCP listener."""
        self._loop = asyncio.get_running_loop()
        self.store.sweep_tmp()
        self.pool.start()
        self._pump_thread = threading.Thread(
            target=self._pump_results, name="repro-serve-pump", daemon=True
        )
        self._pump_thread.start()
        self._tcp_server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._tcp_server.sockets[0].getsockname()[1]
        self._monitor_task = asyncio.ensure_future(self._monitor_workers())

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (call after :meth:`start`)."""
        assert self._loop is not None
        for sig in (signal.SIGTERM, signal.SIGINT):
            self._loop.add_signal_handler(sig, self.request_drain)

    def request_drain(self) -> None:
        """Schedule a drain from a signal handler or an op handler."""
        if self._drain_task is None and self._loop is not None:
            self._drain_task = self._loop.create_task(self.drain())

    async def run(self) -> None:
        """start() + signal handlers + block until drained."""
        await self.start()
        self.install_signal_handlers()
        await self.finished.wait()

    async def drain(self) -> None:
        """Graceful shutdown: finish or requeue every in-flight job."""
        if self.draining:
            return
        self.draining = True
        requeued = self.queue.drain()
        deadline = (
            asyncio.get_running_loop().time() + self.drain_grace_s
        )
        while self.running and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.05)
        # Stragglers past the grace period: terminate and hand back.
        for job_id, worker_id in list(self.running.items()):
            if worker_id is not None:
                self.pool.terminate_worker(worker_id)
            if self.tracer.enabled:
                execute = self._exec_spans.pop(job_id, None)
                if execute is not None:
                    self.tracer.end(execute, terminal=False, result="drain-timeout")
            requeued.append(self.jobs[job_id])
            del self.running[job_id]
        # A worker that died *during* the grace wait had its job
        # force_pushed back onto the (already drained) queue by the
        # monitor; drain again so those jobs reach requeue.json too.
        requeued.extend(self.queue.drain())
        for job in requeued:
            job.state = "requeued"
            self.metrics.jobs_requeued += 1
            if self.tracer.enabled:
                wait = self._wait_spans.pop(job.job_id, None)
                if wait is not None:
                    self.tracer.end(wait, outcome="requeued")
                handle = self.tracer.begin("requeue", job_id=job.job_id)
                self.tracer.end(handle)
        self.store.write_requeue([job.spec.to_wire() for job in requeued])
        if self.tracer.enabled:
            depth, running = len(self.queue), len(self.running)
            self.tracer.write_jsonl(
                self.store.root / "server.trace.jsonl",
                self.tracer.manifest(
                    counters=self.metrics.counters(depth, running)
                ),
            )
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        self.pool.stop(grace_s=2.0)
        self._pump_stop.set()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        self.finished.set()

    # ------------------------------------------------------------------
    # Worker-pool plumbing
    # ------------------------------------------------------------------

    def _free_slots(self) -> int:
        return self.pool.nworkers - len(self.running)

    def _dispatch(self) -> None:
        """Hand queued jobs to the pool while slots are free."""
        while not self.draining and self._free_slots() > 0:
            job = self.queue.pop()
            if job is None:
                return
            job.state = "running"
            job.attempts += 1
            self.running[job.job_id] = None
            if self.tracer.enabled:
                wait = self._wait_spans.pop(job.job_id, None)
                if wait is not None:
                    self.tracer.end(wait, outcome="dispatched")
                self._exec_spans[job.job_id] = self.tracer.begin(
                    "worker-execute", job_id=job.job_id, scenario=job.spec.scenario
                )
            self.pool.submit(job.job_id, job.spec)

    def _pump_results(self) -> None:
        """(thread) Forward pool events onto the event loop."""
        while not self._pump_stop.is_set():
            try:
                event = self.pool.result_q.get(timeout=0.2)
            except queue_mod.Empty:
                continue
            if self._loop is not None and not self._loop.is_closed():
                self._loop.call_soon_threadsafe(self._on_worker_event, event)

    def _on_worker_event(self, event: tuple) -> None:
        kind, worker_id, payload = event
        if kind == "exit":
            return
        if kind == "started":
            job = self.jobs.get(payload)
            if job is not None and payload in self.running:
                self.running[payload] = worker_id
                job.worker = worker_id
                job.started_s = time.time()
            return
        job_id, detail = payload
        job = self.jobs.get(job_id)
        if job is None or job_id not in self.running:
            return  # stale event from a terminated/requeued job
        del self.running[job_id]
        if self.tracer.enabled:
            execute = self._exec_spans.pop(job_id, None)
            if execute is not None:
                if kind == "done" and detail.get("spans"):
                    # Worker-side run/scenario/sim spans nest under the
                    # dispatch that produced them.
                    self.tracer.adopt(detail["spans"], parent=execute)
                self.tracer.end(execute, terminal=True, result=kind)
        if kind == "done":
            job.state = "failed" if detail["status"] == "failed" else "done"
            job.status = detail["status"]
            job.digest = detail["digest"]
            job.wall_s = detail["wall_s"]
            job.throughput = detail["throughput"]
            job.quality = detail["quality"]
            if job.state == "done":
                self.metrics.jobs_done += 1
                if job.status == "degraded":
                    self.metrics.jobs_degraded += 1
            else:
                self.metrics.jobs_failed += 1
                job.error = f"data quality poor: {detail['quality']}"
            self.metrics.observe_wall(job.spec.scenario, detail["wall_s"])
        else:  # failed: the session raised
            job.state = "failed"
            job.status = "failed"
            job.error = detail
            self.metrics.jobs_failed += 1
        job.finished_s = time.time()
        self._job_finished(job)
        self._dispatch()

    def _job_finished(self, job: Job) -> None:
        """Hook for terminal transitions; cluster mode commits the
        result record and releases the job's lease here."""

    async def _monitor_workers(self) -> None:
        """Requeue jobs orphaned by worker deaths; respawn workers."""
        while True:
            await asyncio.sleep(MONITOR_INTERVAL_S)
            for worker_id in self.pool.dead_workers():
                self.metrics.worker_restarts += 1
                self.pool.restart(worker_id)
                for job_id, assigned in list(self.running.items()):
                    if assigned == worker_id:
                        del self.running[job_id]
                        job = self.jobs[job_id]
                        job.state = "queued"
                        job.worker = None
                        self.metrics.job_retries += 1
                        if self.tracer.enabled:
                            execute = self._exec_spans.pop(job_id, None)
                            if execute is not None:
                                self.tracer.end(
                                    execute, terminal=False, result="worker-crash"
                                )
                            self._wait_spans[job_id] = self.tracer.begin(
                                "queue-wait", job_id=job_id, retry=True
                            )
                        self.queue.force_push(job)
            self._dispatch()

    # ------------------------------------------------------------------
    # Transports
    # ------------------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode(error_response("request line too long")))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._respond(line)
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def serve_stdio(self) -> None:
        """JSON-lines on stdin/stdout (for pipelines and supervisors).

        EOF on stdin triggers the same graceful drain as SIGTERM.
        """
        loop = asyncio.get_running_loop()
        while not self.draining:
            line = await loop.run_in_executor(None, sys.stdin.readline)
            if not line:
                break
            response = await self._respond(line)
            sys.stdout.write(json.dumps(response) + "\n")
            sys.stdout.flush()
        self.request_drain()

    async def _respond(self, line: bytes | str) -> dict:
        """Handle one request line; op handlers may be coroutines (the
        cluster's forwarding op awaits a peer without blocking the loop)."""
        response = self._handle_line(line)
        if inspect.isawaitable(response):
            try:
                response = await response
            except ServeError as exc:
                response = error_response(str(exc))
        return response

    def _handle_line(self, line: bytes | str) -> dict:
        try:
            message = decode_line(line)
        except ProtocolError as exc:
            return error_response(str(exc))
        try:
            return self._handle(message)
        except ServeError as exc:
            return error_response(str(exc))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _handle(self, message: dict) -> dict:
        op = message["op"]
        handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
        if handler is None:
            raise ServeError(f"unknown op {op!r}")
        return handler(message)

    def _op_ping(self, _message: dict) -> dict:
        return {
            "ok": True,
            "version": __version__,
            "scenarios": sorted(SCENARIOS),
            "workers": self.pool.nworkers,
            "draining": self.draining,
        }

    def _op_submit(self, message: dict) -> dict:
        if self.draining:
            return error_response("server is draining", code="draining")
        spec = JobSpec.from_wire(message)
        return self._accept(spec)

    def _next_job_id(self, spec: JobSpec) -> str:
        job_id = f"job-{self._seq:05d}-{spec.digest()[:8]}"
        self._seq += 1
        return job_id

    def _accept(
        self, spec: JobSpec, job_id: str | None = None, force: bool = False
    ) -> dict:
        """Admit a validated spec: enqueue or reject with backpressure.

        Shared by local submits, forwarded cluster submissions (which
        carry the originating node's ``job_id``), and lease reclaims
        (which pass ``force=True`` -- a reclaimed job must never be
        lost to a momentarily full queue).
        """
        if self.tracer.enabled and not spec.trace:
            # A tracing server traces its jobs too, so worker subtrees
            # can be adopted; digest-excluded, so archives are unchanged.
            spec = replace(spec, trace=True)
        if job_id is None:
            job_id = self._next_job_id(spec)
        job = Job(job_id=job_id, spec=spec)
        try:
            if force:
                self.queue.force_push(job)
            else:
                self.queue.push(job)
        except QueueFullError:
            self.metrics.jobs_rejected += 1
            retry_after = self.metrics.retry_after_s(
                len(self.queue), self.pool.nworkers
            )
            return error_response(
                f"queue is full ({self.queue.maxsize} jobs); retry later",
                code="queue_full",
                retry_after_s=retry_after,
            )
        self.jobs[job_id] = job
        self.metrics.jobs_submitted += 1
        if self.tracer.enabled:
            self._wait_spans[job_id] = self.tracer.begin(
                "queue-wait", job_id=job_id, scenario=spec.scenario
            )
        self._dispatch()
        return {
            "ok": True,
            "job_id": job_id,
            "state": job.state,
            "position": len(self.queue),
        }

    def _op_status(self, message: dict) -> dict:
        job_id = message.get("job_id")
        if job_id is not None:
            job = self.jobs.get(job_id)
            if job is None:
                raise ServeError(f"unknown job {job_id!r}")
            return {"ok": True, "job": job.to_wire()}
        return {
            "ok": True,
            "jobs": [job.to_wire() for job in self.jobs.values()],
            "queue_depth": len(self.queue),
            "running": len(self.running),
        }

    def _op_fetch(self, message: dict) -> dict:
        digest = message.get("digest")
        if digest is None:
            job_id = message.get("job_id")
            job = self.jobs.get(job_id)
            if job is None:
                # Allow fetching by archive digest through the same field
                # (the CLI's positional argument is "job id or digest").
                if job_id and self.store.has(job_id):
                    digest = job_id
                else:
                    raise ServeError(f"unknown job {job_id!r}")
            elif job.digest is None:
                raise ServeError(
                    f"job {job_id} has no stored result (state: {job.state})"
                )
            else:
                digest = job.digest
        view = message.get("view", "data-profile")
        rendered = self.store.render_view(
            digest,
            view,
            type_name=message.get("type"),
            top=int(message.get("top", 8)),
            tracer=self.tracer,
        )
        response = {"ok": True, "digest": digest, "view": view}
        if view == "archive":
            response["archive"] = rendered
        else:
            response["rendered"] = rendered
        return response

    def _op_list(self, _message: dict) -> dict:
        return {"ok": True, "archives": self.store.listing()}

    def _op_metrics(self, _message: dict) -> dict:
        depth, running = len(self.queue), len(self.running)
        # The view cache counts its own traffic; mirror it into the
        # metrics registry so one snapshot carries everything.
        self.metrics.view_cache_hits = self.store.views.hits
        self.metrics.view_cache_misses = self.store.views.misses
        return {
            "ok": True,
            "counters": self.metrics.counters(depth, running),
            "rendered": self.metrics.render(depth, running),
        }

    def _op_shutdown(self, _message: dict) -> dict:
        self.request_drain()
        return {"ok": True, "draining": True}
