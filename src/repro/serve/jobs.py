"""Job model for the profiling service: specs, states, and the queue.

A :class:`JobSpec` is the canonical description of one profiling session
-- scenario, cores, engine, seed, duration, IBS interval, optional fault
spec.  It is deliberately *complete*: two equal specs produce
bit-identical session archives (the workloads, fault plans, and both
engines are deterministic), which is what makes the store
content-addressable and lets ``fetch`` results be compared against
one-shot CLI runs byte for byte.

Job lifecycle::

    queued -> running -> done (status ok | degraded)
                      -> failed (status failed: poor data or a crash)
    queued/running -> requeued (drain handed the job back at shutdown)

Status comes from the session's :class:`~repro.dprof.quality.DataQuality`
-- the same signal the one-shot CLI maps to exit codes 0/3/4 -- expressed
as a service-shaped string instead of a process exit code.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from dataclasses import asdict, dataclass, field

from repro.dprof.analysis import ANALYSIS_MODES
from repro.dprof.quality import EXIT_DEGRADED, EXIT_OK
from repro.errors import FaultInjectionError, QueueFullError, ServeError
from repro.faults import FaultPlan
from repro.workloads import SCENARIO_DEFAULTS, SCENARIOS

#: Engines a job may request (mirrors MachineConfig validation).
VALID_ENGINES = ("reference", "fast")


# ----------------------------------------------------------------------
# Clocks: the seam lease timing goes through
# ----------------------------------------------------------------------
#
# Lease liveness judgements must never read the wall clock: a node whose
# wall clock is skewed (NTP step, VM resume, operator fat-finger) would
# otherwise expire every peer's leases at once, or never expire any.
# Every lease decision therefore goes through a Clock object whose only
# contract is "now() is monotonic for this observer"; production code
# uses MonotonicClock (time.monotonic), tests inject FakeClock and
# advance it explicitly -- including with absurd offsets, to prove that
# only *local deltas* ever matter.


class MonotonicClock:
    """The production clock: :func:`time.monotonic`, immune to wall skew."""

    def now(self) -> float:
        return time.monotonic()


class FakeClock:
    """A hand-cranked clock for tests.

    ``offset`` models an arbitrary skew (it shifts every reading, the
    way a wrong wall clock would); correctness of lease logic must not
    depend on it, only on :meth:`advance` deltas.
    """

    def __init__(self, start: float = 0.0, offset: float = 0.0) -> None:
        self._now = start + offset

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ServeError("FakeClock cannot run backwards")
        self._now += seconds


@dataclass
class Lease:
    """Ownership of one cluster job by one node, renewable and scannable.

    Deliberately *clock-free on the wire*: a lease carries no timestamp,
    only a ``renew_seq`` counter the owner bumps on every heartbeat.
    Observers judge expiry by watching the counter advance against their
    own monotonic clock, so a node with a skewed wall clock can neither
    lose its leases early nor hold them forever.  ``generation`` counts
    ownership transfers (a reclaim bumps it), which keys the one-shot
    claim files that arbitrate racing reclaimers.
    """

    job_key: str
    owner: str
    spec: dict
    renew_seq: int = 0
    generation: int = 0

    def to_wire(self) -> dict:
        return {
            "job_key": self.job_key,
            "owner": self.owner,
            "spec": self.spec,
            "renew_seq": self.renew_seq,
            "generation": self.generation,
        }

    @classmethod
    def from_wire(cls, blob: dict) -> "Lease":
        try:
            return cls(
                job_key=blob["job_key"],
                owner=blob["owner"],
                spec=blob["spec"],
                renew_seq=int(blob.get("renew_seq", 0)),
                generation=int(blob.get("generation", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed lease record: {exc}") from exc

#: Terminal and non-terminal job states.
JOB_STATES = ("queued", "running", "done", "failed", "requeued")

#: Per-job data-quality statuses (set once a session completes).
JOB_STATUSES = ("ok", "degraded", "failed")


def status_from_exit_code(code: int) -> str:
    """Map a data-quality exit code (0/3/4) to a job status string."""
    if code == EXIT_OK:
        return "ok"
    if code == EXIT_DEGRADED:
        return "degraded"
    return "failed"


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to run one profiling session deterministically."""

    scenario: str
    cores: int = 4
    engine: str = "fast"
    seed: int = 11
    duration: int = 0  # 0 = scenario default, resolved by create()
    interval: int = 400
    fault_spec: str | None = None
    #: Analysis pipeline for the session's offline half ("indexed" or
    #: "reference"); both produce bit-identical archives and views.
    analysis: str = "indexed"
    #: Higher runs sooner; does not affect the session result, so it is
    #: excluded from the content digest.
    priority: int = 0
    #: Record a span trace for this job (written next to the archive).
    #: Observability only -- excluded from the content digest.
    trace: bool = False

    @classmethod
    def create(cls, **kwargs) -> "JobSpec":
        """Build a validated spec, resolving scenario defaults.

        Raises :class:`ServeError` naming the offending field; this is
        the one place submit-side validation happens, shared by the
        server, the CLI's one-shot ``run-once``, and the benchmark.

        ``run=RunConfig(...)`` (see :mod:`repro.config`) expands to the
        shared ``seed``/``engine``/``analysis``/``trace`` knobs; explicit
        kwargs win over the RunConfig's values.
        """
        run = kwargs.pop("run", None)
        if run is not None:
            for name, value in run.job_kwargs().items():
                kwargs.setdefault(name, value)
        kwargs = {k: v for k, v in kwargs.items() if v is not None}
        scenario = kwargs.get("scenario")
        if scenario not in SCENARIOS:
            known = ", ".join(sorted(SCENARIOS))
            raise ServeError(f"unknown scenario {scenario!r} (known: {known})")
        defaults = SCENARIO_DEFAULTS[scenario]
        kwargs.setdefault("cores", defaults.cores)
        kwargs.setdefault("interval", defaults.interval)
        if not kwargs.get("duration"):
            kwargs["duration"] = defaults.duration
        spec = cls(**kwargs)
        if spec.engine not in VALID_ENGINES:
            raise ServeError(
                f"unknown engine {spec.engine!r} (choose {' or '.join(VALID_ENGINES)})"
            )
        if spec.analysis not in ANALYSIS_MODES:
            raise ServeError(
                f"unknown analysis {spec.analysis!r} "
                f"(choose {' or '.join(ANALYSIS_MODES)})"
            )
        for name in ("cores", "duration", "interval"):
            value = getattr(spec, name)
            if not isinstance(value, int) or value <= 0:
                raise ServeError(f"{name} must be a positive integer, got {value!r}")
        if not isinstance(spec.seed, int):
            raise ServeError(f"seed must be an integer, got {spec.seed!r}")
        if spec.fault_spec is not None:
            try:
                FaultPlan.parse(spec.fault_spec)
            except FaultInjectionError as exc:
                raise ServeError(f"bad fault_spec: {exc}") from exc
        return spec

    @classmethod
    def from_wire(cls, message: dict) -> "JobSpec":
        """Build a spec from a submit message, ignoring non-spec keys."""
        fields = {
            name: message[name]
            for name in (
                "scenario",
                "cores",
                "engine",
                "seed",
                "duration",
                "interval",
                "fault_spec",
                "analysis",
                "priority",
                "trace",
            )
            if message.get(name) is not None
        }
        return cls.create(**fields)

    def to_wire(self) -> dict:
        """JSON-compatible form (round-trips through :meth:`from_wire`)."""
        return asdict(self)

    def canonical(self) -> dict:
        """The result-determining fields only (priority and the trace
        flag excluded -- neither changes the session archive)."""
        blob = asdict(self)
        blob.pop("priority")
        blob.pop("trace")
        return blob

    def digest(self) -> str:
        """SHA-256 over the canonical spec; equal specs => equal results."""
        canonical = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def fault_plan(self) -> FaultPlan | None:
        return FaultPlan.parse(self.fault_spec) if self.fault_spec else None


@dataclass
class Job:
    """One submitted job's mutable service-side record."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    status: str | None = None  # ok / degraded / failed, once executed
    digest: str | None = None  # archive digest in the session store
    error: str | None = None
    attempts: int = 0
    worker: int | None = None
    submitted_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    wall_s: float | None = None
    throughput: float | None = None
    quality: str | None = None  # coverage one-liner from DataQuality

    def to_wire(self) -> dict:
        blob = {
            "job_id": self.job_id,
            "state": self.state,
            "status": self.status,
            "digest": self.digest,
            "error": self.error,
            "attempts": self.attempts,
            "wall_s": round(self.wall_s, 4) if self.wall_s is not None else None,
            "throughput": self.throughput,
            "quality": self.quality,
            "submitted_s": self.submitted_s,
            "finished_s": self.finished_s,
            "spec": self.spec.to_wire(),
        }
        return blob


class JobQueue:
    """Bounded max-priority queue with FIFO order within a priority.

    ``push`` raises :class:`QueueFullError` at capacity (the server turns
    that into a reject-with-retry-after response); ``force_push`` bypasses
    the bound for crash-requeues so a worker death can never lose a job to
    a full queue.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ServeError(f"queue maxsize must be positive, got {maxsize!r}")
        self.maxsize = maxsize
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, job: Job) -> None:
        if len(self._heap) >= self.maxsize:
            raise QueueFullError(f"queue is full ({self.maxsize} jobs)")
        self.force_push(job)

    def force_push(self, job: Job) -> None:
        heapq.heappush(self._heap, (-job.spec.priority, self._seq, job))
        self._seq += 1

    def pop(self) -> Job | None:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def drain(self) -> list[Job]:
        """Empty the queue, returning jobs in pop order (for requeueing)."""
        drained = []
        while self._heap:
            drained.append(heapq.heappop(self._heap)[2])
        return drained
