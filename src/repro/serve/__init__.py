"""``repro.serve`` -- concurrent profiling-as-a-service.

The paper's workflow is "profile, fix, re-profile" against live
workloads; DCPI-lineage profilers become genuinely useful once
collection is decoupled from analysis behind an always-on service.  This
package is that front door for the reproduction: a long-running server
that accepts profiling-job submissions, executes them concurrently on a
multiprocessing worker pool (using the fast engine by default), lands
the resulting session archives in a content-addressed store, and serves
any of the four DProf views back without recomputation.

Modules:

- :mod:`repro.serve.protocol` -- JSON-lines wire protocol + blocking client;
- :mod:`repro.serve.jobs` -- job specs, states, the bounded priority queue;
- :mod:`repro.serve.workers` -- session execution + the worker pool;
- :mod:`repro.serve.store` -- content-addressed archive store;
- :mod:`repro.serve.metrics` -- counters, percentiles, reconciliation;
- :mod:`repro.serve.server` -- the asyncio server (TCP and stdio), drain.

Entry points: ``python -m repro.cli serve`` to run one, and the
``submit`` / ``status`` / ``fetch`` CLI trio to talk to it.

.. deprecated::
    Importing names from ``repro.serve`` directly is deprecated; use the
    blessed facade :mod:`repro.api` (or the defining submodule, e.g.
    :mod:`repro.serve.server`).  The first shimmed access of each name
    emits one :class:`DeprecationWarning`; behavior is otherwise
    unchanged.
"""

import importlib
import warnings

#: name -> defining submodule, resolved lazily by :func:`__getattr__`.
_EXPORTS = {
    "ClusterConfig": "repro.serve.cluster",
    "ClusterServer": "repro.serve.cluster",
    "FailureDetector": "repro.serve.cluster",
    "FakeClock": "repro.serve.jobs",
    "HashRing": "repro.serve.cluster",
    "Job": "repro.serve.jobs",
    "JobQueue": "repro.serve.jobs",
    "JobSpec": "repro.serve.jobs",
    "Lease": "repro.serve.jobs",
    "LeaseManager": "repro.serve.cluster",
    "MonotonicClock": "repro.serve.jobs",
    "ProfilingServer": "repro.serve.server",
    "RetryExhaustedError": "repro.serve.retry",
    "RetryPolicy": "repro.serve.retry",
    "ServeClient": "repro.serve.protocol",
    "ServeMetrics": "repro.serve.metrics",
    "SessionStore": "repro.serve.store",
    "ViewCache": "repro.serve.store",
    "WorkerPool": "repro.serve.workers",
    "execute_job": "repro.serve.workers",
    "execute_job_to_store": "repro.serve.workers",
    "request_once": "repro.serve.protocol",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"importing {name!r} from 'repro.serve' is deprecated; "
        f"use 'repro.api' (or {module_name!r}) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    value = getattr(importlib.import_module(module_name), name)
    # Cache so the warning fires once per name (a from-import probes the
    # attribute twice: importlib's hasattr check, then the real getattr).
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
