"""``repro.serve`` -- concurrent profiling-as-a-service.

The paper's workflow is "profile, fix, re-profile" against live
workloads; DCPI-lineage profilers become genuinely useful once
collection is decoupled from analysis behind an always-on service.  This
package is that front door for the reproduction: a long-running server
that accepts profiling-job submissions, executes them concurrently on a
multiprocessing worker pool (using the fast engine by default), lands
the resulting session archives in a content-addressed store, and serves
any of the four DProf views back without recomputation.

Modules:

- :mod:`repro.serve.protocol` -- JSON-lines wire protocol + blocking client;
- :mod:`repro.serve.jobs` -- job specs, states, the bounded priority queue;
- :mod:`repro.serve.workers` -- session execution + the worker pool;
- :mod:`repro.serve.store` -- content-addressed archive store;
- :mod:`repro.serve.metrics` -- counters, percentiles, reconciliation;
- :mod:`repro.serve.server` -- the asyncio server (TCP and stdio), drain.

Entry points: ``python -m repro.cli serve`` to run one, and the
``submit`` / ``status`` / ``fetch`` CLI trio to talk to it.
"""

from repro.serve.jobs import Job, JobQueue, JobSpec
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import ServeClient, request_once
from repro.serve.server import ProfilingServer
from repro.serve.store import SessionStore, ViewCache
from repro.serve.workers import WorkerPool, execute_job, execute_job_to_store

__all__ = [
    "Job",
    "JobQueue",
    "JobSpec",
    "ProfilingServer",
    "ServeClient",
    "ServeMetrics",
    "SessionStore",
    "ViewCache",
    "WorkerPool",
    "execute_job",
    "execute_job_to_store",
    "request_once",
]
