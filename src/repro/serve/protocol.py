"""JSON-lines wire protocol for the profiling service.

One message per line, UTF-8 JSON objects, over either transport (TCP or
stdio).  Requests carry an ``op`` field; responses always carry ``ok``
(bool) and, on failure, ``error`` (str).  The protocol is deliberately
transport-agnostic: :mod:`repro.serve.server` speaks it over asyncio
streams, :class:`ServeClient` speaks it over a blocking socket for the
CLI's ``submit``/``status``/``fetch`` trio, and tests can drive either.

Operations (see :mod:`repro.serve.server` for handler semantics):

``ping``      liveness + server version + known scenarios
``submit``    enqueue a job; rejected with ``retry_after_s`` when full
``status``    one job (``job_id``) or the whole job table
``fetch``     a completed job's stored profile, rendered as a view
``list``      the session store's archives
``metrics``   counters + a Prometheus-style text rendering
``shutdown``  graceful drain-and-stop (same path as SIGTERM)
"""

from __future__ import annotations

import json
import socket

from repro.errors import ProtocolError

#: Upper bound on one protocol line.  Archives ride in fetch *responses*
#: (written, not line-read), but the asyncio reader limit and the client
#: both honour this so a corrupt peer cannot balloon memory.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Default TCP endpoint; port 0 = ephemeral (the server reports the real
#: port on stdout and via ``--port-file``).
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 0


def encode(message: dict) -> bytes:
    """One wire line for *message* (compact JSON + newline)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes | str) -> dict:
    """Parse one wire line; raises :class:`ProtocolError` on junk."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not UTF-8: {exc}") from exc
    line = line.strip()
    if not line:
        raise ProtocolError("empty message")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message is not a JSON object")
    if not isinstance(message.get("op"), str):
        raise ProtocolError("message has no string 'op' field")
    return message


def error_response(message: str, **extra) -> dict:
    """Uniform failure payload."""
    response = {"ok": False, "error": message}
    response.update(extra)
    return response


class ServeClient:
    """Blocking JSON-lines client over one TCP connection.

    Used by the CLI's ``submit``/``status``/``fetch`` commands and the
    smoke tests.  One client = one connection; requests pipeline in
    order.  Context-manager friendly.
    """

    def __init__(
        self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, message: dict) -> dict:
        """Send one request and block for its response."""
        self._file.write(encode(message))
        self._file.flush()
        line = self._file.readline(MAX_LINE_BYTES)
        if not line:
            raise ProtocolError("server closed the connection mid-request")
        return decode_response(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def decode_response(line: bytes | str) -> dict:
    """Parse a response line (an object with an ``ok`` field)."""
    if isinstance(line, bytes):
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"response is not UTF-8: {exc}") from exc
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"response is not valid JSON: {exc}") from exc
    if not isinstance(message, dict) or "ok" not in message:
        raise ProtocolError("response is not an object with an 'ok' field")
    return message


def request_once(host: str, port: int, message: dict, timeout: float = 30.0) -> dict:
    """One-shot request/response on a fresh connection."""
    with ServeClient(host, port, timeout=timeout) as client:
        return client.request(message)
