"""Path trace generation (paper Section 5.4).

Combines the two raw data sets into per-(type, execution path) traces:

1. access samples are aggregated by (type, offset-chunk, ip) -- done
   incrementally by :class:`~repro.dprof.access_sampler.AccessSampleCollector`;
2. object access histories are **clustered into path families**: two
   histories belong to the same family when they agree on the (ip, cpu
   change) sequence of every watched chunk they share.  Pairwise histories
   share chunks with many others, so families stitch together into
   whole-object paths ("matching up common access patterns", Section 5.3);
3. within a family, the per-chunk event sequences are merged into a single
   total order -- pairwise histories contribute observed cross-chunk
   orderings (a precedence graph, topologically sorted), and mean
   time-since-allocation breaks remaining ties (and is the only signal in
   single-offset mode);
4. each merged event is augmented with the access-sample statistics of its
   (type, offset, ip) key, producing :class:`~repro.dprof.records.PathTrace`
   rows shaped like the paper's Table 4.1.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.dprof.access_sampler import AccessSampleCollector
from repro.dprof.records import (
    ObjectAccessHistory,
    PathTrace,
    PathTraceEntry,
)
from repro.hw.events import CacheLevel
from repro.kernel.symbols import SymbolTable
from repro.util.stats import OnlineStats

#: "No offset observed yet" sentinel for an event's low byte bound; far
#: above any real object offset.  Shared with the indexed pipeline in
#: :mod:`repro.dprof.analysis`, which must replicate it bit-for-bit.
OFFSET_SENTINEL = 1 << 62


def canonical_trace_order(traces) -> list[PathTrace]:
    """Path traces by descending frequency with a *stable* tie-break.

    Equal-frequency traces used to keep whatever dict-insertion order the
    builder happened to produce; content-addressed caching and the
    indexed/reference equivalence contract both need a total order that
    depends only on the traces themselves, so ties break on (type name,
    path key).  Path keys are unique per trace after deduplication, so
    the result is fully determined.
    """
    return sorted(
        traces, key=lambda t: (-t.frequency, t.type_name, t.path_key())
    )


@dataclass
class _Event:
    """One position of one chunk's canonical sequence within a family."""

    chunk: tuple[int, int]
    position: int
    ip: int
    cpu_changed: bool
    is_write: bool
    times: OnlineStats = field(default_factory=OnlineStats)
    lo: int = OFFSET_SENTINEL
    hi: int = 0

    @property
    def key(self) -> tuple:
        return (self.chunk, self.position)


@dataclass
class _Family:
    """A path family: consistent per-chunk projections plus members."""

    projections: dict[tuple[int, int], tuple] = field(default_factory=dict)
    members: list[ObjectAccessHistory] = field(default_factory=list)

    def compatible(self, history: ObjectAccessHistory) -> bool:
        """True when the history agrees with the family on shared chunks."""
        shared = False
        for chunk in history.offsets:
            existing = self.projections.get(chunk)
            if existing is None:
                continue
            shared = True
            if existing != history.projection(chunk):
                return False
        # A history with no shared chunks is compatible by definition; the
        # caller prefers families it genuinely overlaps with.
        return True

    def shares_chunk(self, history: ObjectAccessHistory) -> bool:
        """True when the history watches a chunk the family already has."""
        return any(chunk in self.projections for chunk in history.offsets)

    def absorb(self, history: ObjectAccessHistory) -> None:
        """Add the history, extending the family's chunk coverage."""
        for chunk in history.offsets:
            self.projections.setdefault(chunk, history.projection(chunk))
        self.members.append(history)


class PathTraceBuilder:
    """Builds path traces for one type from histories plus sample stats."""

    def __init__(
        self,
        symbols: SymbolTable,
        sampler: AccessSampleCollector | None = None,
    ) -> None:
        self.symbols = symbols
        self.sampler = sampler

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def build(
        self, type_name: str, histories: list[ObjectAccessHistory]
    ) -> list[PathTrace]:
        """Cluster, merge, and augment; returns traces by descending frequency."""
        complete = [h for h in histories if h.complete and h.type_name == type_name]
        families = self._cluster(complete)
        traces: dict[tuple, PathTrace] = {}
        for family in families:
            trace = self._merge_family(type_name, family)
            if trace is None:
                continue
            existing = traces.get(trace.path_key())
            if existing is not None:
                existing.frequency += trace.frequency
            else:
                traces[trace.path_key()] = trace
        return canonical_trace_order(traces.values())

    @staticmethod
    def unique_paths(histories: list[ObjectAccessHistory]) -> set[tuple]:
        """Distinct execution-path signatures among the histories.

        This is the quantity Figure 6-3 tracks: how many distinct paths
        have been captured after collecting a given number of history
        sets.
        """
        return {h.signature() for h in histories if h.complete}

    # ------------------------------------------------------------------
    # Clustering
    # ------------------------------------------------------------------

    def _cluster(self, histories: list[ObjectAccessHistory]) -> list[_Family]:
        """Group histories into path families on *shared-chunk evidence*.

        Pairwise histories go first: they watch two chunks at once, so
        they stitch transitively into whole-object families ("matching up
        common access patterns to the same offset", Section 5.3).  Single
        -offset histories then join only a family whose projection of
        their chunk matches exactly; with no such evidence they form a
        per-chunk family of their own rather than being guessed into an
        unrelated path -- the merge is conservative because a wrong merge
        fabricates orderings that never happened.
        """
        pairs = [h for h in histories if h.is_pair]
        singles = [h for h in histories if not h.is_pair]
        families: list[_Family] = []
        for history in pairs:
            target = None
            for family in families:
                if family.shares_chunk(history) and family.compatible(history):
                    target = family
                    break
            if target is None:
                target = _Family()
                families.append(target)
            target.absorb(history)
        for history in singles:
            target = None
            for family in families:
                if family.shares_chunk(history) and family.compatible(history):
                    target = family
                    break
            if target is None:
                target = _Family()
                families.append(target)
            target.absorb(history)
        return families

    # ------------------------------------------------------------------
    # Merging one family into a total order
    # ------------------------------------------------------------------

    def _merge_family(self, type_name: str, family: _Family) -> PathTrace | None:
        events = self._collect_events(family)
        if not events:
            return None
        order = self._order_events(family, events)
        entries = [self._entry_for(type_name, events[key]) for key in order]
        return PathTrace(
            type_name=type_name, entries=entries, frequency=len(family.members)
        )

    def _collect_events(self, family: _Family) -> dict[tuple, _Event]:
        """Instantiate one event per (chunk, position) of the projections."""
        events: dict[tuple, _Event] = {}
        for chunk, projection in family.projections.items():
            for position, (ip, cpu_changed) in enumerate(projection):
                events[(chunk, position)] = _Event(
                    chunk=chunk,
                    position=position,
                    ip=ip,
                    cpu_changed=cpu_changed,
                    is_write=False,
                )
        # Fill in times / offsets / write flags from member histories.
        for history in family.members:
            counters: dict[tuple[int, int], int] = defaultdict(int)
            for el in history.elements:
                chunk = _chunk_of(history, el.offset)
                if chunk is None:
                    continue
                position = counters[chunk]
                counters[chunk] += 1
                event = events.get((chunk, position))
                if event is None:
                    continue
                event.times.add(el.time)
                event.lo = min(event.lo, el.offset)
                event.hi = max(event.hi, el.offset + 4)
                if el.is_write:
                    event.is_write = True
        return events

    def _order_events(
        self, family: _Family, events: dict[tuple, _Event]
    ) -> list[tuple]:
        """Topologically order events by pairwise precedence, then time."""
        succ: dict[tuple, set[tuple]] = defaultdict(set)
        pred_count: dict[tuple, int] = {key: 0 for key in events}
        # Within a chunk, positions are totally ordered by construction.
        for chunk, projection in family.projections.items():
            for position in range(len(projection) - 1):
                a, b = (chunk, position), (chunk, position + 1)
                if b not in succ[a]:
                    succ[a].add(b)
                    pred_count[b] += 1
        # Across chunks, pairwise histories supply observed orderings.
        for history in family.members:
            if not history.is_pair:
                continue
            counters: dict[tuple[int, int], int] = defaultdict(int)
            seq: list[tuple] = []
            for el in history.elements:
                chunk = _chunk_of(history, el.offset)
                if chunk is None:
                    continue
                key = (chunk, counters[chunk])
                counters[chunk] += 1
                if key in events:
                    seq.append(key)
            # Every observed ordering is a constraint, not just adjacent
            # ones: the history is a total order over its own elements.
            for i, a in enumerate(seq):
                for b in seq[i + 1 :]:
                    if a[0] != b[0] and b not in succ[a] and a not in succ[b]:
                        # Skip edges that would immediately conflict with
                        # an opposite observation from another object.
                        succ[a].add(b)
                        pred_count[b] += 1
        # Kahn's algorithm; mean time breaks ties (and orders everything
        # in single-offset mode, where there are no cross-chunk edges).
        ready = [key for key, count in pred_count.items() if count == 0]
        order: list[tuple] = []
        while ready:
            ready.sort(key=lambda key: (events[key].times.mean, key))
            key = ready.pop(0)
            order.append(key)
            for nxt in succ.get(key, ()):
                pred_count[nxt] -= 1
                if pred_count[nxt] == 0:
                    ready.append(nxt)
        if len(order) < len(events):
            # A cycle (conflicting pairwise observations): fall back to
            # time ordering for the remainder, as the paper concedes the
            # merge "is not perfect".
            remaining = [key for key in events if key not in set(order)]
            remaining.sort(key=lambda key: (events[key].times.mean, key))
            order.extend(remaining)
        return order

    def _entry_for(self, type_name: str, event: _Event) -> PathTraceEntry:
        fn = self.symbols.try_resolve(event.ip) or f"ip:{event.ip:#x}"
        hit_probs: dict[CacheLevel, float] = {}
        mean_latency = 0.0
        sample_count = 0
        if self.sampler is not None:
            stats = self.sampler.stats_for(type_name, event.lo, event.ip)
            if stats is None:
                # The chunk boundary may not align with the sampler's
                # binning; try the watched chunk's base offset.
                stats = self.sampler.stats_for(type_name, event.chunk[0], event.ip)
            if stats is not None and stats.count > 0:
                hit_probs = {
                    level: stats.hit_probability(level)
                    for level in CacheLevel
                    if stats.level_counts[level] > 0
                }
                mean_latency = stats.latency.mean
                sample_count = stats.count
        lo = event.lo if event.lo < OFFSET_SENTINEL else event.chunk[0]
        hi = event.hi if event.hi > 0 else event.chunk[0] + event.chunk[1]
        return PathTraceEntry(
            ip=event.ip,
            fn=fn,
            cpu_changed=event.cpu_changed,
            offsets=(lo, hi),
            is_write=event.is_write,
            mean_time=event.times.mean,
            hit_probabilities=hit_probs,
            mean_latency=mean_latency,
            sample_count=sample_count,
        )


def _chunk_of(history: ObjectAccessHistory, offset: int) -> tuple[int, int] | None:
    """The watched chunk of *history* containing *offset*, if any."""
    for chunk in history.offsets:
        lo, length = chunk
        if lo <= offset < lo + length:
            return chunk
    return None
