"""Report rendering: path traces in the thesis's Table 4.1 format."""

from __future__ import annotations

from repro.dprof.records import PathTrace
from repro.hw.events import CacheLevel
from repro.util.tables import TextTable, format_percent

#: Human labels for cache levels, phrased the way Table 4.1 phrases them.
LEVEL_LABELS = {
    CacheLevel.L1: "local L1",
    CacheLevel.L2: "local L2",
    CacheLevel.L3: "shared L3",
    CacheLevel.FOREIGN: "foreign cache",
    CacheLevel.DRAM: "DRAM",
}


def render_path_trace(trace: PathTrace) -> str:
    """Render one path trace like the paper's Table 4.1.

    Columns: mean timestamp, function (standing in for the program
    counter), CPU-change flag, accessed offsets, dominant cache hit
    probability, and mean access time.
    """
    table = TextTable(
        [
            "Timestamp",
            "Program counter",
            "CPU change",
            "Offsets",
            "Cache hit probability",
            "Access time",
        ],
        title=f"Path trace: {trace.type_name} (frequency {trace.frequency})",
    )
    for entry in trace.entries:
        probs = sorted(
            entry.hit_probabilities.items(), key=lambda kv: kv[1], reverse=True
        )
        if probs:
            level, p = probs[0]
            prob_text = f"{format_percent(p, 0)} {LEVEL_LABELS[level]}"
        else:
            prob_text = "-"
        table.add_row(
            f"{entry.mean_time:.0f}",
            f"{entry.fn}()",
            "yes" if entry.cpu_changed else "no",
            f"{entry.offsets[0]}-{entry.offsets[1]}",
            prob_text,
            f"{entry.mean_latency:.0f} cyc" if entry.mean_latency else "-",
        )
    return table.render()


def render_path_traces(traces: list[PathTrace], limit: int = 3) -> str:
    """Render the most frequent paths of a type."""
    parts = [render_path_trace(t) for t in traces[:limit]]
    return "\n\n".join(parts)
