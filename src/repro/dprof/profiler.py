"""The DProf profiler facade.

Typical session, mirroring how the paper's case studies use the tool::

    dprof = DProf(kernel)
    dprof.attach()                      # address set + IBS sampling on
    ... run the workload ...            # machine.run(...)
    dprof.collect_histories("skbuff", sets=40)
    ... keep the workload running until dprof.histories_done ...
    dprof.detach()

    profile = dprof.data_profile()      # Table 6.1-style ranking
    ws      = dprof.working_set()       # live sizes + assoc histogram
    classes = dprof.miss_classification("skbuff")
    flow    = dprof.data_flow("skbuff") # Figure 6-1-style graph
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dprof.access_sampler import AccessSampleCollector
from repro.dprof.analysis import analyze_histories, builder_for
from repro.dprof.cachesim import DProfCacheSim, WorkingSetSimResult
from repro.dprof.history import DEFAULT_CHUNK_SIZE, HistoryCollector
from repro.dprof.quality import DataQuality
from repro.dprof.records import AddressSet, PathTrace
from repro.dprof.resolver import TypeResolver
from repro.dprof.views import (
    DataFlowView,
    DataProfileRow,
    DataProfileView,
    MissClassification,
    MissClassifier,
    WorkingSetRow,
    WorkingSetView,
)
from repro.errors import ProfilingError
from repro.faults import FaultPlan
from repro.hw.cache import CacheGeometry
from repro.kernel.kernel import Kernel
from repro.kernel.layout import KObject
from repro.util.rng import DeterministicRng

#: Foreign-cache share of a type's samples above which the profiler marks
#: the type as bouncing even without collected histories.
BOUNCE_FOREIGN_SHARE = 0.01


@dataclass(frozen=True)
class DProfConfig:
    """Profiler knobs.

    ``ibs_interval`` is instructions between IBS tags (lower = more
    samples = more overhead, Figure 6-2).  ``chunk_size`` is the debug
    register width used for histories (the paper uses 4 bytes).  The
    cache-sim geometry defaults to the machine's private L2, which is
    where the paper's conflict/capacity phenomena live.
    """

    ibs_interval: int = 1000
    chunk_size: int = DEFAULT_CHUNK_SIZE
    sim_cache_size: int | None = None
    sim_cache_ways: int | None = None
    sim_max_objects: int = 4000
    #: Raw access samples kept in memory; None = unbounded (the paper's
    #: prototype), a cap = DCPI-style spilling (aggregates keep counting).
    max_resident_samples: int | None = None
    seed: int = 99
    #: Analysis pipeline: "indexed" (inverted-index clustering, optionally
    #: sharded across processes) or "reference" (the straightforward
    #: implementation).  Bit-identical outputs either way.
    analysis: str = "indexed"
    #: Process count for multi-type analysis; 0 = one per available CPU.
    analysis_workers: int = 0


class DProf:
    """Data-oriented profiler over a simulated kernel."""

    def __init__(
        self,
        kernel: Kernel,
        config: "DProfConfig | RunConfig | None" = None,
        faults: FaultPlan | None = None,
        tracer=None,
    ) -> None:
        self.kernel = kernel
        if config is not None and not isinstance(config, DProfConfig):
            # A unified RunConfig (repro.config): adapt it to the
            # profiler's own knobs; machine-side knobs were consumed when
            # the kernel's Machine was built.
            config = config.dprof_config()
        self.config = config or DProfConfig()
        #: Span tracer (repro.trace); NULL_TRACER when tracing is off.
        if tracer is None:
            from repro.trace import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self._collection_span = None
        self.machine = kernel.machine
        self.resolver = TypeResolver(kernel.slab)
        self.sampler = AccessSampleCollector(
            self.machine,
            self.resolver,
            chunk_size=self.config.chunk_size,
            max_resident_samples=self.config.max_resident_samples,
        )
        self.history = HistoryCollector(
            self.machine, kernel.slab, chunk_size=self.config.chunk_size
        )
        #: Active fault plan (None = perfect hardware).  The injector is
        #: built once per profiler so its counters cover the whole session.
        self.fault_plan = faults
        self.fault_injector = faults.build() if faults is not None else None
        self.address_set = AddressSet()
        self.rng = DeterministicRng(self.config.seed, "dprof")
        self.attached = False
        self.profile_start_cycle = 0
        self.profile_end_cycle = 0
        self._ibs_base = (0, 0, 0)
        self._type_descriptions: dict[str, str] = {}
        self._type_sizes: dict[str, int] = {}
        self._traces_cache: dict[str, list[PathTrace]] = {}
        self._sim_cache: WorkingSetSimResult | None = None

    # ------------------------------------------------------------------
    # Session control
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Start recording the address set and IBS access samples."""
        if self.attached:
            raise ProfilingError("DProf already attached")
        self.attached = True
        if self.fault_injector is not None:
            self.machine.install_faults(self.fault_injector)
            self.history.faults = self.fault_injector
        # Baseline the hardware counters so quality reports cover only
        # this session even when the machine was profiled before.
        self._ibs_base = self.machine.ibs_delivery_counts()
        self.profile_start_cycle = self.machine.elapsed_cycles()
        self._snapshot_live_objects()
        self.kernel.slab.add_alloc_listener(self._on_alloc)
        self.kernel.slab.add_free_listener(self._on_free)
        self.sampler.start(self.config.ibs_interval)

    def _snapshot_live_objects(self) -> None:
        """Seed the address set with objects already live at attach time.

        The allocator knows every outstanding allocation, so objects that
        predate the profiling session (worker task_structs, long-lived
        sockets) still contribute to the working-set view; their lifetime
        is counted from the start of the profiling window.
        """
        now = self.profile_start_cycle
        for cache in self.kernel.slab.caches.values():
            for slab in cache.slabs:
                for obj in slab.objects:
                    if obj.alive:
                        self._on_alloc(obj, obj.home_cpu, now)

    def detach(self) -> None:
        """Stop all collection and freeze the profiling window."""
        if not self.attached:
            raise ProfilingError("DProf not attached")
        self.attached = False
        self.profile_end_cycle = self.machine.elapsed_cycles()
        self.sampler.stop()
        self.history.finalize()
        if self.fault_injector is not None:
            self.machine.clear_faults()
            self.history.faults = None
        self.kernel.slab.remove_alloc_listener(self._on_alloc)
        self.kernel.slab.remove_free_listener(self._on_free)
        self._traces_cache.clear()
        self._sim_cache = None
        if self._collection_span is not None:
            self.tracer.end(
                self._collection_span,
                completed=self.history.jobs_completed,
                partial=self.history.histories_partial,
            )
            self._collection_span = None

    def _on_alloc(self, obj: KObject, cpu: int, cycle: int) -> None:
        name = obj.otype.name
        self._type_descriptions.setdefault(name, obj.otype.description)
        self._type_sizes.setdefault(name, obj.otype.size)
        self.address_set.record_alloc(name, obj.base, obj.otype.size, obj.cookie, cpu, cycle)

    def _on_free(self, obj: KObject, cpu: int, cycle: int) -> None:
        self.address_set.record_free(obj.base, obj.cookie, cpu, cycle)

    # ------------------------------------------------------------------
    # History collection
    # ------------------------------------------------------------------

    def collect_histories(
        self,
        type_name: str,
        sets: int,
        pair: bool = False,
        hot_chunks: int | None = None,
        member_offsets: list[int] | None = None,
    ) -> int:
        """Schedule history sets for a type and start the collector.

        ``hot_chunks`` limits coverage to the N most-sampled members, and
        ``member_offsets`` adds explicitly chosen offsets ("the programmer
        can tune which members are in this set", Section 6.4); when both
        are None the whole type is covered.  Returns the jobs queued.
        """
        size = self._type_sizes.get(type_name)
        if size is None:
            size = self._lookup_type_size(type_name)
        offsets: set[int] = set()
        if hot_chunks is not None:
            offsets.update(self.sampler.popular_chunks(type_name, hot_chunks))
        if member_offsets is not None:
            chunk = self.config.chunk_size
            offsets.update((off // chunk) * chunk for off in member_offsets)
        chunks = None
        if offsets:
            chunks = [
                (off, min(self.config.chunk_size, size - off))
                for off in sorted(offsets)
                if off < size
            ]
        jobs = self.history.schedule_sets(type_name, size, sets, pair=pair, chunks=chunks)
        self.history.start()
        if self.tracer.enabled:
            if self._collection_span is None:
                self._collection_span = self.tracer.begin("history-collection")
            self._collection_span.add(jobs=jobs, types=1)
        return jobs

    def _lookup_type_size(self, type_name: str) -> int:
        cache = self.kernel.slab.caches.get(type_name)
        if cache is not None:
            return cache.obj_size
        raise ProfilingError(f"unknown type {type_name!r}: no allocations observed")

    @property
    def histories_done(self) -> bool:
        """True once every scheduled history job completed."""
        return self.history.done

    # ------------------------------------------------------------------
    # Derived data
    # ------------------------------------------------------------------

    def path_traces(self, type_name: str) -> list[PathTrace]:
        """Path traces for one type (built lazily, cached)."""
        cached = self._traces_cache.get(type_name)
        if cached is None:
            builder = builder_for(
                self.config.analysis, self.kernel.symbols, self.sampler
            )
            cached = builder.build(type_name, self.history.histories_for(type_name))
            self._traces_cache[type_name] = cached
        return cached

    def _window(self) -> tuple[int, int]:
        end = (
            self.profile_end_cycle
            if self.profile_end_cycle > self.profile_start_cycle
            else self.machine.elapsed_cycles()
        )
        return self.profile_start_cycle, end

    def _sim_geometry(self) -> CacheGeometry:
        cfg = self.machine.config
        size = self.config.sim_cache_size or cfg.l2_size
        ways = self.config.sim_cache_ways or cfg.l2_ways
        return CacheGeometry(size, ways, cfg.line_size)

    def working_set_sim(self) -> WorkingSetSimResult:
        """DProf's offline cache simulation result (cached)."""
        if self._sim_cache is None:
            # Build every type's traces in one analysis pass so the
            # sharded pipeline can parallelize across types; types a
            # caller already built individually keep their cached result.
            by_type = self.history.histories_by_type()
            pending = {
                name: hists
                for name, hists in by_type.items()
                if name not in self._traces_cache
            }
            if pending:
                self._traces_cache.update(
                    analyze_histories(
                        self.kernel.symbols,
                        self.sampler,
                        pending,
                        mode=self.config.analysis,
                        workers=self.config.analysis_workers,
                        tracer=self.tracer,
                    )
                )
            traces = {name: self.path_traces(name) for name in by_type}
            sim = DProfCacheSim(self._sim_geometry(), self.rng.child("cachesim"))
            self._sim_cache = sim.simulate(
                self.address_set, traces, max_objects=self.config.sim_max_objects
            )
        return self._sim_cache

    # ------------------------------------------------------------------
    # Data quality
    # ------------------------------------------------------------------

    def data_quality(self) -> DataQuality:
        """The session's structured loss/confidence report.

        Counts only this session's samples (hardware counters are
        baselined at attach) and folds in the history collector's retry
        bookkeeping plus the fault injector's own counters when a plan is
        active.
        """
        delivered, dropped, corrupted = self.machine.ibs_delivery_counts()
        base_delivered, base_dropped, base_corrupted = self._ibs_base
        history = self.history
        quality = DataQuality(
            samples_delivered=delivered - base_delivered,
            samples_dropped=dropped - base_dropped,
            samples_corrupted=corrupted - base_corrupted,
            samples_rejected=self.sampler.samples_rejected,
            histories_complete=history.jobs_completed - history.histories_partial,
            histories_partial=history.histories_partial,
            histories_abandoned=history.jobs_abandoned,
            history_retries=history.jobs_retried,
            history_attempts=history.arm_attempts,
            watch_trap_misses=self.machine.watches.traps_missed,
            debug_slot_steals=self.machine.watches.arm_steals,
        )
        if self.fault_injector is not None:
            quality.history_truncations = (
                self.fault_injector.counters.history_truncations
            )
            quality.notes = (self.fault_plan.describe(),)
        return quality

    def _attach_quality(self, view, name: str):
        """Stamp a view with the session's quality report; warn if partial."""
        quality = self.data_quality()
        view.quality = quality
        quality.warn_if_degraded(f"{name} view")
        return view

    # ------------------------------------------------------------------
    # The four views
    # ------------------------------------------------------------------

    def bounce_flag(self, type_name: str) -> bool:
        """Does this type's data move between cores during its lifetime?"""
        for history in self.history.histories_for(type_name):
            cpus = {el.cpu for el in history.elements}
            cpus.add(history.alloc_cpu)
            if len(cpus) > 1:
                return True
        # Fall back to the sampling signal: foreign-cache loads imply the
        # data was last written by another core.
        samples = self.sampler.type_samples.count(type_name)
        if samples == 0:
            return False
        foreign = sum(
            1
            for s in self.sampler.samples
            if s.type_name == type_name and s.level.name == "FOREIGN"
        )
        return foreign / samples > BOUNCE_FOREIGN_SHARE

    def data_profile(self) -> DataProfileView:
        """The ranked data profile (Tables 6.1/6.4/6.5)."""
        start, end = self._window()
        rows = []
        for type_name, _misses in self.sampler.popular_types():
            rows.append(
                DataProfileRow(
                    type_name=type_name,
                    description=self._description(type_name),
                    working_set_bytes=self.address_set.mean_live_bytes(
                        type_name, start, end
                    )
                    or self._static_bytes(type_name),
                    miss_share=self.sampler.miss_share(type_name),
                    bounce=self.bounce_flag(type_name),
                    sample_count=self.sampler.type_samples.count(type_name),
                )
            )
        view = DataProfileView(rows, self.sampler.total_l1_misses)
        return self._attach_quality(view, "data profile")

    def _static_bytes(self, type_name: str) -> float:
        """Footprint for types never slab-allocated (static objects)."""
        static = self.kernel.slab.static_bytes(type_name)
        if static:
            return float(static)
        size = self._type_sizes.get(type_name)
        return float(size) if size is not None else 0.0

    def _description(self, type_name: str) -> str:
        desc = self._type_descriptions.get(type_name)
        if desc:
            return desc
        statics = self.kernel.slab.static_objects_by_type().get(type_name)
        if statics:
            return statics[0].otype.description
        return ""

    def working_set(self) -> WorkingSetView:
        """The working set view (Section 4.2)."""
        start, end = self._window()
        sim = self.working_set_sim()
        rows = []
        for type_name in self.address_set.type_names():
            rows.append(
                WorkingSetRow(
                    type_name=type_name,
                    mean_live_bytes=self.address_set.mean_live_bytes(type_name, start, end),
                    mean_live_objects=self.address_set.mean_live_objects(
                        type_name, start, end
                    ),
                    mean_resident_lines=sim.mean_resident_lines.get(type_name, 0.0),
                )
            )
        view = WorkingSetView(rows, sim, window_cycles=end - start)
        return self._attach_quality(view, "working set")

    def miss_classification(self, type_name: str) -> MissClassification:
        """The miss classification view for one type (Section 4.3)."""
        classifier = MissClassifier(self.working_set_sim())
        view = classifier.classify(type_name, self.path_traces(type_name))
        return self._attach_quality(view, "miss classification")

    def data_flow(self, type_name: str) -> DataFlowView:
        """The data flow view for one type (Section 4.4 / Figure 6-1)."""
        view = DataFlowView(type_name, self.path_traces(type_name))
        return self._attach_quality(view, "data flow")
