"""Structured data-quality reporting for profiling sessions.

DProf's raw inputs are lossy -- IBS drops tagged ops, debug registers get
stolen, histories truncate against object lifetimes, archives tear -- so
every view carries a :class:`DataQuality` report saying how much of the
intended data actually arrived and how much to trust each view.  Views
built from partial data render with explicit coverage annotations and
emit :class:`~repro.errors.DegradedDataWarning` instead of raising or
silently reporting wrong numbers.

Confidence definitions (see DESIGN.md, "Robustness model"):

- the **data profile** ranks types from IBS samples, so its confidence is
  the sample delivery rate discounted by corrupt samples the sanity
  filter had to reject;
- the **working set** integrates exact allocator events, so it only
  degrades when an archive section failed to load;
- **miss classification** and **data flow** consume path traces merged
  from complete histories, so their confidence scales with the history
  completion rate (a partial history contributes evidence but not a
  path, and counts half).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.errors import DegradedDataWarning

#: Exit codes the CLI maps data quality onto.
EXIT_OK = 0
EXIT_DEGRADED = 3  # measurable loss; views annotated, results usable
EXIT_POOR = 4  # less than half the intended data survived

#: A view whose confidence is below this is considered degraded.
DEGRADED_CONFIDENCE = 0.999

#: A session whose worst view confidence is below this is considered poor.
POOR_CONFIDENCE = 0.5


@dataclass
class DataQuality:
    """How much of the intended profiling data actually arrived."""

    samples_delivered: int = 0
    samples_dropped: int = 0
    samples_corrupted: int = 0
    samples_rejected: int = 0
    histories_complete: int = 0
    histories_partial: int = 0
    histories_abandoned: int = 0
    history_retries: int = 0
    history_attempts: int = 0
    history_truncations: int = 0
    watch_trap_misses: int = 0
    debug_slot_steals: int = 0
    #: Archive sections that failed checksum/parse on offline load and
    #: were replaced with empty data (best-effort recovery).
    sections_failed: tuple[str, ...] = ()
    notes: tuple[str, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------

    @property
    def sample_delivery_rate(self) -> float:
        """Fraction of tagged ops that produced a delivered sample."""
        attempted = self.samples_delivered + self.samples_dropped
        if attempted == 0:
            return 1.0
        return self.samples_delivered / attempted

    @property
    def sample_drop_rate(self) -> float:
        """Observed IBS drop rate (compare against the injected rate)."""
        return 1.0 - self.sample_delivery_rate

    @property
    def history_completion_rate(self) -> float:
        """Fraction of finished history jobs that recorded a full lifetime."""
        finished = (
            self.histories_complete + self.histories_partial + self.histories_abandoned
        )
        if finished == 0:
            return 1.0
        return self.histories_complete / finished

    @property
    def history_truncation_rate(self) -> float:
        """Observed per-attempt truncation rate (compare against injected)."""
        if self.history_attempts == 0:
            return 0.0
        return self.history_truncations / self.history_attempts

    # ------------------------------------------------------------------
    # Confidence
    # ------------------------------------------------------------------

    def _sample_confidence(self) -> float:
        kept = self.samples_delivered - self.samples_rejected
        if self.samples_delivered == 0:
            return self.sample_delivery_rate
        return self.sample_delivery_rate * max(kept, 0) / self.samples_delivered

    def _history_confidence(self) -> float:
        finished = (
            self.histories_complete + self.histories_partial + self.histories_abandoned
        )
        if finished == 0:
            return 1.0
        # A partial history still carries usable evidence (bounce, prefix
        # accesses) but cannot contribute a path trace: weight it half.
        return (self.histories_complete + 0.5 * self.histories_partial) / finished

    def _section_penalty(self, *sections: str) -> float:
        return 0.0 if any(s in self.sections_failed for s in sections) else 1.0

    def confidences(self) -> dict[str, float]:
        """Per-view confidence in [0, 1]."""
        sample = self._sample_confidence()
        history = self._history_confidence()
        return {
            "data_profile": sample * self._section_penalty("stats"),
            "working_set": self._section_penalty("address_set"),
            "miss_classification": min(sample, history)
            * self._section_penalty("stats", "histories"),
            "data_flow": history * self._section_penalty("histories"),
        }

    def confidence(self, view: str) -> float:
        """Confidence for one named view (1.0 for unknown names)."""
        return self.confidences().get(view, 1.0)

    @property
    def degraded(self) -> bool:
        """True when any view's data is measurably incomplete."""
        if self.sections_failed:
            return True
        return min(self.confidences().values()) < DEGRADED_CONFIDENCE

    def exit_code(self) -> int:
        """CLI exit code: 0 full, 3 degraded, 4 poor."""
        worst = min(self.confidences().values())
        if worst < POOR_CONFIDENCE:
            return EXIT_POOR
        if self.degraded:
            return EXIT_DEGRADED
        return EXIT_OK

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def warn_if_degraded(self, context: str) -> None:
        """Emit a :class:`DegradedDataWarning` when data is partial."""
        if self.degraded:
            warnings.warn(
                f"{context} built from partial data: {self.coverage_line()}",
                DegradedDataWarning,
                stacklevel=3,
            )

    def coverage_line(self) -> str:
        """One-line coverage annotation appended to degraded views."""
        parts = [
            f"samples {self.sample_delivery_rate:.1%} delivered"
            + (f" ({self.samples_rejected} rejected)" if self.samples_rejected else "")
        ]
        finished = (
            self.histories_complete + self.histories_partial + self.histories_abandoned
        )
        if finished:
            parts.append(
                f"histories {self.histories_complete} complete"
                f" / {self.histories_partial} partial"
                f" / {self.histories_abandoned} abandoned"
            )
        if self.sections_failed:
            parts.append(f"archive sections lost: {', '.join(self.sections_failed)}")
        return "; ".join(parts)

    def render(self) -> str:
        """Full multi-line quality report (printed by the CLI)."""
        conf = self.confidences()
        lines = ["Data quality report"]
        lines.append(
            f"  samples:   {self.samples_delivered} delivered, "
            f"{self.samples_dropped} dropped ({self.sample_drop_rate:.1%}), "
            f"{self.samples_corrupted} corrupted, {self.samples_rejected} rejected"
        )
        lines.append(
            f"  histories: {self.histories_complete} complete, "
            f"{self.histories_partial} partial, "
            f"{self.histories_abandoned} abandoned, "
            f"{self.history_retries} retries "
            f"(truncation rate {self.history_truncation_rate:.1%})"
        )
        if self.watch_trap_misses or self.debug_slot_steals:
            lines.append(
                f"  watches:   {self.watch_trap_misses} traps missed, "
                f"{self.debug_slot_steals} registers stolen"
            )
        if self.sections_failed:
            lines.append(f"  archive:   failed sections {list(self.sections_failed)}")
        for note in self.notes:
            lines.append(f"  note:      {note}")
        lines.append(
            "  confidence: "
            + ", ".join(f"{view}={value:.2f}" for view, value in sorted(conf.items()))
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization (session archives carry their quality report)
    # ------------------------------------------------------------------

    def to_blob(self) -> dict:
        """JSON-compatible form for session archives."""
        return {
            "samples_delivered": self.samples_delivered,
            "samples_dropped": self.samples_dropped,
            "samples_corrupted": self.samples_corrupted,
            "samples_rejected": self.samples_rejected,
            "histories_complete": self.histories_complete,
            "histories_partial": self.histories_partial,
            "histories_abandoned": self.histories_abandoned,
            "history_retries": self.history_retries,
            "history_attempts": self.history_attempts,
            "history_truncations": self.history_truncations,
            "watch_trap_misses": self.watch_trap_misses,
            "debug_slot_steals": self.debug_slot_steals,
            "notes": list(self.notes),
        }

    @classmethod
    def from_blob(cls, blob: dict) -> "DataQuality":
        """Rebuild from an archive blob (tolerates missing keys)."""
        quality = cls()
        for key in cls().to_blob():
            if key == "notes":
                quality.notes = tuple(blob.get("notes", ()))
            elif key in blob and isinstance(blob[key], int):
                setattr(quality, key, blob[key])
        return quality
