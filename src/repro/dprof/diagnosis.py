"""Automated diagnosis: from DProf's views to actionable findings.

The paper's case studies follow a repeatable script by hand: read the
data profile top-down, classify each hot type's misses, and for sharing
problems walk the data flow view backwards from the first cross-CPU
transition to find the code that *decided* to share.  This module encodes
that script, producing one :class:`Finding` per hot type with the
evidence and the class-appropriate remedy (the strategies enumerated in
the paper's introduction: padding for false sharing, re-partitioning for
true sharing, re-allocation for conflicts, admission control / blocking
for capacity).

This goes one step beyond the thesis (which leaves interpretation to the
programmer), but every rule is lifted from the text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dprof.profiler import DProf
from repro.dprof.views import MissClass

#: Types below this share of all L1 misses are not worth a finding.
DEFAULT_MISS_SHARE_THRESHOLD = 0.03

#: Remedies, phrased after the paper's introduction.
REMEDIES = {
    MissClass.TRUE_SHARING: (
        "factor the data into pieces touched by a single CPU, or "
        "restructure the code so only one CPU needs it"
    ),
    MissClass.FALSE_SHARING: (
        "move the falsely-shared fields to different cache lines "
        "(pad or reorder the structure)"
    ),
    MissClass.CONFLICT: (
        "allocate the objects over a wider range of associativity sets"
    ),
    MissClass.CAPACITY: (
        "process the data in smaller batches to increase locality, or "
        "impose admission control on concurrent activity"
    ),
    MissClass.OTHER: "inspect the access pattern; no single cause dominates",
}


@dataclass
class Finding:
    """One diagnosed problem: a type, its miss class, and the evidence."""

    type_name: str
    miss_share: float
    working_set_bytes: float
    bounces: bool
    dominant_class: MissClass
    class_shares: dict[MissClass, float] = field(default_factory=dict)
    #: For sharing problems: the transitions where the data changes CPUs.
    cross_cpu_transitions: list[tuple[str, str]] = field(default_factory=list)
    #: For sharing problems: the functions upstream of the first
    #: transition -- the search scope for the decision point.
    suspect_functions: list[str] = field(default_factory=list)
    remedy: str = ""

    def render(self) -> str:
        """One finding as a short report paragraph."""
        lines = [
            f"{self.type_name}: {self.miss_share:.1%} of all L1 misses, "
            f"{self.working_set_bytes / 1024:.1f}KB live"
            + (", bounces between CPUs" if self.bounces else "")
        ]
        if self.dominant_class is not MissClass.OTHER or self.class_shares:
            shares = ", ".join(
                f"{klass.value} {share:.0%}"
                for klass, share in sorted(
                    self.class_shares.items(), key=lambda kv: kv[1], reverse=True
                )
            )
            lines.append(f"  miss classes: {shares or self.dominant_class.value}")
        for src, dst in self.cross_cpu_transitions[:4]:
            lines.append(f"  crosses CPUs at: {src} -> {dst}")
        if self.suspect_functions:
            shown = ", ".join(self.suspect_functions[:6])
            lines.append(f"  look upstream at: {shown}")
        lines.append(f"  remedy: {self.remedy}")
        return "\n".join(lines)


class Diagnosis:
    """A full diagnosis pass over one profiling session."""

    def __init__(
        self,
        dprof: DProf,
        miss_share_threshold: float = DEFAULT_MISS_SHARE_THRESHOLD,
    ) -> None:
        self.dprof = dprof
        self.miss_share_threshold = miss_share_threshold

    def findings(self, max_types: int = 8) -> list[Finding]:
        """Top-down findings for the hottest types, most misses first."""
        profile = self.dprof.data_profile()
        out = []
        for row in profile.top(max_types):
            if row.miss_share < self.miss_share_threshold:
                continue
            out.append(self._diagnose_type(row))
        return out

    def _diagnose_type(self, row) -> Finding:
        classification = self.dprof.miss_classification(row.type_name)
        dominant = classification.dominant
        # A bouncing type with no classified misses still deserves the
        # sharing treatment: the bounce flag is the cheaper signal.
        if classification.total == 0 and row.bounce:
            dominant = MissClass.TRUE_SHARING
        finding = Finding(
            type_name=row.type_name,
            miss_share=row.miss_share,
            working_set_bytes=row.working_set_bytes,
            bounces=row.bounce,
            dominant_class=dominant,
            class_shares={
                klass: classification.share(klass)
                for klass in classification.weights
            },
            remedy=REMEDIES[dominant],
        )
        if row.bounce:
            self._add_sharing_evidence(finding)
        return finding

    def _add_sharing_evidence(self, finding: Finding) -> None:
        """The case-study move: find where the data changes CPUs, then
        bound the search to the functions upstream of that point."""
        flow = self.dprof.data_flow(finding.type_name)
        transitions = sorted(
            flow.cpu_change_edges(), key=lambda e: e.count, reverse=True
        )
        finding.cross_cpu_transitions = [(e.src, e.dst) for e in transitions]
        if transitions:
            first = transitions[0]
            upstream = flow.functions_before(first.src) | {first.src}
            upstream.discard("kalloc")
            # Rank suspects by how close they sit to the transition.
            finding.suspect_functions = sorted(upstream)

    def render(self, max_types: int = 8) -> str:
        """The whole report, one paragraph per finding."""
        findings = self.findings(max_types)
        if not findings:
            return "No significant data-type bottlenecks found."
        parts = [f"DProf diagnosis: {len(findings)} finding(s)", "=" * 50]
        for i, finding in enumerate(findings, 1):
            parts.append(f"[{i}] " + finding.render())
        return "\n".join(parts)
