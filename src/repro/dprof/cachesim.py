"""DProf's offline cache simulation for the working-set view (Section 4.2).

DProf "runs a simple cache simulation": it samples objects from the
address set (weighted by how common each is -- sampling entries uniformly
weights types by allocation frequency), replays the memory accesses their
path traces indicate, and removes an object's lines when it is freed.
From the simulation it derives:

- how many **distinct pieces of memory** were ever stored in each
  associativity set (the conflict histogram),
- which **types** occupy each set and with how many instances,
- the average number of lines of each type resident in the cache.

This is deliberately *not* the hardware model from :mod:`repro.hw` -- the
real DProf had no access to such a model either; the whole point of the
view is to estimate cache contents from the two raw data sets alone.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.dprof.records import AddressSet, AddressSetEntry, PathTrace
from repro.hw.cache import CacheArray, CacheGeometry
from repro.util.rng import DeterministicRng


@dataclass
class WorkingSetSimResult:
    """Everything the working-set and miss-classification views consume."""

    geometry: CacheGeometry
    #: set index -> count of distinct lines ever stored there.
    distinct_lines_per_set: dict[int, int] = field(default_factory=dict)
    #: set index -> {type -> distinct object instances seen in the set}.
    set_type_instances: dict[int, Counter] = field(default_factory=dict)
    #: type -> mean lines resident (averaged over occupancy snapshots).
    mean_resident_lines: dict[str, float] = field(default_factory=dict)
    objects_simulated: int = 0
    accesses_simulated: int = 0

    @property
    def mean_distinct_lines(self) -> float:
        """Average distinct-line count across all associativity sets."""
        if not self.distinct_lines_per_set:
            return 0.0
        return sum(self.distinct_lines_per_set.values()) / len(
            self.distinct_lines_per_set
        )

    def conflict_sets(self, factor: float = 2.0) -> list[int]:
        """Sets with far more distinct lines than average (Section 4.3).

        A set is conflict-suspect when it was asked to hold more lines
        than its ways *and* at least ``factor`` times the average set's
        count -- the paper's "factor of 2 more than average" check.
        """
        avg = self.mean_distinct_lines
        suspects = []
        for set_index, count in self.distinct_lines_per_set.items():
            if count > self.geometry.ways and count > factor * avg:
                suspects.append(set_index)
        return sorted(suspects)

    def capacity_pressured(self) -> bool:
        """True when most sets are uniformly oversubscribed (capacity).

        The paper distinguishes heuristically: few overloaded sets means
        conflicts; "most associativity sets have about the same number of
        conflicts" means the working set simply does not fit.
        """
        if not self.distinct_lines_per_set:
            return False
        overloaded = sum(
            1
            for count in self.distinct_lines_per_set.values()
            if count > self.geometry.ways
        )
        return overloaded > 0.5 * self.geometry.num_sets

    def types_in_set(self, set_index: int) -> list[tuple[str, int]]:
        """(type, instance count) pairs for one set, largest first."""
        counter = self.set_type_instances.get(set_index, Counter())
        return counter.most_common()


class DProfCacheSim:
    """Replays sampled address-set lifetimes through a model cache."""

    #: Occupancy snapshot cadence, in simulated accesses.
    SNAPSHOT_EVERY = 256

    def __init__(self, geometry: CacheGeometry, rng: DeterministicRng) -> None:
        self.geometry = geometry
        self.rng = rng

    def simulate(
        self,
        address_set: AddressSet,
        traces_by_type: dict[str, list[PathTrace]],
        max_objects: int = 4000,
    ) -> WorkingSetSimResult:
        """Run the simulation and return the aggregated result."""
        entries = address_set.entries
        if len(entries) > max_objects:
            entries = self.rng.sample(entries, max_objects)
        events = self._build_events(entries, traces_by_type)
        events.sort(key=lambda e: e[0])
        return self._replay(events)

    # ------------------------------------------------------------------
    # Event construction
    # ------------------------------------------------------------------

    def _build_events(
        self,
        entries: list[AddressSetEntry],
        traces_by_type: dict[str, list[PathTrace]],
    ) -> list[tuple]:
        """(time, kind, entry, lines) events for each sampled object."""
        line_size = self.geometry.line_size
        events: list[tuple] = []
        for obj_id, entry in enumerate(entries):
            # Every sampled object occupies its full footprint from
            # allocation: the address set records whole objects, and the
            # working-set sizes the view reports (Table 6.1) are
            # whole-object sizes.  Path traces -- which only cover the
            # watched offsets -- refine *when* parts are re-touched.
            all_lines = _lines(entry.base, entry.size, line_size)
            events.append((entry.alloc_cycle, "access", obj_id, entry, all_lines))
            trace = self._pick_trace(traces_by_type.get(entry.type_name))
            if trace is not None:
                for pt_entry in trace.entries:
                    lo, hi = pt_entry.offsets
                    lines = _lines(entry.base + lo, max(hi - lo, 1), line_size)
                    events.append(
                        (entry.alloc_cycle + pt_entry.mean_time, "access", obj_id, entry, lines)
                    )
            if entry.free_cycle is not None:
                events.append((entry.free_cycle, "free", obj_id, entry, all_lines))
        return events

    def _pick_trace(self, traces: list[PathTrace] | None) -> PathTrace | None:
        if not traces:
            return None
        total = sum(t.frequency for t in traces)
        pick = self.rng.randint(1, max(total, 1))
        running = 0
        for trace in traces:
            running += trace.frequency
            if pick <= running:
                return trace
        return traces[-1]

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def _replay(self, events: list[tuple]) -> WorkingSetSimResult:
        cache = CacheArray(self.geometry, "dprof-sim")
        result = WorkingSetSimResult(geometry=self.geometry)
        distinct: dict[int, set[int]] = defaultdict(set)
        set_instances: dict[int, dict[str, set[int]]] = defaultdict(
            lambda: defaultdict(set)
        )
        line_owner_type: dict[int, str] = {}
        resident_accumulator: Counter = Counter()
        snapshots = 0
        accesses = 0
        seen_objects: set[int] = set()

        for time, kind, obj_id, entry, lines in events:
            seen_objects.add(obj_id)
            if kind == "free":
                for line in lines:
                    cache.remove(line)
                    line_owner_type.pop(line, None)
                continue
            for line in lines:
                set_index = self.geometry.set_of(line)
                distinct[set_index].add(line)
                set_instances[set_index][entry.type_name].add(obj_id)
                victim = cache.insert(line)
                if victim is not None:
                    line_owner_type.pop(victim, None)
                line_owner_type[line] = entry.type_name
                accesses += 1
                if accesses % self.SNAPSHOT_EVERY == 0:
                    snapshots += 1
                    resident_accumulator.update(Counter(line_owner_type.values()))

        result.objects_simulated = len(seen_objects)
        result.accesses_simulated = accesses
        result.distinct_lines_per_set = {
            idx: len(lines) for idx, lines in distinct.items()
        }
        result.set_type_instances = {
            idx: Counter({t: len(objs) for t, objs in per_type.items()})
            for idx, per_type in set_instances.items()
        }
        if snapshots:
            result.mean_resident_lines = {
                t: count / snapshots for t, count in resident_accumulator.items()
            }
        return result


def _lines(addr: int, size: int, line_size: int) -> list[int]:
    first = addr // line_size
    last = (addr + max(size, 1) - 1) // line_size
    return list(range(first, last + 1))
