"""The miss classification view (Section 4.3).

Classifies each type's misses into invalidations (split into true and
false sharing), conflict misses, and capacity misses.  Following the
paper: compulsory misses are assumed away (all memory has been touched at
some point on a long-running system), invalidations are found by searching
backwards in a path trace for a write to the same cache line from a
different CPU, and conflict-vs-capacity is decided by the shape of the
associativity-set histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.dprof.cachesim import WorkingSetSimResult
from repro.dprof.records import PathTrace
from repro.util.tables import TextTable, format_percent

#: A path-trace entry whose local-L1 hit probability is below this is
#: treated as a "missing" access for classification purposes.
MISS_PROBABILITY_THRESHOLD = 0.05

#: Cache line size used to decide same-line relationships.
LINE_SIZE = 64


class MissClass(Enum):
    """The classification buckets of Section 4.3."""

    TRUE_SHARING = "true sharing"
    FALSE_SHARING = "false sharing"
    CONFLICT = "conflict"
    CAPACITY = "capacity"
    OTHER = "other"


@dataclass
class MissClassification:
    """Classified miss weight for one data type."""

    type_name: str
    weights: dict[MissClass, float] = field(default_factory=dict)
    #: Stamped by the profiler/offline session; None = not annotated.
    quality: object | None = None

    @property
    def total(self) -> float:
        """Total classified miss weight."""
        return sum(self.weights.values())

    def share(self, klass: MissClass) -> float:
        """Fraction of the type's misses in one bucket."""
        total = self.total
        if total == 0:
            return 0.0
        return self.weights.get(klass, 0.0) / total

    @property
    def dominant(self) -> MissClass:
        """The bucket with the most weight (OTHER when nothing classified)."""
        if not self.weights or self.total == 0:
            return MissClass.OTHER
        return max(self.weights, key=lambda k: self.weights[k])

    def render(self) -> str:
        """One-type table of class shares."""
        table = TextTable(
            ["Miss class", "Share"], title=f"Miss classification: {self.type_name}"
        )
        for klass in MissClass:
            if self.weights.get(klass, 0.0) > 0:
                table.add_row(klass.value, format_percent(self.share(klass)))
        rendered = table.render()
        if self.quality is not None and self.quality.degraded:
            rendered += f"\n[partial data] coverage: {self.quality.coverage_line()}"
        return rendered


class MissClassifier:
    """Classifies one type's misses from its path traces + the cache sim."""

    def __init__(self, sim: WorkingSetSimResult, conflict_factor: float = 2.0) -> None:
        self.sim = sim
        self.conflict_factor = conflict_factor

    def classify(self, type_name: str, traces: list[PathTrace]) -> MissClassification:
        """Produce the classification for *type_name*."""
        result = MissClassification(type_name=type_name)
        weights = {klass: 0.0 for klass in MissClass}

        in_conflict_sets = self._type_in_conflict_sets(type_name)
        capacity_pressure = self.sim.capacity_pressured()

        for trace in traces:
            for index, entry in enumerate(trace.entries):
                miss_p = entry.miss_probability
                if miss_p < MISS_PROBABILITY_THRESHOLD:
                    continue
                weight = miss_p * trace.frequency
                klass = self._classify_entry(trace, index)
                if klass is None:
                    # Not an invalidation: attribute to conflict/capacity
                    # by the histogram heuristic.
                    if in_conflict_sets and not capacity_pressure:
                        klass = MissClass.CONFLICT
                    elif capacity_pressure:
                        klass = MissClass.CAPACITY
                    else:
                        klass = MissClass.OTHER
                weights[klass] += weight

        result.weights = {k: v for k, v in weights.items() if v > 0}
        return result

    # ------------------------------------------------------------------
    # Per-entry invalidation detection
    # ------------------------------------------------------------------

    def _classify_entry(self, trace: PathTrace, index: int) -> MissClass | None:
        """Invalidation check: backward search for a remote same-line write.

        CPU identity is tracked as *epochs*: every entry with the CPU-change
        flag starts a new epoch, so "a write from a different CPU" means "a
        write in a different epoch".  Returns TRUE/FALSE sharing, or None
        when the miss is not explained by an invalidation.
        """
        entries = trace.entries
        epochs = []
        epoch = 0
        for e in entries:
            if e.cpu_changed:
                epoch += 1
            epochs.append(epoch)

        target = entries[index]
        target_lines = _line_span(target.offsets)
        for back in range(index - 1, -1, -1):
            prev = entries[back]
            if not prev.is_write:
                continue
            if epochs[back] == epochs[index]:
                continue
            if not (target_lines & _line_span(prev.offsets)):
                continue
            if _ranges_overlap(prev.offsets, target.offsets):
                return MissClass.TRUE_SHARING
            return MissClass.FALSE_SHARING
        return None

    def _type_in_conflict_sets(self, type_name: str) -> bool:
        for set_index in self.sim.conflict_sets(self.conflict_factor):
            for name, _count in self.sim.types_in_set(set_index):
                if name == type_name:
                    return True
        return False


def _line_span(offsets: tuple[int, int]) -> set[int]:
    lo, hi = offsets
    return set(range(lo // LINE_SIZE, max(hi - 1, lo) // LINE_SIZE + 1))


def _ranges_overlap(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] < b[1] and b[0] < a[1]
