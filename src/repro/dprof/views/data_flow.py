"""The data flow view (Section 4.4, Figure 6-1).

Merges a type's execution paths into one graph from allocation to free.
Nodes are functions; edges are observed transitions weighted by how many
objects took them.  Two annotations carry the diagnosis:

- **bold edges** (``cpu_change``): the object's cache lines moved to a
  different core at this transition -- Figure 6-1's bold lines, where the
  memcached analysis found skbuffs jumping cores between
  ``pfifo_fast_enqueue`` and ``pfifo_fast_dequeue``;
- **hot nodes**: functions whose accesses to the type have high average
  latency -- Figure 6-1's dark boxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dprof.records import PathTrace
from repro.util.stats import OnlineStats

#: Synthetic terminal node names bracketing every path (the paper draws
#: every data flow graph from kalloc() to kfree()).
ALLOC_NODE = "kalloc"
FREE_NODE = "kfree"


@dataclass
class FlowNode:
    """One function in the flow graph."""

    name: str
    visits: int = 0
    latency: OnlineStats = field(default_factory=OnlineStats)

    @property
    def mean_latency(self) -> float:
        """Average access latency observed at this function."""
        return self.latency.mean if self.latency.count else 0.0


@dataclass
class FlowEdge:
    """A transition between two functions."""

    src: str
    dst: str
    count: int = 0
    cpu_change: bool = False


class DataFlowView:
    """The merged per-type flow graph."""

    def __init__(self, type_name: str, traces: list[PathTrace]) -> None:
        self.type_name = type_name
        self.nodes: dict[str, FlowNode] = {}
        self.edges: dict[tuple[str, str], FlowEdge] = {}
        #: Stamped by the profiler/offline session; None = not annotated.
        self.quality = None
        self._build(traces)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _node(self, name: str) -> FlowNode:
        node = self.nodes.get(name)
        if node is None:
            node = FlowNode(name)
            self.nodes[name] = node
        return node

    def _edge(self, src: str, dst: str) -> FlowEdge:
        edge = self.edges.get((src, dst))
        if edge is None:
            edge = FlowEdge(src, dst)
            self.edges[(src, dst)] = edge
        return edge

    def _build(self, traces: list[PathTrace]) -> None:
        self._node(ALLOC_NODE)
        self._node(FREE_NODE)
        for trace in traces:
            prev = ALLOC_NODE
            self.nodes[ALLOC_NODE].visits += trace.frequency
            for entry in trace.entries:
                node = self._node(entry.fn)
                node.visits += trace.frequency
                if entry.mean_latency > 0:
                    node.latency.add(entry.mean_latency)
                if entry.fn != prev:
                    edge = self._edge(prev, entry.fn)
                    edge.count += trace.frequency
                    edge.cpu_change = edge.cpu_change or entry.cpu_changed
                elif entry.cpu_changed:
                    # Same function on a different core: a self-transition
                    # still marks a CPU change worth surfacing.
                    edge = self._edge(prev, entry.fn)
                    edge.count += trace.frequency
                    edge.cpu_change = True
                prev = entry.fn
            edge = self._edge(prev, FREE_NODE)
            edge.count += trace.frequency
            self.nodes[FREE_NODE].visits += trace.frequency

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def cpu_change_edges(self) -> list[FlowEdge]:
        """Edges where objects move between cores (the bold lines)."""
        return [e for e in self.edges.values() if e.cpu_change]

    def hot_nodes(self, latency_threshold: float = 100.0) -> list[FlowNode]:
        """Functions with expensive average accesses (the dark boxes)."""
        return [
            n
            for n in self.nodes.values()
            if n.latency.count and n.mean_latency >= latency_threshold
        ]

    def successors(self, name: str) -> list[FlowEdge]:
        """Outgoing edges of one function, heaviest first."""
        out = [e for e in self.edges.values() if e.src == name]
        return sorted(out, key=lambda e: e.count, reverse=True)

    def functions_before(self, name: str) -> set[str]:
        """Every function reachable backwards from *name*.

        This is the search-narrowing move from the case study: "we only
        need to look at functions above pfifo_fast_enqueue to find why
        packets are not placed on the local queue".
        """
        preds: dict[str, set[str]] = {}
        for edge in self.edges.values():
            preds.setdefault(edge.dst, set()).add(edge.src)
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for parent in preds.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return seen

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_dot(self, latency_threshold: float = 100.0) -> str:
        """Graphviz rendering: bold cross-CPU edges, shaded hot nodes."""
        lines = [f'digraph "{self.type_name}" {{', "  rankdir=TB;"]
        for node in self.nodes.values():
            attrs = [f'label="{node.name}\\n({node.visits})"']
            if node.latency.count and node.mean_latency >= latency_threshold:
                attrs.append('style=filled fillcolor="gray55"')
            lines.append(f'  "{node.name}" [{" ".join(attrs)}];')
        for edge in self.edges.values():
            attrs = [f'label="{edge.count}"']
            if edge.cpu_change:
                attrs.append("penwidth=3")
            lines.append(f'  "{edge.src}" -> "{edge.dst}" [{" ".join(attrs)}];')
        lines.append("}")
        return "\n".join(lines)

    def render_text(self, latency_threshold: float = 100.0) -> str:
        """Terminal rendering: '==>' marks cross-CPU edges, '[HOT]' nodes."""
        lines = [f"Data flow view for {self.type_name}:"]
        ordered = sorted(self.edges.values(), key=lambda e: e.count, reverse=True)
        for edge in ordered:
            arrow = "==CPU==>" if edge.cpu_change else "-------->"
            dst_node = self.nodes[edge.dst]
            hot = (
                " [HOT]"
                if dst_node.latency.count
                and dst_node.mean_latency >= latency_threshold
                else ""
            )
            lines.append(f"  {edge.src} {arrow} {edge.dst}{hot}  x{edge.count}")
        if self.quality is not None and self.quality.degraded:
            lines.append(f"  [partial data] coverage: {self.quality.coverage_line()}")
        return "\n".join(lines)
