"""The data profile view: types ranked by cache-miss share (Section 4.1).

"The highest level view consists of a data profile: a list of data type
names, sorted by the total number of cache misses that objects of each
type suffered", plus a flag showing whether objects of the type ever
bounce between cores.  The rendered table matches the layout of the
thesis's Tables 6.1, 6.4, and 6.5 (working set size, % of all L1 misses,
bounce).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.tables import TextTable, format_bytes, format_percent


@dataclass
class DataProfileRow:
    """One type's row in the data profile."""

    type_name: str
    description: str
    working_set_bytes: float
    miss_share: float
    bounce: bool
    sample_count: int = 0


class DataProfileView:
    """The ranked data profile plus its table rendering."""

    def __init__(self, rows: list[DataProfileRow], total_l1_misses: int) -> None:
        self.rows = sorted(rows, key=lambda r: r.miss_share, reverse=True)
        self.total_l1_misses = total_l1_misses
        #: Stamped by the profiler/offline session; None = not annotated.
        self.quality = None

    def top(self, n: int) -> list[DataProfileRow]:
        """The *n* types with the largest miss share."""
        return self.rows[:n]

    def row_for(self, type_name: str) -> DataProfileRow | None:
        """Find one type's row, if present."""
        for row in self.rows:
            if row.type_name == type_name:
                return row
        return None

    def covered_share(self, n: int) -> float:
        """Total miss share of the top *n* rows (the tables' Total line)."""
        return sum(r.miss_share for r in self.rows[:n])

    def render(self, n: int = 10) -> str:
        """Render in the thesis's Table 6.1 layout."""
        table = TextTable(
            ["Type name", "Description", "Working Set Size", "% of all L1 misses", "Bounce"],
            title="Data profile view",
        )
        for row in self.top(n):
            table.add_row(
                row.type_name,
                row.description,
                format_bytes(row.working_set_bytes),
                format_percent(row.miss_share),
                "yes" if row.bounce else "no",
            )
        shown = self.top(n)
        table.add_row(
            "Total",
            "",
            format_bytes(sum(r.working_set_bytes for r in shown)),
            format_percent(self.covered_share(n)),
            "-",
        )
        rendered = table.render()
        if self.quality is not None and self.quality.degraded:
            rendered += f"\n[partial data] coverage: {self.quality.coverage_line()}"
        return rendered
