"""The working set view (Section 4.2).

Summarizes what lives in the cache: which types were most active, how
many of each were live at once, and how they spread over associativity
sets.  The associativity histogram is the input to conflict-miss
diagnosis; the per-type live sizes are the input to capacity-miss
diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dprof.cachesim import WorkingSetSimResult
from repro.util.tables import TextTable, format_bytes


@dataclass
class WorkingSetRow:
    """One type's working-set summary."""

    type_name: str
    mean_live_bytes: float
    mean_live_objects: float
    mean_resident_lines: float


class WorkingSetView:
    """Per-type working set plus the associativity-set histogram."""

    def __init__(
        self,
        rows: list[WorkingSetRow],
        sim: WorkingSetSimResult,
        window_cycles: int,
    ) -> None:
        self.rows = sorted(rows, key=lambda r: r.mean_live_bytes, reverse=True)
        self.sim = sim
        self.window_cycles = window_cycles
        #: Stamped by the profiler/offline session; None = not annotated.
        self.quality = None

    def row_for(self, type_name: str) -> WorkingSetRow | None:
        """Find one type's row, if present."""
        for row in self.rows:
            if row.type_name == type_name:
                return row
        return None

    def total_live_bytes(self) -> float:
        """Sum of mean live bytes across all types."""
        return sum(r.mean_live_bytes for r in self.rows)

    def conflict_sets(self, factor: float = 2.0) -> list[int]:
        """Associativity sets suspected of conflict misses."""
        return self.sim.conflict_sets(factor)

    def types_in_conflict_sets(self, factor: float = 2.0) -> dict[str, int]:
        """Types present in conflict-suspect sets, with instance counts.

        This answers the programmer's question "what data types are using
        highly-contended associativity sets".
        """
        result: dict[str, int] = {}
        for set_index in self.sim.conflict_sets(factor):
            for type_name, instances in self.sim.types_in_set(set_index):
                result[type_name] = result.get(type_name, 0) + instances
        return result

    def render(self, n: int = 10) -> str:
        """Render the per-type table plus a histogram summary."""
        table = TextTable(
            ["Type name", "Mean live size", "Mean live objects", "Mean resident lines"],
            title="Working set view",
        )
        for row in self.rows[:n]:
            table.add_row(
                row.type_name,
                format_bytes(row.mean_live_bytes),
                f"{row.mean_live_objects:.1f}",
                f"{row.mean_resident_lines:.1f}",
            )
        lines = [table.render()]
        conflict = self.conflict_sets()
        lines.append("")
        lines.append(
            f"Associativity sets: {len(self.sim.distinct_lines_per_set)} populated, "
            f"mean {self.sim.mean_distinct_lines:.1f} distinct lines/set, "
            f"{len(conflict)} conflict-suspect"
        )
        if conflict:
            worst = max(conflict, key=lambda s: self.sim.distinct_lines_per_set[s])
            types = ", ".join(
                f"{t} x{c}" for t, c in self.sim.types_in_set(worst)[:4]
            )
            lines.append(
                f"Hottest set {worst}: "
                f"{self.sim.distinct_lines_per_set[worst]} distinct lines ({types})"
            )
        if self.quality is not None and self.quality.degraded:
            lines.append(f"[partial data] coverage: {self.quality.coverage_line()}")
        return "\n".join(lines)
