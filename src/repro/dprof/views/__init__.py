"""DProf's four views (paper Section 3).

- :mod:`repro.dprof.views.data_profile` -- types ranked by miss share,
  with bounce flags (Tables 6.1, 6.4, 6.5);
- :mod:`repro.dprof.views.working_set` -- live bytes/objects per type and
  the associativity-set histogram (Section 4.2);
- :mod:`repro.dprof.views.miss_class` -- invalidation (true/false
  sharing) vs conflict vs capacity per type (Section 4.3);
- :mod:`repro.dprof.views.data_flow` -- the merged execution-path graph
  with cross-CPU transitions highlighted (Figure 6-1).
"""

from repro.dprof.views.data_profile import DataProfileRow, DataProfileView
from repro.dprof.views.working_set import WorkingSetRow, WorkingSetView
from repro.dprof.views.miss_class import MissClass, MissClassification, MissClassifier
from repro.dprof.views.data_flow import DataFlowView

__all__ = [
    "DataProfileRow",
    "DataProfileView",
    "WorkingSetRow",
    "WorkingSetView",
    "MissClass",
    "MissClassification",
    "MissClassifier",
    "DataFlowView",
]
