"""DProf's raw and derived data structures.

Mirrors the paper's tables: :class:`AccessSample` is Table 5.1,
:class:`HistoryElement` is Table 5.2 (plus the access kind, which x86
debug-status reports), and :class:`PathTrace` rows are Table 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.events import CacheLevel
from repro.util.stats import OnlineStats


@dataclass(slots=True)
class AccessSample:
    """One resolved IBS sample (paper Table 5.1).

    ``type_name``/``offset`` locate the access within a data type;
    ``ip``/``cpu`` locate it in code; ``level``/``latency`` are the cache
    statistics the IBS hardware reported.
    """

    type_name: str
    offset: int
    ip: int
    cpu: int
    level: CacheLevel
    latency: int
    is_write: bool
    cycle: int
    size: int = 1

    @property
    def l1_miss(self) -> bool:
        """True when the sampled access missed the local L1."""
        return self.level != CacheLevel.L1

    @property
    def remote_miss(self) -> bool:
        """True when served by another core's cache or DRAM."""
        return self.level in (CacheLevel.FOREIGN, CacheLevel.DRAM)


@dataclass(slots=True)
class HistoryElement:
    """One access recorded by a debug-register trap (paper Table 5.2)."""

    offset: int
    ip: int
    cpu: int
    time: int  # cycles since the object's allocation (RDTSC delta)
    is_write: bool


@dataclass
class ObjectAccessHistory:
    """All trapped accesses to one watched slice of one object's lifetime.

    ``offsets`` is the watched chunk(s): a single (start, length) for plain
    sampling or two of them for pairwise sampling (Section 5.3).
    """

    type_name: str
    object_base: int
    object_cookie: int
    offsets: tuple[tuple[int, int], ...]
    alloc_cpu: int
    alloc_cycle: int
    elements: list[HistoryElement] = field(default_factory=list)
    free_cycle: int | None = None
    free_cpu: int | None = None
    #: Which history set this history belongs to (Figure 6-3 counts the
    #: unique paths captured as a function of sets collected).
    set_index: int = 0
    #: True when recording stopped before the object died (the watch was
    #: revoked mid-lifetime); the elements are a prefix of the real
    #: history and downstream consumers weight them accordingly.
    truncated: bool = False

    @property
    def complete(self) -> bool:
        """True once the object was freed with recording still active."""
        return self.free_cycle is not None and not self.truncated

    @property
    def is_pair(self) -> bool:
        """True for pairwise samples (two watched chunks)."""
        return len(self.offsets) == 2

    def signature(self) -> tuple:
        """The execution path this history observed.

        The paper defines an execution path as "the sequence of program
        counter values and CPU change flags"; the signature also carries
        each element's offset chunk so that projections per offset are
        meaningful during merging.
        """
        sig = []
        prev_cpu = self.alloc_cpu
        for el in self.elements:
            sig.append((el.offset, el.ip, el.cpu != prev_cpu))
            prev_cpu = el.cpu
        return tuple(sig)

    def projection(self, chunk: tuple[int, int]) -> tuple:
        """Signature restricted to elements inside one watched chunk."""
        lo, length = chunk
        sig = []
        prev_cpu = self.alloc_cpu
        for el in self.elements:
            changed = el.cpu != prev_cpu
            prev_cpu = el.cpu
            if lo <= el.offset < lo + length:
                sig.append((el.ip, changed))
        return tuple(sig)


@dataclass
class AccessStats:
    """Aggregated IBS statistics for one (type, offset-chunk, ip) key."""

    count: int = 0
    level_counts: dict[CacheLevel, int] = field(
        default_factory=lambda: {level: 0 for level in CacheLevel}
    )
    latency: OnlineStats = field(default_factory=OnlineStats)

    def add(self, sample: AccessSample) -> None:
        """Fold one sample in."""
        self.count += 1
        self.level_counts[sample.level] += 1
        self.latency.add(sample.latency)

    def hit_probability(self, level: CacheLevel) -> float:
        """Fraction of sampled accesses served at *level*."""
        if self.count == 0:
            return 0.0
        return self.level_counts[level] / self.count

    @property
    def miss_probability(self) -> float:
        """Fraction of sampled accesses that missed the local L1."""
        if self.count == 0:
            return 0.0
        return 1.0 - self.level_counts[CacheLevel.L1] / self.count

    @property
    def remote_probability(self) -> float:
        """Fraction served from a foreign cache or DRAM."""
        if self.count == 0:
            return 0.0
        far = self.level_counts[CacheLevel.FOREIGN] + self.level_counts[CacheLevel.DRAM]
        return far / self.count


@dataclass
class PathTraceEntry:
    """One row of a path trace (paper Table 4.1)."""

    ip: int
    fn: str
    cpu_changed: bool
    offsets: tuple[int, int]  # [lo, hi) byte range accessed at this pc
    is_write: bool
    mean_time: float  # cycles since allocation, averaged
    hit_probabilities: dict[CacheLevel, float] = field(default_factory=dict)
    mean_latency: float = 0.0
    sample_count: int = 0

    @property
    def miss_probability(self) -> float:
        """Probability this access missed the local L1."""
        return 1.0 - self.hit_probabilities.get(CacheLevel.L1, 0.0)

    @property
    def remote_probability(self) -> float:
        """Probability this access was served remotely (foreign/DRAM)."""
        return self.hit_probabilities.get(
            CacheLevel.FOREIGN, 0.0
        ) + self.hit_probabilities.get(CacheLevel.DRAM, 0.0)


@dataclass
class PathTrace:
    """An aggregated execution path for one data type (paper Table 4.1)."""

    type_name: str
    entries: list[PathTraceEntry]
    frequency: int  # how many observed histories followed this path

    @property
    def bounces(self) -> bool:
        """True when the path ever changes CPUs mid-lifetime."""
        return any(e.cpu_changed for e in self.entries)

    def path_key(self) -> tuple:
        """Hashable identity of the execution path."""
        return tuple((e.ip, e.cpu_changed) for e in self.entries)


@dataclass(slots=True)
class AddressSetEntry:
    """One allocation interval: the address set of Section 4.

    The paper notes storing addresses modulo the maximum cache size
    suffices; we keep full addresses (they're cheap here) plus lifetime
    endpoints so the working-set view can integrate live bytes over time.
    """

    type_name: str
    base: int
    size: int
    alloc_cycle: int
    alloc_cpu: int
    free_cycle: int | None = None
    free_cpu: int | None = None


class AddressSet:
    """Every allocation/free observed during profiling, by type."""

    def __init__(self) -> None:
        self.entries: list[AddressSetEntry] = []
        self._open: dict[tuple[int, int], AddressSetEntry] = {}

    def record_alloc(
        self, type_name: str, base: int, size: int, cookie: int, cpu: int, cycle: int
    ) -> None:
        """Open a lifetime interval for a fresh allocation."""
        entry = AddressSetEntry(type_name, base, size, cycle, cpu)
        self.entries.append(entry)
        self._open[(base, cookie)] = entry

    def record_free(self, base: int, cookie: int, cpu: int, cycle: int) -> None:
        """Close the interval for a freed object (ignores unknown frees)."""
        entry = self._open.pop((base, cookie), None)
        if entry is not None:
            entry.free_cycle = cycle
            entry.free_cpu = cpu

    def by_type(self) -> dict[str, list[AddressSetEntry]]:
        """Entries grouped by type name."""
        grouped: dict[str, list[AddressSetEntry]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.type_name, []).append(entry)
        return grouped

    def mean_live_bytes(self, type_name: str, start: int, end: int) -> float:
        """Average bytes of *type_name* live over [start, end).

        This is the "working set size" column of Tables 6.1/6.4/6.5:
        integrate each object's live interval against the window.
        """
        if end <= start:
            return 0.0
        total_byte_cycles = 0.0
        for entry in self.entries:
            if entry.type_name != type_name:
                continue
            lo = max(entry.alloc_cycle, start)
            hi = min(entry.free_cycle if entry.free_cycle is not None else end, end)
            if hi > lo:
                total_byte_cycles += (hi - lo) * entry.size
        return total_byte_cycles / (end - start)

    def mean_live_objects(self, type_name: str, start: int, end: int) -> float:
        """Average count of live objects of *type_name* over the window."""
        if end <= start:
            return 0.0
        total = 0.0
        for entry in self.entries:
            if entry.type_name != type_name:
                continue
            lo = max(entry.alloc_cycle, start)
            hi = min(entry.free_cycle if entry.free_cycle is not None else end, end)
            if hi > lo:
                total += hi - lo
        return total / (end - start)

    def type_names(self) -> list[str]:
        """Every type with at least one recorded allocation."""
        return sorted({e.type_name for e in self.entries})
