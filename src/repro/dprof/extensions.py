"""Extensions from the paper's Discussion (Section 7).

The thesis closes with two hardware wishes:

1. *"having a variable-size debug register would greatly help"* --
   whole-object watchpoints would replace the quadratic pairwise-sampling
   dance with one exact history per object lifetime;
2. *"Having hardware support for examining the contents of CPU caches
   would greatly simplify [working-set estimation], and improve its
   precision."*

The simulation can grant both wishes, so this module implements them as
optional extensions, and the ablation benchmarks quantify exactly how
much each would have bought the paper.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.dprof.profiler import DProf
from repro.errors import ProfilingError
from repro.hw.machine import Machine
from repro.kernel.slab import SlabSystem

# ----------------------------------------------------------------------
# Wish 1: variable-size debug registers
# ----------------------------------------------------------------------


def collect_whole_object_histories(
    dprof: DProf, type_name: str, objects: int
) -> int:
    """Schedule whole-object history jobs (needs wide debug registers).

    Each job arms a single watch spanning the entire object, so one
    lifetime yields one *exact, totally ordered* full-object history --
    no pairwise merging, no path-family clustering heuristics.  Returns
    the number of jobs queued.
    """
    machine = dprof.machine
    if machine.watches.max_watch_bytes is not None:
        raise ProfilingError(
            "whole-object histories need variable_debug_registers=True "
            "in the MachineConfig (the paper's Section 7 hardware wish)"
        )
    size = dprof._type_sizes.get(type_name)
    if size is None:
        size = dprof._lookup_type_size(type_name)
    jobs = 0
    for set_index in range(objects):
        dprof.history.jobs.append(
            _whole_object_job(type_name, size, set_index)
        )
        jobs += 1
    dprof.history.start()
    return jobs


def _whole_object_job(type_name: str, size: int, set_index: int):
    from repro.dprof.history import HistoryJob

    return HistoryJob(type_name=type_name, chunks=((0, size),), set_index=set_index)


@dataclass
class CollectionCost:
    """Comparable cost summary for a history-collection strategy."""

    strategy: str
    jobs: int
    cycles: int
    elements: int

    @property
    def cycles_per_full_history(self) -> float:
        """Setup+lifetime cycles amortized per completed job."""
        if self.jobs == 0:
            return 0.0
        return self.cycles / self.jobs


def pairwise_job_count(size: int, chunk: int = 4) -> int:
    """Jobs needed to cover a type once with pairwise sampling."""
    chunks = (size + chunk - 1) // chunk
    return chunks * (chunks - 1) // 2


def whole_object_job_count(size: int) -> int:
    """Jobs needed with a variable-size register: always one."""
    return 1


# ----------------------------------------------------------------------
# Wish 2: cache-contents inspection
# ----------------------------------------------------------------------


@dataclass
class CacheSnapshot:
    """Ground-truth cache contents, resolved to data types."""

    cycle: int
    per_type_lines: Counter = field(default_factory=Counter)
    unresolved_lines: int = 0

    def top(self, n: int | None = None) -> list[tuple[str, int]]:
        """Types ranked by resident line count."""
        return self.per_type_lines.most_common(n)

    def lines_for(self, type_name: str) -> int:
        """Resident lines of one type."""
        return self.per_type_lines.get(type_name, 0)


class CacheContentsInspector:
    """The Section 7 wish granted: read what is actually in the caches.

    Walks every resident line of every simulated cache, resolves line
    addresses to types through the allocator, and returns exact per-type
    residency -- the quantity DProf's working-set view can only
    *estimate* by offline simulation.
    """

    def __init__(self, machine: Machine, slab: SlabSystem) -> None:
        self.machine = machine
        self.slab = slab

    def snapshot(self, include_shared: bool = True) -> CacheSnapshot:
        """One instantaneous, machine-wide snapshot."""
        snap = CacheSnapshot(cycle=self.machine.elapsed_cycles())
        hierarchy = self.machine.hierarchy
        caches = list(hierarchy.l1) + list(hierarchy.l2)
        if include_shared:
            caches.append(hierarchy.l3)
        line_size = hierarchy.line_size
        for cache in caches:
            for line in cache.lines():
                obj = self.slab.find_object(line * line_size)
                if obj is None:
                    snap.unresolved_lines += 1
                else:
                    snap.per_type_lines[obj.otype.name] += 1
        return snap

    def mean_residency(self, snapshots: list[CacheSnapshot]) -> dict[str, float]:
        """Average per-type residency over several snapshots."""
        if not snapshots:
            return {}
        totals: Counter = Counter()
        for snap in snapshots:
            totals.update(snap.per_type_lines)
        return {name: count / len(snapshots) for name, count in totals.items()}


def estimation_error(
    estimated: dict[str, float], truth: dict[str, float]
) -> dict[str, float]:
    """Relative error of the working-set estimate per type.

    Returns |est - truth| / truth for types present in the ground truth;
    the cache-introspection ablation reports how much precision the
    hardware wish buys.
    """
    errors = {}
    for name, true_lines in truth.items():
        if true_lines <= 0:
            continue
        est = estimated.get(name, 0.0)
        errors[name] = abs(est - true_lines) / true_lines
    return errors
