"""DProf: a data-oriented cache profiler (the paper's contribution).

DProf attributes cache misses to *data types* instead of code locations.
It collects two kinds of raw data (Section 5):

- **access samples** from the IBS hardware: randomly tagged instructions
  with their data address, cache level served, and latency, resolved to a
  (type, offset) through the allocator (:mod:`repro.dprof.access_sampler`);
- **object access histories** from debug registers: complete traces of
  every instruction touching a watched slice of one object, from
  allocation to free (:mod:`repro.dprof.history`).

It combines them into **path traces** -- per (type, execution path)
aggregates of ips, CPU transitions, offsets, hit probabilities, and
latencies (:mod:`repro.dprof.pathtrace`) -- and derives four views
(Section 3): the data profile, miss classification, working set, and data
flow views (:mod:`repro.dprof.views`).

Entry point: :class:`repro.dprof.profiler.DProf`.

.. deprecated::
    Importing names from ``repro.dprof`` directly is deprecated; use the
    blessed facade :mod:`repro.api` (or the defining submodule, e.g.
    :mod:`repro.dprof.profiler`).  The first shimmed access of each name
    emits one :class:`DeprecationWarning`; behavior is otherwise
    unchanged.
"""

import importlib
import warnings

#: name -> defining submodule, resolved lazily by :func:`__getattr__`.
_EXPORTS = {
    "AccessSample": "repro.dprof.records",
    "AddressSet": "repro.dprof.records",
    "AddressSetEntry": "repro.dprof.records",
    "HistoryElement": "repro.dprof.records",
    "ObjectAccessHistory": "repro.dprof.records",
    "PathTrace": "repro.dprof.records",
    "PathTraceEntry": "repro.dprof.records",
    "ANALYSIS_MODES": "repro.dprof.analysis",
    "IndexedPathTraceBuilder": "repro.dprof.analysis",
    "StatsView": "repro.dprof.analysis",
    "analyze_histories": "repro.dprof.analysis",
    "builder_for": "repro.dprof.analysis",
    "DProf": "repro.dprof.profiler",
    "DProfConfig": "repro.dprof.profiler",
    "DataQuality": "repro.dprof.quality",
    "Diagnosis": "repro.dprof.diagnosis",
    "Finding": "repro.dprof.diagnosis",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"importing {name!r} from 'repro.dprof' is deprecated; "
        f"use 'repro.api' (or {module_name!r}) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    value = getattr(importlib.import_module(module_name), name)
    # Cache so the warning fires once per name (a from-import probes the
    # attribute twice: importlib's hasattr check, then the real getattr).
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
