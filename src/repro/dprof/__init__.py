"""DProf: a data-oriented cache profiler (the paper's contribution).

DProf attributes cache misses to *data types* instead of code locations.
It collects two kinds of raw data (Section 5):

- **access samples** from the IBS hardware: randomly tagged instructions
  with their data address, cache level served, and latency, resolved to a
  (type, offset) through the allocator (:mod:`repro.dprof.access_sampler`);
- **object access histories** from debug registers: complete traces of
  every instruction touching a watched slice of one object, from
  allocation to free (:mod:`repro.dprof.history`).

It combines them into **path traces** -- per (type, execution path)
aggregates of ips, CPU transitions, offsets, hit probabilities, and
latencies (:mod:`repro.dprof.pathtrace`) -- and derives four views
(Section 3): the data profile, miss classification, working set, and data
flow views (:mod:`repro.dprof.views`).

Entry point: :class:`repro.dprof.profiler.DProf`.
"""

from repro.dprof.records import (
    AccessSample,
    AddressSet,
    AddressSetEntry,
    HistoryElement,
    ObjectAccessHistory,
    PathTrace,
    PathTraceEntry,
)
from repro.dprof.analysis import (
    ANALYSIS_MODES,
    IndexedPathTraceBuilder,
    StatsView,
    analyze_histories,
    builder_for,
)
from repro.dprof.profiler import DProf, DProfConfig
from repro.dprof.diagnosis import Diagnosis, Finding
from repro.dprof.quality import DataQuality

__all__ = [
    "AccessSample",
    "AddressSet",
    "AddressSetEntry",
    "HistoryElement",
    "ObjectAccessHistory",
    "PathTrace",
    "PathTraceEntry",
    "ANALYSIS_MODES",
    "IndexedPathTraceBuilder",
    "StatsView",
    "analyze_histories",
    "builder_for",
    "DProf",
    "DProfConfig",
    "DataQuality",
    "Diagnosis",
    "Finding",
]
