"""The rearchitected DProf analysis pipeline (indexed, parallel, memoized).

PR 2 made the *simulation* half of DProf fast; this module does the same
for the *analysis* half -- the Section 5.3/5.4 machinery that clusters
object access histories into path families, merges per-chunk sequences
via a precedence graph, and feeds the four views.  Three layers:

1. **Algorithmic** (:class:`IndexedPathTraceBuilder`): the reference
   :class:`~repro.dprof.pathtrace.PathTraceBuilder` scans every existing
   family per history and recomputes each history's per-chunk projection
   inside every compatibility check, which is O(histories x families x
   elements).  The indexed builder computes each history's projections
   exactly once, interns them as small integers, and keeps a
   (chunk, projection-id) -> families inverted index so a history only
   ever visits families it could actually join.  The precedence-graph
   merge runs over preallocated parallel arrays (ints and floats indexed
   by event id) instead of per-event dataclass instances.

2. **Parallel** (:func:`analyze_histories`): histories shard by type
   across ``multiprocessing`` workers.  Each shard is a pure function of
   its (type, histories) input and shards are merged canonically by
   (shard index, type name) -- the same deterministic-merge idiom as the
   PR 2 sharded trace generator -- so the output is bit-identical at any
   worker count, and a pool failure silently degrades to serial with the
   same output.

3. **Bit-identical contract**: every float in every
   :class:`~repro.dprof.records.PathTraceEntry` is produced by the same
   arithmetic in the same order as the reference builder (Welford mean
   updates included), so ``indexed == reference`` holds under ``==`` on
   the dataclasses, with no tolerance.  ``tests/test_analysis_equivalence.py``
   enforces this across seeds, scenarios, and worker counts.

The memoization layer (the content-addressed view cache) lives with the
session store in :mod:`repro.serve.store`; this module only guarantees
that re-running analysis is never *needed* for correctness.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from repro.dprof.pathtrace import (
    OFFSET_SENTINEL,
    PathTraceBuilder,
    canonical_trace_order,
)
from repro.dprof.records import (
    AccessStats,
    HistoryElement,
    ObjectAccessHistory,
    PathTrace,
    PathTraceEntry,
)
from repro.errors import ProfilingError
from repro.hw.events import CacheLevel
from repro.kernel.symbols import SymbolTable
from repro.util.rng import DeterministicRng

#: Analysis pipelines selectable via ``DProfConfig(analysis=...)``.
ANALYSIS_MODES = ("indexed", "reference")

#: ip displacement between amplified corpus variants; far above the fake
#: kernel text segment so shifted ips never collide with real symbols.
_VARIANT_IP_STRIDE = 1 << 44


class StatsView:
    """A picklable (type, offset-chunk, ip) -> :class:`AccessStats` lookup.

    Snapshots the aggregate half of an
    :class:`~repro.dprof.access_sampler.AccessSampleCollector` (or the
    offline equivalent) so analysis shards can cross process boundaries
    without dragging the live machine along.
    """

    def __init__(self, stats: dict[tuple, AccessStats], chunk_size: int) -> None:
        self.stats = stats
        self.chunk_size = chunk_size

    @classmethod
    def from_sampler(cls, sampler) -> "StatsView | None":
        """Snapshot any sampler-like object (``.stats`` + ``.chunk_size``)."""
        if sampler is None:
            return None
        return cls(dict(sampler.stats), sampler.chunk_size)

    def stats_for(self, type_name: str, offset: int, ip: int) -> AccessStats | None:
        """Aggregated stats for the chunk containing *offset*, if any."""
        chunk = (offset // self.chunk_size) * self.chunk_size
        return self.stats.get((type_name, chunk, ip))


class IndexedPathTraceBuilder:
    """Near-linear path-trace construction, bit-identical to the reference.

    Drop-in for :class:`~repro.dprof.pathtrace.PathTraceBuilder`: same
    constructor shape, same :meth:`build` signature, same output down to
    every float (asserted by ``tests/test_analysis_equivalence.py``).
    """

    def __init__(self, symbols: SymbolTable, sampler=None) -> None:
        self.symbols = symbols
        self.sampler = sampler

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def build(
        self, type_name: str, histories: list[ObjectAccessHistory]
    ) -> list[PathTrace]:
        """Cluster, merge, and augment; canonical descending-frequency order."""
        complete = [h for h in histories if h.complete and h.type_name == type_name]
        projections = [self._projections(h) for h in complete]
        interner: dict[tuple, int] = {}
        interned = [
            {chunk: interner.setdefault(proj, len(interner)) for chunk, proj in projs.items()}
            for projs in projections
        ]
        proj_tuples = list(interner)  # id -> projection tuple
        families = self._cluster(complete, interned)
        traces: dict[tuple, PathTrace] = {}
        for fam_proj, member_ids in families:
            members = [complete[i] for i in member_ids]
            trace = self._merge_family(type_name, fam_proj, proj_tuples, members)
            if trace is None:
                continue
            existing = traces.get(trace.path_key())
            if existing is not None:
                existing.frequency += trace.frequency
            else:
                traces[trace.path_key()] = trace
        return canonical_trace_order(traces.values())

    # ------------------------------------------------------------------
    # Projections (computed once per history, unlike the reference)
    # ------------------------------------------------------------------

    @staticmethod
    def _projections(history: ObjectAccessHistory) -> dict[tuple[int, int], tuple]:
        """Every watched chunk's (ip, cpu-changed) projection, in one pass."""
        offsets = history.offsets
        sigs: dict[tuple[int, int], list] = {chunk: [] for chunk in offsets}
        prev_cpu = history.alloc_cpu
        for el in history.elements:
            changed = el.cpu != prev_cpu
            prev_cpu = el.cpu
            off = el.offset
            for chunk in offsets:
                lo, length = chunk
                if lo <= off < lo + length:
                    sigs[chunk].append((el.ip, changed))
        return {chunk: tuple(sig) for chunk, sig in sigs.items()}

    # ------------------------------------------------------------------
    # Clustering via the (chunk, projection-id) inverted index
    # ------------------------------------------------------------------

    @staticmethod
    def _cluster(
        histories: list[ObjectAccessHistory],
        interned: list[dict[tuple[int, int], int]],
    ) -> list[tuple[dict[tuple[int, int], int], list[int]]]:
        """Group histories into families; same assignments as the reference.

        A family is eligible for a history exactly when it shares a chunk
        and agrees on every shared chunk's projection -- which implies it
        agrees on at least one, so the (chunk, projection-id) index lists
        every eligible family and the lowest family id among verified
        candidates is precisely the reference scan's first match.
        """
        fam_proj: list[dict[tuple[int, int], int]] = []
        fam_members: list[list[int]] = []
        index: dict[tuple[tuple[int, int], int], list[int]] = {}
        order = [i for i, h in enumerate(histories) if h.is_pair]
        order += [i for i, h in enumerate(histories) if not h.is_pair]
        for hist_idx in order:
            hp = interned[hist_idx]
            candidates: set[int] = set()
            for chunk_pid in hp.items():
                candidates.update(index.get(chunk_pid, ()))
            target = None
            for fid in sorted(candidates):
                proj = fam_proj[fid]
                for chunk, pid in hp.items():
                    fpid = proj.get(chunk)
                    if fpid is not None and fpid != pid:
                        break
                else:
                    target = fid
                    break
            if target is None:
                target = len(fam_proj)
                fam_proj.append({})
                fam_members.append([])
            proj = fam_proj[target]
            for chunk, pid in hp.items():
                if chunk not in proj:
                    proj[chunk] = pid
                    index.setdefault((chunk, pid), []).append(target)
            fam_members[target].append(hist_idx)
        return list(zip(fam_proj, fam_members))

    # ------------------------------------------------------------------
    # Merging one family over preallocated arrays
    # ------------------------------------------------------------------

    def _merge_family(
        self,
        type_name: str,
        fam_proj: dict[tuple[int, int], int],
        proj_tuples: list[tuple],
        members: list[ObjectAccessHistory],
    ) -> PathTrace | None:
        # One event per (chunk, position) of the family's projections.
        keys: list[tuple] = []  # event id -> (chunk, position)
        ev_chunk: list[tuple[int, int]] = []
        ev_ip: list[int] = []
        ev_changed: list[bool] = []
        key_to_id: dict[tuple, int] = {}
        for chunk, pid in fam_proj.items():
            for position, (ip, changed) in enumerate(proj_tuples[pid]):
                key_to_id[(chunk, position)] = len(keys)
                keys.append((chunk, position))
                ev_chunk.append(chunk)
                ev_ip.append(ip)
                ev_changed.append(changed)
        n = len(keys)
        if n == 0:
            return None

        # Each member element's event id, resolved once and reused by the
        # statistics fill and the precedence pass below.
        member_keys: list[list[int]] = []
        for history in members:
            counters: dict[tuple[int, int], int] = {}
            resolved: list[int] = []
            offsets = history.offsets
            for el in history.elements:
                off = el.offset
                chunk = None
                for cand in offsets:
                    if cand[0] <= off < cand[0] + cand[1]:
                        chunk = cand
                        break
                if chunk is None:
                    resolved.append(-1)
                    continue
                position = counters.get(chunk, 0)
                counters[chunk] = position + 1
                resolved.append(key_to_id.get((chunk, position), -1))
            member_keys.append(resolved)

        # Statistics fill: same Welford updates in the same order as the
        # reference's OnlineStats.add, so means are float-identical.
        cnt = [0] * n
        mean = [0.0] * n
        lo = [OFFSET_SENTINEL] * n
        hi = [0] * n
        is_write = [False] * n
        for history, resolved in zip(members, member_keys):
            for el, eid in zip(history.elements, resolved):
                if eid < 0:
                    continue
                c = cnt[eid] + 1
                cnt[eid] = c
                delta = el.time - mean[eid]
                mean[eid] += delta / c
                off = el.offset
                if off < lo[eid]:
                    lo[eid] = off
                if off + 4 > hi[eid]:
                    hi[eid] = off + 4
                if el.is_write:
                    is_write[eid] = True

        order = self._order_events(
            fam_proj, proj_tuples, members, member_keys, key_to_id,
            ev_chunk, mean, keys,
        )
        entries = [
            self._entry_for(
                type_name, ev_ip[eid], ev_changed[eid], ev_chunk[eid],
                lo[eid], hi[eid], is_write[eid], mean[eid],
            )
            for eid in order
        ]
        return PathTrace(type_name=type_name, entries=entries, frequency=len(members))

    def _order_events(
        self,
        fam_proj: dict[tuple[int, int], int],
        proj_tuples: list[tuple],
        members: list[ObjectAccessHistory],
        member_keys: list[list[int]],
        key_to_id: dict[tuple, int],
        ev_chunk: list[tuple[int, int]],
        mean: list[float],
        keys: list[tuple],
    ) -> list[int]:
        """Topological order by precedence, mean time breaking ties."""
        n = len(keys)
        succ: list[set[int]] = [set() for _ in range(n)]
        pred = [0] * n
        # Within a chunk, positions are totally ordered by construction.
        for chunk, pid in fam_proj.items():
            length = len(proj_tuples[pid])
            for position in range(length - 1):
                a = key_to_id[(chunk, position)]
                b = key_to_id[(chunk, position + 1)]
                if b not in succ[a]:
                    succ[a].add(b)
                    pred[b] += 1
        # Across chunks, pairwise histories supply observed orderings;
        # every observed ordering is a constraint, not just adjacent ones.
        for history, resolved in zip(members, member_keys):
            if not history.is_pair:
                continue
            seq = [eid for eid in resolved if eid >= 0]
            for i, a in enumerate(seq):
                chunk_a = ev_chunk[a]
                succ_a = succ[a]
                for b in seq[i + 1:]:
                    if ev_chunk[b] != chunk_a and b not in succ_a and a not in succ[b]:
                        succ_a.add(b)
                        pred[b] += 1
        # Kahn's algorithm; (mean time, key) picks among the ready set
        # exactly like the reference, so ties resolve identically.
        ready = [eid for eid in range(n) if pred[eid] == 0]
        order: list[int] = []
        while ready:
            ready.sort(key=lambda eid: (mean[eid], keys[eid]))
            eid = ready.pop(0)
            order.append(eid)
            for nxt in succ[eid]:
                pred[nxt] -= 1
                if pred[nxt] == 0:
                    ready.append(nxt)
        if len(order) < n:
            # A cycle (conflicting pairwise observations): fall back to
            # time ordering for the remainder, as the reference does.
            placed = set(order)
            remaining = [eid for eid in range(n) if eid not in placed]
            remaining.sort(key=lambda eid: (mean[eid], keys[eid]))
            order.extend(remaining)
        return order

    def _entry_for(
        self,
        type_name: str,
        ip: int,
        cpu_changed: bool,
        chunk: tuple[int, int],
        lo: int,
        hi: int,
        is_write: bool,
        mean_time: float,
    ) -> PathTraceEntry:
        fn = self.symbols.try_resolve(ip) or f"ip:{ip:#x}"
        hit_probs: dict[CacheLevel, float] = {}
        mean_latency = 0.0
        sample_count = 0
        if self.sampler is not None:
            stats = self.sampler.stats_for(type_name, lo, ip)
            if stats is None:
                stats = self.sampler.stats_for(type_name, chunk[0], ip)
            if stats is not None and stats.count > 0:
                hit_probs = {
                    level: stats.hit_probability(level)
                    for level in CacheLevel
                    if stats.level_counts[level] > 0
                }
                mean_latency = stats.latency.mean
                sample_count = stats.count
        lo = lo if lo < OFFSET_SENTINEL else chunk[0]
        hi = hi if hi > 0 else chunk[0] + chunk[1]
        return PathTraceEntry(
            ip=ip,
            fn=fn,
            cpu_changed=cpu_changed,
            offsets=(lo, hi),
            is_write=is_write,
            mean_time=mean_time,
            hit_probabilities=hit_probs,
            mean_latency=mean_latency,
            sample_count=sample_count,
        )


# ----------------------------------------------------------------------
# Pipeline selection and the sharded (parallel) driver
# ----------------------------------------------------------------------


def builder_for(mode: str, symbols: SymbolTable, sampler=None):
    """The path-trace builder implementing *mode* (indexed | reference)."""
    if mode == "indexed":
        return IndexedPathTraceBuilder(symbols, sampler)
    if mode == "reference":
        return PathTraceBuilder(symbols, sampler)
    raise ProfilingError(
        f"unknown analysis mode {mode!r} (choose {' or '.join(ANALYSIS_MODES)})"
    )


def _analysis_shard(args) -> tuple[int, str, list[PathTrace], dict]:
    """One shard: build a single type's traces (pure function of args).

    The fourth element is an ``analysis-shard`` span blob timed inside
    the (possibly separate) shard process; the parent tracer adopts the
    blobs in canonical order, re-keying their ids, so the trace is
    bit-identical at any worker count.
    """
    shard_index, type_name, histories, symbols, stats, mode = args
    t0 = time.perf_counter()
    c0 = time.process_time()
    builder = builder_for(mode, symbols, stats)
    traces = builder.build(type_name, histories)
    blob = {
        "kind": "span",
        "id": f"shard-{shard_index}",
        "parent": None,
        "name": "analysis-shard",
        "path": f"analysis-shard#{shard_index}",
        "start_s": 0.0,
        "wall_s": time.perf_counter() - t0,
        "cpu_s": time.process_time() - c0,
        "counters": {
            "shard_index": shard_index,
            "type_name": type_name,
            "histories": len(histories),
            "traces": len(traces),
            "mode": mode,
        },
    }
    return shard_index, type_name, traces, blob


def analyze_histories(
    symbols: SymbolTable,
    sampler,
    histories: list[ObjectAccessHistory] | dict[str, list[ObjectAccessHistory]],
    *,
    mode: str = "indexed",
    workers: int = 0,
    tracer=None,
) -> dict[str, list[PathTrace]]:
    """Path traces for every type, optionally sharded across processes.

    Histories shard by type; each shard is a pure function of its input
    and results merge canonically by (shard index, type name), so the
    output is bit-identical at any ``workers`` count (a pool failure --
    e.g. a sandbox without fork -- silently degrades to serial with the
    same output).  ``workers=0`` means *auto*: one worker per available
    CPU, capped at the shard count, so a single-core host never pays
    pool overhead; an explicit ``workers > 1`` always engages the pool.
    ``sampler`` may be a live collector, an offline sampler, a
    :class:`StatsView`, or None; it is snapshotted into a picklable
    :class:`StatsView` before any process boundary.

    When a :class:`repro.trace.Tracer` is passed, the whole call is
    wrapped in an ``analysis`` span and each shard contributes an
    ``analysis-shard`` child span timed inside the shard process and
    adopted canonically (sorted by shard index) on the way out.
    """
    if mode not in ANALYSIS_MODES:
        raise ProfilingError(
            f"unknown analysis mode {mode!r} (choose {' or '.join(ANALYSIS_MODES)})"
        )
    if isinstance(histories, dict):
        by_type = {name: list(hists) for name, hists in histories.items()}
    else:
        by_type = {}
        for history in histories:
            by_type.setdefault(history.type_name, []).append(history)
    stats = sampler if isinstance(sampler, StatsView) else StatsView.from_sampler(sampler)
    tasks = [
        (index, type_name, by_type[type_name], symbols, stats, mode)
        for index, type_name in enumerate(sorted(by_type))
    ]
    if workers == 0:
        workers = min(os.cpu_count() or 1, len(tasks))
    if tracer is None:
        from repro.trace import NULL_TRACER

        tracer = NULL_TRACER
    with tracer.span("analysis", mode=mode, shards=len(tasks)):
        results: list[tuple[int, str, list[PathTrace], dict]] | None = None
        if workers > 1 and len(tasks) > 1:
            try:
                with multiprocessing.Pool(min(workers, len(tasks))) as pool:
                    results = pool.map(_analysis_shard, tasks)
            except OSError:
                results = None
        if results is None:
            results = [_analysis_shard(task) for task in tasks]
        results.sort(key=lambda item: (item[0], item[1]))
        tracer.adopt([blob for _i, _n, _t, blob in results])
    return {type_name: traces for _index, type_name, traces, _blob in results}


# ----------------------------------------------------------------------
# Benchmark corpora: amplified real histories and generated ones
# ----------------------------------------------------------------------


def amplify_corpus(
    by_type: dict[str, list[ObjectAccessHistory]],
    *,
    shards: int = 4,
    variants: int = 4,
) -> dict[str, list[ObjectAccessHistory]]:
    """Scale a collected history corpus for analysis benchmarking.

    Each source type becomes *shards* independent type shards (so the
    sharded pipeline has real cross-type parallelism to exploit), and
    each shard holds *variants* ip-displaced copies of the source
    histories (so the family count grows the way a code base with more
    distinct execution paths would).  Variant 0 is the unmodified
    original; the displacement is deterministic, far outside the fake
    text segment, and identical for every pipeline under test.
    """
    amplified: dict[str, list[ObjectAccessHistory]] = {}
    for type_name in sorted(by_type):
        source = by_type[type_name]
        for shard in range(shards):
            shard_name = f"{type_name}@{shard}"
            clones: list[ObjectAccessHistory] = []
            for variant in range(variants):
                shift = (shard * variants + variant) * _VARIANT_IP_STRIDE
                for history in source:
                    clone = ObjectAccessHistory(
                        type_name=shard_name,
                        object_base=history.object_base,
                        object_cookie=history.object_cookie,
                        offsets=history.offsets,
                        alloc_cpu=history.alloc_cpu,
                        alloc_cycle=history.alloc_cycle,
                        set_index=history.set_index,
                        truncated=history.truncated,
                    )
                    clone.free_cycle = history.free_cycle
                    clone.free_cpu = history.free_cpu
                    clone.elements = [
                        HistoryElement(
                            offset=el.offset,
                            ip=el.ip + shift,
                            cpu=el.cpu,
                            time=el.time,
                            is_write=el.is_write,
                        )
                        for el in history.elements
                    ]
                    clones.append(clone)
            amplified[shard_name] = clones
    return amplified


def synthetic_history_corpus(
    seed: int,
    *,
    types: int = 4,
    histories_per_type: int = 48,
    chunks: int = 4,
    chunk_size: int = 4,
    paths_per_type: int = 6,
    pair_fraction: float = 0.5,
) -> dict[str, list[ObjectAccessHistory]]:
    """A generated multi-type history corpus (no machine required).

    Mirrors the PR 2 synthetic trace generator: a pure function of the
    seed, so reference/indexed/sharded pipelines can be compared on a
    workload with a known shape -- several types, several distinct
    execution paths per type, a mix of pairwise and single-chunk
    histories.
    """
    rng = DeterministicRng(seed, "analysis-corpus")
    corpus: dict[str, list[ObjectAccessHistory]] = {}
    for t in range(types):
        type_name = f"synthetic_type_{t}"
        type_rng = rng.child(type_name)
        chunk_list = [(i * chunk_size, chunk_size) for i in range(chunks)]
        # Each path is a fixed (chunk, ip, cpu, write) script; histories
        # following the same path share projections and cluster together.
        paths = []
        for p in range(paths_per_type):
            length = type_rng.randint(3, 2 * chunks)
            script = []
            for step in range(length):
                chunk = chunk_list[type_rng.randint(0, chunks - 1)]
                ip = 0x1000_0000 + (t * paths_per_type + p) * 0x100 + step
                cpu = type_rng.randint(0, 3)
                script.append((chunk, ip, cpu, type_rng.random() < 0.3))
            paths.append(script)
        histories = []
        for i in range(histories_per_type):
            script = paths[type_rng.randint(0, paths_per_type - 1)]
            pair = type_rng.random() < pair_fraction
            if pair:
                watched = tuple(type_rng.sample(chunk_list, 2))
            else:
                watched = (chunk_list[type_rng.randint(0, chunks - 1)],)
            history = ObjectAccessHistory(
                type_name=type_name,
                object_base=0x10_0000 + i * 0x100,
                object_cookie=i,
                offsets=watched,
                alloc_cpu=script[0][2],
                alloc_cycle=0,
                set_index=i,
            )
            time = 0
            for chunk, ip, cpu, is_write in script:
                time += type_rng.randint(5, 60)
                if chunk not in watched:
                    continue
                history.elements.append(
                    HistoryElement(
                        offset=chunk[0], ip=ip, cpu=cpu, time=time, is_write=is_write
                    )
                )
            history.free_cycle = time + type_rng.randint(10, 100)
            history.free_cpu = script[-1][2]
            histories.append(history)
        corpus[type_name] = histories
    return corpus
