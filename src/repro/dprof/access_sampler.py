"""Access-sample collection via IBS (paper Section 5.1).

Programs the machine's IBS units and turns each delivered
:class:`~repro.hw.ibs.IbsSample` into a typed
:class:`~repro.dprof.records.AccessSample` through the resolver.  The
~2,000-cycle interrupt cost is charged by the IBS unit itself, so the
overhead curves of Figure 6-2 fall out of the collection run.

The collector also maintains the (type, offset-chunk, ip) aggregation the
path-trace builder consumes (Section 5.4, first step: "DProf aggregates
all access samples that have the same type, offset, and ip values").
"""

from __future__ import annotations

from repro.dprof.records import AccessSample, AccessStats
from repro.dprof.resolver import TypeResolver
from repro.hw.ibs import IbsSample
from repro.hw.machine import Machine
from repro.util.stats import Histogram

#: Latency sanity bound: no real memory access costs this much, so a
#: sample above it is a corrupted register read (racy MSR, injected
#: fault) and is rejected rather than poisoning the latency means.
MAX_PLAUSIBLE_LATENCY = 50_000


class AccessSampleCollector:
    """Collects and aggregates typed access samples from IBS."""

    def __init__(
        self,
        machine: Machine,
        resolver: TypeResolver,
        chunk_size: int = 8,
        max_resident_samples: int | None = None,
    ) -> None:
        self.machine = machine
        self.resolver = resolver
        #: Offsets are binned to the debug-register chunk width so access
        #: samples line up with history elements during augmentation.
        self.chunk_size = chunk_size
        #: Raw-sample memory bound.  The paper notes DProf "stores all raw
        #: samples in RAM" and that DCPI's spill-to-disk techniques apply;
        #: here, once the cap is hit, new samples keep updating the
        #: aggregated statistics (which is all the views consume) while
        #: the raw record is dropped -- the spill, without a disk.
        self.max_resident_samples = max_resident_samples
        self.samples: list[AccessSample] = []
        self.samples_spilled = 0
        self.samples_rejected = 0
        self.stats: dict[tuple[str, int, int], AccessStats] = {}
        self.type_misses = Histogram()
        self.type_samples = Histogram()
        self.total_l1_misses = 0
        self._active = False

    # ------------------------------------------------------------------
    # Collection control
    # ------------------------------------------------------------------

    def start(self, interval: int) -> None:
        """Enable IBS on every core at one tag per *interval* instructions."""
        self.machine.configure_ibs(interval, self._on_sample)
        self._active = True

    def stop(self) -> None:
        """Disable IBS sampling."""
        self.machine.disable_ibs()
        self._active = False

    def _on_sample(self, sample: IbsSample) -> None:
        if not sample.is_memory:
            return
        if sample.latency > MAX_PLAUSIBLE_LATENCY or sample.latency < 0:
            self.samples_rejected += 1
            return
        res = self.resolver.resolve(sample.addr)
        if res is None:
            return
        access = AccessSample(
            type_name=res.type_name,
            offset=res.offset,
            ip=sample.ip,
            cpu=sample.cpu,
            level=sample.level,
            latency=sample.latency,
            is_write=sample.kind == "store",
            cycle=sample.cycle,
            size=sample.size,
        )
        if (
            self.max_resident_samples is None
            or len(self.samples) < self.max_resident_samples
        ):
            self.samples.append(access)
        else:
            self.samples_spilled += 1
        chunk = (access.offset // self.chunk_size) * self.chunk_size
        key = (access.type_name, chunk, access.ip)
        stats = self.stats.get(key)
        if stats is None:
            stats = AccessStats()
            self.stats[key] = stats
        stats.add(access)
        self.type_samples.add(access.type_name)
        if access.l1_miss:
            self.type_misses.add(access.type_name)
            self.total_l1_misses += 1

    # ------------------------------------------------------------------
    # Aggregation queries
    # ------------------------------------------------------------------

    def stats_for(self, type_name: str, offset: int, ip: int) -> AccessStats | None:
        """Aggregated stats for one (type, offset, ip), chunk-binned."""
        chunk = (offset // self.chunk_size) * self.chunk_size
        return self.stats.get((type_name, chunk, ip))

    def miss_share(self, type_name: str) -> float:
        """Fraction of all sampled L1 misses attributed to *type_name*.

        This is the "% of all L1 misses" column of Tables 6.1/6.4/6.5.
        """
        return self.type_misses.share(type_name)

    def popular_types(self, n: int | None = None) -> list[tuple[str, int]]:
        """Types ranked by sampled L1 misses (most interesting first)."""
        return [(str(k), v) for k, v in self.type_misses.top(n)]

    def popular_chunks(self, type_name: str, n: int | None = None) -> list[int]:
        """Most-accessed offset chunks of a type, by sample count.

        Used to focus pairwise history collection on the hot members
        (Section 6.4: "DProf analyzes the access samples to find the most
        used members").
        """
        counts = Histogram()
        for (tname, chunk, _ip), stats in self.stats.items():
            if tname == type_name:
                counts.add(chunk, stats.count)
        return [int(chunk) for chunk, _count in counts.top(n)]

    @property
    def memory_bytes(self) -> int:
        """Profiling memory footprint: 88 bytes per access sample (paper)."""
        return 88 * len(self.samples)
