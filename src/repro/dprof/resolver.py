"""Address-to-type resolution (paper Section 5.2).

Given a raw data address from an IBS sample, find the data type containing
it, the object's base address, and hence the offset into the type.  For
dynamically-allocated memory DProf asks the (instrumented) allocator; for
statically-allocated memory it consults debug information -- here, the
slab system's static-object registry plays that role.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.layout import KObject
from repro.kernel.slab import SlabSystem


@dataclass(frozen=True, slots=True)
class Resolution:
    """Outcome of resolving one address."""

    type_name: str
    offset: int
    base: int
    obj: KObject
    live: bool


class TypeResolver:
    """Resolves data addresses to (type, offset) through the allocator."""

    def __init__(self, slab: SlabSystem) -> None:
        self.slab = slab
        self.resolved = 0
        self.unresolved = 0

    def resolve(self, addr: int) -> Resolution | None:
        """Resolve *addr*, or None for memory DProf knows nothing about.

        Resolution works even for currently-free objects: a slab address
        keeps its pool's type across recycling, which is exactly the
        property DProf relies on (Section 5.2).
        """
        obj = self.slab.find_object(addr)
        if obj is None:
            self.unresolved += 1
            return None
        self.resolved += 1
        return Resolution(
            type_name=obj.otype.name,
            offset=addr - obj.base,
            base=obj.base,
            obj=obj,
            live=obj.alive,
        )
