"""Object access history collection via debug registers (Section 5.3).

DProf monitors **one object at a time**: it reserves the next allocation of
the chosen type with the memory subsystem, arms the same debug-register
range on *every* core (the object may be touched anywhere), records every
trapped access until the object is freed, then moves to the next job.

A *job* watches one chunk (or, in pairwise mode, two chunks) of one
object's lifetime; a *history set* is a collection of histories covering
every scheduled chunk of the type once (paper Section 6.4).  Costs follow
the paper's measurements:

- each trap costs ~1,000 cycles (charged by the watch manager);
- reserving an object with the memory subsystem costs ~90,000 cycles;
- arming debug registers on all cores costs an IPI broadcast
  (~130,000 cycles on 16 cores);

giving the ~220,000-cycle per-object setup the paper reports, and the
overhead structure of Tables 6.7-6.10.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.dprof.records import HistoryElement, ObjectAccessHistory
from repro.errors import ProfilingError, SimulationError
from repro.hw.debugreg import MAX_WATCH_BYTES
from repro.hw.machine import Machine
from repro.kernel.layout import KObject
from repro.kernel.slab import SlabSystem

#: Default watched-chunk width; the paper uses 4-byte debug registers
#: (a 256-byte skbuff needs "64 histories with debug register configured
#: to monitor length of 4 bytes").
DEFAULT_CHUNK_SIZE = 4


#: How many times an incomplete job (stolen register, truncated history)
#: is retried before its partial data is accepted as-is.
DEFAULT_MAX_RETRIES = 2

#: Base retry backoff in simulated cycles; attempt N waits N times this
#: long before re-reserving, so a persistently contended register does
#: not livelock the collector.
DEFAULT_RETRY_BACKOFF_CYCLES = 50_000


@dataclass(slots=True)
class HistoryJob:
    """One scheduled monitoring job: chunks of the next object of a type."""

    type_name: str
    chunks: tuple[tuple[int, int], ...]  # (offset, length) per debug register
    set_index: int
    attempt: int = 0


@dataclass
class OverheadBreakdown:
    """Cycle cost split the way Table 6.9 reports it."""

    interrupt_cycles: int = 0
    memory_cycles: int = 0
    communication_cycles: int = 0

    @property
    def total(self) -> int:
        """All profiling cycles charged."""
        return self.interrupt_cycles + self.memory_cycles + self.communication_cycles

    def shares(self) -> dict[str, float]:
        """Fractional split (interrupts / memory / communication)."""
        total = self.total
        if total == 0:
            return {"interrupts": 0.0, "memory": 0.0, "communication": 0.0}
        return {
            "interrupts": self.interrupt_cycles / total,
            "memory": self.memory_cycles / total,
            "communication": self.communication_cycles / total,
        }


def chunks_for_type(size: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> list[tuple[int, int]]:
    """Full chunk coverage of a type: (offset, length) per debug register."""
    if not 1 <= chunk_size <= MAX_WATCH_BYTES:
        raise ProfilingError(
            f"chunk size must be 1-{MAX_WATCH_BYTES} bytes, got {chunk_size}"
        )
    return [(off, min(chunk_size, size - off)) for off in range(0, size, chunk_size)]


def all_pairs(chunks: list[tuple[int, int]]) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """Every unordered pair of chunks (pairwise sampling, Section 5.3)."""
    pairs = []
    for i in range(len(chunks)):
        for j in range(i + 1, len(chunks)):
            pairs.append((chunks[i], chunks[j]))
    return pairs


class HistoryCollector:
    """Runs history jobs against the live machine, one object at a time."""

    def __init__(
        self,
        machine: Machine,
        slab: SlabSystem,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_backoff_cycles: int = DEFAULT_RETRY_BACKOFF_CYCLES,
    ) -> None:
        self.machine = machine
        self.slab = slab
        self.chunk_size = chunk_size
        self.max_retries = max_retries
        self.retry_backoff_cycles = retry_backoff_cycles
        #: Consulted per armed object when a fault plan is active.
        self.faults = None
        self.histories: list[ObjectAccessHistory] = []
        self.jobs: deque[HistoryJob] = deque()
        self.overhead = OverheadBreakdown()
        self.jobs_completed = 0
        self.jobs_abandoned = 0
        self.jobs_retried = 0
        self.histories_partial = 0
        self.arm_attempts = 0
        self.arm_failures = 0
        self.started_cycle: int | None = None
        self.finished_cycle: int | None = None
        self._current_job: HistoryJob | None = None
        self._current_history: ObjectAccessHistory | None = None
        self._current_obj: KObject | None = None
        self._truncate_after: int | None = None
        self._retry_queue: list[tuple[HistoryJob, int]] = []
        self._watches: list = []
        self._free_listener_installed = False
        self._reservation_pending = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule_sets(
        self,
        type_name: str,
        type_size: int,
        num_sets: int,
        pair: bool = False,
        chunks: list[tuple[int, int]] | None = None,
    ) -> int:
        """Queue *num_sets* history sets for a type; returns jobs queued.

        ``chunks`` restricts coverage to chosen members (the paper tunes
        pairwise collection to "just the bytes that cover the chosen
        members"); by default every chunk of the type is covered.
        """
        cover = chunks if chunks is not None else chunks_for_type(type_size, self.chunk_size)
        jobs = 0
        for set_index in range(num_sets):
            if pair:
                for pair_chunks in all_pairs(cover):
                    self.jobs.append(HistoryJob(type_name, pair_chunks, set_index))
                    jobs += 1
            else:
                for chunk in cover:
                    self.jobs.append(HistoryJob(type_name, (chunk,), set_index))
                    jobs += 1
        return jobs

    @property
    def histories_per_set(self) -> int | None:
        """Histories in one set of the most recently scheduled batch."""
        if not self.jobs:
            return None
        first_set = self.jobs[0].set_index
        return sum(1 for j in self.jobs if j.set_index == first_set)

    @property
    def done(self) -> bool:
        """True once every scheduled job has completed (retries included)."""
        return (
            not self.jobs
            and not self._retry_queue
            and self._current_job is None
        )

    # ------------------------------------------------------------------
    # Collection lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin working the job queue (reserves the first object).

        Safe to call again after queueing more jobs: an in-flight job (a
        pending reservation or an armed object) keeps running and the new
        jobs wait their turn behind it.
        """
        if self.started_cycle is None:
            self.started_cycle = self.machine.elapsed_cycles()
        if not self._free_listener_installed:
            self.slab.add_free_listener(self._on_free)
            self._free_listener_installed = True
        if self._current_job is None:
            self._next_job()

    def abandon_current(self) -> None:
        """Drop the in-flight job: disarm, cancel reservations, reset.

        Used when a caller gives up on the current job (collection window
        expired) so the next ``start()`` begins cleanly; without this, a
        stale reservation would deliver an object of the *old* type to
        the *next* job.
        """
        if self._current_job is None:
            return
        self.slab.cancel_reservations(self._current_job.type_name)
        self._reservation_pending = False
        self._disarm()
        if self._current_history is not None:
            self.jobs_abandoned += 1
        self._current_history = None
        self._current_obj = None
        self._current_job = None
        self._truncate_after = None

    def finalize(self) -> None:
        """Stop collecting: disarm watches, drop incomplete state."""
        self.abandon_current()
        self.jobs.clear()
        self._retry_queue.clear()
        self.slab.cancel_reservations()
        if self._free_listener_installed:
            self.slab.remove_free_listener(self._on_free)
            self._free_listener_installed = False
        self.finished_cycle = self.machine.elapsed_cycles()

    def _next_job(self) -> None:
        self._promote_ready_retries()
        if not self.jobs:
            self._current_job = None
            if (
                self.finished_cycle is None
                and self.jobs_completed
                and not self._retry_queue
            ):
                self.finished_cycle = self.machine.elapsed_cycles()
            return
        job = self.jobs.popleft()
        self._current_job = job
        self._reservation_pending = True
        self.slab.reserve_next(job.type_name, self._on_reserved_alloc)

    def _promote_ready_retries(self) -> None:
        """Move retry jobs whose backoff has expired back onto the queue."""
        if not self._retry_queue:
            return
        now = self.machine.elapsed_cycles()
        still_waiting = []
        for job, ready_cycle in self._retry_queue:
            if ready_cycle <= now:
                self.jobs.append(job)
            else:
                still_waiting.append((job, ready_cycle))
        self._retry_queue = still_waiting

    def _requeue_or_finish(self, job: HistoryJob, cycle: int, partial) -> None:
        """Retry an incomplete job, or accept what it gathered.

        Bounded retry-with-backoff: attempt N waits N * backoff simulated
        cycles before re-reserving.  Once retries are exhausted, a partial
        history (if any) is kept -- marked truncated, counted in
        ``histories_partial`` -- rather than silently discarded; with no
        partial data the job counts as abandoned.
        """
        if job.attempt < self.max_retries:
            self.jobs_retried += 1
            retry = HistoryJob(
                job.type_name, job.chunks, job.set_index, attempt=job.attempt + 1
            )
            backoff = self.retry_backoff_cycles * (job.attempt + 1)
            self._retry_queue.append((retry, cycle + backoff))
            return
        if partial is not None:
            partial.truncated = True
            self.histories.append(partial)
            self.histories_partial += 1
            self.jobs_completed += 1
        else:
            self.jobs_abandoned += 1

    def _on_reserved_alloc(self, obj: KObject, cpu: int, cycle: int) -> None:
        job = self._current_job
        if job is None:  # finalized while a reservation was pending
            return
        self._reservation_pending = False
        if obj.otype.name != job.type_name:  # stale reservation
            return
        # Cost of coordinating with the memory subsystem to reserve the
        # object (Table 6.9 "Memory" column).
        reserve = self.machine.interconnect.reserve_object
        self.machine.cores[cpu].charge(reserve, overhead=True)
        self.overhead.memory_cycles += reserve
        # Cost of broadcasting debug-register setup to every core
        # (Table 6.9 "Communication" column).
        broadcast = self.machine.interconnect.broadcast_cost(self.machine.config.ncores)
        self.machine.cores[cpu].charge(broadcast, overhead=True)
        self.overhead.communication_cycles += broadcast

        history = ObjectAccessHistory(
            type_name=job.type_name,
            object_base=obj.base,
            object_cookie=obj.cookie,
            offsets=job.chunks,
            alloc_cpu=cpu,
            alloc_cycle=cycle,
            set_index=job.set_index,
        )
        self.arm_attempts += 1
        self._truncate_after = (
            self.faults.truncation_point() if self.faults is not None else None
        )
        try:
            for offset, length in job.chunks:
                watch = self.machine.watches.arm_all_cores(
                    obj.base + offset, length, self._on_trap
                )
                self._watches.append(watch)
        except SimulationError:
            # Register stolen (or none free): give the job back to the
            # scheduler instead of crashing the collection run.
            self._disarm()
            self.arm_failures += 1
            self._current_history = None
            self._current_obj = None
            self._current_job = None
            self._truncate_after = None
            self._requeue_or_finish(job, cycle, None)
            self._next_job()
            return
        self._current_history = history
        self._current_obj = obj

    def _on_trap(self, cpu: int, instr, result, cycle: int) -> None:
        history = self._current_history
        obj = self._current_obj
        if history is None or obj is None:
            return
        self.overhead.interrupt_cycles += self.machine.watches.trap_cycles
        history.elements.append(
            HistoryElement(
                offset=instr.addr - obj.base,
                ip=instr.ip,
                cpu=cpu,
                time=cycle - history.alloc_cycle,
                is_write=instr.is_write,
            )
        )
        if (
            self._truncate_after is not None
            and len(history.elements) >= self._truncate_after
        ):
            # Injected truncation: the watch is revoked mid-lifetime.  Stop
            # recording but keep tracking the object so its free still
            # closes the job (and decides retry vs keep-partial).
            history.truncated = True
            self._truncate_after = None
            self._disarm()

    def _on_free(self, obj: KObject, cpu: int, cycle: int) -> None:
        current = self._current_obj
        if current is None or obj is not current:
            # Every free is also the collector's clock pulse: it is the
            # only callback guaranteed to keep firing, so use it to kick
            # off retry jobs whose backoff has expired.
            if self._current_job is None and (self.jobs or self._retry_queue):
                self._next_job()
            return
        history = self._current_history
        job = self._current_job
        history.free_cycle = cycle
        history.free_cpu = cpu
        self._disarm()
        self._current_history = None
        self._current_obj = None
        self._current_job = None
        self._truncate_after = None
        if history.truncated:
            self._requeue_or_finish(job, cycle, history)
        else:
            self.histories.append(history)
            self.jobs_completed += 1
        self._next_job()

    def _disarm(self) -> None:
        for watch in self._watches:
            self.machine.watches.disarm(watch)
        self._watches.clear()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def collection_cycles(self) -> int:
        """Cycles between collection start and last completed job."""
        if self.started_cycle is None:
            return 0
        end = (
            self.finished_cycle
            if self.finished_cycle is not None
            else self.machine.elapsed_cycles()
        )
        return max(0, end - self.started_cycle)

    @property
    def total_elements(self) -> int:
        """History elements recorded across all completed histories."""
        return sum(len(h.elements) for h in self.histories)

    @property
    def memory_bytes(self) -> int:
        """Profiling memory footprint: 32 bytes per element (paper)."""
        return 32 * self.total_elements

    def histories_for(self, type_name: str) -> list[ObjectAccessHistory]:
        """All completed histories of one type."""
        return [h for h in self.histories if h.type_name == type_name]

    def histories_by_type(self) -> dict[str, list[ObjectAccessHistory]]:
        """All histories grouped by type, in collection order.

        One pass instead of one :meth:`histories_for` scan per type; the
        sharded analysis pipeline consumes this grouping directly.
        """
        grouped: dict[str, list[ObjectAccessHistory]] = {}
        for history in self.histories:
            grouped.setdefault(history.type_name, []).append(history)
        return grouped
