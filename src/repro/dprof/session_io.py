"""Profiling-session serialization (the DCPI lineage).

The paper: "Currently DProf stores all raw samples in RAM while
profiling.  Techniques from DCPI can be used to transfer samples to disk
while profiling."  This module provides the disk half: a profiling
session's raw data (aggregated sample statistics, object access
histories, the address set, and the symbol map) serializes to JSON, and
an :class:`OfflineSession` rebuilds every DProf view from the file alone
-- profile on one machine, analyze anywhere.

Because archives cross machine boundaries they also see storage faults:
torn writes and flipped bytes.  Format version 2 therefore carries a
SHA-256 checksum per bulk section, validated on load.  A section that
fails its checksum (or fails to parse) is dropped and reported in the
session's :class:`~repro.dprof.quality.DataQuality` -- best-effort
partial recovery -- while structurally unusable files (bad JSON, unknown
version, corrupt core metadata) raise
:class:`~repro.errors.SessionFormatError` naming the path and section.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.dprof.analysis import analyze_histories, builder_for
from repro.dprof.cachesim import DProfCacheSim, WorkingSetSimResult
from repro.dprof.quality import DataQuality
from repro.dprof.records import (
    AccessStats,
    AddressSet,
    HistoryElement,
    ObjectAccessHistory,
)
from repro.dprof.views import (
    DataFlowView,
    DataProfileRow,
    DataProfileView,
    MissClassification,
    MissClassifier,
    WorkingSetRow,
    WorkingSetView,
)
from repro.errors import SessionFormatError
from repro.hw.cache import CacheGeometry
from repro.hw.events import CacheLevel
from repro.kernel.symbols import SymbolTable
from repro.metrics import MetricsSummary, machine_counters
from repro.util.rng import DeterministicRng

#: v1 = no checksums (pre-robustness archives, still loadable);
#: v2 = per-section SHA-256 checksums + embedded data-quality report.
FORMAT_VERSION = 2

#: The bulk sections covered by checksums and partial recovery.  Core
#: metadata (window, geometry, miss totals) is small and load-bearing:
#: if it is corrupt the archive is unusable and loading raises.
CHECKSUMMED_SECTIONS = ("stats", "histories", "address_set", "symbols")

#: Empty replacement for each recoverable section that fails to verify.
_EMPTY_SECTION = {
    "stats": [],
    "histories": [],
    "address_set": [],
    "symbols": {},
}


def section_checksum(section) -> str:
    """SHA-256 over the section's canonical JSON encoding."""
    canonical = json.dumps(section, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


def export_session(dprof) -> dict:
    """Serialize a (detached) DProf session to a JSON-compatible dict."""
    sampler = dprof.sampler
    stats_blob = []
    for (type_name, chunk, ip), stats in sampler.stats.items():
        stats_blob.append(
            {
                "type": type_name,
                "chunk": chunk,
                "ip": ip,
                "count": stats.count,
                "levels": {level.name: n for level, n in stats.level_counts.items() if n},
                "latency_mean": stats.latency.mean,
                "latency_count": stats.latency.count,
            }
        )
    histories_blob = []
    for h in dprof.history.histories:
        histories_blob.append(
            {
                "type": h.type_name,
                "base": h.object_base,
                "cookie": h.object_cookie,
                "offsets": [list(c) for c in h.offsets],
                "alloc_cpu": h.alloc_cpu,
                "alloc_cycle": h.alloc_cycle,
                "free_cycle": h.free_cycle,
                "free_cpu": h.free_cpu,
                "set_index": h.set_index,
                "truncated": int(h.truncated),
                "elements": [
                    [el.offset, el.ip, el.cpu, el.time, int(el.is_write)]
                    for el in h.elements
                ],
            }
        )
    address_blob = [
        {
            "type": e.type_name,
            "base": e.base,
            "size": e.size,
            "alloc": e.alloc_cycle,
            "alloc_cpu": e.alloc_cpu,
            "free": e.free_cycle,
            "free_cpu": e.free_cpu,
        }
        for e in dprof.address_set.entries
    ]
    symbols_blob = {
        str(ip): list(sym) for ip, sym in dprof.kernel.symbols._ip_to_sym.items()
    }
    cfg = dprof.machine.config
    blob = {
        "version": FORMAT_VERSION,
        "window": [dprof.profile_start_cycle, dprof.profile_end_cycle],
        "total_l1_misses": sampler.total_l1_misses,
        "type_misses": {str(k): v for k, v in sampler.type_misses.items()},
        "type_samples": {str(k): v for k, v in sampler.type_samples.items()},
        # Bounce combines history evidence with the foreign-sample
        # fallback, which needs the raw samples -- compute it at export.
        "bounce": {
            str(name): dprof.bounce_flag(str(name))
            for name, _count in sampler.type_misses.items()
        },
        "descriptions": dict(dprof._type_descriptions),
        "static_bytes": {
            name: dprof.kernel.slab.static_bytes(name)
            for name in dprof.kernel.slab.static_objects_by_type()
        },
        "stats": stats_blob,
        "histories": histories_blob,
        "address_set": address_blob,
        "symbols": symbols_blob,
        "sim_geometry": [cfg.l2_size, cfg.l2_ways, cfg.line_size],
        "chunk_size": dprof.config.chunk_size,
        "data_quality": dprof.data_quality().to_blob(),
        # Raw hierarchy/instruction counters for the top-down metrics
        # summary (repro.metrics).  Not checksummed: plain ints, and old
        # readers must keep accepting archives without the section.
        "hw_counters": machine_counters(dprof.machine),
    }
    blob["checksums"] = {
        name: section_checksum(blob[name]) for name in CHECKSUMMED_SECTIONS
    }
    return blob


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write *text* via a same-directory temp file + ``os.replace``.

    Archives are written by concurrent worker processes into shared
    store directories (:mod:`repro.serve.store`), so a plain
    ``write_text`` would let two writers -- or one writer and a crash --
    interleave and produce exactly the torn files the checksums exist to
    catch.  The same-directory temp file keeps source and destination on
    one filesystem, which is what makes ``os.replace`` atomic: readers
    see the old bytes, the new bytes, or no file, never a hybrid.
    """
    path = Path(path)
    tmp = path.parent / f".tmp-{path.name}.{os.getpid()}"
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


def save_session(dprof, path: str | Path) -> Path:
    """Export and atomically write a session archive to *path*."""
    return atomic_write_text(path, json.dumps(export_session(dprof)))


# ----------------------------------------------------------------------
# Offline analysis
# ----------------------------------------------------------------------


class _OfflineSampler:
    """Just enough of AccessSampleCollector for the view builders."""

    def __init__(self, blob: dict, chunk_size: int) -> None:
        self.chunk_size = chunk_size
        self.stats: dict[tuple, AccessStats] = {}
        for item in blob["stats"]:
            stats = AccessStats()
            stats.count = item["count"]
            for name, n in item["levels"].items():
                stats.level_counts[CacheLevel[name]] = n
            stats.latency.count = item["latency_count"]
            stats.latency.mean = item["latency_mean"]
            self.stats[(item["type"], item["chunk"], item["ip"])] = stats

    def stats_for(self, type_name: str, offset: int, ip: int):
        chunk = (offset // self.chunk_size) * self.chunk_size
        return self.stats.get((type_name, chunk, ip))


class OfflineSession:
    """Rebuilds DProf's views from a serialized session archive.

    Loading is best-effort: bulk sections that fail checksum validation
    or parsing are dropped (recorded in :attr:`data_quality`), the rest
    of the archive still loads, and every rebuilt view carries the
    quality report.  Corrupt core metadata raises
    :class:`~repro.errors.SessionFormatError` instead.
    """

    def __init__(
        self,
        blob: dict,
        path: str | Path | None = None,
        *,
        analysis: str = "indexed",
        analysis_workers: int = 0,
    ) -> None:
        self.path = path
        self.analysis = analysis
        self.analysis_workers = analysis_workers
        version = blob.get("version")
        if version not in (1, FORMAT_VERSION):
            raise SessionFormatError(
                f"unsupported session format {version!r} "
                f"(this build reads 1-{FORMAT_VERSION})",
                path=path,
                section="version",
            )
        failed = self._validate_sections(blob, version)
        self.blob = blob
        self.data_quality = DataQuality.from_blob(blob.get("data_quality", {}))

        with self._recover(blob, failed, "window", required=True):
            start, end = blob["window"]
            self.window = (int(start), int(end))
        with self._recover(blob, failed, "symbols"):
            self.symbols = SymbolTable()
            for ip, (fn, site) in blob["symbols"].items():
                self.symbols._ip_to_sym[int(ip)] = (fn, site)
        with self._recover(blob, failed, "stats"):
            self.sampler = _OfflineSampler(blob, blob["chunk_size"])
        with self._recover(blob, failed, "address_set"):
            self.address_set = AddressSet()
            for e in blob["address_set"]:
                self.address_set.record_alloc(
                    e["type"], e["base"], e["size"], 0, e["alloc_cpu"], e["alloc"]
                )
                if e["free"] is not None:
                    self.address_set.record_free(e["base"], 0, e["free_cpu"], e["free"])
        with self._recover(blob, failed, "histories"):
            self.histories = [self._history_from(h) for h in blob["histories"]]

        self.data_quality.sections_failed = tuple(sorted(set(failed)))
        self._traces_cache: dict[str, list] = {}
        self._sim_cache: WorkingSetSimResult | None = None

    # ------------------------------------------------------------------
    # Validation and recovery
    # ------------------------------------------------------------------

    def _validate_sections(self, blob: dict, version: int) -> list[str]:
        """Checksum-validate bulk sections; returns the failed ones.

        Failed or missing sections are replaced with empty data so the
        rest of the constructor can proceed; v1 archives have no
        checksums, so only structural parsing protects them.
        """
        failed: list[str] = []
        checksums = blob.get("checksums", {}) if version >= 2 else {}
        if version >= 2 and not isinstance(checksums, dict):
            raise SessionFormatError(
                "checksum table is not an object", path=self.path, section="checksums"
            )
        for name in CHECKSUMMED_SECTIONS:
            section = blob.get(name)
            if section is None:
                failed.append(name)
                blob[name] = _EMPTY_SECTION[name]
                continue
            if version >= 2 and checksums.get(name) != section_checksum(section):
                failed.append(name)
                blob[name] = _EMPTY_SECTION[name]
        return failed

    def _recover(self, blob, failed, section, required=False):
        """Context manager: demote section parse errors to recovery notes."""
        return _SectionRecovery(self, blob, failed, section, required)

    @staticmethod
    def _history_from(blob: dict) -> ObjectAccessHistory:
        h = ObjectAccessHistory(
            type_name=blob["type"],
            object_base=blob["base"],
            object_cookie=blob["cookie"],
            offsets=tuple(tuple(c) for c in blob["offsets"]),
            alloc_cpu=blob["alloc_cpu"],
            alloc_cycle=blob["alloc_cycle"],
            set_index=blob.get("set_index", 0),
            truncated=bool(blob.get("truncated", 0)),
        )
        h.free_cycle = blob["free_cycle"]
        h.free_cpu = blob["free_cpu"]
        h.elements = [
            HistoryElement(offset=o, ip=ip, cpu=cpu, time=t, is_write=bool(w))
            for o, ip, cpu, t, w in blob["elements"]
        ]
        return h

    def _attach_quality(self, view, name: str):
        view.quality = self.data_quality
        self.data_quality.warn_if_degraded(f"offline {name} view")
        return view

    # ------------------------------------------------------------------
    # Views (mirror the live DProf facade)
    # ------------------------------------------------------------------

    def path_traces(self, type_name: str):
        cached = self._traces_cache.get(type_name)
        if cached is None:
            builder = builder_for(self.analysis, self.symbols, self.sampler)
            relevant = [h for h in self.histories if h.type_name == type_name]
            cached = builder.build(type_name, relevant)
            self._traces_cache[type_name] = cached
        return cached

    def working_set_sim(self) -> WorkingSetSimResult:
        if self._sim_cache is None:
            size, ways, line = self.blob["sim_geometry"]
            sim = DProfCacheSim(
                CacheGeometry(size, ways, line), DeterministicRng(3, "offline")
            )
            # One batch analysis pass (sharded when configured) for every
            # type not already built individually.
            by_type: dict[str, list[ObjectAccessHistory]] = {}
            for h in self.histories:
                by_type.setdefault(h.type_name, []).append(h)
            pending = {
                name: hists
                for name, hists in by_type.items()
                if name not in self._traces_cache
            }
            if pending:
                self._traces_cache.update(
                    analyze_histories(
                        self.symbols,
                        self.sampler,
                        pending,
                        mode=self.analysis,
                        workers=self.analysis_workers,
                    )
                )
            traces = {name: self.path_traces(name) for name in by_type}
            self._sim_cache = sim.simulate(self.address_set, traces)
        return self._sim_cache

    def data_profile(self) -> DataProfileView:
        blob = self.blob
        total_misses = sum(blob["type_misses"].values()) or 1
        start, end = self.window
        rows = []
        for type_name, misses in sorted(
            blob["type_misses"].items(), key=lambda kv: kv[1], reverse=True
        ):
            live = self.address_set.mean_live_bytes(type_name, start, end)
            if not live:
                live = float(blob["static_bytes"].get(type_name, 0))
            bounce = blob.get("bounce", {}).get(type_name)
            if bounce is None:
                bounce = any(
                    len({el.cpu for el in h.elements} | {h.alloc_cpu}) > 1
                    for h in self.histories
                    if h.type_name == type_name
                )
            rows.append(
                DataProfileRow(
                    type_name=type_name,
                    description=blob["descriptions"].get(type_name, ""),
                    working_set_bytes=live,
                    miss_share=misses / total_misses,
                    bounce=bounce,
                    sample_count=blob["type_samples"].get(type_name, 0),
                )
            )
        view = DataProfileView(rows, blob["total_l1_misses"])
        return self._attach_quality(view, "data profile")

    def working_set(self) -> WorkingSetView:
        """The working set view, rebuilt offline like the live one.

        Completes the view quartet: every view a live
        :class:`~repro.dprof.profiler.DProf` offers can be re-rendered
        from the archive alone (the service's ``fetch`` relies on this).
        """
        start, end = self.window
        sim = self.working_set_sim()
        rows = [
            WorkingSetRow(
                type_name=type_name,
                mean_live_bytes=self.address_set.mean_live_bytes(
                    type_name, start, end
                ),
                mean_live_objects=self.address_set.mean_live_objects(
                    type_name, start, end
                ),
                mean_resident_lines=sim.mean_resident_lines.get(type_name, 0.0),
            )
            for type_name in self.address_set.type_names()
        ]
        view = WorkingSetView(rows, sim, window_cycles=end - start)
        return self._attach_quality(view, "working set")

    def miss_classification(self, type_name: str) -> MissClassification:
        classifier = MissClassifier(self.working_set_sim())
        view = classifier.classify(type_name, self.path_traces(type_name))
        return self._attach_quality(view, "miss classification")

    def data_flow(self, type_name: str) -> DataFlowView:
        view = DataFlowView(type_name, self.path_traces(type_name))
        return self._attach_quality(view, "data flow")

    def metrics(self) -> MetricsSummary | None:
        """Top-down metrics summary, or None for pre-metrics archives.

        Derived purely from the archived counter integers, so the
        numbers equal the live run's :func:`MetricsSummary.from_machine`
        exactly -- the three-path identity the CLI's ``repro metrics``
        relies on.
        """
        counters = self.blob.get("hw_counters")
        if not isinstance(counters, dict):
            return None
        try:
            return MetricsSummary.from_blob(counters)
        except (KeyError, TypeError, ValueError):
            return None


class _SectionRecovery:
    """Demotes one section's parse failure to empty data + a quality note.

    Required sections (core metadata) re-raise as
    :class:`SessionFormatError` instead -- there is nothing sensible to
    recover to.
    """

    _PARSE_ERRORS = (KeyError, TypeError, ValueError, IndexError)

    def __init__(self, session, blob, failed, section, required) -> None:
        self.session = session
        self.blob = blob
        self.failed = failed
        self.section = section
        self.required = required

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is None:
            return False
        if not issubclass(exc_type, self._PARSE_ERRORS):
            return False
        if self.required:
            raise SessionFormatError(
                f"corrupt required section: {exc!r}",
                path=self.session.path,
                section=self.section,
            ) from exc
        if self.section not in self.failed:
            self.failed.append(self.section)
        # Leave the session attribute in its pristine-empty state.
        defaults = {
            "symbols": SymbolTable(),
            "stats": _OfflineSampler(
                {"stats": []}, self.blob.get("chunk_size", 8) or 8
            ),
            "address_set": AddressSet(),
            "histories": [],
        }
        attr = {"stats": "sampler"}.get(self.section, self.section)
        setattr(self.session, attr, defaults[self.section])
        return True


def load_session(
    path: str | Path,
    *,
    analysis: str = "indexed",
    analysis_workers: int = 0,
) -> OfflineSession:
    """Read a session archive and return an offline analysis handle.

    Raises :class:`~repro.errors.SessionFormatError` (never a bare
    ``json.JSONDecodeError``/``KeyError``) for torn or malformed files,
    naming the path; recoverable section damage loads partially instead.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SessionFormatError(f"cannot read archive: {exc}", path=path) from exc
    except UnicodeDecodeError as exc:
        raise SessionFormatError(
            f"archive is not valid UTF-8 (flipped byte?): {exc}", path=path
        ) from exc
    try:
        blob = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SessionFormatError(
            f"archive is not valid JSON (torn write?): {exc}", path=path
        ) from exc
    if not isinstance(blob, dict):
        raise SessionFormatError("archive root is not an object", path=path)
    return OfflineSession(
        blob, path=path, analysis=analysis, analysis_workers=analysis_workers
    )
