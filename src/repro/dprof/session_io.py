"""Profiling-session serialization (the DCPI lineage).

The paper: "Currently DProf stores all raw samples in RAM while
profiling.  Techniques from DCPI can be used to transfer samples to disk
while profiling."  This module provides the disk half: a profiling
session's raw data (aggregated sample statistics, object access
histories, the address set, and the symbol map) serializes to JSON, and
an :class:`OfflineSession` rebuilds every DProf view from the file alone
-- profile on one machine, analyze anywhere.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.dprof.cachesim import DProfCacheSim, WorkingSetSimResult
from repro.dprof.pathtrace import PathTraceBuilder
from repro.dprof.records import (
    AccessStats,
    AddressSet,
    HistoryElement,
    ObjectAccessHistory,
)
from repro.dprof.views import (
    DataFlowView,
    DataProfileRow,
    DataProfileView,
    MissClassification,
    MissClassifier,
)
from repro.errors import ProfilingError
from repro.hw.cache import CacheGeometry
from repro.hw.events import CacheLevel
from repro.kernel.symbols import SymbolTable
from repro.util.rng import DeterministicRng

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


def export_session(dprof) -> dict:
    """Serialize a (detached) DProf session to a JSON-compatible dict."""
    sampler = dprof.sampler
    stats_blob = []
    for (type_name, chunk, ip), stats in sampler.stats.items():
        stats_blob.append(
            {
                "type": type_name,
                "chunk": chunk,
                "ip": ip,
                "count": stats.count,
                "levels": {level.name: n for level, n in stats.level_counts.items() if n},
                "latency_mean": stats.latency.mean,
                "latency_count": stats.latency.count,
            }
        )
    histories_blob = []
    for h in dprof.history.histories:
        histories_blob.append(
            {
                "type": h.type_name,
                "base": h.object_base,
                "cookie": h.object_cookie,
                "offsets": [list(c) for c in h.offsets],
                "alloc_cpu": h.alloc_cpu,
                "alloc_cycle": h.alloc_cycle,
                "free_cycle": h.free_cycle,
                "free_cpu": h.free_cpu,
                "set_index": h.set_index,
                "elements": [
                    [el.offset, el.ip, el.cpu, el.time, int(el.is_write)]
                    for el in h.elements
                ],
            }
        )
    address_blob = [
        {
            "type": e.type_name,
            "base": e.base,
            "size": e.size,
            "alloc": e.alloc_cycle,
            "alloc_cpu": e.alloc_cpu,
            "free": e.free_cycle,
            "free_cpu": e.free_cpu,
        }
        for e in dprof.address_set.entries
    ]
    symbols_blob = {
        str(ip): list(sym) for ip, sym in dprof.kernel.symbols._ip_to_sym.items()
    }
    cfg = dprof.machine.config
    return {
        "version": FORMAT_VERSION,
        "window": [dprof.profile_start_cycle, dprof.profile_end_cycle],
        "total_l1_misses": sampler.total_l1_misses,
        "type_misses": {str(k): v for k, v in sampler.type_misses.items()},
        "type_samples": {str(k): v for k, v in sampler.type_samples.items()},
        # Bounce combines history evidence with the foreign-sample
        # fallback, which needs the raw samples -- compute it at export.
        "bounce": {
            str(name): dprof.bounce_flag(str(name))
            for name, _count in sampler.type_misses.items()
        },
        "descriptions": dict(dprof._type_descriptions),
        "static_bytes": {
            name: dprof.kernel.slab.static_bytes(name)
            for name in dprof.kernel.slab.static_objects_by_type()
        },
        "stats": stats_blob,
        "histories": histories_blob,
        "address_set": address_blob,
        "symbols": symbols_blob,
        "sim_geometry": [cfg.l2_size, cfg.l2_ways, cfg.line_size],
        "chunk_size": dprof.config.chunk_size,
    }


def save_session(dprof, path: str | Path) -> Path:
    """Export and write a session archive to *path*."""
    path = Path(path)
    path.write_text(json.dumps(export_session(dprof)))
    return path


# ----------------------------------------------------------------------
# Offline analysis
# ----------------------------------------------------------------------


class _OfflineSampler:
    """Just enough of AccessSampleCollector for the view builders."""

    def __init__(self, blob: dict, chunk_size: int) -> None:
        self.chunk_size = chunk_size
        self.stats: dict[tuple, AccessStats] = {}
        for item in blob["stats"]:
            stats = AccessStats()
            stats.count = item["count"]
            for name, n in item["levels"].items():
                stats.level_counts[CacheLevel[name]] = n
            stats.latency.count = item["latency_count"]
            stats.latency.mean = item["latency_mean"]
            self.stats[(item["type"], item["chunk"], item["ip"])] = stats

    def stats_for(self, type_name: str, offset: int, ip: int):
        chunk = (offset // self.chunk_size) * self.chunk_size
        return self.stats.get((type_name, chunk, ip))


class OfflineSession:
    """Rebuilds DProf's views from a serialized session archive."""

    def __init__(self, blob: dict) -> None:
        if blob.get("version") != FORMAT_VERSION:
            raise ProfilingError(
                f"unsupported session format {blob.get('version')!r}"
            )
        self.blob = blob
        self.window = tuple(blob["window"])
        self.symbols = SymbolTable()
        for ip, (fn, site) in blob["symbols"].items():
            self.symbols._ip_to_sym[int(ip)] = (fn, site)
        self.sampler = _OfflineSampler(blob, blob["chunk_size"])
        self.address_set = AddressSet()
        for e in blob["address_set"]:
            self.address_set.record_alloc(
                e["type"], e["base"], e["size"], 0, e["alloc_cpu"], e["alloc"]
            )
            if e["free"] is not None:
                self.address_set.record_free(e["base"], 0, e["free_cpu"], e["free"])
        self.histories = [self._history_from(h) for h in blob["histories"]]
        self._traces_cache: dict[str, list] = {}
        self._sim_cache: WorkingSetSimResult | None = None

    @staticmethod
    def _history_from(blob: dict) -> ObjectAccessHistory:
        h = ObjectAccessHistory(
            type_name=blob["type"],
            object_base=blob["base"],
            object_cookie=blob["cookie"],
            offsets=tuple(tuple(c) for c in blob["offsets"]),
            alloc_cpu=blob["alloc_cpu"],
            alloc_cycle=blob["alloc_cycle"],
            set_index=blob.get("set_index", 0),
        )
        h.free_cycle = blob["free_cycle"]
        h.free_cpu = blob["free_cpu"]
        h.elements = [
            HistoryElement(offset=o, ip=ip, cpu=cpu, time=t, is_write=bool(w))
            for o, ip, cpu, t, w in blob["elements"]
        ]
        return h

    # ------------------------------------------------------------------
    # Views (mirror the live DProf facade)
    # ------------------------------------------------------------------

    def path_traces(self, type_name: str):
        cached = self._traces_cache.get(type_name)
        if cached is None:
            builder = PathTraceBuilder(self.symbols, self.sampler)
            relevant = [h for h in self.histories if h.type_name == type_name]
            cached = builder.build(type_name, relevant)
            self._traces_cache[type_name] = cached
        return cached

    def working_set_sim(self) -> WorkingSetSimResult:
        if self._sim_cache is None:
            size, ways, line = self.blob["sim_geometry"]
            sim = DProfCacheSim(
                CacheGeometry(size, ways, line), DeterministicRng(3, "offline")
            )
            traces = {
                name: self.path_traces(name)
                for name in {h.type_name for h in self.histories}
            }
            self._sim_cache = sim.simulate(self.address_set, traces)
        return self._sim_cache

    def data_profile(self) -> DataProfileView:
        blob = self.blob
        total_misses = sum(blob["type_misses"].values()) or 1
        start, end = self.window
        rows = []
        for type_name, misses in sorted(
            blob["type_misses"].items(), key=lambda kv: kv[1], reverse=True
        ):
            live = self.address_set.mean_live_bytes(type_name, start, end)
            if not live:
                live = float(blob["static_bytes"].get(type_name, 0))
            bounce = blob.get("bounce", {}).get(type_name)
            if bounce is None:
                bounce = any(
                    len({el.cpu for el in h.elements} | {h.alloc_cpu}) > 1
                    for h in self.histories
                    if h.type_name == type_name
                )
            rows.append(
                DataProfileRow(
                    type_name=type_name,
                    description=blob["descriptions"].get(type_name, ""),
                    working_set_bytes=live,
                    miss_share=misses / total_misses,
                    bounce=bounce,
                    sample_count=blob["type_samples"].get(type_name, 0),
                )
            )
        return DataProfileView(rows, blob["total_l1_misses"])

    def miss_classification(self, type_name: str) -> MissClassification:
        classifier = MissClassifier(self.working_set_sim())
        return classifier.classify(type_name, self.path_traces(type_name))

    def data_flow(self, type_name: str) -> DataFlowView:
        return DataFlowView(type_name, self.path_traces(type_name))


def load_session(path: str | Path) -> OfflineSession:
    """Read a session archive and return an offline analysis handle."""
    return OfflineSession(json.loads(Path(path).read_text()))
