"""Top-down derived metrics over the simulated memory hierarchy.

DProf's four views answer *which data* is causing trouble; this module
answers *how much* trouble, in the per-level vocabulary performance
engineers already use: MPKI per cache level, average miss latency,
cycles-per-access, and the sharing ratio.  Everything derives from the
raw :meth:`HierarchyStats.metrics_counters` integers plus the machine's
instruction/cycle totals, so the same summary is computable from a live
:class:`~repro.hw.machine.Machine`, an archived session blob, or a
serve-fetched job -- with bit-identical numbers on every path.

The generated-kernel families in :mod:`repro.workloads.kernels` ship
closed-form models for these metrics, which is what turns the summary
into a ground-truth oracle rather than just a dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MetricsSummary", "machine_counters"]

#: Order levels appear in renders; matches CacheLevel declaration order.
LEVEL_ORDER = ("L1", "L2", "L3", "FOREIGN", "DRAM")
MISS_KIND_ORDER = ("cold", "invalidation", "eviction")


def machine_counters(machine) -> dict:
    """Raw counter blob for a machine's hierarchy, ready for an archive.

    Plain ints and string-keyed dicts only, so the blob survives a JSON
    round-trip unchanged and summaries computed live vs. offline agree
    exactly.
    """
    counters = machine.hierarchy.stats.metrics_counters()
    counters["instructions"] = machine.total_instructions
    counters["cycles"] = machine.elapsed_cycles()
    return counters


@dataclass(frozen=True)
class MetricsSummary:
    """Derived top-down metrics, computed from raw hierarchy counters."""

    accesses: int
    instructions: int
    cycles: int
    levels: dict = field(default_factory=dict)
    miss_kinds: dict = field(default_factory=dict)
    latency_by_level: dict = field(default_factory=dict)
    lines_total: int = 0
    lines_shared: int = 0

    @classmethod
    def from_blob(cls, blob: dict) -> "MetricsSummary":
        """Rebuild a summary from a counter blob (archive ``hw_counters``)."""
        return cls(
            accesses=int(blob["accesses"]),
            instructions=int(blob["instructions"]),
            cycles=int(blob["cycles"]),
            levels={k: int(v) for k, v in blob["levels"].items()},
            miss_kinds={k: int(v) for k, v in blob["miss_kinds"].items()},
            latency_by_level={
                k: int(v) for k, v in blob["latency_by_level"].items()
            },
            lines_total=int(blob["lines_total"]),
            lines_shared=int(blob["lines_shared"]),
        )

    @classmethod
    def from_machine(cls, machine) -> "MetricsSummary":
        """Summary for a live machine (same numbers as the archived path)."""
        return cls.from_blob(machine_counters(machine))

    def to_blob(self) -> dict:
        """Counter blob, inverse of :meth:`from_blob`."""
        return {
            "accesses": self.accesses,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "levels": dict(self.levels),
            "miss_kinds": dict(self.miss_kinds),
            "latency_by_level": dict(self.latency_by_level),
            "lines_total": self.lines_total,
            "lines_shared": self.lines_shared,
        }

    # -- derived scalar metrics -------------------------------------------

    @property
    def l1_misses(self) -> int:
        """Accesses not served by the issuing core's L1."""
        return self.accesses - self.levels.get("L1", 0)

    @property
    def l2_misses(self) -> int:
        """Accesses that missed both private levels."""
        return self.l1_misses - self.levels.get("L2", 0)

    @property
    def l3_misses(self) -> int:
        """Accesses served beyond the shared L3 (cache-to-cache or DRAM)."""
        return self.levels.get("FOREIGN", 0) + self.levels.get("DRAM", 0)

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0

    def mpki(self, level: str) -> float:
        """Misses per kilo-instruction at a given level (``L1|L2|L3``)."""
        misses = {"L1": self.l1_misses, "L2": self.l2_misses, "L3": self.l3_misses}[
            level
        ]
        if not self.instructions:
            return 0.0
        return misses * 1000.0 / self.instructions

    @property
    def total_latency(self) -> int:
        """Memory-system cycles summed over every access."""
        return sum(self.latency_by_level.values())

    @property
    def avg_miss_latency(self) -> float:
        """Mean cycles to serve an access that missed L1."""
        misses = self.l1_misses
        if not misses:
            return 0.0
        return (self.total_latency - self.latency_by_level.get("L1", 0)) / misses

    @property
    def cycles_per_access(self) -> float:
        """Mean memory-system cycles per access, hits included."""
        return self.total_latency / self.accesses if self.accesses else 0.0

    @property
    def sharing_ratio(self) -> float:
        """Fraction of touched cache lines accessed by more than one core."""
        return self.lines_shared / self.lines_total if self.lines_total else 0.0

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        """One-screen top-down summary, companion to the four DProf views."""
        lines = ["== top-down metrics " + "=" * 43]
        lines.append(
            f"{'instructions':<16}{self.instructions:>12}    "
            f"{'cycles':<14}{self.cycles:>12}"
        )
        lines.append(
            f"{'mem accesses':<16}{self.accesses:>12}    "
            f"{'cycles/access':<14}{self.cycles_per_access:>12.3f}"
        )
        served = "  ".join(
            f"{name}={self.levels.get(name, 0)}" for name in LEVEL_ORDER
        )
        lines.append(f"{'served by':<16}{served}")
        lines.append(
            f"{'MPKI':<16}"
            f"L1={self.mpki('L1'):.3f}  L2={self.mpki('L2'):.3f}  "
            f"L3={self.mpki('L3'):.3f}"
        )
        lines.append(
            f"{'miss latency':<16}{self.avg_miss_latency:.3f} cycles avg "
            f"({self.l1_misses} L1 misses, rate {self.l1_miss_rate:.4f})"
        )
        lines.append(
            f"{'sharing':<16}{self.lines_shared}/{self.lines_total} lines "
            f"touched by >1 core (ratio {self.sharing_ratio:.4f})"
        )
        kinds = "  ".join(
            f"{name}={self.miss_kinds.get(name, 0)}" for name in MISS_KIND_ORDER
        )
        lines.append(f"{'miss kinds':<16}{kinds}")
        return "\n".join(lines) + "\n"
