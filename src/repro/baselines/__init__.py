"""Baseline profilers the paper compares DProf against.

- :mod:`repro.baselines.oprofile` -- an OProfile-style code profiler:
  clock cycles and L2 misses attributed to *functions* (Table 6.3);
- :mod:`repro.baselines.lockstat` -- a lock-stat-style report over the
  kernel's lock statistics (Tables 6.2, 6.6);
- :mod:`repro.baselines.ptu` -- an Intel PTU-style line-granularity data
  profiler over PEBS samples, with the static-only attribution the paper
  criticizes (Section 2.2).

Both exist to reproduce the paper's comparison: the same bottlenecks that
DProf pins to a data type and a code transition appear in these tools as
long, undifferentiated lists.
"""

from repro.baselines.oprofile import OProfile, OProfileRow
from repro.baselines.lockstat import LockStatReport, LockStatRow
from repro.baselines.ptu import PtuProfiler, PtuReport, run_ptu

__all__ = [
    "OProfile",
    "OProfileRow",
    "LockStatReport",
    "LockStatRow",
    "PtuProfiler",
    "PtuReport",
    "run_ptu",
]
