"""A lock-stat-style report (paper Sections 6.1.2, 6.2.2).

Formats the kernel's lock statistics the way the thesis's Tables 6.2 and
6.6 do: per lock class, total wait time, overhead as a fraction of total
CPU time, and the functions that acquired the lock.  Lock *instances* are
aggregated into classes by stripping the per-instance suffix (Linux
lock-stat aggregates by lock class the same way).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.kernel.lockstat import LockStatRegistry
from repro.util.stats import Histogram
from repro.util.tables import TextTable, format_percent

_INSTANCE_SUFFIX = re.compile(r"\s*\(.*\)$")


@dataclass
class LockStatRow:
    """One lock class's aggregated statistics."""

    name: str
    wait_cycles: int
    hold_cycles: int
    acquisitions: int
    contentions: int
    overhead: float  # wait / total CPU cycles
    functions: Histogram = field(default_factory=Histogram)

    def top_functions(self, n: int = 4) -> list[str]:
        """The most frequent acquiring functions."""
        return [str(fn) for fn, _count in self.functions.top(n)]


class LockStatReport:
    """Aggregates and renders lock statistics for one run."""

    def __init__(self, registry: LockStatRegistry, total_cpu_cycles: int) -> None:
        self.registry = registry
        self.total_cpu_cycles = max(total_cpu_cycles, 1)

    def rows(self) -> list[LockStatRow]:
        """Lock classes ranked by total wait time."""
        merged: dict[str, LockStatRow] = {}
        for stat in self.registry.all_stats():
            cls = _INSTANCE_SUFFIX.sub("", stat.name)
            row = merged.get(cls)
            if row is None:
                row = LockStatRow(
                    name=cls,
                    wait_cycles=0,
                    hold_cycles=0,
                    acquisitions=0,
                    contentions=0,
                    overhead=0.0,
                )
                merged[cls] = row
            row.wait_cycles += stat.wait_cycles
            row.hold_cycles += stat.hold_cycles
            row.acquisitions += stat.acquisitions
            row.contentions += stat.contentions
            for fn, count in stat.acquirer_functions.items():
                row.functions.add(fn, count)
        for row in merged.values():
            row.overhead = row.wait_cycles / self.total_cpu_cycles
        return sorted(merged.values(), key=lambda r: r.wait_cycles, reverse=True)

    def row_for(self, name: str) -> LockStatRow | None:
        """Find one lock class's row."""
        for row in self.rows():
            if row.name == name:
                return row
        return None

    def render(self, n: int = 8) -> str:
        """Render like the thesis's Table 6.2."""
        table = TextTable(
            ["Lock Name", "Wait Cycles", "Overhead", "Functions"],
            title="Lock statistics",
        )
        for row in self.rows()[:n]:
            table.add_row(
                row.name,
                f"{row.wait_cycles:,}",
                format_percent(row.overhead),
                ", ".join(row.top_functions(3)),
            )
        return table.render()
