"""An Intel PTU-style data profiler (paper Section 2.2).

The paper positions Intel's Performance Tuning Utility as the closest
prior tool, and names its limits precisely:

- "Intel PTU does not associate addresses with dynamic memory; only with
  static memory.  Collected samples are attributed to cache lines, and if
  the lines are a part of static data structures, the name of the data
  structure is associated with the cache line."
- "there is no aggregation of samples by data type; only by instruction."
- "The working set ... is presented in terms of addresses and not data
  types."
- False sharing is detected "by collecting a combination of hardware
  counters that count local misses and fetches of cache lines in the
  modified state from remote caches" (HITM).

This baseline reproduces exactly that behaviour on PEBS samples, so the
reproduction can quantify the gap DProf closes: on a kernel workload most
hot lines belong to *dynamic* slab memory, which PTU reports as anonymous
addresses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.hw.pebs import PebsSample, PebsUnit
from repro.kernel.slab import SlabSystem
from repro.util.tables import TextTable


@dataclass
class PtuLineRow:
    """One cache line's entry in the PTU view."""

    line: int
    address: int
    samples: int
    misses: int
    hitm: int
    #: Name when the line belongs to a *static* structure; None for
    #: dynamic memory (PTU's blind spot).
    static_name: str | None = None

    @property
    def attributed(self) -> bool:
        """Did PTU manage to name this line?"""
        return self.static_name is not None


@dataclass
class PtuReport:
    """The PTU-style output: per-line rows plus an address working set."""

    rows: list[PtuLineRow] = field(default_factory=list)
    working_set_lines: int = 0

    @property
    def attributed_fraction(self) -> float:
        """Share of sampled lines PTU could put a name on."""
        if not self.rows:
            return 0.0
        return sum(1 for r in self.rows if r.attributed) / len(self.rows)

    def attributed_miss_fraction(self) -> float:
        """Share of sampled *misses* landing on named lines."""
        total = sum(r.misses for r in self.rows)
        if total == 0:
            return 0.0
        return sum(r.misses for r in self.rows if r.attributed) / total

    def top(self, n: int) -> list[PtuLineRow]:
        """Hottest lines by sampled misses."""
        return sorted(self.rows, key=lambda r: r.misses, reverse=True)[:n]

    def render(self, n: int = 12) -> str:
        """Render the per-line table the way PTU presents data."""
        table = TextTable(
            ["Cache line", "Samples", "Misses", "HITM", "Static structure"],
            title=f"PTU view (working set: {self.working_set_lines} lines)",
        )
        for row in self.top(n):
            table.add_row(
                f"{row.address:#x}",
                row.samples,
                row.misses,
                row.hitm,
                row.static_name or "(dynamic memory)",
            )
        return table.render()


class PtuProfiler:
    """Collects PEBS samples and builds the PTU-style line report."""

    def __init__(self, slab: SlabSystem, line_size: int = 64) -> None:
        self.slab = slab
        self.line_size = line_size
        self.samples: list[PebsSample] = []
        self._line_samples: Counter = Counter()
        self._line_misses: Counter = Counter()
        self._line_hitm: Counter = Counter()
        self._lines_touched: set[int] = set()

    def on_sample(self, sample: PebsSample) -> None:
        """PEBS delivery handler."""
        self.samples.append(sample)
        line = sample.addr // self.line_size
        self._lines_touched.add(line)
        self._line_samples[line] += 1
        if sample.l1_miss:
            self._line_misses[line] += 1
        if sample.hitm:
            self._line_hitm[line] += 1

    def _static_name_for(self, addr: int) -> str | None:
        """PTU's attribution: debug info covers only static structures."""
        obj = self.slab.find_object(addr)
        if obj is None:
            return None
        statics = self.slab.static_objects_by_type().get(obj.otype.name, ())
        for static in statics:
            if static is obj:
                return obj.otype.name
        return None  # dynamic (slab) memory: PTU has no name for it

    def report(self) -> PtuReport:
        """Build the line-granularity report."""
        rows = []
        for line, count in self._line_samples.items():
            addr = line * self.line_size
            rows.append(
                PtuLineRow(
                    line=line,
                    address=addr,
                    samples=count,
                    misses=self._line_misses.get(line, 0),
                    hitm=self._line_hitm.get(line, 0),
                    static_name=self._static_name_for(addr),
                )
            )
        return PtuReport(rows=rows, working_set_lines=len(self._lines_touched))


def run_ptu(machine, slab, interval: int = 200, seed: int = 7):
    """Convenience: build a PTU profiler wired to a PEBS unit.

    Returns (profiler, pebs_unit); the caller attaches/detaches the unit
    around the measurement window.
    """
    from repro.hw.pebs import PebsEvent

    profiler = PtuProfiler(slab, line_size=machine.config.line_size)
    unit = PebsUnit(
        machine,
        event=PebsEvent(kind="all"),
        interval=interval,
        handler=profiler.on_sample,
        seed=seed,
    )
    return profiler, unit
