"""An OProfile-style code profiler (paper Sections 2.1, 6.1.3, 6.2.3).

OProfile counts hardware events and attributes them to instruction
pointers, reporting functions ranked by clock cycles and by L2 misses
(Table 6.3).  The paper's criticism -- which this reproduction lets you
verify directly -- is that per-function attribution *dilutes* data-centric
problems: misses on one data type spread across the dozens of functions
touching it, so no single entry stands out, and the profile offers no clue
that the entries share a common thread.

The simulated profiler observes every instruction (statistical sampling on
real hardware; exact counting is the zero-variance limit of the same
estimator) and aggregates cycles and L2-miss events per function.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.events import AccessResult, Instr
from repro.hw.machine import Machine
from repro.util.tables import TextTable


@dataclass
class OProfileRow:
    """One function's profile entry."""

    fn: str
    clk_share: float
    l2_miss_share: float
    cycles: int
    l2_misses: int


class OProfile:
    """Function-granularity CLK + L2-miss profiler."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.cycles_by_fn: dict[str, int] = {}
        self.l2_by_fn: dict[str, int] = {}
        self.total_cycles = 0
        self.total_l2 = 0
        self._attached = False

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Start observing instructions."""
        if not self._attached:
            self.machine.add_instr_observer(self._on_instr)
            self._attached = True

    def detach(self) -> None:
        """Stop observing."""
        if self._attached:
            self.machine.remove_instr_observer(self._on_instr)
            self._attached = False

    def _on_instr(
        self, cpu: int, instr: Instr, result: AccessResult | None, cycle: int
    ) -> None:
        cost = instr.work + (result.latency if result is not None else 0)
        self.cycles_by_fn[instr.fn] = self.cycles_by_fn.get(instr.fn, 0) + cost
        self.total_cycles += cost
        if result is not None and result.l2_miss:
            self.l2_by_fn[instr.fn] = self.l2_by_fn.get(instr.fn, 0) + 1
            self.total_l2 += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def rows(self, exclude: set[str] | frozenset[str] = frozenset()) -> list[OProfileRow]:
        """Functions ranked by clock-cycle share.

        ``exclude`` drops functions (e.g. userspace work when profiling
        only the kernel, as the paper's Table 6.3 does) and renormalizes
        the remaining shares.
        """
        total_cycles = sum(
            c for fn, c in self.cycles_by_fn.items() if fn not in exclude
        )
        total_l2 = sum(c for fn, c in self.l2_by_fn.items() if fn not in exclude)
        out = []
        for fn, cycles in self.cycles_by_fn.items():
            if fn in exclude:
                continue
            out.append(
                OProfileRow(
                    fn=fn,
                    clk_share=cycles / total_cycles if total_cycles else 0.0,
                    l2_miss_share=(
                        self.l2_by_fn.get(fn, 0) / total_l2 if total_l2 else 0.0
                    ),
                    cycles=cycles,
                    l2_misses=self.l2_by_fn.get(fn, 0),
                )
            )
        out.sort(key=lambda r: r.clk_share, reverse=True)
        return out

    def top(self, n: int, exclude: set[str] | frozenset[str] = frozenset()) -> list[OProfileRow]:
        """The *n* hottest functions by clock share."""
        return self.rows(exclude)[:n]

    def functions_over(
        self, clk_share: float, exclude: set[str] | frozenset[str] = frozenset()
    ) -> list[OProfileRow]:
        """Functions above a clock-share threshold (the paper counts 29
        functions above 1% for memcached)."""
        return [r for r in self.rows(exclude) if r.clk_share >= clk_share]

    def render(self, n: int = 20, exclude: set[str] | frozenset[str] = frozenset()) -> str:
        """Render like the thesis's Table 6.3 (% CLK, % L2 misses)."""
        table = TextTable(["% CLK", "% L2 Misses", "Function"], title="OProfile")
        for row in self.top(n, exclude):
            table.add_row(
                f"{row.clk_share * 100:.1f}",
                f"{row.l2_miss_share * 100:.1f}",
                row.fn,
            )
        return table.render()
