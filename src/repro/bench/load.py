"""Open-loop load generation against the profiling service.

Closed-loop load generators (submit, wait, submit again) famously lie
about saturated servers: the generator slows down with the server, so
latency looks flat right up to the cliff ("coordinated omission").  This
module drives a live :class:`~repro.serve.server.ProfilingServer` the
honest way -- **open loop**: job arrival times are drawn from a Poisson
process at a target offered rate *before* the run starts, and each job
is submitted at its scheduled instant whether or not earlier jobs have
finished.  Queueing delay therefore accumulates in the measurement
instead of silently throttling the generator.

Per offered rate the sweep records:

- acceptance/reject counts (rejects are the server's ``queue_full``
  backpressure -- counted, not retried: an open-loop client models
  traffic, not a polite CLI);
- end-to-end latency percentiles (p50/p95/p99), measured from each
  job's *scheduled arrival* to the server-stamped completion time, so
  backlog waits count;
- achieved completion rate vs offered rate.

The **saturation knee** is the first rate where the server visibly
stops keeping up: achieved rate falls below ``KNEE_EFFICIENCY`` of
offered, or the reject fraction crosses ``KNEE_REJECT_FRAC``.  Arrival
schedules come from :class:`repro.util.rng.DeterministicRng`, so a
sweep's offered traffic is exactly reproducible run to run.
"""

from __future__ import annotations

import asyncio
import threading
import time
from contextlib import contextmanager
from typing import Any

from repro.errors import BenchFormatError
from repro.serve.protocol import request_once
from repro.util.rng import DeterministicRng
from repro.util.stats import percentile

#: Default offered rates (jobs/second) swept in ascending order.
DEFAULT_RATES = (2.0, 4.0, 8.0, 16.0, 32.0)

#: Achieved/offered below this at any rate marks the saturation knee.
KNEE_EFFICIENCY = 0.9

#: Reject fraction above this at any rate marks the saturation knee.
KNEE_REJECT_FRAC = 0.05

#: Simulated window per load-sweep job (small: each job ~0.1 s wall).
LOAD_JOB_DURATION = 60_000


def poisson_arrivals(rate_per_s: float, jobs: int, rng: DeterministicRng) -> list[float]:
    """Cumulative arrival offsets (seconds) for a Poisson process.

    Inter-arrival gaps are exponential with mean ``1/rate``; the
    schedule is drawn up front so submission-time jitter cannot thin
    the offered load.
    """
    if rate_per_s <= 0:
        raise BenchFormatError(f"rate must be positive, got {rate_per_s!r}")
    offsets, t = [], 0.0
    for _ in range(jobs):
        t += rng.expovariate(rate_per_s)
        offsets.append(t)
    return offsets


@contextmanager
def local_server(store_root, workers: int = 4, queue_size: int = 16):
    """A real ProfilingServer on a background thread's event loop.

    Same server class, worker pool, and TCP path as ``repro.cli serve``
    -- only the process boundary is skipped so the sweep needs no
    subprocess scaffolding.
    """
    from repro.serve.server import ProfilingServer

    server = ProfilingServer(
        store_root, workers=workers, queue_size=queue_size, port=0
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def runner() -> None:
        asyncio.set_event_loop(loop)

        async def main() -> None:
            await server.start()
            started.set()
            await server.finished.wait()

        loop.run_until_complete(main())

    thread = threading.Thread(target=runner, name="repro-bench-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise BenchFormatError("load-sweep server did not start")
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(server.request_drain)
        thread.join(timeout=60.0)
        loop.close()


def _await_jobs(host, port, job_ids, timeout_s: float) -> dict[str, dict]:
    """Poll until every listed job is terminal; returns id -> wire job."""
    deadline = time.monotonic() + timeout_s
    jobs: dict[str, dict] = {}
    pending = set(job_ids)
    while pending and time.monotonic() < deadline:
        response = request_once(host, port, {"op": "status"})
        jobs = {j["job_id"]: j for j in response.get("jobs", [])}
        pending = {
            job_id
            for job_id in job_ids
            if jobs.get(job_id, {}).get("state")
            not in ("done", "failed", "requeued")
        }
        if pending:
            time.sleep(0.05)
    return jobs


def run_load_step(
    host: str,
    port: int,
    *,
    rate_per_s: float,
    jobs: int,
    scenario: str = "synthetic",
    duration_cycles: int = LOAD_JOB_DURATION,
    seed0: int = 9000,
    rng: DeterministicRng,
    settle_timeout_s: float = 120.0,
) -> dict[str, Any]:
    """Offer *jobs* submissions at *rate_per_s*, open loop; one report row.

    Latency is ``finished_s - scheduled arrival`` (both wall clock, same
    host), so time spent queued behind a backlog is charged to the job
    that had to wait -- the whole point of open-loop measurement.
    """
    offsets = poisson_arrivals(rate_per_s, jobs, rng)
    scheduled: dict[str, float] = {}
    rejected = 0
    start_mono = time.monotonic()
    start_wall = time.time()
    for index, offset in enumerate(offsets):
        delay = (start_mono + offset) - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        response = request_once(
            host,
            port,
            {
                "op": "submit",
                "scenario": scenario,
                "seed": seed0 + index,
                "duration": duration_cycles,
            },
        )
        if response.get("ok"):
            scheduled[response["job_id"]] = start_wall + offset
        else:
            rejected += 1
    finished = _await_jobs(host, port, list(scheduled), settle_timeout_s)
    latencies = []
    last_finish = start_wall
    completed = 0
    for job_id, sched in scheduled.items():
        job = finished.get(job_id, {})
        if job.get("state") == "done" and job.get("finished_s"):
            completed += 1
            latencies.append(max(0.0, job["finished_s"] - sched))
            last_finish = max(last_finish, job["finished_s"])
    latencies.sort()
    span_s = max(last_finish - start_wall, 1e-9)
    return {
        "offered_rate_per_s": rate_per_s,
        # The rate the drawn schedule *actually* offered (24 Poisson
        # samples can run well above or below nominal); saturation is
        # judged against this, not the nominal target, so schedule
        # variance at low rates cannot fake a knee.
        "realized_rate_per_s": round(jobs / max(offsets[-1], 1e-9), 3),
        "jobs": jobs,
        "accepted": len(scheduled),
        "rejected": rejected,
        "completed": completed,
        "achieved_rate_per_s": round(completed / span_s, 3),
        "p50_s": round(percentile(latencies, 50.0), 4) if latencies else 0.0,
        "p95_s": round(percentile(latencies, 95.0), 4) if latencies else 0.0,
        "p99_s": round(percentile(latencies, 99.0), 4) if latencies else 0.0,
    }


def locate_knee(
    steps: list[dict],
    *,
    efficiency: float = KNEE_EFFICIENCY,
    reject_frac: float = KNEE_REJECT_FRAC,
) -> dict[str, Any] | None:
    """The first swept rate where the server stops keeping up, or None.

    Two independent saturation signals: completion throughput falling
    behind the offered rate, or backpressure rejects appearing.  Either
    marks the knee; the reason string records which fired.
    """
    for step in steps:
        offered = step["offered_rate_per_s"]
        realized = step.get("realized_rate_per_s", offered)
        reasons = []
        if step["achieved_rate_per_s"] < efficiency * realized:
            reasons.append(
                f"achieved {step['achieved_rate_per_s']}/s < "
                f"{efficiency:.0%} of realized {realized}/s "
                f"(nominal {offered}/s)"
            )
        if step["jobs"] and step["rejected"] / step["jobs"] > reject_frac:
            reasons.append(
                f"rejected {step['rejected']}/{step['jobs']} submissions"
            )
        if reasons:
            return {
                "offered_rate_per_s": offered,
                "reason": "; ".join(reasons),
            }
    return None


def run_load_sweep(
    host: str,
    port: int,
    *,
    rates: tuple[float, ...] = DEFAULT_RATES,
    jobs_per_rate: int = 24,
    scenario: str = "synthetic",
    duration_cycles: int = LOAD_JOB_DURATION,
    seed: int = 11,
    workers: int = 0,
    settle_timeout_s: float = 120.0,
) -> dict[str, Any]:
    """Sweep ascending offered rates against one live server."""
    rng = DeterministicRng(seed, "load-sweep")
    steps = []
    for index, rate in enumerate(rates):
        steps.append(
            run_load_step(
                host,
                port,
                rate_per_s=rate,
                jobs=jobs_per_rate,
                scenario=scenario,
                duration_cycles=duration_cycles,
                # Distinct seeds per step and per job: no two submissions
                # share a spec, so store dedup cannot flatter throughput.
                seed0=seed * 100_000 + index * 1_000,
                rng=rng.child(f"rate-{index}"),
                settle_timeout_s=settle_timeout_s,
            )
        )
    return {
        "scenario": scenario,
        "duration_cycles": duration_cycles,
        "workers": workers,
        "jobs_per_rate": jobs_per_rate,
        "arrivals": "poisson-open-loop",
        "rates": steps,
        "knee": locate_knee(steps),
    }


def bench_load_sweep(
    *,
    rates: tuple[float, ...] = DEFAULT_RATES,
    jobs_per_rate: int = 24,
    workers: int = 4,
    queue_size: int = 16,
    scenario: str = "synthetic",
    duration_cycles: int = LOAD_JOB_DURATION,
    seed: int = 11,
) -> dict[str, Any]:
    """Boot a throwaway server, sweep it, return the ``load_sweep``
    section for BENCH_dprof.json."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-load-") as store_root:
        with local_server(
            store_root, workers=workers, queue_size=queue_size
        ) as server:
            return run_load_sweep(
                server.host,
                server.port,
                rates=rates,
                jobs_per_rate=jobs_per_rate,
                scenario=scenario,
                duration_cycles=duration_cycles,
                seed=seed,
                workers=workers,
            )
