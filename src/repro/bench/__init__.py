"""Benchmark harness comparing the reference and fast simulation engines.

``python -m repro.bench --out BENCH_dprof.json`` runs each scenario
(memcached, apache, synthetic) once under the reference engine with a
trace sink attached, then replays the recorded trace through both
engines and times the hot loops:

- *reference replay*: :func:`repro.hw.fastpath.replay_reference` -- the
  OrderedDict-LRU / set-based directory path, exactly what a live run
  executes per access;
- *fast replay*: :func:`repro.hw.fastpath.encode_trace` once, then
  :meth:`repro.hw.fastpath.BatchReplayEngine.run` per repeat -- the
  array-backed batched path.

Replays (not live runs) are timed so both engines consume the *same*
access stream and the comparison isolates the memory-system simulation
from workload/scheduler overhead.  Every repeat also cross-checks the
engines' end states; the emitted ``accuracy`` block must show zero
deltas, which is the differential tests' equivalence guarantee restated
as a benchmark artifact.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from repro.dprof.analysis import (
    StatsView,
    amplify_corpus,
    analyze_histories,
    synthetic_history_corpus,
)
from repro.errors import BenchFormatError
from repro.hw.fastpath import (
    BatchReplayEngine,
    LineInterner,
    encode_trace,
    replay_reference,
)
from repro.hw.machine import MachineConfig
from repro.kernel.symbols import SymbolTable
from repro.workloads import SCENARIOS, build_kernel

#: Per-scenario measured windows (cycles): full runs and --smoke runs.
DEFAULT_DURATION = 150_000
SMOKE_DURATION = 30_000

#: Scenario order in the report (memcached first: it carries the
#: headline speedup acceptance threshold).
SCENARIO_ORDER = ("memcached", "apache", "synthetic")


@dataclass
class ScenarioReport:
    """One scenario's timings plus the engine-equivalence cross-check."""

    name: str
    events: int
    duration_cycles: int
    repeats: int
    reference_s: float
    encode_s: float
    fast_s: float
    accuracy: dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Hot-loop speedup: reference replay time over fast replay time."""
        return self.reference_s / self.fast_s if self.fast_s else 0.0

    @property
    def speedup_including_encode(self) -> float:
        """Speedup charging the one-time encode pass to the fast engine."""
        total = self.fast_s + self.encode_s
        return self.reference_s / total if total else 0.0

    def events_per_second(self, seconds: float) -> float:
        return self.events / seconds if seconds else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "events": self.events,
            "duration_cycles": self.duration_cycles,
            "repeats": self.repeats,
            "reference_s": round(self.reference_s, 6),
            "encode_s": round(self.encode_s, 6),
            "fast_s": round(self.fast_s, 6),
            "reference_events_per_s": round(self.events_per_second(self.reference_s), 1),
            "fast_events_per_s": round(self.events_per_second(self.fast_s), 1),
            "speedup": round(self.speedup, 3),
            "speedup_including_encode": round(self.speedup_including_encode, 3),
            "accuracy": self.accuracy,
        }


def record_trace(name: str, *, ncores: int, seed: int, duration_cycles: int):
    """Run *name* live under the reference engine with a trace sink.

    Returns ``(events, config, live_state)`` where ``live_state`` is the
    live hierarchy's (stats snapshot, cache counters) -- replaying the
    trace must land on exactly this state, which :func:`bench_scenario`
    asserts before timing anything.
    """
    kernel = build_kernel(ncores, seed=seed, engine="reference")
    hierarchy = kernel.machine.hierarchy
    with hierarchy.record_trace() as sink:
        SCENARIOS[name](kernel, duration_cycles)
    live_state = (hierarchy.stats.snapshot(), hierarchy.cache_counters())
    return sink, kernel.machine.config.hierarchy_config(), live_state


def _accuracy_deltas(
    ref_state: tuple[dict, dict, dict, int],
    fast_state: tuple[dict, dict, dict, int],
) -> dict[str, Any]:
    """Count mismatching keys between the two engines' end states.

    All four counts must be zero; a non-zero count means the fast engine
    diverged and the benchmark result is invalid.
    """
    ref_stats, ref_counters, ref_lru, ref_inv = ref_state
    fast_stats, fast_counters, fast_lru, fast_inv = fast_state
    stat_delta = sum(
        1
        for key in set(ref_stats["levels"]) | set(fast_stats["levels"])
        if ref_stats["levels"].get(key) != fast_stats["levels"].get(key)
    )
    stat_delta += sum(
        1
        for key in set(ref_stats["miss_kinds"]) | set(fast_stats["miss_kinds"])
        if ref_stats["miss_kinds"].get(key) != fast_stats["miss_kinds"].get(key)
    )
    stat_delta += int(ref_stats["accesses"] != fast_stats["accesses"])
    counter_delta = sum(
        1
        for key in set(ref_counters) | set(fast_counters)
        if ref_counters.get(key) != fast_counters.get(key)
    )
    lru_delta = sum(
        1
        for key in set(ref_lru) | set(fast_lru)
        if ref_lru.get(key) != fast_lru.get(key)
    )
    return {
        "stat_deltas": stat_delta,
        "counter_deltas": counter_delta,
        "lru_deltas": lru_delta,
        "invalidation_delta": abs(ref_inv - fast_inv),
        "identical": (
            stat_delta == 0
            and counter_delta == 0
            and lru_delta == 0
            and ref_inv == fast_inv
        ),
    }


def bench_scenario(
    name: str,
    *,
    ncores: int = 4,
    seed: int = 11,
    duration_cycles: int = DEFAULT_DURATION,
    repeats: int = 3,
) -> ScenarioReport:
    """Record one scenario's trace, then time both replay engines.

    Each engine replays the same trace *repeats* times; the minimum is
    reported (standard practice for wall-clock microbenchmarks: the min
    is the least noisy estimator of the true cost).
    """
    events, config, live_state = record_trace(
        name, ncores=ncores, seed=seed, duration_cycles=duration_cycles
    )

    ref_best = float("inf")
    ref_state = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        hierarchy, _ = replay_reference(events, config)
        ref_best = min(ref_best, time.perf_counter() - t0)
        ref_state = (
            hierarchy.stats.snapshot(),
            hierarchy.cache_counters(),
            hierarchy.replacement_snapshot(),
            hierarchy.directory.invalidation_count,
        )

    t0 = time.perf_counter()
    interner = LineInterner()
    encoded, _ = encode_trace(events, config, interner)
    encode_s = time.perf_counter() - t0

    fast_best = float("inf")
    fast_state = None
    for _ in range(repeats):
        engine = BatchReplayEngine(config, interner)
        t0 = time.perf_counter()
        engine.run(encoded)
        fast_best = min(fast_best, time.perf_counter() - t0)
        fast_state = (
            engine.stats_snapshot(),
            engine.cache_counters(),
            engine.replacement_snapshot(),
            engine.invalidation_count,
        )

    assert ref_state is not None and fast_state is not None
    accuracy = _accuracy_deltas(ref_state, fast_state)
    # The replayed reference must also land exactly where the live run
    # did, or the trace itself (not the fast engine) is unfaithful.
    accuracy["replay_matches_live"] = live_state == (ref_state[0], ref_state[1])
    return ScenarioReport(
        name=name,
        events=len(events),
        duration_cycles=duration_cycles,
        repeats=repeats,
        reference_s=ref_best,
        encode_s=encode_s,
        fast_s=fast_best,
        accuracy=accuracy,
    )


def bench_service_throughput(
    *,
    scenario: str = "memcached",
    jobs: int = 8,
    workers: int = 4,
    ncores: int = 4,
    seed: int = 11,
    duration_cycles: int = DEFAULT_DURATION,
) -> dict[str, Any]:
    """Service-throughput scenario: N concurrent jobs through a worker pool.

    Boots a :class:`repro.serve.workers.WorkerPool` (the same execution
    path ``python -m repro.cli serve`` uses), submits *jobs* profiling
    jobs -- distinct seeds, so the pool does *jobs* different sessions
    concurrently -- and measures jobs/minute end to end, archives landed
    in a throwaway content-addressed store included.  This is the
    baseline for "how much profiling traffic can one server sustain".
    """
    from repro.serve.jobs import JobSpec
    from repro.serve.workers import WorkerPool

    specs = [
        JobSpec.create(
            scenario=scenario,
            cores=ncores,
            seed=seed + i,
            duration=duration_cycles,
            engine="fast",
        )
        for i in range(jobs)
    ]
    statuses: dict[str, int] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as store_root:
        pool = WorkerPool(workers, store_root)
        pool.start()
        try:
            t0 = time.perf_counter()
            for i, spec in enumerate(specs):
                pool.submit(f"bench-{i:03d}", spec)
            finished = 0
            while finished < jobs:
                kind, _worker, payload = pool.result_q.get(timeout=300)
                if kind == "done":
                    finished += 1
                    status = payload[1]["status"]
                    statuses[status] = statuses.get(status, 0) + 1
                elif kind == "failed":
                    finished += 1
                    statuses["failed"] = statuses.get("failed", 0) + 1
            wall_s = time.perf_counter() - t0
        finally:
            pool.stop(grace_s=2.0)
    return {
        "scenario": scenario,
        "jobs": jobs,
        "workers": workers,
        "duration_cycles": duration_cycles,
        "wall_s": round(wall_s, 4),
        "jobs_per_minute": round(jobs * 60.0 / wall_s, 2) if wall_s else 0.0,
        "statuses": statuses,
    }


def collect_history_session(
    name: str, *, ncores: int, seed: int
):
    """Run one case-study workload under DProf and collect pairwise
    skbuff histories (the same attach/collect pattern the ``diagnose``
    command uses); returns the detached profiler."""
    from repro.dprof.profiler import DProf, DProfConfig
    from repro.workloads import ApacheWorkload, MemcachedWorkload

    kernel = build_kernel(ncores, seed=seed, engine="fast")
    workload = (
        MemcachedWorkload(kernel) if name == "memcached" else ApacheWorkload(kernel)
    )
    workload.setup()
    workload.start()
    if name == "apache":
        # Apache traffic is arrival-driven (memcached's clients are
        # self-sustaining); push a schedule long enough to cover history
        # collection or no skbuffs ever churn.  Its packet rate is also
        # lower, so sample denser and warm up longer before arming the
        # collector -- every seed then fills all three history sets.
        workload.schedule_arrivals(
            30_000_000, start_cycle=kernel.elapsed_cycles()
        )
    ibs_interval = 200 if name == "apache" else 400
    warmup = 1_200_000 if name == "apache" else 600_000
    kernel.run(until_cycle=150_000)
    dprof = DProf(kernel, DProfConfig(ibs_interval=ibs_interval))
    dprof.attach()
    kernel.run(until_cycle=kernel.elapsed_cycles() + warmup)
    dprof.collect_histories(
        "skbuff", sets=3, hot_chunks=4, member_offsets=[0], pair=True
    )
    kernel.run(
        until_cycle=kernel.elapsed_cycles() + 20_000_000,
        stop_when=lambda: dprof.histories_done,
    )
    dprof.detach()
    return dprof


def _time_analysis(symbols, stats, corpus, *, mode, workers, repeats):
    """Min-of-repeats wall time plus the result (for the equality check)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = analyze_histories(
            symbols, stats, corpus, mode=mode, workers=workers
        )
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_analysis_scenario(
    name: str,
    *,
    ncores: int = 4,
    seed: int = 11,
    repeats: int = 3,
    shards: int = 4,
    variants: int = 32,
) -> tuple[dict[str, Any], Any]:
    """Time the analysis pipelines on one scenario's history corpus.

    memcached/apache corpora are *real* collected pairwise skbuff
    histories, amplified (type shards x ip-shifted variants) to the
    family counts a richer code base would produce; synthetic uses the
    generated multi-type corpus (its workload allocates only static
    objects, so there is no slab churn to collect).  Returns the report
    row plus, for memcached, the session's archive text (reused by the
    view-cache benchmark so the archive carries real histories).
    """
    archive_text = None
    if name == "synthetic":
        symbols = SymbolTable()
        stats = None
        corpus = synthetic_history_corpus(
            seed,
            types=shards,
            histories_per_type=48 * variants,
            paths_per_type=4 + variants,
        )
    else:
        from repro.dprof.session_io import export_session

        dprof = collect_history_session(name, ncores=ncores, seed=seed)
        symbols = dprof.kernel.symbols
        stats = StatsView.from_sampler(dprof.sampler)
        corpus = amplify_corpus(
            dprof.history.histories_by_type(), shards=shards, variants=variants
        )
        if name == "memcached":
            archive_text = json.dumps(export_session(dprof))
    reference_s, ref_result = _time_analysis(
        symbols, stats, corpus, mode="reference", workers=1, repeats=repeats
    )
    indexed_s, idx_result = _time_analysis(
        symbols, stats, corpus, mode="indexed", workers=1, repeats=repeats
    )
    sharded_s, shard_result = _time_analysis(
        symbols, stats, corpus, mode="indexed", workers=0, repeats=repeats
    )
    identical = ref_result == idx_result == shard_result
    best_s = min(indexed_s, sharded_s)
    row = {
        "name": name,
        "histories": sum(len(h) for h in corpus.values()),
        "types": len(corpus),
        "repeats": repeats,
        "reference_s": round(reference_s, 6),
        "indexed_s": round(indexed_s, 6),
        "sharded_s": round(sharded_s, 6),
        "speedup_indexed": round(reference_s / indexed_s, 3) if indexed_s else 0.0,
        "speedup": round(reference_s / best_s, 3) if best_s else 0.0,
        "identical": identical,
    }
    return row, archive_text


def bench_view_cache(
    archive_text: str, *, view: str = "working-set", repeats: int = 3
) -> dict[str, Any]:
    """Cold-vs-warm view rendering through the store's memoization layer.

    Cold renders recompute the full offline analysis (clustering, merge,
    cache simulation); warm ones are a single cache-file read.  Both are
    min-of-repeats.  The hit rate comes from the cache's own counters.
    """
    from repro.serve.store import SessionStore

    with tempfile.TemporaryDirectory(prefix="repro-bench-views-") as root:
        store = SessionStore(root)
        digest = store.put_text(archive_text)
        cold_best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            cold_text = store.render_view(digest, view, use_cache=False)
            cold_best = min(cold_best, time.perf_counter() - t0)
        warm_best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            warm_text = store.render_view(digest, view)
            warm_best = min(warm_best, time.perf_counter() - t0)
        assert warm_text == cold_text
        hits, misses = store.views.hits, store.views.misses
    total = hits + misses
    return {
        "view": view,
        "repeats": repeats,
        "cold_s": round(cold_best, 6),
        "warm_s": round(warm_best, 6),
        "speedup": round(cold_best / warm_best, 3) if warm_best else 0.0,
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / total, 4) if total else 0.0,
    }


def bench_analysis(
    *,
    scenarios: tuple[str, ...] = SCENARIO_ORDER,
    ncores: int = 4,
    seed: int = 11,
    repeats: int = 3,
    shards: int = 4,
    variants: int = 32,
) -> dict[str, Any]:
    """The report's ``analysis`` section: pipeline timings + view cache."""
    rows = []
    memcached_archive = None
    for name in scenarios:
        row, archive_text = bench_analysis_scenario(
            name,
            ncores=ncores,
            seed=seed,
            repeats=repeats,
            shards=shards,
            variants=variants,
        )
        rows.append(row)
        if archive_text is not None:
            memcached_archive = archive_text
    section: dict[str, Any] = {
        "scenarios": rows,
        "all_identical": all(row["identical"] for row in rows),
    }
    if memcached_archive is not None:
        section["view_cache"] = bench_view_cache(
            memcached_archive, repeats=repeats
        )
    return section


def bench_self_profile(
    *,
    scenario: str = "synthetic",
    ncores: int = 4,
    seed: int = 11,
    duration_cycles: int = 100_000,
    repeats: int = 5,
) -> dict[str, Any]:
    """The tracing subsystem benchmarking *itself*: overhead + stage totals.

    Runs the same job spec through :func:`repro.serve.workers.execute_job`
    with tracing off and on and reports the wall overhead tracing adds,
    plus the traced run's per-stage wall/cpu totals -- the
    ``self_profile`` section of BENCH_dprof.json.  The overhead gate
    (<5% on smoke scenarios) is asserted by ``tests/test_trace.py``
    against this same measurement.

    Traced and untraced repeats are *interleaved* (and both take the
    minimum) so slow machine-load drift hits both sides equally instead
    of biasing whichever ran second.
    """
    from repro.serve.jobs import JobSpec
    from repro.serve.workers import execute_job
    from repro.trace import Tracer

    spec = JobSpec.create(
        scenario=scenario,
        cores=ncores,
        seed=seed,
        duration=duration_cycles,
        engine="fast",
    )
    execute_job(spec)  # warmup: imports, interned symbols, allocator
    untraced_best = float("inf")
    traced_best = float("inf")
    tracer = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        execute_job(spec)
        untraced_best = min(untraced_best, time.perf_counter() - t0)
        candidate = Tracer(seed=spec.seed)
        t0 = time.perf_counter()
        execute_job(spec, tracer=candidate)
        elapsed = time.perf_counter() - t0
        if elapsed < traced_best:
            traced_best = elapsed
            tracer = candidate
    overhead = (
        (traced_best - untraced_best) / untraced_best * 100.0
        if untraced_best
        else 0.0
    )
    assert tracer is not None
    return {
        "scenario": scenario,
        "duration_cycles": duration_cycles,
        "repeats": repeats,
        "untraced_s": round(untraced_best, 6),
        "traced_s": round(traced_best, 6),
        "overhead_pct": round(overhead, 3),
        "spans": len(tracer.spans),
        "stages": tracer.stage_totals(),
    }


def run_benchmarks(
    *,
    scenarios: tuple[str, ...] = SCENARIO_ORDER,
    ncores: int = 4,
    seed: int = 11,
    duration_cycles: int = DEFAULT_DURATION,
    repeats: int = 3,
    service_jobs: int = 0,
    service_workers: int = 4,
    analysis: bool = False,
    analysis_variants: int = 32,
    self_profile: bool = False,
    load_sweep: bool = False,
    load_rates: tuple[float, ...] | None = None,
    load_jobs: int = 24,
) -> dict[str, Any]:
    """Run every scenario and assemble the BENCH_dprof.json document.

    ``service_jobs`` > 0 adds the service-throughput block (N concurrent
    memcached jobs through a worker pool, jobs/minute).  ``analysis``
    adds the analysis-pipeline section (reference vs indexed vs sharded
    clustering/merge timings plus the view-cache cold/warm comparison).
    ``self_profile`` adds the tracing-overhead section (traced vs
    untraced smoke run plus the traced run's span stage totals).
    ``load_sweep`` adds the open-loop Poisson load sweep (latency
    percentiles vs offered rate, saturation knee) against a live server.
    """
    reports = [
        bench_scenario(
            name,
            ncores=ncores,
            seed=seed,
            duration_cycles=duration_cycles,
            repeats=repeats,
        )
        for name in scenarios
    ]
    config = MachineConfig(ncores=ncores, seed=seed)
    document = {
        "benchmark": "dprof-engine-comparison",
        "python": sys.version.split()[0],
        "machine": {
            "ncores": ncores,
            "seed": seed,
            "line_size": config.line_size,
            "l1_size": config.l1_size,
            "l2_size": config.l2_size,
            "l3_size": config.l3_size,
        },
        "scenarios": [r.to_dict() for r in reports],
        "all_identical": all(r.accuracy.get("identical") for r in reports),
    }
    if service_jobs > 0:
        document["service_throughput"] = bench_service_throughput(
            jobs=service_jobs,
            workers=service_workers,
            ncores=ncores,
            seed=seed,
            duration_cycles=duration_cycles,
        )
    if analysis:
        document["analysis"] = bench_analysis(
            scenarios=scenarios,
            ncores=ncores,
            seed=seed,
            repeats=repeats,
            variants=analysis_variants,
        )
    if self_profile:
        document["self_profile"] = bench_self_profile(
            ncores=ncores,
            seed=seed,
            duration_cycles=min(duration_cycles, 100_000),
            repeats=max(repeats, 5),
        )
    if load_sweep:
        from repro.bench.load import DEFAULT_RATES, bench_load_sweep

        document["load_sweep"] = bench_load_sweep(
            rates=load_rates or DEFAULT_RATES,
            jobs_per_rate=load_jobs,
            workers=service_workers,
            seed=seed,
        )
    return document


def format_table(document: dict[str, Any]) -> str:
    """Human-readable summary of a benchmark document."""
    lines = [
        f"{'scenario':<12} {'events':>8} {'ref (s)':>9} {'fast (s)':>9} "
        f"{'speedup':>8} {'w/encode':>9} {'identical':>10}"
    ]
    for row in document["scenarios"]:
        lines.append(
            f"{row['name']:<12} {row['events']:>8} {row['reference_s']:>9.4f} "
            f"{row['fast_s']:>9.4f} {row['speedup']:>7.2f}x "
            f"{row['speedup_including_encode']:>8.2f}x "
            f"{str(row['accuracy']['identical']):>10}"
        )
    analysis = document.get("analysis")
    if analysis:
        lines.append("")
        lines.append(
            f"{'analysis':<12} {'histories':>9} {'ref (s)':>9} {'idx (s)':>9} "
            f"{'shard (s)':>9} {'speedup':>8} {'identical':>10}"
        )
        for row in analysis["scenarios"]:
            lines.append(
                f"{row['name']:<12} {row['histories']:>9} "
                f"{row['reference_s']:>9.4f} {row['indexed_s']:>9.4f} "
                f"{row['sharded_s']:>9.4f} {row['speedup']:>7.2f}x "
                f"{str(row['identical']):>10}"
            )
        cache = analysis.get("view_cache")
        if cache:
            lines.append(
                f"view-cache   {cache['view']}: cold {cache['cold_s']:.4f}s, "
                f"warm {cache['warm_s']:.6f}s ({cache['speedup']:.0f}x), "
                f"hit rate {cache['hit_rate']:.2f}"
            )
    sweep = document.get("load_sweep")
    if sweep:
        lines.append("")
        lines.append(
            f"{'load sweep':<12} {'offered/s':>9} {'accepted':>8} "
            f"{'rejected':>8} {'achieved/s':>10} {'p50 (s)':>8} "
            f"{'p95 (s)':>8} {'p99 (s)':>8}"
        )
        for step in sweep["rates"]:
            lines.append(
                f"{sweep['scenario']:<12} {step['offered_rate_per_s']:>9.1f} "
                f"{step['accepted']:>8} {step['rejected']:>8} "
                f"{step['achieved_rate_per_s']:>10.2f} {step['p50_s']:>8.3f} "
                f"{step['p95_s']:>8.3f} {step['p99_s']:>8.3f}"
            )
        knee = sweep.get("knee")
        lines.append(
            f"knee: {knee['offered_rate_per_s']}/s ({knee['reason']})"
            if knee
            else "knee: not reached in swept rates"
        )
    profile = document.get("self_profile")
    if profile:
        lines.append("")
        lines.append(
            f"self-profile {profile['scenario']}: untraced "
            f"{profile['untraced_s']:.4f}s, traced {profile['traced_s']:.4f}s "
            f"({profile['overhead_pct']:+.2f}%, {profile['spans']} spans)"
        )
        for stage, totals in sorted(profile["stages"].items()):
            lines.append(
                f"  {stage:<22} x{totals['count']:<3} "
                f"wall {totals['wall_s']:.4f}s cpu {totals['cpu_s']:.4f}s"
            )
    return "\n".join(lines)


# Schema for BENCH_dprof.json: field name -> required type(s).  A
# benchmark run that crashed midway (missing scenarios, half-built rows)
# must not overwrite the committed baseline; validate_report refuses it.
_NUMBER = (int, float)
_TOP_LEVEL_SCHEMA = {
    "benchmark": str,
    "python": str,
    "machine": dict,
    "scenarios": list,
    "all_identical": bool,
}
_MACHINE_SCHEMA = {
    "ncores": int,
    "seed": int,
    "line_size": int,
    "l1_size": int,
    "l2_size": int,
    "l3_size": int,
}
_SCENARIO_SCHEMA = {
    "name": str,
    "events": int,
    "duration_cycles": int,
    "repeats": int,
    "reference_s": _NUMBER,
    "encode_s": _NUMBER,
    "fast_s": _NUMBER,
    "reference_events_per_s": _NUMBER,
    "fast_events_per_s": _NUMBER,
    "speedup": _NUMBER,
    "speedup_including_encode": _NUMBER,
    "accuracy": dict,
}
_SERVICE_SCHEMA = {
    "scenario": str,
    "jobs": int,
    "workers": int,
    "duration_cycles": int,
    "wall_s": _NUMBER,
    "jobs_per_minute": _NUMBER,
    "statuses": dict,
}
_ANALYSIS_SCHEMA = {
    "scenarios": list,
    "all_identical": bool,
}
_ANALYSIS_SCENARIO_SCHEMA = {
    "name": str,
    "histories": int,
    "types": int,
    "repeats": int,
    "reference_s": _NUMBER,
    "indexed_s": _NUMBER,
    "sharded_s": _NUMBER,
    "speedup_indexed": _NUMBER,
    "speedup": _NUMBER,
    "identical": bool,
}
_SELF_PROFILE_SCHEMA = {
    "scenario": str,
    "duration_cycles": int,
    "repeats": int,
    "untraced_s": _NUMBER,
    "traced_s": _NUMBER,
    "overhead_pct": _NUMBER,
    "spans": int,
    "stages": dict,
}
_VIEW_CACHE_SCHEMA = {
    "view": str,
    "repeats": int,
    "cold_s": _NUMBER,
    "warm_s": _NUMBER,
    "speedup": _NUMBER,
    "hits": int,
    "misses": int,
    "hit_rate": _NUMBER,
}
_LOAD_SWEEP_SCHEMA = {
    "scenario": str,
    "duration_cycles": int,
    "workers": int,
    "jobs_per_rate": int,
    "arrivals": str,
    "rates": list,
    "knee": (dict, type(None)),
}
_LOAD_STEP_SCHEMA = {
    "offered_rate_per_s": _NUMBER,
    "realized_rate_per_s": _NUMBER,
    "jobs": int,
    "accepted": int,
    "rejected": int,
    "completed": int,
    "achieved_rate_per_s": _NUMBER,
    "p50_s": _NUMBER,
    "p95_s": _NUMBER,
    "p99_s": _NUMBER,
}
#: One entry per write_report call: which sections that run refreshed.
#: The list is append-only, so BENCH_dprof.json carries its own
#: per-commit history instead of losing it to each overwrite.
_TRAJECTORY_ENTRY_SCHEMA = {
    "recorded_at": str,
    "python": str,
    "commit": (str, type(None)),
    "sections": list,
}


def _check_fields(blob: dict, schema: dict, where: str) -> None:
    for name, types in schema.items():
        if name not in blob:
            raise BenchFormatError(f"{where}: missing field {name!r}")
        if not isinstance(blob[name], types):
            raise BenchFormatError(
                f"{where}: field {name!r} has type "
                f"{type(blob[name]).__name__}, expected {types}"
            )


def validate_report(document: Any) -> None:
    """Schema-check a benchmark document; raises :class:`BenchFormatError`.

    Called by :func:`write_report` before any bytes hit disk, so a
    crashed or truncated benchmark run can never commit a partial
    baseline file.
    """
    if not isinstance(document, dict):
        raise BenchFormatError("report root is not an object")
    _check_fields(document, _TOP_LEVEL_SCHEMA, "report")
    _check_fields(document["machine"], _MACHINE_SCHEMA, "machine")
    if not document["scenarios"]:
        raise BenchFormatError("report has no scenario rows")
    for index, row in enumerate(document["scenarios"]):
        where = f"scenarios[{index}]"
        if not isinstance(row, dict):
            raise BenchFormatError(f"{where}: row is not an object")
        _check_fields(row, _SCENARIO_SCHEMA, where)
        if "identical" not in row["accuracy"]:
            raise BenchFormatError(f"{where}: accuracy lacks 'identical'")
    service = document.get("service_throughput")
    if service is not None:
        if not isinstance(service, dict):
            raise BenchFormatError("service_throughput is not an object")
        _check_fields(service, _SERVICE_SCHEMA, "service_throughput")
    analysis = document.get("analysis")
    if analysis is not None:
        if not isinstance(analysis, dict):
            raise BenchFormatError("analysis is not an object")
        _check_fields(analysis, _ANALYSIS_SCHEMA, "analysis")
        if not analysis["scenarios"]:
            raise BenchFormatError("analysis has no scenario rows")
        for index, row in enumerate(analysis["scenarios"]):
            where = f"analysis.scenarios[{index}]"
            if not isinstance(row, dict):
                raise BenchFormatError(f"{where}: row is not an object")
            _check_fields(row, _ANALYSIS_SCENARIO_SCHEMA, where)
        cache = analysis.get("view_cache")
        if cache is not None:
            if not isinstance(cache, dict):
                raise BenchFormatError("analysis.view_cache is not an object")
            _check_fields(cache, _VIEW_CACHE_SCHEMA, "analysis.view_cache")
    profile = document.get("self_profile")
    if profile is not None:
        if not isinstance(profile, dict):
            raise BenchFormatError("self_profile is not an object")
        _check_fields(profile, _SELF_PROFILE_SCHEMA, "self_profile")
        for stage, totals in profile["stages"].items():
            if not isinstance(totals, dict) or "wall_s" not in totals:
                raise BenchFormatError(
                    f"self_profile.stages[{stage!r}] lacks 'wall_s'"
                )
    sweep = document.get("load_sweep")
    if sweep is not None:
        if not isinstance(sweep, dict):
            raise BenchFormatError("load_sweep is not an object")
        _check_fields(sweep, _LOAD_SWEEP_SCHEMA, "load_sweep")
        if not sweep["rates"]:
            raise BenchFormatError("load_sweep has no rate steps")
        for index, step in enumerate(sweep["rates"]):
            where = f"load_sweep.rates[{index}]"
            if not isinstance(step, dict):
                raise BenchFormatError(f"{where}: step is not an object")
            _check_fields(step, _LOAD_STEP_SCHEMA, where)
        knee = sweep["knee"]
        if knee is not None and "offered_rate_per_s" not in knee:
            raise BenchFormatError("load_sweep.knee lacks 'offered_rate_per_s'")
    trajectory = document.get("trajectory")
    if trajectory is not None:
        if not isinstance(trajectory, list):
            raise BenchFormatError("trajectory is not a list")
        for index, entry in enumerate(trajectory):
            where = f"trajectory[{index}]"
            if not isinstance(entry, dict):
                raise BenchFormatError(f"{where}: entry is not an object")
            _check_fields(entry, _TRAJECTORY_ENTRY_SCHEMA, where)


#: Bookkeeping keys that never count as benchmark "sections".
_NON_SECTION_KEYS = ("benchmark", "python", "machine", "trajectory")


def _git_commit() -> str | None:
    """The repo's short HEAD sha, or None outside a checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def merge_report(document: dict[str, Any], previous: dict[str, Any]) -> dict[str, Any]:
    """Overlay *document* on an earlier report, preserving history.

    Sections the new run produced win; sections only the old file has
    (say, an ``analysis`` block from a fuller past run) are carried
    forward, so a targeted re-run -- engine only, or load-sweep only --
    never erases the rest of the baseline.  The ``trajectory`` list
    gains one entry naming exactly which sections this run refreshed.
    """
    merged = dict(document)
    for key, value in previous.items():
        if key not in merged and key != "trajectory":
            merged[key] = value
    sections = sorted(k for k in document if k not in _NON_SECTION_KEYS)
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": document.get("python", sys.version.split()[0]),
        "commit": _git_commit(),
        "sections": sections,
    }
    merged["trajectory"] = list(previous.get("trajectory", [])) + [entry]
    return merged


def write_report(document: dict[str, Any], path: str) -> None:
    """Validate and write a benchmark document (refuses partial runs).

    Append-aware: when *path* already holds a valid report, the new
    document is merged over it (old-only sections survive) and a
    trajectory entry records the run; a corrupt existing file raises
    rather than being silently clobbered.
    """
    validate_report(document)
    import os

    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                previous = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise BenchFormatError(
                f"existing report {path} is unreadable ({exc}); refusing to "
                "overwrite -- delete it to start fresh"
            ) from exc
        if isinstance(previous, dict):
            document = merge_report(document, previous)
    else:
        document = merge_report(document, {})
    validate_report(document)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=False)
        fh.write("\n")
