"""CLI for the engine benchmark: ``python -m repro.bench [--out FILE]``."""

from __future__ import annotations

import argparse
import sys

from repro.bench import (
    DEFAULT_DURATION,
    SCENARIO_ORDER,
    SMOKE_DURATION,
    format_table,
    run_benchmarks,
    write_report,
)
from repro.workloads import SCENARIOS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the fast engine against the reference engine.",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the JSON report to FILE"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short windows and one repeat (CI smoke: checks equivalence, "
        "not timing quality)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repeats per engine"
    )
    parser.add_argument("--ncores", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--duration", type=int, default=None, metavar="CYCLES",
        help=f"measured window per scenario (default {DEFAULT_DURATION})",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="run only this scenario (repeatable; includes kernel families)",
    )
    parser.add_argument(
        "--service-jobs",
        type=int,
        default=8,
        metavar="N",
        help="concurrent jobs for the service-throughput scenario "
        "(0 disables it; default 8)",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=4,
        metavar="N",
        help="worker processes for the service-throughput scenario",
    )
    parser.add_argument(
        "--analysis",
        action="store_true",
        help="also benchmark the analysis pipelines (reference vs indexed "
        "vs sharded clustering/merge) and the store's view cache",
    )
    parser.add_argument(
        "--analysis-variants",
        type=int,
        default=32,
        metavar="N",
        help="corpus amplification factor for the analysis benchmark",
    )
    parser.add_argument(
        "--self-profile",
        action="store_true",
        help="also measure tracing overhead (traced vs untraced smoke run) "
        "and report span stage totals",
    )
    parser.add_argument(
        "--load-sweep",
        action="store_true",
        help="also run the open-loop Poisson load sweep against a live "
        "server (latency percentiles vs offered rate, saturation knee)",
    )
    parser.add_argument(
        "--load-rates",
        metavar="R1,R2,...",
        default=None,
        help="offered rates (jobs/s) for --load-sweep, ascending CSV",
    )
    parser.add_argument(
        "--load-jobs",
        type=int,
        default=24,
        metavar="N",
        help="jobs offered per swept rate",
    )
    args = parser.parse_args(argv)

    load_rates = None
    if args.load_rates:
        try:
            load_rates = tuple(float(r) for r in args.load_rates.split(","))
        except ValueError:
            parser.error(f"--load-rates: not a CSV of numbers: {args.load_rates!r}")

    duration = args.duration
    repeats = args.repeats
    service_jobs = args.service_jobs
    service_workers = args.service_workers
    analysis_variants = args.analysis_variants
    load_jobs = args.load_jobs
    if args.smoke:
        duration = duration or SMOKE_DURATION
        repeats = 1
        service_jobs = min(service_jobs, 4)
        service_workers = min(service_workers, 2)
        analysis_variants = min(analysis_variants, 3)
        load_jobs = min(load_jobs, 8)
        load_rates = load_rates or (4.0, 16.0)
    duration = duration or DEFAULT_DURATION
    scenarios = tuple(args.scenario) if args.scenario else SCENARIO_ORDER

    document = run_benchmarks(
        scenarios=scenarios,
        ncores=args.ncores,
        seed=args.seed,
        duration_cycles=duration,
        repeats=repeats,
        service_jobs=service_jobs,
        service_workers=service_workers,
        analysis=args.analysis,
        analysis_variants=analysis_variants,
        self_profile=args.self_profile,
        load_sweep=args.load_sweep,
        load_rates=load_rates,
        load_jobs=load_jobs,
    )
    print(format_table(document))
    service = document.get("service_throughput")
    if service:
        print(
            f"service     {service['jobs']} x {service['scenario']} jobs on "
            f"{service['workers']} workers: {service['jobs_per_minute']} "
            f"jobs/min ({service['wall_s']:.2f}s, statuses {service['statuses']})"
        )
    if args.out:
        write_report(document, args.out)
        print(f"wrote {args.out}")
    if not document["all_identical"]:
        print("ERROR: engines diverged; benchmark invalid", file=sys.stderr)
        return 1
    analysis = document.get("analysis")
    if analysis and not analysis["all_identical"]:
        print(
            "ERROR: analysis pipelines diverged; benchmark invalid",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
