"""``repro.trace`` -- structured, low-overhead span tracing for the pipeline.

DProf's thesis is that you cannot fix what you cannot attribute; this
module applies the same idea to the reproduction's own pipeline
(simulate -> collect -> analyze -> render -> serve).  A
:class:`Tracer` records hierarchical **spans** -- run, scenario,
machine-sim, history-collection, analysis / analysis-shard, view-render,
store-put, queue-wait, worker-execute, requeue -- each carrying wall and
CPU time plus a small counter dict.

Design constraints, in order:

- **Deterministic span identity.**  A span's id is a SHA-256 prefix over
  ``(trace seed, structural path)``, where the path is
  ``parent-path/name#k`` and ``k`` numbers same-named siblings in
  creation order.  Two runs of the same spec therefore produce the same
  span ids with different timings, which is what makes traces diffable.
- **Low overhead.**  Hot simulator loops never open per-event spans;
  they tick a :class:`SimProbe` -- one attribute increment plus a modulo
  per scheduler step (a *quantum* of instructions, not an instruction)
  -- and the probe folds sampled progress points into the enclosing
  span when it closes.  With tracing disabled every instrumentation
  point is a no-op on the shared :data:`NULL_TRACER` singleton.
  ``tests/test_trace.py`` gates the enabled-tracing cost at <5% on the
  bench smoke scenarios.
- **Process boundaries.**  Spans serialize to plain dicts
  (:meth:`Tracer.to_blobs`) and are re-parented canonically on the
  parent side (:meth:`Tracer.adopt`): adopted subtrees are re-keyed
  through the same path allocator as native spans, in the caller's
  (canonical) order, so a sharded analysis run produces bit-identical
  span ids at any worker count.
- **Reconciliation.**  Server-side spans restate the
  :class:`~repro.serve.metrics.ServeMetrics` identity
  ``submitted == done + failed + requeued``; :func:`reconcile_serve`
  checks span counts against a counter snapshot exactly.

Exports land on disk as JSON lines next to the session archive: a
``manifest`` record (config fingerprint, engine/analysis mode, quality,
per-stage wall/cpu totals) followed by one record per span.  The
``repro trace`` CLI renders the stage tree and the critical path.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TraceError

#: Trace file format version (bumped on incompatible record changes).
TRACE_FORMAT_VERSION = 1

#: Filename suffix for trace files written next to session archives.
TRACE_SUFFIX = ".trace.jsonl"

#: The canonical stage vocabulary (informative, not enforced: ad-hoc
#: span names are allowed, but the pipeline sticks to these).
STAGES = (
    "run",
    "scenario",
    "machine-sim",
    "history-collection",
    "analysis",
    "analysis-shard",
    "view-render",
    "store-put",
    "queue-wait",
    "worker-execute",
    "requeue",
)

#: Span-id length (hex chars of the SHA-256 prefix).
_ID_LEN = 16


def span_id_for(seed: int, path: str) -> str:
    """The deterministic id of the span at *path* under trace *seed*."""
    material = f"{seed}:{path}".encode()
    return hashlib.sha256(material).hexdigest()[:_ID_LEN]


@dataclass
class Span:
    """One closed span: identity, timing, counters."""

    span_id: str
    parent_id: str | None
    name: str
    path: str
    start_s: float  #: offset from the tracer's epoch, seconds
    wall_s: float
    cpu_s: float
    counters: dict = field(default_factory=dict)

    def to_blob(self) -> dict:
        """JSON-compatible record (one trace-file line)."""
        return {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "path": self.path,
            "start_s": round(self.start_s, 6),
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "counters": self.counters,
        }

    @classmethod
    def from_blob(cls, blob: dict) -> "Span":
        try:
            return cls(
                span_id=blob["id"],
                parent_id=blob.get("parent"),
                name=blob["name"],
                path=blob["path"],
                start_s=float(blob.get("start_s", 0.0)),
                wall_s=float(blob["wall_s"]),
                cpu_s=float(blob.get("cpu_s", 0.0)),
                counters=dict(blob.get("counters", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed span record: {exc!r}") from exc


class _OpenSpan:
    """A span that has begun but not ended (the :meth:`Tracer.begin` handle)."""

    __slots__ = ("name", "path", "span_id", "parent_id", "start_s", "_t0", "_c0", "counters")

    def __init__(self, name, path, span_id, parent_id, start_s, t0, c0, counters):
        self.name = name
        self.path = path
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self._t0 = t0
        self._c0 = c0
        self.counters = counters

    def add(self, **counters) -> None:
        """Fold counters into this span (numbers add, others overwrite)."""
        _merge_counters(self.counters, counters)


def _merge_counters(into: dict, new: dict) -> None:
    for key, value in new.items():
        old = into.get(key)
        if isinstance(old, (int, float)) and isinstance(value, (int, float)):
            into[key] = old + value
        else:
            into[key] = value


class SimProbe:
    """Cheap sampled counters for simulator step loops.

    The hot loop does ``probe.tick(machine)`` once per scheduler step;
    the probe counts steps and, every ``sample_every`` ticks, records a
    bounded ``(instructions, cycles)`` progress point.  No span, no
    dict, no allocation on the common path.
    """

    __slots__ = ("sample_every", "max_samples", "steps", "samples")

    def __init__(self, sample_every: int = 1024, max_samples: int = 64) -> None:
        self.sample_every = sample_every
        self.max_samples = max_samples
        self.steps = 0
        self.samples: list[tuple[int, int]] = []

    def tick(self, machine) -> None:
        self.steps += 1
        if self.steps % self.sample_every == 0 and len(self.samples) < self.max_samples:
            self.samples.append((machine.total_instructions, machine.elapsed_cycles()))

    def tick_events(self, events: int) -> None:
        """Count a batch of replay events (fastpath chunked loops)."""
        self.steps += events
        if len(self.samples) < self.max_samples:
            self.samples.append((self.steps, 0))

    def counters(self) -> dict:
        """The probe's contribution to its enclosing span."""
        return {"probe_steps": self.steps, "probe_samples": len(self.samples)}


class Tracer:
    """Collects hierarchical spans with deterministic identity.

    Use :meth:`span` (a context manager) for stack-shaped work and
    :meth:`begin`/:meth:`end` with explicit handles for overlapping
    spans (the server keeps many queue-wait spans open at once).
    """

    enabled = True

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.spans: list[Span] = []
        self._stack: list[_OpenSpan] = []
        #: parent path -> child name -> occurrences (path allocation).
        self._child_counts: dict[str, dict[str, int]] = {}
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------

    def _alloc_path(self, parent_path: str, name: str) -> str:
        counts = self._child_counts.setdefault(parent_path, {})
        k = counts.get(name, 0)
        counts[name] = k + 1
        prefix = f"{parent_path}/" if parent_path else ""
        return f"{prefix}{name}#{k}"

    def begin(self, name: str, parent: _OpenSpan | None = None, **counters) -> _OpenSpan:
        """Open a span; returns the handle :meth:`end` needs.

        ``parent=None`` nests under the innermost :meth:`span` context
        if one is open, else creates a root span.  Pass an explicit
        handle to build overlapping hierarchies.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        parent_path = parent.path if parent is not None else ""
        parent_id = parent.span_id if parent is not None else None
        path = self._alloc_path(parent_path, name)
        now = time.perf_counter()
        return _OpenSpan(
            name,
            path,
            span_id_for(self.seed, path),
            parent_id,
            now - self._epoch,
            now,
            time.process_time(),
            dict(counters),
        )

    def end(self, handle: _OpenSpan, **counters) -> Span:
        """Close *handle*, folding in final counters; returns the span."""
        if counters:
            handle.add(**counters)
        span = Span(
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            name=handle.name,
            path=handle.path,
            start_s=handle.start_s,
            wall_s=time.perf_counter() - handle._t0,
            cpu_s=time.process_time() - handle._c0,
            counters=handle.counters,
        )
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **counters):
        """Context manager: a span around the ``with`` body."""
        handle = self.begin(name, **counters)
        self._stack.append(handle)
        try:
            yield handle
        finally:
            self._stack.pop()
            self.end(handle)

    def add(self, **counters) -> None:
        """Fold counters into the innermost open :meth:`span` context."""
        if self._stack:
            self._stack[-1].add(**counters)

    # ------------------------------------------------------------------
    # Process-boundary merge
    # ------------------------------------------------------------------

    def to_blobs(self) -> list[dict]:
        """Every closed span as a JSON-compatible record."""
        return [span.to_blob() for span in self.spans]

    def adopt(self, blobs: list[dict], parent: _OpenSpan | None = None) -> list[Span]:
        """Re-parent foreign span records under *parent*, canonically.

        Roots of the adopted forest (spans whose parent id is absent
        from the blob set) are re-keyed through this tracer's path
        allocator in the order given -- callers pass blobs in canonical
        order (e.g. sorted by shard index), so adopted ids are
        bit-identical at any worker count.  Timings and counters are
        preserved verbatim.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        parent_path = parent.path if parent is not None else ""
        parent_id = parent.span_id if parent is not None else None
        foreign = [Span.from_blob(b) for b in blobs if b.get("kind", "span") == "span"]
        ids = {span.span_id for span in foreign}
        children: dict[str, list[Span]] = {}
        roots: list[Span] = []
        for span in foreign:
            if span.parent_id in ids:
                children.setdefault(span.parent_id, []).append(span)
            else:
                roots.append(span)
        adopted: list[Span] = []

        def _adopt(span: Span, new_parent_path: str, new_parent_id: str | None) -> None:
            path = self._alloc_path(new_parent_path, span.name)
            new = Span(
                span_id=span_id_for(self.seed, path),
                parent_id=new_parent_id,
                name=span.name,
                path=path,
                start_s=span.start_s,
                wall_s=span.wall_s,
                cpu_s=span.cpu_s,
                counters=dict(span.counters),
            )
            self.spans.append(new)
            adopted.append(new)
            for child in children.get(span.span_id, ()):
                _adopt(child, path, new.span_id)

        for root in roots:
            _adopt(root, parent_path, parent_id)
        return adopted

    # ------------------------------------------------------------------
    # Aggregation and export
    # ------------------------------------------------------------------

    def stage_totals(self) -> dict[str, dict]:
        """Per-stage (span name) count and wall/cpu totals."""
        return stage_totals(self.spans)

    def manifest(
        self,
        *,
        fingerprint: str = "",
        engine: str = "",
        analysis: str = "",
        quality: str = "",
        **extra,
    ) -> dict:
        """The per-run manifest record written as the trace file's first line."""
        blob = {
            "kind": "manifest",
            "version": TRACE_FORMAT_VERSION,
            "seed": self.seed,
            "fingerprint": fingerprint,
            "engine": engine,
            "analysis": analysis,
            "quality": quality,
            "spans": len(self.spans),
            "stages": self.stage_totals(),
        }
        blob.update(extra)
        return blob

    def to_jsonl(self, manifest: dict | None = None) -> str:
        """The whole trace as JSON lines (manifest first when given)."""
        records = [] if manifest is None else [manifest]
        records.extend(self.to_blobs())
        return "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"

    def write_jsonl(self, path: str | Path, manifest: dict | None = None) -> Path:
        """Atomically write the trace next to its session archive."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".tmp-{path.name}.{os.getpid()}"
        tmp.write_text(self.to_jsonl(manifest))
        os.replace(tmp, path)
        return path


class NullTracer:
    """The disabled tracer: every operation is a near-free no-op.

    A single shared instance (:data:`NULL_TRACER`) stands in wherever a
    tracer parameter is optional, so instrumentation points cost one
    attribute lookup and a ``None``/falsy check when tracing is off.
    """

    enabled = False
    seed = 0
    spans: list[Span] = []

    @contextmanager
    def span(self, name, **counters):
        yield None

    def begin(self, name, parent=None, **counters):
        return None

    def end(self, handle, **counters):
        return None

    def add(self, **counters):
        return None

    def adopt(self, blobs, parent=None):
        return []

    def to_blobs(self):
        return []

    def stage_totals(self):
        return {}


#: The shared disabled tracer.
NULL_TRACER = NullTracer()


def tracer_or_null(trace: bool, seed: int = 0) -> Tracer | NullTracer:
    """A live :class:`Tracer` when *trace* is set, else :data:`NULL_TRACER`."""
    return Tracer(seed=seed) if trace else NULL_TRACER


def config_fingerprint(blob: dict) -> str:
    """SHA-256 prefix over a canonical JSON encoding of a config dict."""
    canonical = json.dumps(blob, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:_ID_LEN]


# ----------------------------------------------------------------------
# Reading traces back
# ----------------------------------------------------------------------


def parse_trace(text: str) -> tuple[dict | None, list[Span]]:
    """Parse trace JSONL text into (manifest-or-None, spans)."""
    manifest: dict | None = None
    spans: list[Span] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"trace line {lineno} is not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise TraceError(f"trace line {lineno} is not an object")
        kind = record.get("kind", "span")
        if kind == "manifest":
            manifest = record
        elif kind == "span":
            spans.append(Span.from_blob(record))
        else:
            raise TraceError(f"trace line {lineno}: unknown record kind {kind!r}")
    return manifest, spans


def load_trace(path: str | Path) -> tuple[dict | None, list[Span]]:
    """Read and parse one trace file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    return parse_trace(text)


def stage_totals(spans: list[Span]) -> dict[str, dict]:
    """Per-stage (span name) count and wall/cpu totals, name-sorted."""
    totals: dict[str, dict] = {}
    for span in spans:
        entry = totals.setdefault(
            span.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
        )
        entry["count"] += 1
        # Sum the 6-decimal values the JSONL export carries, so totals
        # computed before writing and after re-loading agree exactly.
        entry["wall_s"] += round(span.wall_s, 6)
        entry["cpu_s"] += round(span.cpu_s, 6)
    return {
        name: {
            "count": entry["count"],
            "wall_s": round(entry["wall_s"], 6),
            "cpu_s": round(entry["cpu_s"], 6),
        }
        for name, entry in sorted(totals.items())
    }


# ----------------------------------------------------------------------
# Rendering: stage-time tree and critical path
# ----------------------------------------------------------------------


def _tree_index(spans: list[Span]) -> tuple[list[Span], dict[str, list[Span]]]:
    """(roots, parent-id -> children) preserving recorded order."""
    ids = {span.span_id for span in spans}
    children: dict[str, list[Span]] = {}
    roots: list[Span] = []
    for span in spans:
        if span.parent_id in ids:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    return roots, children


def critical_path(spans: list[Span]) -> list[Span]:
    """The chain of heaviest spans: longest root, then its longest child, ...

    "Heaviest" is wall time.  This is the first place to look when a run
    is slow: the path names the stages that bound end-to-end latency.
    """
    roots, children = _tree_index(spans)
    if not roots:
        return []
    path = [max(roots, key=lambda s: s.wall_s)]
    while True:
        kids = children.get(path[-1].span_id)
        if not kids:
            return path
        path.append(max(kids, key=lambda s: s.wall_s))


def render_tree(spans: list[Span], manifest: dict | None = None, top: int = 0) -> str:
    """Human-readable stage-time tree plus the critical-path summary."""
    lines: list[str] = []
    if manifest is not None:
        lines.append(
            f"trace seed={manifest.get('seed')} "
            f"fingerprint={manifest.get('fingerprint') or '-'} "
            f"engine={manifest.get('engine') or '-'} "
            f"analysis={manifest.get('analysis') or '-'}"
        )
        if manifest.get("quality"):
            lines.append(f"quality: {manifest['quality']}")
    if not spans:
        lines.append("(no spans)")
        return "\n".join(lines)
    roots, children = _tree_index(spans)
    name_width = max(
        (len(span.name) + 2 * _depth(span, spans) for span in spans), default=20
    )
    name_width = max(name_width, 20)
    lines.append(f"{'stage':<{name_width}}  {'wall (s)':>10} {'cpu (s)':>10}  counters")

    def _walk(span: Span, depth: int) -> None:
        label = "  " * depth + span.name
        extras = ", ".join(
            f"{k}={v}" for k, v in sorted(span.counters.items()) if k != "job_id"
        )
        lines.append(
            f"{label:<{name_width}}  {span.wall_s:>10.4f} {span.cpu_s:>10.4f}  {extras}"
        )
        kids = children.get(span.span_id, ())
        if top:
            kids = sorted(kids, key=lambda s: s.wall_s, reverse=True)[:top]
        for child in kids:
            _walk(child, depth + 1)

    for root in roots:
        _walk(root, 0)
    path = critical_path(spans)
    if path:
        total = path[0].wall_s or 1.0
        chain = " > ".join(span.name for span in path)
        lines.append("")
        lines.append(
            f"critical path: {chain} "
            f"({path[-1].wall_s:.4f}s leaf, {100.0 * path[-1].wall_s / total:.1f}% of {path[0].name})"
        )
    return "\n".join(lines)


def _depth(span: Span, spans: list[Span]) -> int:
    by_id = {s.span_id: s for s in spans}
    depth = 0
    current = span
    while current.parent_id in by_id:
        current = by_id[current.parent_id]
        depth += 1
    return depth


# ----------------------------------------------------------------------
# Metrics reconciliation
# ----------------------------------------------------------------------


def reconcile_serve(spans: list[Span], counters: dict) -> dict:
    """Check server-side span counts against a ServeMetrics snapshot.

    The span-side restatement of ``submitted == done + failed +
    requeued``:

    - one terminal ``worker-execute`` span per completed job
      (``done + failed``), non-terminal dispatches (crash retries)
      carry ``terminal=False``;
    - one ``requeue`` span per job handed back at drain;
    - one ``queue-wait`` span per queue residence (accepted submissions
      plus crash-requeue re-pushes).

    Returns a report dict whose ``ok`` is True only when every identity
    holds exactly; the serve burst test asserts it.
    """
    by_name: dict[str, list[Span]] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    terminal_executes = sum(
        1
        for span in by_name.get("worker-execute", ())
        if span.counters.get("terminal", True)
    )
    requeues = len(by_name.get("requeue", ()))
    queue_waits = len(by_name.get("queue-wait", ()))
    submitted = counters.get("jobs_submitted", 0)
    done = counters.get("jobs_done", 0)
    failed = counters.get("jobs_failed", 0)
    requeued = counters.get("jobs_requeued", 0)
    retries = counters.get("job_retries", 0)
    checks = {
        "counters_reconciled": submitted == done + failed + requeued,
        "executes_match": terminal_executes == done + failed,
        "requeues_match": requeues == requeued,
        "queue_waits_match": queue_waits == submitted + retries,
        "spans_cover_submissions": terminal_executes + requeues == submitted,
    }
    return {
        "ok": all(checks.values()),
        "checks": checks,
        "span_counts": {
            "queue-wait": queue_waits,
            "worker-execute": terminal_executes,
            "requeue": requeues,
        },
        "counter_counts": {
            "jobs_submitted": submitted,
            "jobs_done": done,
            "jobs_failed": failed,
            "jobs_requeued": requeued,
            "job_retries": retries,
        },
    }
