"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is invalid (bad geometry, bad rate, ...)."""


class SimulationError(ReproError):
    """The simulated machine reached an inconsistent state."""


class AllocationError(ReproError):
    """The simulated allocator could not satisfy a request."""


class ResolveError(ReproError):
    """An address could not be resolved to a data type."""


class ProfilingError(ReproError):
    """A profiling session was misused (not started, already attached, ...)."""


class FaultInjectionError(ReproError):
    """A fault plan is invalid (bad rate, unknown fault model, ...)."""


class ServeError(ReproError):
    """The profiling service was misused (bad job spec, unknown job,
    fetch before completion, store miss, ...)."""


class ProtocolError(ServeError):
    """A service message is malformed (bad JSON, missing op, oversized
    line).  Reported to the client instead of closing the connection."""


class QueueFullError(ServeError):
    """The job queue is at capacity.  Carries ``retry_after_s``, the
    server's estimate of when a resubmission is likely to be accepted."""

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class TraceError(ReproError):
    """A trace file is malformed (bad JSON, unknown record kind,
    missing span fields) or the trace API was misused."""


class BenchFormatError(ReproError):
    """A benchmark report document failed schema validation; the baseline
    file is left untouched rather than committing a partial run."""


class SessionFormatError(ProfilingError):
    """A session archive is malformed (bad JSON, unknown version, torn
    section, failed checksum).  Carries the offending ``path`` and
    ``section`` when known so tooling can report exactly what broke."""

    def __init__(
        self,
        message: str,
        *,
        path: object | None = None,
        section: str | None = None,
    ) -> None:
        detail = message
        if section is not None:
            detail += f" [section: {section}]"
        if path is not None:
            detail += f" [file: {path}]"
        super().__init__(detail)
        self.path = path
        self.section = section


class DegradedDataWarning(Warning):
    """A view was built from partial data (dropped samples, truncated
    histories, unrecoverable archive sections).  Emitted via
    :func:`warnings.warn`; the view itself still renders, annotated with
    its coverage, instead of raising."""
