"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is invalid (bad geometry, bad rate, ...)."""


class SimulationError(ReproError):
    """The simulated machine reached an inconsistent state."""


class AllocationError(ReproError):
    """The simulated allocator could not satisfy a request."""


class ResolveError(ReproError):
    """An address could not be resolved to a data type."""


class ProfilingError(ReproError):
    """A profiling session was misused (not started, already attached, ...)."""
