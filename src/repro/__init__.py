"""DProf reproduction: data profiling for cache performance bottlenecks.

This package reproduces the system described in "Locating Cache Performance
Bottlenecks Using Data Profiling" (Pesterev, MIT, 2010 / EuroSys 2010).

Layers, bottom to top:

- :mod:`repro.hw` -- a simulated multicore machine: set-associative caches
  with MESI coherence, an IBS-style sampling unit, and x86-style debug
  registers.  The paper used real AMD hardware; the simulation supplies the
  same events with exact ground truth.
- :mod:`repro.kernel` -- a simulated Linux-like kernel substrate: typed SLAB
  allocator, spinlocks with lock statistics, and a multiqueue network stack
  (skbuff / qdisc / UDP / TCP).
- :mod:`repro.dprof` -- the paper's contribution: access samples, object
  access histories, path traces, and the four DProf views (data profile,
  miss classification, working set, data flow).
- :mod:`repro.baselines` -- OProfile- and lock-stat-style profilers used as
  comparison points in the paper's case studies.
- :mod:`repro.workloads` -- memcached- and Apache-style workloads plus
  synthetic microworkloads for each cache-miss class.
- :mod:`repro.fixes` -- the two case-study fixes: local TX-queue selection
  and accept-queue admission control.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
