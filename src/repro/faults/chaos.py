"""Process-level chaos for cluster tests: deterministic kill schedules.

:mod:`repro.faults.plan` injects faults *inside* one pipeline; this
module injects them *between* processes -- SIGKILLing a federated serve
node or stalling its heartbeats mid-burst, which is how the cluster's
failure detector, lease reclaim, and at-most-once commit get exercised
for real.  Like every fault source in this package, the schedule is
seed-deterministic: a :class:`ChaosPlan` draws victims and firing times
from :class:`~repro.util.rng.DeterministicRng` child streams, so a
chaos test that fails replays with the identical kill order.

The plan only *decides*; :func:`execute` carries an action out against
live node processes, so tests and the CI smoke share one code path for
"kill node X at T" and "stall node Y's heartbeats for D seconds".
"""

from __future__ import annotations

import signal
from dataclasses import dataclass

from repro.errors import FaultInjectionError
from repro.util.rng import DeterministicRng

#: Supported chaos actions.
ACTION_KINDS = ("sigkill", "stall-heartbeats")


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled disruption: what, to whom, when."""

    kind: str
    target: str
    #: Seconds after the burst starts that the action fires.
    at_s: float
    #: For stalls: how long heartbeats stay suppressed.
    duration_s: float = 0.0

    def describe(self) -> str:
        extra = f" for {self.duration_s:.1f}s" if self.kind == "stall-heartbeats" else ""
        return f"{self.kind} {self.target} at t+{self.at_s:.2f}s{extra}"


class ChaosPlan:
    """Seed-deterministic schedule of kills and heartbeat stalls."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = DeterministicRng(seed, "chaos")

    def schedule(
        self,
        node_ids: list[str],
        *,
        window_s: float,
        kills: int = 1,
        stalls: int = 0,
        stall_duration_s: float = 2.0,
    ) -> list[ChaosAction]:
        """Pick victims and firing times inside ``(0, window_s)``.

        Victims are distinct (a node is disrupted at most once per
        plan); at least one node is always left untouched, since a
        cluster with every member killed has nothing left to assert.
        """
        if kills + stalls >= len(node_ids):
            raise FaultInjectionError(
                f"{kills} kills + {stalls} stalls needs at least "
                f"{kills + stalls + 1} nodes, got {len(node_ids)}"
            )
        pick = self._rng.child("victims")
        when = self._rng.child("times")
        pool = sorted(node_ids)
        actions = []
        for kind, count, duration in (
            ("sigkill", kills, 0.0),
            ("stall-heartbeats", stalls, stall_duration_s),
        ):
            for _ in range(count):
                victim = pool.pop(pick.randint(0, len(pool) - 1))
                # Strictly inside the window: chaos mid-burst, never at
                # the very edges where it degenerates to setup/teardown.
                at_s = window_s * (0.25 + 0.5 * when.random())
                actions.append(
                    ChaosAction(
                        kind=kind, target=victim, at_s=at_s, duration_s=duration
                    )
                )
        return sorted(actions, key=lambda a: a.at_s)


def execute(action: ChaosAction, *, procs: dict, ports: dict) -> None:
    """Carry out one action against live node processes.

    ``procs`` maps node id -> subprocess handle (anything with
    ``send_signal``); ``ports`` maps node id -> TCP port for ops that
    talk to the node instead of killing it.
    """
    if action.kind == "sigkill":
        procs[action.target].send_signal(signal.SIGKILL)
        return
    if action.kind == "stall-heartbeats":
        from repro.serve.protocol import request_once

        request_once(
            "127.0.0.1",
            ports[action.target],
            {"op": "stall-heartbeats", "duration_s": action.duration_s},
        )
        return
    raise FaultInjectionError(f"unknown chaos action {action.kind!r}")
