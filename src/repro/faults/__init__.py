"""Fault injection for the DProf pipeline.

The real DProf runs on hardware that loses data: IBS drops tagged ops,
debug registers are contended, histories race object lifetimes, and
session files tear.  This package injects those faults into the simulated
pipeline deterministically -- a :class:`FaultPlan` built from a seed
produces the identical fault schedule every run -- so the degradation
machinery (bounded retries, partial histories, checksum recovery,
confidence-annotated views) is exercised under controlled loss instead of
assumed away.

- :mod:`repro.faults.plan` -- :class:`FaultPlan` / :class:`FaultInjector`:
  composable Bernoulli fault models for the IBS, debug-register, and
  history-collection layers, wired in via
  :meth:`repro.hw.machine.Machine.install_faults`;
- :mod:`repro.faults.corrupt` -- deterministic torn-write and bit-flip
  corruption of session archives, for exercising
  :mod:`repro.dprof.session_io` validation and recovery;
- :mod:`repro.faults.chaos` -- seed-deterministic process-level chaos
  (SIGKILL a cluster node, stall its heartbeats) for the federation
  tests and the CI chaos smoke.
"""

from repro.faults.chaos import ChaosAction, ChaosPlan
from repro.faults.corrupt import corrupt_section, flip_byte, tear_file
from repro.faults.plan import FaultCounters, FaultInjector, FaultPlan

__all__ = [
    "ChaosAction",
    "ChaosPlan",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "corrupt_section",
    "flip_byte",
    "tear_file",
]
