"""Deterministic session-archive corruption (torn and flipped files).

Session archives are the one pipeline artifact that crosses a machine
boundary ("profile on one machine, analyze anywhere"), so they see the
classic storage faults: torn writes (the tail missing after a crash) and
flipped bytes (bad disk, bad transfer).  These helpers produce both,
deterministically from a :class:`~repro.util.rng.DeterministicRng`, for
tests and fault-injection drills against :mod:`repro.dprof.session_io`'s
checksum validation and partial recovery.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import FaultInjectionError
from repro.util.rng import DeterministicRng


def tear_file(path: str | Path, keep_fraction: float = 0.5) -> Path:
    """Truncate the archive to its first *keep_fraction* bytes (torn write)."""
    if not 0.0 <= keep_fraction < 1.0:
        raise FaultInjectionError(
            f"keep_fraction must be in [0, 1), got {keep_fraction!r}"
        )
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])
    return path


def flip_byte(path: str | Path, rng: DeterministicRng) -> int:
    """Flip one bit of one byte at an rng-chosen offset; returns the offset."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise FaultInjectionError(f"cannot corrupt empty file {path}")
    offset = rng.randint(0, len(data) - 1)
    data[offset] ^= 1 << rng.randint(0, 7)
    path.write_bytes(bytes(data))
    return offset


def corrupt_section(path: str | Path, section: str, rng: DeterministicRng) -> Path:
    """Damage one named section of a session archive, keeping valid JSON.

    Parses the archive, perturbs one value inside *section* (so the file
    still loads as JSON but the section's checksum no longer verifies),
    and writes it back.  This models in-place bit rot that JSON parsing
    alone cannot detect -- exactly what the per-section checksums exist
    to catch.
    """
    path = Path(path)
    blob = json.loads(path.read_text())
    if section not in blob:
        raise FaultInjectionError(f"archive has no section {section!r}")
    blob[section] = _perturb(blob[section], rng)
    path.write_text(json.dumps(blob))
    return path


def _perturb(value, rng: DeterministicRng):
    """Change *value* somewhere, preserving its JSON shape."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ (1 << rng.randint(0, 7))
    if isinstance(value, float):
        return value + 1.0 + rng.random()
    if isinstance(value, str):
        return value + "␀"
    if isinstance(value, list):
        if not value:
            return [0]
        index = rng.randint(0, len(value) - 1)
        value = list(value)
        value[index] = _perturb(value[index], rng)
        return value
    if isinstance(value, dict):
        if not value:
            return {"corrupt": 1}
        key = rng.choice(sorted(value.keys()))
        value = dict(value)
        value[key] = _perturb(value[key], rng)
        return value
    return 0  # null -> not-null is as torn as it gets
