"""Deterministic fault plans and the injector that executes them.

The paper's real system runs on lossy hardware: IBS silently discards
tagged ops that never retire, only four debug registers exist (and other
kernel agents -- kgdb, perf -- compete for them), and an object can die
before its history finishes.  The simulated pipeline is perfect by
default; this module makes it imperfect *on purpose*, so the degradation
machinery downstream (retries, partial histories, confidence-annotated
views) can be exercised and tested.

Every fault decision draws from a :class:`~repro.util.rng.DeterministicRng`
child stream -- never wall-clock randomness -- so a given
(:class:`FaultPlan`, machine seed) pair produces the *identical* fault
schedule on every run, and a faulted experiment replays bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import FaultInjectionError
from repro.util.rng import DeterministicRng

#: A corrupted IBS latency field gets one bit flipped in this range.  Low
#: bits perturb the value plausibly (skewing latency means); high bits
#: produce values the sampler's sanity filter rejects outright -- both
#: real failure modes of a racy MSR read.
LATENCY_CORRUPT_BIT_LO = 8
LATENCY_CORRUPT_BIT_HI = 20

#: A truncated history stops recording after this many trapped accesses
#: (drawn uniformly), modelling the watch being revoked mid-lifetime.
TRUNCATION_MIN_ELEMENTS = 1
TRUNCATION_MAX_ELEMENTS = 12

_RATE_FIELDS = (
    "ibs_drop_rate",
    "ibs_latency_corrupt_rate",
    "debugreg_steal_rate",
    "watch_trap_miss_rate",
    "history_truncation_rate",
)

#: CLI spec keys (``--inject-faults ibs_drop=0.1,...``) -> field names.
_SPEC_KEYS = {
    "ibs_drop": "ibs_drop_rate",
    "ibs_latency": "ibs_latency_corrupt_rate",
    "debugreg_steal": "debugreg_steal_rate",
    "trap_miss": "watch_trap_miss_rate",
    "history_truncation": "history_truncation_rate",
    "seed": "seed",
}


@dataclass
class FaultCounters:
    """What the injector actually did, for :class:`DataQuality` reports."""

    ibs_drops: int = 0
    ibs_corruptions: int = 0
    debug_slot_steals: int = 0
    watch_trap_misses: int = 0
    history_truncations: int = 0
    history_truncation_decisions: int = 0

    @property
    def total_faults(self) -> int:
        """Every fault the injector fired, across all models."""
        return (
            self.ibs_drops
            + self.ibs_corruptions
            + self.debug_slot_steals
            + self.watch_trap_misses
            + self.history_truncations
        )


@dataclass(frozen=True)
class FaultPlan:
    """A composable, seed-driven description of what should go wrong.

    Each rate is an independent Bernoulli probability applied at the
    matching decision point:

    - ``ibs_drop_rate`` -- a tagged op is discarded before its interrupt
      fires (no sample, no overhead charged);
    - ``ibs_latency_corrupt_rate`` -- a delivered sample's latency field
      has one random bit flipped;
    - ``debugreg_steal_rate`` -- arming a watch fails because another
      agent grabbed the debug register first;
    - ``watch_trap_miss_rate`` -- an armed watch silently fails to trap
      one matching access (the history loses that element);
    - ``history_truncation_rate`` -- a history stops recording partway
      through the object's lifetime.

    ``seed`` drives every decision stream; the plan itself is immutable
    and hashable so it can live in a frozen profiler config.
    """

    seed: int = 0
    ibs_drop_rate: float = 0.0
    ibs_latency_corrupt_rate: float = 0.0
    debugreg_steal_rate: float = 0.0
    watch_trap_miss_rate: float = 0.0
    history_truncation_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"{name} must be a probability in [0, 1], got {rate!r}"
                )

    @property
    def any_faults(self) -> bool:
        """True when at least one fault model has a nonzero rate."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a CLI spec like ``ibs_drop=0.1,seed=7``.

        Raises :class:`FaultInjectionError` on unknown keys or unparsable
        values, naming the offending token.
        """
        kwargs: dict[str, float | int] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise FaultInjectionError(
                    f"fault spec token {token!r} is not key=value"
                )
            key, _, raw = token.partition("=")
            key = key.strip()
            name = _SPEC_KEYS.get(key)
            if name is None:
                known = ", ".join(sorted(_SPEC_KEYS))
                raise FaultInjectionError(
                    f"unknown fault model {key!r} (known: {known})"
                )
            try:
                kwargs[name] = int(raw) if name == "seed" else float(raw)
            except ValueError as exc:
                raise FaultInjectionError(
                    f"bad value for {key!r}: {raw!r}"
                ) from exc
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line summary of the active fault models."""
        active = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if f.name in _RATE_FIELDS and getattr(self, f.name) > 0.0
        ]
        models = ", ".join(active) if active else "no faults"
        return f"FaultPlan(seed={self.seed}: {models})"

    def build(self, rng: DeterministicRng | None = None) -> "FaultInjector":
        """Instantiate the injector that executes this plan."""
        return FaultInjector(self, rng or DeterministicRng(self.seed, "faults"))


class FaultInjector:
    """Executes a :class:`FaultPlan` against the hardware and profiler.

    Each fault model draws from its own named child stream, so the
    schedule of one model never depends on how often another fires, and
    per-CPU IBS streams keep decisions independent of cross-core
    interleaving.  All decisions are counted in :attr:`counters`.
    """

    def __init__(self, plan: FaultPlan, rng: DeterministicRng) -> None:
        self.plan = plan
        self.counters = FaultCounters()
        self._ibs_rngs: dict[int, DeterministicRng] = {}
        self._rng = rng
        self._debugreg_rng = rng.child("debugreg")
        self._trap_rng = rng.child("traps")
        self._history_rng = rng.child("history")

    def _ibs_rng(self, cpu: int) -> DeterministicRng:
        stream = self._ibs_rngs.get(cpu)
        if stream is None:
            stream = self._rng.child(f"ibs.cpu{cpu}")
            self._ibs_rngs[cpu] = stream
        return stream

    # ------------------------------------------------------------------
    # IBS fault models
    # ------------------------------------------------------------------

    def drop_ibs_sample(self, cpu: int) -> bool:
        """Should this tagged op be discarded before delivery?"""
        if self.plan.ibs_drop_rate <= 0.0:
            return False
        if self._ibs_rng(cpu).random() < self.plan.ibs_drop_rate:
            self.counters.ibs_drops += 1
            return True
        return False

    def corrupt_ibs_latency(self, cpu: int, latency: int) -> int | None:
        """Corrupted latency value, or None when the field stays intact."""
        if self.plan.ibs_latency_corrupt_rate <= 0.0:
            return None
        stream = self._ibs_rng(cpu)
        if stream.random() >= self.plan.ibs_latency_corrupt_rate:
            return None
        self.counters.ibs_corruptions += 1
        bit = stream.randint(LATENCY_CORRUPT_BIT_LO, LATENCY_CORRUPT_BIT_HI)
        return latency ^ (1 << bit)

    # ------------------------------------------------------------------
    # Debug-register fault models
    # ------------------------------------------------------------------

    def steal_debug_slot(self) -> bool:
        """Does another agent grab the debug register mid-arm?"""
        if self.plan.debugreg_steal_rate <= 0.0:
            return False
        if self._debugreg_rng.random() < self.plan.debugreg_steal_rate:
            self.counters.debug_slot_steals += 1
            return True
        return False

    def miss_watch_trap(self) -> bool:
        """Does an armed watch silently fail to trap this access?"""
        if self.plan.watch_trap_miss_rate <= 0.0:
            return False
        if self._trap_rng.random() < self.plan.watch_trap_miss_rate:
            self.counters.watch_trap_misses += 1
            return True
        return False

    # ------------------------------------------------------------------
    # History fault models
    # ------------------------------------------------------------------

    def truncation_point(self) -> int | None:
        """Element count after which this history stops, or None.

        Consulted once per armed object; the decision count is tracked
        separately from the fire count so the observed truncation rate
        can be reported exactly.
        """
        self.counters.history_truncation_decisions += 1
        if self.plan.history_truncation_rate <= 0.0:
            return None
        if self._history_rng.random() >= self.plan.history_truncation_rate:
            return None
        self.counters.history_truncations += 1
        return self._history_rng.randint(
            TRUNCATION_MIN_ELEMENTS, TRUNCATION_MAX_ELEMENTS
        )
