"""The Apache workload (paper Section 6.2).

One Apache instance per core serving a single 1 KiB static file out of
memory (the ``MMapFile`` directive); load generators repeatedly open a TCP
connection, request the file once, and close it.  Arrivals are open-loop
at a configurable per-core rate: "the load generating machines eagerly
filled this queue with new requests".

The case study's knob is the accept-queue backlog.  At moderate load the
queue stays shallow, a freshly-accepted ``tcp_sock`` is still warm in the
accepting core's caches, and throughput peaks.  Past the drop-off point
the queue fills to its limit: by the time Apache accepts a connection its
``tcp_sock`` lines have been flushed by the hundreds of connections
processed in between, every request gets slower, and throughput *falls*
under more load.  Limiting the backlog (admission control,
:mod:`repro.fixes.admission`) is the paper's 16% fix.

Each instance also exercises the futex/wakeup machinery (worker handoff)
and a pool of worker ``task_struct`` objects (scheduler churn), which is
what puts ``task_struct`` near the top of the paper's Apache data
profiles (Tables 6.4/6.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.events import Pause
from repro.kernel.kernel import Kernel
from repro.kernel.layout import KObject
from repro.kernel.net import NetStack
from repro.kernel.net.skbuff import SkBuff
from repro.kernel.net.stack import Arrival
from repro.kernel.net.tcp import (
    ListenSock,
    inet_csk_accept,
    tcp_close,
    tcp_recvmsg,
    tcp_sendmsg,
    tcp_v4_rcv,
)
from repro.kernel.net.types import MMAP_FILE_TYPE
from repro.kernel.net.wakeup import EventPoll, Futex, futex_wait, futex_wake
from repro.util.rng import DeterministicRng
from repro.workloads.base import RequestCounter, WorkloadResult


@dataclass(frozen=True)
class ApacheConfig:
    """Workload knobs.

    ``arrival_period`` is cycles between connection arrivals per core
    (lower = more load); ``backlog`` is the accept-queue limit per
    instance (the admission-control fix lowers it).
    """

    arrival_period: int = 30_000
    backlog: int = 128
    file_len: int = 1024
    request_len: int = 64
    workers_per_instance: int = 16
    workers_touched_per_request: int = 4
    #: Userspace request handling (MPM worker, parsing, logging).
    #: Calibrated like memcached's: the kernel-side miss costs must be the
    #: same fraction of a request as on the paper's testbed for the +16%
    #: admission-control headline to be meaningful.
    user_work_cycles: int = 20_000
    #: Userspace heap per instance and the slice of it each request walks
    #: (config, logging, and scoreboard churn).  This memory is untyped
    #: (not slab-allocated), so DProf cannot attribute it -- exactly like
    #: a real process heap -- but its cache pressure is real: it is what
    #: keeps kernel objects from staying resident between uses.
    heap_bytes: int = 24 * 1024
    heap_walk_bytes: int = 3 * 1024
    seed: int = 4321

    def __post_init__(self) -> None:
        if self.arrival_period <= 0:
            raise ConfigError("arrival_period must be positive")
        if self.backlog <= 0:
            raise ConfigError("backlog must be positive")


def drive(kernel: Kernel, duration_cycles: int) -> WorkloadResult:
    """Set up and run the Apache workload for a fixed window.

    The uniform scenario entry point (see
    :data:`repro.workloads.SCENARIOS`).  A shorter arrival period than
    the default keeps small benchmark windows busy: at the stock 30k
    period a sub-second window would carry almost no connections.
    """
    workload = ApacheWorkload(kernel, config=ApacheConfig(arrival_period=6_000))
    workload.setup()
    return workload.run(duration_cycles, warmup_cycles=duration_cycles // 5)


class ApacheWorkload:
    """Drives N pinned Apache instances over the simulated stack."""

    def __init__(
        self,
        kernel: Kernel,
        stack: NetStack | None = None,
        config: ApacheConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self.config = config or ApacheConfig()
        self.stack = stack if stack is not None else NetStack(kernel)
        self.rng = DeterministicRng(self.config.seed, "apache")
        self.ncores = kernel.ncores
        self.listeners: dict[int, ListenSock] = {}
        self.files: dict[int, KObject] = {}
        self.futexes: dict[int, Futex] = {}
        self.workers: dict[int, list[KObject]] = {}
        self.counter = RequestCounter(self.ncores)
        self.accept_wait_cycles: list[int] = []
        self._worker_rr: dict[int, int] = {}
        self._heap_base: dict[int, int] = {}
        self._heap_pos: dict[int, int] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self) -> None:
        """Create listeners, files, futexes, and worker task_structs."""
        for cpu in range(self.ncores):
            self.kernel.spawn(f"ap-setup.{cpu}", cpu, self._setup_one(cpu))
        self.kernel.run()
        self.stack.deliver = self._deliver
        self.stack.on_tx_complete_cb = self._on_tx_complete

    def _setup_one(self, cpu: int):
        listener = ListenSock(self.stack, cpu, 80, backlog=self.config.backlog)
        listener.epoll = EventPoll(self.stack, f"ap.{cpu}")
        self.listeners[cpu] = listener
        self.files[cpu] = self.kernel.slab.new_static(MMAP_FILE_TYPE, f"mmap.{cpu}")
        self.futexes[cpu] = Futex(self.stack, f"ap.{cpu}")
        self._worker_rr[cpu] = 0
        self._heap_base[cpu] = self.kernel.machine.address_space.alloc_region(
            self.config.heap_bytes, align=64, label=f"apache_heap.{cpu}"
        )
        self._heap_pos[cpu] = 0
        workers = []
        for _ in range(self.config.workers_per_instance):
            task = yield from self.stack.task_struct_cache.alloc(cpu)
            workers.append(task)
        self.workers[cpu] = workers

    # ------------------------------------------------------------------
    # Open-loop load generation
    # ------------------------------------------------------------------

    def schedule_arrivals(self, duration_cycles: int, start_cycle: int = 0) -> int:
        """Push the arrival schedule for a run window; returns the count."""
        period = self.config.arrival_period
        total = 0
        for cpu in range(self.ncores):
            rxq = self.stack.dev.rx_queues[cpu]
            jitter_rng = self.rng.child(f"arrivals.{cpu}")
            t = start_cycle + jitter_rng.randint(0, period)
            seq = 0
            while t < start_cycle + duration_cycles:
                rxq.arrivals.append(
                    Arrival(
                        due=t,
                        flow_hash=cpu,  # TCP flow hash steers back to this core
                        length=self.config.request_len,
                        kind="connect",
                        meta={"seq": seq},
                    )
                )
                seq += 1
                total += 1
                t += jitter_rng.jitter(period, fraction=0.2)
        return total

    def _on_tx_complete(self, skb: SkBuff, cpu: int) -> None:
        origin = skb.meta.get("ap_origin")
        if origin is not None:
            self.counter.bump(origin)

    # ------------------------------------------------------------------
    # Kernel-side delivery and the server loop
    # ------------------------------------------------------------------

    def _deliver(self, stack: NetStack, cpu: int, rxq, skb: SkBuff, arrival: Arrival):
        yield from tcp_v4_rcv(stack, cpu, self.listeners[cpu], skb, arrival.flow_hash)

    def _touch_workers(self, cpu: int):
        """Scheduler churn: context-switch bookkeeping over worker tasks."""
        env = self.kernel.env
        workers = self.workers[cpu]
        n = self.config.workers_touched_per_request
        for _ in range(n):
            index = self._worker_rr[cpu] % len(workers)
            self._worker_rr[cpu] += 1
            task = workers[index]
            yield env.read("schedule", task, "state")
            yield env.write("schedule", task, "se_vruntime")
            yield env.read("context_switch", task, "stack")
            yield env.write("context_switch", task, "se_sum_exec")

    def _walk_heap(self, cpu: int):
        """Touch a rotating slice of the instance's userspace heap."""
        env = self.kernel.env
        base = self._heap_base[cpu]
        pos = self._heap_pos[cpu]
        walk = self.config.heap_walk_bytes
        self._heap_pos[cpu] = (pos + walk) % self.config.heap_bytes
        for off in range(0, walk, 64):
            addr = base + (pos + off) % self.config.heap_bytes
            yield env.read_at("apache_handler", "heap", addr, 8)

    def server_body(self, cpu: int):
        """One Apache instance: accept, read request, serve file, close."""
        env = self.kernel.env
        listener = self.listeners[cpu]
        futex = self.futexes[cpu]
        cfg = self.config
        while True:
            conn = yield from inet_csk_accept(self.stack, cpu, listener)
            if conn is None:
                yield Pause(self.stack.IDLE_PAUSE)
                continue
            self.accept_wait_cycles.append(conn.accept_cycle - conn.enqueue_cycle)
            # Hand the connection to a worker thread: futex wake + wait,
            # plus the scheduler touching worker task_structs.
            yield from futex_wake(self.stack, cpu, futex)
            yield from self._touch_workers(cpu)
            yield from tcp_recvmsg(self.stack, cpu, conn)
            yield from self._walk_heap(cpu)
            chunk = max(1, cfg.user_work_cycles // 8)
            spent = 0
            while spent < cfg.user_work_cycles:
                yield env.work("apache_handler", min(chunk, cfg.user_work_cycles - spent))
                spent += chunk
            response = yield from tcp_sendmsg(
                self.stack, cpu, conn, cfg.file_len, self.files[cpu]
            )
            response.meta["ap_origin"] = cpu
            yield from tcp_close(self.stack, cpu, conn)
            yield from futex_wait(self.stack, cpu, futex)

    # ------------------------------------------------------------------
    # Measured run
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn softirq and server threads."""
        if self._started:
            return
        self._started = True
        self.stack.spawn_softirq_threads()
        for cpu in range(self.ncores):
            self.kernel.spawn(f"apache.{cpu}", cpu, self.server_body(cpu))

    def run(self, duration_cycles: int, warmup_cycles: int = 0) -> WorkloadResult:
        """Schedule arrivals for the window, run it, report throughput."""
        self.start()
        start = self.kernel.elapsed_cycles()
        self.schedule_arrivals(duration_cycles + warmup_cycles, start_cycle=start)
        if warmup_cycles:
            self.kernel.run(until_cycle=start + warmup_cycles)
        base_total = self.counter.total
        base_per_core = dict(self.counter.per_core)
        measure_start = self.kernel.elapsed_cycles()
        self.kernel.run(until_cycle=start + warmup_cycles + duration_cycles)
        elapsed = self.kernel.elapsed_cycles() - measure_start
        return WorkloadResult(
            requests_completed=self.counter.total - base_total,
            elapsed_cycles=elapsed,
            per_core_completed={
                cpu: self.counter.per_core[cpu] - base_per_core.get(cpu, 0)
                for cpu in self.counter.per_core
            },
            overhead_cycles=self.kernel.machine.total_overhead_cycles(),
        )

    # ------------------------------------------------------------------
    # Diagnostics used by the case study
    # ------------------------------------------------------------------

    def mean_accept_wait(self) -> float:
        """Average cycles connections spent on accept queues."""
        if not self.accept_wait_cycles:
            return 0.0
        return sum(self.accept_wait_cycles) / len(self.accept_wait_cycles)

    def total_dropped(self) -> int:
        """Connections dropped due to full accept queues."""
        return sum(l.dropped for l in self.listeners.values())
