"""Generated access-stream kernels with analytical ground-truth models.

Every scenario the repo had so far (memcached, apache, synthetic) is
*plausible* but has no known-correct answer to check the pipeline
against.  This module closes that gap in the style of perf-tools'
``gen-kernel.py``: a small declarative :class:`KernelSpec` compiles into
an access-stream kernel from one of six families --

- ``kernel-strided``   a single core walks a buffer at fixed stride;
- ``kernel-stream``    a strided walk far bigger than every cache level;
- ``kernel-chase``     pointer chasing over a seeded permutation cycle;
- ``kernel-pingpong``  per-core slots falsely sharing one line;
- ``kernel-ring``      producer/consumer ring, one line per slot;
- ``kernel-counters``  per-core counters at configurable padding --

and each family ships :func:`KernelFamily.expected_metrics`, a
closed-form model of the top-down metrics (:mod:`repro.metrics`) the
simulator must produce for a spec: exact where the cache geometry makes
the answer exact, a declared tolerance band where thread interleaving
makes it statistical.  The differential ground-truth tier
(tests/test_kernel_truth.py) asserts both engines against these models.

Kernels allocate their buffers as *typed static objects* through the
slab layer, so DProf's views attribute their traffic to real type names
(``kernel_pingpong_line`` etc.) just like any other workload.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.errors import ConfigError
from repro.hw.machine import MachineConfig
from repro.kernel.kernel import Kernel
from repro.kernel.layout import StructType
from repro.metrics import MetricsSummary
from repro.util.rng import DeterministicRng
from repro.workloads.base import WorkloadResult, build_kernel

__all__ = [
    "KERNEL_DEFAULT_DURATION",
    "KERNEL_FAMILIES",
    "Expectation",
    "KernelFamily",
    "KernelSpec",
    "drive_spec",
    "expected_metrics",
    "kernel_access_stream",
    "metric_value",
    "scenario_defaults",
    "scenario_entries",
    "spec_for_duration",
]

#: The scenario duration that maps to each family's default iteration
#: count.  Kernel scenarios treat ``duration_cycles`` as a work budget
#: (iterations scale linearly with it) and always run to completion, so
#: their metrics stay analytically exact under every entry point.
KERNEL_DEFAULT_DURATION = 100_000


@dataclass(frozen=True)
class KernelSpec:
    """Declarative description of one generated kernel.

    Field meanings per family: ``footprint``/``stride`` drive the walk
    families (strided, stream, chase), ``cores``/``iterations`` apply
    everywhere, ``padding`` is the byte distance between per-core
    counters, and ``ring_slots`` sizes the producer/consumer ring.
    """

    family: str
    footprint: int = 0
    stride: int = 64
    cores: int = 1
    iterations: int = 4
    padding: int = 64
    ring_slots: int = 16

    def canonical(self) -> dict:
        """Canonical JSON-able form; the digest hashes exactly this."""
        return {
            "family": self.family,
            "footprint": self.footprint,
            "stride": self.stride,
            "cores": self.cores,
            "iterations": self.iterations,
            "padding": self.padding,
            "ring_slots": self.ring_slots,
        }

    def digest(self) -> str:
        """Content digest of the spec (seed-independent by design)."""
        text = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class Expectation:
    """An expected metric value: a point (exact) or a declared band."""

    lo: float
    hi: float

    @classmethod
    def exact(cls, value) -> "Expectation":
        return cls(float(value), float(value))

    @classmethod
    def band(cls, lo, hi) -> "Expectation":
        return cls(float(lo), float(hi))

    @property
    def is_exact(self) -> bool:
        return self.lo == self.hi

    def check(self, value: float) -> bool:
        """True when *value* satisfies the expectation (tiny float slack)."""
        eps = 1e-9 * max(1.0, abs(self.lo), abs(self.hi))
        return self.lo - eps <= value <= self.hi + eps


def metric_value(summary: MetricsSummary, name: str) -> float:
    """Resolve an expectation key against a metrics summary.

    Plain names map to summary attributes (``accesses``,
    ``l1_miss_rate``, ...); ``level:<NAME>``, ``miss_kind:<name>`` and
    ``mpki:<LEVEL>`` reach into the per-level dictionaries.
    """
    if name.startswith("level:"):
        return float(summary.levels.get(name[len("level:"):], 0))
    if name.startswith("miss_kind:"):
        return float(summary.miss_kinds.get(name[len("miss_kind:"):], 0))
    if name.startswith("mpki:"):
        return summary.mpki(name[len("mpki:"):])
    return float(getattr(summary, name))


# ---------------------------------------------------------------------------
# Family builders: spec -> spawned generator threads
# ---------------------------------------------------------------------------


def _buffer_type(name: str, size: int) -> StructType:
    return StructType(
        name,
        [("data", 8)],
        object_size=size,
        description=f"generated-kernel buffer ({name})",
    )


def _alloc_buffer(kernel: Kernel, name: str, size: int) -> int:
    """A typed, line-aligned static buffer so DProf attributes its traffic."""
    obj = kernel.slab.new_static(_buffer_type(name, size), name)
    return obj.base


def _walk_offsets(spec: KernelSpec) -> range:
    return range(0, spec.footprint, spec.stride)


def _build_walk(kernel: Kernel, spec: KernelSpec, type_name: str) -> None:
    """Strided read walk on core 0 (the strided and stream families)."""
    base = _alloc_buffer(kernel, type_name, spec.footprint)
    env = kernel.env
    offsets = _walk_offsets(spec)

    def body():
        for _ in range(spec.iterations):
            for off in offsets:
                yield env.read_at("strided_walk", "probe", base + off, 8)

    kernel.spawn(f"{spec.family}.0", 0, body())


def _build_strided(kernel: Kernel, spec: KernelSpec) -> None:
    _build_walk(kernel, spec, "kernel_strided_buf")


def _build_stream(kernel: Kernel, spec: KernelSpec) -> None:
    _build_walk(kernel, spec, "kernel_stream_buf")


def _chase_order(spec: KernelSpec, seed: int, line: int) -> list[int]:
    """Node visit order: a seeded single-cycle permutation over all nodes."""
    n = spec.footprint // line
    rng = DeterministicRng(seed, f"kernel-chase.{spec.digest()[:16]}")
    rest = list(range(1, n))
    rng.shuffle(rest)
    return [0] + rest


def _build_chase(kernel: Kernel, spec: KernelSpec) -> None:
    cfg = kernel.machine.config
    base = _alloc_buffer(kernel, "kernel_chase_node", spec.footprint)
    order = _chase_order(spec, cfg.seed, cfg.line_size)
    env = kernel.env
    line = cfg.line_size

    def body():
        for _ in range(spec.iterations):
            for node in order:
                yield env.read_at("chase_loop", "node", base + node * line, 8)

    kernel.spawn(f"{spec.family}.0", 0, body())


#: One cache line of eight 8-byte slots: the false-sharing battlefield.
PINGPONG_TYPE = StructType(
    "kernel_pingpong_line",
    [(f"slot{i}", 8) for i in range(8)],
    object_size=64,
    description="per-core slots packed into one falsely-shared line",
)


def _build_pingpong(kernel: Kernel, spec: KernelSpec) -> None:
    if spec.cores > 8:
        raise ConfigError("kernel-pingpong supports at most 8 cores (one line)")
    obj = kernel.slab.new_static(PINGPONG_TYPE, "kernel_pingpong_line")
    env = kernel.env

    def body(cpu: int):
        slot = f"slot{cpu}"
        for _ in range(spec.iterations):
            yield env.read("pingpong_loop", obj, slot)
            yield env.write("pingpong_loop", obj, slot)

    for cpu in range(spec.cores):
        kernel.spawn(f"{spec.family}.{cpu}", cpu, body(cpu))


def _build_ring(kernel: Kernel, spec: KernelSpec) -> None:
    cfg = kernel.machine.config
    line = cfg.line_size
    base = _alloc_buffer(kernel, "kernel_ring_slot", spec.ring_slots * line)
    env = kernel.env
    total = spec.ring_slots * spec.iterations

    def producer():
        for i in range(total):
            addr = base + (i % spec.ring_slots) * line
            yield env.write_at("ring_produce", "slot", addr, 8)

    def consumer():
        for i in range(total):
            addr = base + (i % spec.ring_slots) * line
            yield env.read_at("ring_consume", "slot", addr, 8)

    kernel.spawn(f"{spec.family}.producer", 0, producer())
    kernel.spawn(f"{spec.family}.consumer", 1 % kernel.ncores, consumer())


def _build_counters(kernel: Kernel, spec: KernelSpec) -> None:
    size = spec.cores * spec.padding
    base = _alloc_buffer(kernel, "kernel_counter_slot", size)
    env = kernel.env

    def body(cpu: int):
        addr = base + cpu * spec.padding
        site = f"slot{cpu}"
        for _ in range(spec.iterations):
            yield env.read_at("counter_loop", site, addr, 8)
            yield env.write_at("counter_loop", site, addr, 8)

    for cpu in range(spec.cores):
        kernel.spawn(f"{spec.family}.{cpu}", cpu, body(cpu))


# ---------------------------------------------------------------------------
# Closed-form expected-metrics models
# ---------------------------------------------------------------------------


def _per_set_max(lines: list[int], sets: int) -> int:
    counts: dict[int, int] = {}
    for ln in lines:
        s = ln % sets
        counts[s] = counts.get(s, 0) + 1
    return max(counts.values()) if counts else 0


def _walk_lines(spec: KernelSpec, line: int) -> list[int]:
    """Distinct line indices one pass touches (8-byte reads, no spans)."""
    seen: dict[int, None] = {}
    for off in _walk_offsets(spec):
        seen.setdefault(off // line, None)
    return list(seen)


def _expect_walk(spec: KernelSpec, cfg: MachineConfig) -> dict[str, Expectation]:
    """Exact model for single-core strided walks, in three regimes.

    Once the first pass has paid one cold DRAM miss per distinct line,
    every later pass misses at rate ``min(1, stride/line)`` -- served by
    L1 when the footprint fits its associativity, by L2 when only L1
    thrashes, and by DRAM when the walk streams past every level.  The
    regime is decided from per-set line counts, which is what makes the
    model exact rather than heuristic.
    """
    lat = cfg.latencies
    line = cfg.line_size
    lines = _walk_lines(spec, line)
    distinct = len(lines)
    per_pass = len(_walk_offsets(spec))
    total = per_pass * spec.iterations
    l1_sets = cfg.l1_size // (cfg.l1_ways * line)
    l2_sets = cfg.l2_size // (cfg.l2_ways * line)
    l3_sets = cfg.l3_size // (cfg.l3_ways * line)

    steady = max(0, spec.iterations - 1) * distinct
    if _per_set_max(lines, l1_sets) <= cfg.l1_ways:
        dram, l2 = distinct, 0
    elif _per_set_max(lines, l2_sets) <= cfg.l2_ways:
        dram, l2 = distinct, steady
    elif _per_set_max(lines, l3_sets) >= 2 * cfg.l3_ways:
        # Victim-L3 retention is far shorter than the re-access distance:
        # every steady-state miss goes all the way to memory.
        dram, l2 = distinct + steady, 0
    else:
        raise ConfigError(
            f"{spec.family}: footprint {spec.footprint} falls between exact "
            "regimes (L1-resident / L2-steady / DRAM-streaming)"
        )
    l1 = total - dram - l2
    misses = dram + l2
    total_latency = dram * lat.dram + l2 * lat.l2 + l1 * lat.l1
    return {
        "accesses": Expectation.exact(total),
        "instructions": Expectation.exact(total),
        "level:L1": Expectation.exact(l1),
        "level:L2": Expectation.exact(l2),
        "level:L3": Expectation.exact(0),
        "level:FOREIGN": Expectation.exact(0),
        "level:DRAM": Expectation.exact(dram),
        "miss_kind:cold": Expectation.exact(distinct),
        "l1_miss_rate": Expectation.exact(misses / total),
        "avg_miss_latency": Expectation.exact(
            (dram * lat.dram + l2 * lat.l2) / misses if misses else 0.0
        ),
        "cycles_per_access": Expectation.exact(total_latency / total),
        "lines_total": Expectation.exact(distinct),
        "sharing_ratio": Expectation.exact(0.0),
    }


def _expect_chase(spec: KernelSpec, cfg: MachineConfig) -> dict[str, Expectation]:
    """Pointer chase over an L1-resident chain: cold misses then pure hits.

    The visit order is a seeded permutation -- it changes the *stream*,
    never the metrics, which is exactly what the determinism property
    test checks.
    """
    lat = cfg.latencies
    line = cfg.line_size
    n = spec.footprint // line
    l1_sets = cfg.l1_size // (cfg.l1_ways * line)
    if _per_set_max(list(range(n)), l1_sets) > cfg.l1_ways:
        raise ConfigError("kernel-chase model requires an L1-resident chain")
    total = n * spec.iterations
    l1 = total - n
    total_latency = n * lat.dram + l1 * lat.l1
    return {
        "accesses": Expectation.exact(total),
        "instructions": Expectation.exact(total),
        "level:L1": Expectation.exact(l1),
        "level:L2": Expectation.exact(0),
        "level:L3": Expectation.exact(0),
        "level:FOREIGN": Expectation.exact(0),
        "level:DRAM": Expectation.exact(n),
        "miss_kind:cold": Expectation.exact(n),
        "l1_miss_rate": Expectation.exact(n / total),
        "avg_miss_latency": Expectation.exact(float(lat.dram)),
        "cycles_per_access": Expectation.exact(total_latency / total),
        "lines_total": Expectation.exact(n),
        "sharing_ratio": Expectation.exact(0.0),
    }


def _expect_pingpong(spec: KernelSpec, cfg: MachineConfig) -> dict[str, Expectation]:
    """False sharing on one line: structure exact, interleaving banded.

    Access and line counts are interleaving-independent; which fraction
    of accesses ping-pongs depends on the scheduler, so the miss-rate
    and latency expectations are declared tolerance bands.
    """
    lat = cfg.latencies
    total = 2 * spec.cores * spec.iterations
    return {
        "accesses": Expectation.exact(total),
        "instructions": Expectation.exact(total),
        "lines_total": Expectation.exact(1),
        "sharing_ratio": Expectation.exact(1.0 if spec.cores > 1 else 0.0),
        # The directory keeps per-core loss records, so each core's first
        # touch of the line classifies cold; only the very first is DRAM,
        # the rest are dirty cache-to-cache transfers.
        "miss_kind:cold": Expectation.exact(spec.cores),
        "level:DRAM": Expectation.exact(1),
        "level:L2": Expectation.exact(0),
        "level:L3": Expectation.exact(0),
        # The line ping-pongs once per scheduling quantum: each core's
        # first access after a remote write misses foreign, the rest of
        # its quantum hits L1.  Banded 2x either side of one miss per
        # quantum to declare tolerance for scheduler changes.
        "level:FOREIGN": Expectation.band(total // (2 * cfg.quantum), total // 4),
        "l1_miss_rate": Expectation.band(1 / (2 * cfg.quantum), 0.25),
        "avg_miss_latency": Expectation.band(lat.l3, lat.foreign + lat.upgrade),
    }


def _expect_ring(spec: KernelSpec, cfg: MachineConfig) -> dict[str, Expectation]:
    """Producer/consumer ring: every slot line is shared by construction."""
    lat = cfg.latencies
    total = 2 * spec.ring_slots * spec.iterations
    return {
        "accesses": Expectation.exact(total),
        "instructions": Expectation.exact(total),
        "lines_total": Expectation.exact(spec.ring_slots),
        "sharing_ratio": Expectation.exact(1.0),
        # Both the producer and the consumer cold-miss every slot line
        # (per-core loss records): the producer's cold writes fetch from
        # DRAM, the consumer's cold reads are served cache-to-cache.
        "miss_kind:cold": Expectation.exact(2 * spec.ring_slots),
        "level:DRAM": Expectation.exact(spec.ring_slots),
        "level:FOREIGN": Expectation.band(spec.ring_slots // 2, total // 4),
        "l1_miss_rate": Expectation.band(1 / 64, 0.25),
        "avg_miss_latency": Expectation.band(lat.l3, lat.foreign + lat.upgrade),
    }


def _expect_counters(spec: KernelSpec, cfg: MachineConfig) -> dict[str, Expectation]:
    """Per-core counters: padding decides everything, exactly.

    At padding >= line size each counter owns its line: one cold miss
    per core, then pure L1 hits, sharing ratio zero -- independent of
    interleaving, so the whole model is exact.  Below a line the
    geometry still fixes the line and sharing counts exactly; the
    ping-pong dynamics are banded.
    """
    lat = cfg.latencies
    line = cfg.line_size
    total = 2 * spec.cores * spec.iterations
    touched: dict[int, list[int]] = {}
    for cpu in range(spec.cores):
        touched.setdefault((cpu * spec.padding) // line, []).append(cpu)
    lines_total = len(touched)
    lines_shared = sum(1 for users in touched.values() if len(users) > 1)
    expect = {
        "accesses": Expectation.exact(total),
        "instructions": Expectation.exact(total),
        "lines_total": Expectation.exact(lines_total),
        "sharing_ratio": Expectation.exact(
            lines_shared / lines_total if lines_total else 0.0
        ),
    }
    if spec.padding >= line:
        cold = spec.cores
        l1 = total - cold
        total_latency = cold * lat.dram + l1 * lat.l1
        expect.update(
            {
                "level:L1": Expectation.exact(l1),
                "level:L2": Expectation.exact(0),
                "level:L3": Expectation.exact(0),
                "level:FOREIGN": Expectation.exact(0),
                "level:DRAM": Expectation.exact(cold),
                "miss_kind:cold": Expectation.exact(cold),
                "l1_miss_rate": Expectation.exact(cold / total),
                "avg_miss_latency": Expectation.exact(float(lat.dram)),
                "cycles_per_access": Expectation.exact(total_latency / total),
            }
        )
    else:
        # Miss classification is per-core: every core's first touch of
        # a line counts COLD, but only the very first goes to DRAM.
        cold = sum(len(users) for users in touched.values())
        expect.update(
            {
                "miss_kind:cold": Expectation.exact(cold),
                "level:DRAM": Expectation.exact(lines_total),
                "l1_miss_rate": Expectation.band(0.0, 1.0),
            }
        )
    return expect


# ---------------------------------------------------------------------------
# Family registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelFamily:
    """One generated-kernel family: builder, model, and scenario defaults."""

    name: str
    description: str
    params: str
    default_spec: KernelSpec
    build: Callable[[Kernel, KernelSpec], None]
    expected: Callable[[KernelSpec, MachineConfig], dict[str, Expectation]]
    seed_sensitive: bool = False

    def expected_metrics(
        self, spec: KernelSpec, machine_config: MachineConfig
    ) -> dict[str, Expectation]:
        """The family's closed-form model for *spec* on *machine_config*."""
        return self.expected(spec, machine_config)


KERNEL_FAMILIES: dict[str, KernelFamily] = {
    fam.name: fam
    for fam in (
        KernelFamily(
            name="kernel-strided",
            description="single-core strided walk, L2-steady after one cold pass",
            params="footprint=32768 stride=64 iterations=4",
            default_spec=KernelSpec(
                family="kernel-strided", footprint=32 * 1024, stride=64,
                cores=1, iterations=4,
            ),
            build=_build_strided,
            expected=_expect_walk,
        ),
        KernelFamily(
            name="kernel-stream",
            description="single-core streaming walk past every cache level",
            params="footprint=1048576 stride=64 iterations=2",
            default_spec=KernelSpec(
                family="kernel-stream", footprint=1024 * 1024, stride=64,
                cores=1, iterations=2,
            ),
            build=_build_stream,
            expected=_expect_walk,
        ),
        KernelFamily(
            name="kernel-chase",
            description="pointer chase over a seeded L1-resident permutation cycle",
            params="footprint=8192 iterations=8",
            default_spec=KernelSpec(
                family="kernel-chase", footprint=8 * 1024, cores=1, iterations=8,
            ),
            build=_build_chase,
            expected=_expect_chase,
            seed_sensitive=True,
        ),
        KernelFamily(
            name="kernel-pingpong",
            description="per-core slots falsely sharing one cache line",
            params="cores=4 iterations=200",
            default_spec=KernelSpec(
                family="kernel-pingpong", cores=4, iterations=200,
            ),
            build=_build_pingpong,
            expected=_expect_pingpong,
        ),
        KernelFamily(
            name="kernel-ring",
            description="producer/consumer ring, one line per slot",
            params="ring_slots=16 cores=2 iterations=50",
            default_spec=KernelSpec(
                family="kernel-ring", cores=2, iterations=50, ring_slots=16,
            ),
            build=_build_ring,
            expected=_expect_ring,
        ),
        KernelFamily(
            name="kernel-counters",
            description="per-core counters at configurable padding (64B = private)",
            params="cores=4 padding=64 iterations=200",
            default_spec=KernelSpec(
                family="kernel-counters", cores=4, padding=64, iterations=200,
            ),
            build=_build_counters,
            expected=_expect_counters,
        ),
    )
}


def expected_metrics(
    spec: KernelSpec, machine_config: MachineConfig
) -> dict[str, Expectation]:
    """Ground-truth model for *spec*: dispatch to its family."""
    return KERNEL_FAMILIES[spec.family].expected_metrics(spec, machine_config)


# ---------------------------------------------------------------------------
# Driving kernels: direct, scenario-registered, and stream capture
# ---------------------------------------------------------------------------


def drive_spec(kernel: Kernel, spec: KernelSpec) -> WorkloadResult:
    """Build *spec*'s kernel threads and run them to completion.

    Running to completion (rather than cutting off at a cycle budget) is
    what keeps the access counts exactly equal to the model's.
    """
    family = KERNEL_FAMILIES[spec.family]
    if spec.cores > kernel.ncores:
        spec = replace(spec, cores=kernel.ncores)
    start = kernel.elapsed_cycles()
    family.build(kernel, spec)
    kernel.run()
    return WorkloadResult(
        requests_completed=sum(1 for t in kernel.machine.threads if t.done),
        elapsed_cycles=kernel.elapsed_cycles() - start,
    )


def spec_for_duration(name: str, duration_cycles: int) -> KernelSpec:
    """The exact spec the registered scenario runs for a duration budget.

    Tests and CI use this to reconstruct what a ``run-once``/serve job
    executed, so the ground-truth model can be evaluated for it.
    """
    family = KERNEL_FAMILIES[name]
    spec = family.default_spec
    iterations = max(
        1, (spec.iterations * int(duration_cycles)) // KERNEL_DEFAULT_DURATION
    )
    return replace(spec, iterations=iterations)


def _scenario_drive(name: str):
    def drive(kernel: Kernel, duration_cycles: int) -> WorkloadResult:
        return drive_spec(kernel, spec_for_duration(name, duration_cycles))

    return drive


def scenario_entries() -> dict:
    """``SCENARIOS`` entries: family name -> drive(kernel, duration)."""
    return {name: _scenario_drive(name) for name in KERNEL_FAMILIES}


def scenario_defaults() -> dict:
    """``SCENARIO_DEFAULTS`` raw entries (kwargs for ScenarioDefaults)."""
    return {
        name: {
            "cores": max(2, fam.default_spec.cores),
            "duration": KERNEL_DEFAULT_DURATION,
            "interval": 400,
            "description": fam.description,
            "params": fam.params,
        }
        for name, fam in KERNEL_FAMILIES.items()
    }


def kernel_access_stream(
    spec: KernelSpec, seed: int = 11, engine: str = "reference"
) -> bytes:
    """The full recorded access stream for *spec* under *seed*, as bytes.

    Byte-identical for equal (spec, seed) pairs; for seed-sensitive
    families (the pointer chase) different seeds permute the stream
    without changing any model input -- the determinism property the
    hypothesis tier pins.
    """
    kernel = build_kernel(max(spec.cores, 1), seed, engine=engine)
    family = KERNEL_FAMILIES[spec.family]
    events: list = []
    with kernel.machine.hierarchy.record_trace(events):
        family.build(kernel, spec)
        kernel.run()
    lines = [
        f"{e.seq} {e.cycle} {e.cpu} {e.addr:#x} {e.size} {int(e.is_write)} {e.ip:#x}"
        for e in events
    ]
    return ("\n".join(lines) + "\n").encode()
