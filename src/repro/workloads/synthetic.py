"""Synthetic microworkloads: one per cache-miss class.

Each generator produces a workload whose dominant miss cause is known *by
construction*, so tests can validate both the hardware model's ground
truth and DProf's statistical classification:

- :func:`true_sharing_workload` -- every core read-modify-writes the same
  field of one shared object;
- :func:`false_sharing_workload` -- each core owns its own field, but all
  fields share one cache line;
- :func:`conflict_workload` -- one core cycles through more same-set lines
  than the cache has ways, while the rest of the cache stays idle;
- :func:`capacity_workload` -- one core streams a buffer bigger than its
  private caches.
"""

from __future__ import annotations

from repro.kernel.kernel import Kernel
from repro.kernel.layout import KObject, StructType
from repro.workloads.base import WorkloadResult

def drive(kernel: Kernel, duration_cycles: int) -> WorkloadResult:
    """Run every miss-class microworkload at once for a bounded window.

    The uniform scenario entry point (see
    :data:`repro.workloads.SCENARIOS`): true sharing, false sharing,
    conflict, and capacity all active together gives traces that touch
    every coherence path, which is what the engine-equivalence tests and
    the benchmark's "synthetic" row want.
    """
    true_sharing_workload(kernel, iterations=duration_cycles // 400)
    false_sharing_workload(kernel, iterations=duration_cycles // 400)
    conflict_workload(kernel, iterations=duration_cycles // 2_000)
    capacity_workload(kernel, iterations=max(1, duration_cycles // 100_000))
    start = kernel.elapsed_cycles()
    kernel.run(until_cycle=start + duration_cycles)
    return WorkloadResult(
        requests_completed=sum(
            1 for thread in kernel.machine.threads if thread.done
        ),
        elapsed_cycles=kernel.elapsed_cycles() - start,
    )


#: One shared counter: all cores hammer `count` (true sharing).
SHARED_COUNTER_TYPE = StructType(
    "shared_counter",
    [("count", 8), ("owner", 8)],
    object_size=64,
    description="globally shared counter",
)

#: Per-core counters packed into a single 64-byte line (false sharing).
PACKED_COUNTERS_TYPE = StructType(
    "packed_counters",
    [(f"slot{i}", 8) for i in range(8)],
    object_size=64,
    description="per-core counters sharing one line",
)

#: A big streaming buffer (capacity) or strided array (conflict).
BUFFER_TYPE = StructType(
    "stream_buffer",
    [("data", 8)],
    object_size=8,
    description="streaming buffer element",
)


def true_sharing_workload(kernel: Kernel, iterations: int = 200) -> KObject:
    """Spawn one RMW loop per core against a single shared counter.

    Returns the shared object (its line will bounce between every core).
    """
    shared = kernel.slab.new_static(SHARED_COUNTER_TYPE, "shared_counter")
    env = kernel.env

    def body(cpu: int):
        for _ in range(iterations):
            yield env.read("worker_loop", shared, "count")
            yield env.write("worker_loop", shared, "count")
            yield env.work("worker_loop", 20)

    for cpu in range(kernel.ncores):
        kernel.spawn(f"true-sharing.{cpu}", cpu, body(cpu))
    return shared


def false_sharing_workload(kernel: Kernel, iterations: int = 200) -> KObject:
    """Spawn one writer per core, each on its *own* slot of one line.

    No data is logically shared, yet every write invalidates the line in
    every other core's cache -- the textbook false-sharing pattern.
    """
    packed = kernel.slab.new_static(PACKED_COUNTERS_TYPE, "packed_counters")
    env = kernel.env

    def body(cpu: int):
        slot = f"slot{cpu % 8}"
        for _ in range(iterations):
            yield env.read("worker_loop", packed, slot)
            yield env.write("worker_loop", packed, slot)
            yield env.work("worker_loop", 20)

    for cpu in range(min(kernel.ncores, 8)):
        kernel.spawn(f"false-sharing.{cpu}", cpu, body(cpu))
    return packed


def conflict_workload(
    kernel: Kernel, iterations: int = 50, lines: int | None = None
) -> list[int]:
    """One core cycles through many lines that all map to one L1/L2 set.

    Returns the addresses used.  With ``lines`` greater than the L2's
    associativity, every pass evicts the next line it needs even though
    the cache is otherwise empty: pure conflict misses.
    """
    cfg = kernel.machine.config
    l2_sets = cfg.l2_size // (cfg.l2_ways * cfg.line_size)
    stride = l2_sets * cfg.line_size
    count = lines if lines is not None else cfg.l2_ways + cfg.l1_ways + 4
    base = kernel.machine.address_space.alloc_region(
        stride * count, align=cfg.line_size * l2_sets, label="conflict_buffer"
    )
    addrs = [base + i * stride for i in range(count)]
    env = kernel.env

    def body():
        for _ in range(iterations):
            for addr in addrs:
                yield env.read_at("conflict_loop", "probe", addr, 8)

    kernel.spawn("conflict", 0, body())
    return addrs


def capacity_workload(
    kernel: Kernel, iterations: int = 4, footprint_multiple: float = 4.0
) -> tuple[int, int]:
    """One core streams a buffer several times its private cache capacity.

    Returns (base, size).  Every pass evicts lines uniformly across all
    sets -- pure capacity misses.
    """
    cfg = kernel.machine.config
    private_bytes = cfg.l1_size + cfg.l2_size
    size = int(private_bytes * footprint_multiple)
    base = kernel.machine.address_space.alloc_region(
        size, align=cfg.line_size, label="capacity_buffer"
    )
    env = kernel.env

    def body():
        for _ in range(iterations):
            for addr in range(base, base + size, cfg.line_size):
                yield env.read_at("stream_loop", "probe", addr, 8)

    kernel.spawn("capacity", 0, body())
    return base, size
