"""Workload plumbing: results, throughput accounting, run helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.machine import MachineConfig
from repro.kernel.kernel import Kernel


def build_kernel(ncores: int, seed: int, engine: str = "reference") -> Kernel:
    """A kernel on a fresh machine, parameterised the way the benchmark
    harness and the differential tests need: core count, root seed, and
    access-simulation engine."""
    return Kernel(MachineConfig(ncores=ncores, seed=seed, engine=engine))


@dataclass
class WorkloadResult:
    """Outcome of one measured workload run."""

    requests_completed: int
    elapsed_cycles: int
    per_core_completed: dict[int, int] = field(default_factory=dict)
    overhead_cycles: int = 0

    @property
    def throughput(self) -> float:
        """Requests completed per million cycles (the paper's 'connection
        throughput', scaled to simulation units)."""
        if self.elapsed_cycles == 0:
            return 0.0
        return self.requests_completed * 1_000_000 / self.elapsed_cycles


class RequestCounter:
    """Shared per-core completion counter used by all workloads."""

    def __init__(self, ncores: int) -> None:
        self.per_core = {cpu: 0 for cpu in range(ncores)}
        self.total = 0

    def bump(self, cpu: int) -> None:
        """Count one completed request on *cpu*."""
        self.per_core[cpu] = self.per_core.get(cpu, 0) + 1
        self.total += 1


def run_setup(kernel: Kernel, generators: list[tuple[str, int, object]]) -> None:
    """Run setup generators to completion before measurement starts."""
    for name, cpu, gen in generators:
        kernel.spawn(name, cpu, gen)
    kernel.run()
