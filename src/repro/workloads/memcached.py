"""The memcached workload (paper Section 6.1).

One memcached instance per core, each bound to its own UDP port with its
NIC RX queue steered to the same core; each load-generating client
repeatedly asks its own instance for one non-existent key.  The
configuration "aimed to isolate all data accesses to one core" -- and the
case study is about why that isolation silently fails: UDP responses go
through ``skb_tx_hash``, which picks a *remote* TX queue, so payloads and
skbuffs jump cores between enqueue and dequeue and get freed through the
SLAB alien path.

Clients are closed-loop: each keeps ``window`` requests outstanding per
core and injects the next one (after a fixed RTT) when a response
transmit completes.  Throughput is responses completed per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.events import Pause
from repro.kernel.kernel import Kernel
from repro.kernel.layout import StructType
from repro.kernel.net import NetStack
from repro.kernel.net.skbuff import SkBuff
from repro.kernel.net.stack import Arrival
from repro.kernel.net.udp import (
    UdpSock,
    udp_rcv,
    udp_recvmsg,
    udp_sendmsg,
    udp_sock_create,
)
from repro.kernel.net.wakeup import EventPoll, sys_epoll_wait
from repro.util.rng import DeterministicRng
from repro.workloads.base import RequestCounter, WorkloadResult

#: Per-instance userspace hash table the GET path probes (a miss: the
#: clients ask for a non-existent key, so only the bucket head is read).
HASHTABLE_TYPE = StructType(
    "mc_hashtable",
    [("buckets", 1024)],
    object_size=1024,
    description="memcached hash table",
)


@dataclass(frozen=True)
class MemcachedConfig:
    """Workload knobs (defaults follow the paper's setup shape)."""

    window: int = 4  # outstanding requests per client
    request_len: int = 64
    response_len: int = 1024  # responses carry a size-1024 payload
    client_rtt: int = 2_000  # cycles between response and next request
    #: Userspace GET processing per request.  Calibrated so the kernel's
    #: cache-miss and lock costs are the same *fraction* of a request that
    #: they were on the paper's testbed (where a request cost ~10 us); the
    #: +57% fix headline depends on this ratio, not on absolute speed.
    user_work_cycles: int = 8_900
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigError("window must be positive")


def drive(kernel: Kernel, duration_cycles: int) -> WorkloadResult:
    """Set up and run the memcached workload for a fixed window.

    The uniform scenario entry point (see
    :data:`repro.workloads.SCENARIOS`) used by ``repro.bench`` and the
    engine-equivalence tests: same kernel in, same measured window out,
    regardless of which workload is being driven.
    """
    workload = MemcachedWorkload(kernel)
    workload.setup()
    return workload.run(duration_cycles, warmup_cycles=duration_cycles // 5)


class MemcachedWorkload:
    """Drives N pinned memcached instances over the simulated stack."""

    def __init__(
        self,
        kernel: Kernel,
        stack: NetStack | None = None,
        config: MemcachedConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self.config = config or MemcachedConfig()
        self.stack = stack if stack is not None else NetStack(kernel)
        self.rng = DeterministicRng(self.config.seed, "memcached")
        self.ncores = kernel.ncores
        self.socks: dict[int, UdpSock] = {}
        self.epolls: dict[int, EventPoll] = {}
        self.hashtables: dict[int, object] = {}
        self.counter = RequestCounter(self.ncores)
        self._request_seq = 0
        self._started = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self) -> None:
        """Create sockets, epoll instances, and per-instance tables."""
        for cpu in range(self.ncores):
            self.kernel.spawn(f"mc-setup.{cpu}", cpu, self._setup_one(cpu))
        self.kernel.run()
        self.stack.deliver = self._deliver
        self.stack.on_tx_complete_cb = self._on_tx_complete

    def _setup_one(self, cpu: int):
        sock = yield from udp_sock_create(self.stack, cpu, 11211 + cpu)
        ep = EventPoll(self.stack, f"mc.{cpu}")
        sock.epoll = ep
        self.socks[cpu] = sock
        self.epolls[cpu] = ep
        self.hashtables[cpu] = self.kernel.slab.new_static(
            HASHTABLE_TYPE, f"mc_hashtable.{cpu}"
        )

    # ------------------------------------------------------------------
    # Closed-loop client model
    # ------------------------------------------------------------------

    def _next_flow_hash(self) -> int:
        self._request_seq += 1
        # Knuth multiplicative hash: response queue choice looks random,
        # exactly like hashing over packet contents does.
        return (self._request_seq * 2654435761) & 0xFFFFFFFF

    def prime_clients(self) -> None:
        """Give every client its initial window of in-flight requests."""
        for cpu in range(self.ncores):
            rxq = self.stack.dev.rx_queues[cpu]
            for i in range(self.config.window):
                rxq.arrivals.append(
                    Arrival(
                        due=i * 97,
                        flow_hash=self._next_flow_hash(),
                        length=self.config.request_len,
                    )
                )

    def _on_tx_complete(self, skb: SkBuff, cpu: int) -> None:
        origin = skb.meta.get("mc_origin")
        if origin is None:
            return
        self.counter.bump(origin)
        rxq = self.stack.dev.rx_queues[origin]
        due = self.kernel.machine.cores[cpu].cycle + self.config.client_rtt
        rxq.arrivals.append(
            Arrival(
                due=due,
                flow_hash=self._next_flow_hash(),
                length=self.config.request_len,
            )
        )

    # ------------------------------------------------------------------
    # Kernel-side delivery and the server loop
    # ------------------------------------------------------------------

    def _deliver(self, stack: NetStack, cpu: int, rxq, skb: SkBuff, arrival: Arrival):
        yield from udp_rcv(stack, cpu, self.socks[cpu], skb)

    def server_body(self, cpu: int):
        """One memcached instance: epoll-wait, recv, GET, respond."""
        env = self.kernel.env
        sock = self.socks[cpu]
        ep = self.epolls[cpu]
        table = self.hashtables[cpu]
        cfg = self.config
        while True:
            ready = yield from sys_epoll_wait(self.stack, cpu, ep)
            skb = yield from udp_recvmsg(self.stack, cpu, sock)
            if skb is None:
                if not ready:
                    yield Pause(self.stack.IDLE_PAUSE)
                continue
            # Userspace GET of a non-existent key: hash + one bucket probe
            # plus the event-loop / syscall work of a real request, split
            # into chunks so the scheduler can interleave other threads.
            bucket = (skb.flow_hash * 31) % 128
            yield env.read_range("memcached_get", table, bucket * 8, 8)
            chunk = max(1, cfg.user_work_cycles // 8)
            spent = 0
            while spent < cfg.user_work_cycles:
                yield env.work("memcached_get", min(chunk, cfg.user_work_cycles - spent))
                spent += chunk
            response = yield from udp_sendmsg(
                self.stack, cpu, sock, cfg.response_len, flow_hash=skb.flow_hash
            )
            response.meta["mc_origin"] = cpu

    # ------------------------------------------------------------------
    # Measured run
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn softirq + server threads and prime the clients."""
        if self._started:
            return
        self._started = True
        self.stack.spawn_softirq_threads()
        for cpu in range(self.ncores):
            self.kernel.spawn(f"memcached.{cpu}", cpu, self.server_body(cpu))
        self.prime_clients()

    def run(self, duration_cycles: int, warmup_cycles: int = 0) -> WorkloadResult:
        """Run for a fixed window and report completed-request throughput."""
        self.start()
        if warmup_cycles:
            self.kernel.run(until_cycle=self.kernel.elapsed_cycles() + warmup_cycles)
        base_total = self.counter.total
        base_per_core = dict(self.counter.per_core)
        start_cycle = self.kernel.elapsed_cycles()
        self.kernel.run(until_cycle=start_cycle + duration_cycles)
        elapsed = self.kernel.elapsed_cycles() - start_cycle
        return WorkloadResult(
            requests_completed=self.counter.total - base_total,
            elapsed_cycles=elapsed,
            per_core_completed={
                cpu: self.counter.per_core[cpu] - base_per_core.get(cpu, 0)
                for cpu in self.counter.per_core
            },
            overhead_cycles=self.kernel.machine.total_overhead_cycles(),
        )
