"""Workloads: the paper's two case studies plus synthetic microworkloads.

- :mod:`repro.workloads.memcached` -- 16 UDP memcached instances pinned
  one per core, closed-loop clients (Section 6.1's true-sharing study);
- :mod:`repro.workloads.apache` -- 16 Apache instances serving a 1 KiB
  mmap'd file over TCP, open-loop arrivals (Section 6.2's working-set
  study);
- :mod:`repro.workloads.synthetic` -- targeted generators for each cache
  miss class, used to validate DProf's classification against the
  simulator's ground truth.
"""

from repro.workloads.base import WorkloadResult
from repro.workloads.memcached import MemcachedConfig, MemcachedWorkload
from repro.workloads.apache import ApacheConfig, ApacheWorkload

__all__ = [
    "WorkloadResult",
    "MemcachedConfig",
    "MemcachedWorkload",
    "ApacheConfig",
    "ApacheWorkload",
]
