"""Workloads: the paper's two case studies plus synthetic microworkloads.

- :mod:`repro.workloads.memcached` -- 16 UDP memcached instances pinned
  one per core, closed-loop clients (Section 6.1's true-sharing study);
- :mod:`repro.workloads.apache` -- 16 Apache instances serving a 1 KiB
  mmap'd file over TCP, open-loop arrivals (Section 6.2's working-set
  study);
- :mod:`repro.workloads.synthetic` -- targeted generators for each cache
  miss class, used to validate DProf's classification against the
  simulator's ground truth;
- :mod:`repro.workloads.kernels` -- generated access-stream kernels with
  closed-form expected-metrics models (the ground-truth families).
"""

from dataclasses import dataclass

from repro.workloads.base import WorkloadResult, build_kernel
from repro.workloads.memcached import MemcachedConfig, MemcachedWorkload
from repro.workloads.apache import ApacheConfig, ApacheWorkload
from repro.workloads import apache as _apache
from repro.workloads import kernels as _kernels
from repro.workloads import memcached as _memcached
from repro.workloads import synthetic as _synthetic
from repro.workloads.kernels import KERNEL_FAMILIES, KernelSpec

#: Uniform scenario entry points: name -> drive(kernel, duration_cycles).
#: Used by ``repro.bench``, ``repro.serve``, and the engine-equivalence
#: tests to run each workload identically under both engines.
SCENARIOS = {
    "memcached": _memcached.drive,
    "apache": _apache.drive,
    "synthetic": _synthetic.drive,
}
SCENARIOS.update(_kernels.scenario_entries())


@dataclass(frozen=True)
class ScenarioDefaults:
    """Per-scenario defaults used when a job or CLI omits a knob."""

    cores: int
    duration: int
    interval: int
    description: str
    #: One-line parameter schema shown by ``repro list-scenarios``.
    params: str = "cores duration interval seed"


#: Defaults per registered scenario, consumed by ``repro.serve`` job
#: validation and the CLI's ``list-scenarios`` subcommand.  Keys must
#: match :data:`SCENARIOS` exactly (enforced by tests/test_workloads.py).
SCENARIO_DEFAULTS = {
    "memcached": ScenarioDefaults(
        cores=4,
        duration=150_000,
        interval=400,
        description="pinned UDP memcached instances, closed-loop clients (Section 6.1)",
    ),
    "apache": ScenarioDefaults(
        cores=4,
        duration=150_000,
        interval=400,
        description="pinned Apache instances over TCP, open-loop arrivals (Section 6.2)",
    ),
    "synthetic": ScenarioDefaults(
        cores=4,
        duration=200_000,
        interval=400,
        description="all four miss-class microworkloads running together",
    ),
}
SCENARIO_DEFAULTS.update(
    {
        name: ScenarioDefaults(**raw)
        for name, raw in _kernels.scenario_defaults().items()
    }
)

__all__ = [
    "WorkloadResult",
    "build_kernel",
    "SCENARIOS",
    "SCENARIO_DEFAULTS",
    "ScenarioDefaults",
    "KERNEL_FAMILIES",
    "KernelSpec",
    "MemcachedConfig",
    "MemcachedWorkload",
    "ApacheConfig",
    "ApacheWorkload",
]
