"""Flat physical address space with a bump region allocator.

The simulation never stores data values -- only addresses matter, because
caches, coherence, and DProf all operate on addresses and types.  The
address space hands out non-overlapping regions to the kernel's allocators
and to statically-allocated objects.
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.hw.addr import align_up

#: Regions start well above zero so that address 0 can mean "no address".
BASE_ADDRESS = 0x100000


class AddressSpace:
    """Hands out non-overlapping address regions, bump-pointer style."""

    def __init__(self, base: int = BASE_ADDRESS, limit: int | None = None) -> None:
        self.base = base
        self.limit = limit
        self._next = base
        self.regions: list[tuple[int, int, str]] = []

    def alloc_region(self, size: int, align: int = 64, label: str = "") -> int:
        """Reserve *size* bytes aligned to *align*; returns the base address."""
        if size <= 0:
            raise AllocationError(f"region size must be positive, got {size}")
        start = align_up(self._next, align)
        end = start + size
        if self.limit is not None and end > self.limit:
            raise AllocationError(
                f"address space exhausted: need {size} bytes at {start:#x}, "
                f"limit {self.limit:#x}"
            )
        self._next = end
        self.regions.append((start, size, label))
        return start

    @property
    def bytes_allocated(self) -> int:
        """Total bytes handed out so far (including alignment padding)."""
        return self._next - self.base

    def region_containing(self, addr: int) -> tuple[int, int, str] | None:
        """Find the (base, size, label) region containing *addr*, if any."""
        for start, size, label in self.regions:
            if start <= addr < start + size:
                return (start, size, label)
        return None
