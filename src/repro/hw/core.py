"""A simulated CPU core: cycle clock, counters, and attached units."""

from __future__ import annotations

from repro.hw.ibs import IbsUnit
from repro.util.rng import DeterministicRng


class Core:
    """One core's execution state.

    Each core advances its own cycle clock; the machine's event loop always
    runs the core whose clock is furthest behind, which gives a consistent
    global interleaving without simulating pipeline detail.  ``overhead_cycles``
    separately accumulates profiling costs (IBS interrupts, debug-register
    traps) so experiments can report profiling overhead exactly.
    """

    def __init__(self, cpu: int, rng: DeterministicRng) -> None:
        self.cpu = cpu
        self.cycle = 0
        self.instructions = 0
        self.mem_accesses = 0
        self.overhead_cycles = 0
        self.ibs = IbsUnit(cpu, rng.child(f"ibs{cpu}"))

    def tsc(self) -> int:
        """Read the timestamp counter (RDTSC): the core's cycle clock."""
        return self.cycle

    def charge(self, cycles: int, overhead: bool = False) -> None:
        """Advance the clock by *cycles*; optionally book it as overhead."""
        self.cycle += cycles
        if overhead:
            self.overhead_cycles += cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Core({self.cpu}, cycle={self.cycle}, instrs={self.instructions})"
