"""MESI-style coherence directory.

The directory tracks, per cache line, which cores hold a copy in their
private caches and whether one of them owns it dirty.  It also keeps the
per-core bookkeeping DProf cannot see but the simulator can: why each core
lost each line (a remote write invalidated it, or set pressure evicted it).
That ground truth drives both the FOREIGN/latency modelling and the test
suite's validation of DProf's miss classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.events import EvictionRecord, InvalidationRecord


@dataclass(slots=True)
class DirectoryEntry:
    """Coherence state for one line: its holders and dirty owner."""

    holders: set[int] = field(default_factory=set)
    dirty_owner: int | None = None


class Directory:
    """Tracks line ownership across cores plus ground-truth loss records."""

    def __init__(self, ncores: int) -> None:
        self.ncores = ncores
        self._entries: dict[int, DirectoryEntry] = {}
        # Per-core maps: line -> why this core last lost the line.
        self.invalidated: list[dict[int, InvalidationRecord]] = [
            {} for _ in range(ncores)
        ]
        self.evicted: list[dict[int, EvictionRecord]] = [{} for _ in range(ncores)]
        self.invalidation_count = 0

    def entry(self, line: int) -> DirectoryEntry:
        """Fetch (creating if needed) the entry for *line*."""
        ent = self._entries.get(line)
        if ent is None:
            ent = DirectoryEntry()
            self._entries[line] = ent
        return ent

    def peek(self, line: int) -> DirectoryEntry | None:
        """Fetch the entry for *line* without creating one."""
        return self._entries.get(line)

    def holders_of(self, line: int) -> set[int]:
        """Cores currently holding *line* in a private cache."""
        ent = self._entries.get(line)
        return ent.holders if ent else set()

    def record_read(self, cpu: int, line: int) -> None:
        """Note that *cpu* now holds *line* (shared)."""
        ent = self.entry(line)
        ent.holders.add(cpu)
        if ent.dirty_owner is not None and ent.dirty_owner != cpu:
            # Serving a dirty line to a reader demotes the owner to shared;
            # the write-back to L3 is handled by the hierarchy.
            ent.dirty_owner = None

    def record_write(
        self,
        cpu: int,
        line: int,
        ip: int,
        addr: int,
        size: int,
        cycle: int,
    ) -> list[int]:
        """Note that *cpu* wrote *line*; invalidate and return other holders."""
        ent = self.entry(line)
        losers = [c for c in ent.holders if c != cpu]
        for loser in losers:
            self.invalidated[loser][line] = InvalidationRecord(
                writer_cpu=cpu,
                writer_ip=ip,
                writer_addr=addr,
                writer_size=size,
                cycle=cycle,
            )
            self.invalidation_count += 1
        ent.holders = {cpu}
        ent.dirty_owner = cpu
        return losers

    def record_eviction(self, cpu: int, line: int, set_index: int, cycle: int) -> None:
        """Note that *cpu* lost *line* to set pressure in its private cache."""
        ent = self._entries.get(line)
        if ent is not None:
            ent.holders.discard(cpu)
            if ent.dirty_owner == cpu:
                ent.dirty_owner = None
        self.evicted[cpu][line] = EvictionRecord(set_index=set_index, cycle=cycle)

    def take_loss_record(
        self, cpu: int, line: int
    ) -> tuple[InvalidationRecord | None, EvictionRecord | None]:
        """Pop and return why *cpu* last lost *line*, if known.

        Invalidation wins over eviction when both are recorded (a line can
        be invalidated and the stale eviction record left behind); exactly
        one of the two return slots is non-None when the cause is known.
        """
        inv = self.invalidated[cpu].pop(line, None)
        ev = self.evicted[cpu].pop(line, None)
        if inv is not None:
            return inv, None
        if ev is not None:
            return None, ev
        return None, None

    def dirty_elsewhere(self, cpu: int, line: int) -> int | None:
        """Return the core holding *line* dirty, if it is not *cpu*."""
        ent = self._entries.get(line)
        if ent is None:
            return None
        if ent.dirty_owner is not None and ent.dirty_owner != cpu:
            return ent.dirty_owner
        return None
