"""Set-associative cache arrays with LRU replacement.

A :class:`CacheArray` tracks only *which lines are present*, not their
contents -- the simulation never needs data values, only presence, recency,
and set pressure.  Coherence state lives in the directory
(:mod:`repro.hw.coherence`); this module is purely about capacity and
associativity, the two properties behind the paper's conflict- and
capacity-miss classes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheGeometry:
    """Size/ways/line-size triple describing one cache array."""

    size: int
    ways: int
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.size <= 0 or self.ways <= 0 or self.line_size <= 0:
            raise ConfigError("cache size, ways, and line size must be positive")
        if self.size % (self.ways * self.line_size) != 0:
            raise ConfigError(
                f"cache size {self.size} is not a multiple of "
                f"ways*line_size ({self.ways * self.line_size})"
            )

    @property
    def num_sets(self) -> int:
        """Number of associativity sets."""
        return self.size // (self.ways * self.line_size)

    @property
    def num_lines(self) -> int:
        """Total line capacity."""
        return self.size // self.line_size

    def set_of(self, line: int) -> int:
        """Associativity set that *line* maps to."""
        return line % self.num_sets


class CacheArray:
    """One level of cache for one core (or a shared level).

    Lines are identified by their global line index.  Each set is an
    ordered dict used as an LRU queue: most recently used at the end.
    """

    def __init__(self, geometry: CacheGeometry, name: str = "cache") -> None:
        self.geometry = geometry
        self.name = name
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(geometry.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, line: int) -> bool:
        """Probe for *line*; refresh its LRU position on a hit."""
        bucket = self._sets[self.geometry.set_of(line)]
        if line in bucket:
            bucket.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Probe without disturbing LRU order or counters."""
        return line in self._sets[self.geometry.set_of(line)]

    def insert(self, line: int) -> int | None:
        """Insert *line*, returning the evicted victim line if the set was full."""
        bucket = self._sets[self.geometry.set_of(line)]
        if line in bucket:
            bucket.move_to_end(line)
            return None
        victim = None
        if len(bucket) >= self.geometry.ways:
            victim, _ = bucket.popitem(last=False)
            self.evictions += 1
        bucket[line] = None
        return victim

    def remove(self, line: int) -> bool:
        """Drop *line* if present (invalidation); returns whether it was there."""
        bucket = self._sets[self.geometry.set_of(line)]
        if line in bucket:
            del bucket[line]
            return True
        return False

    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(bucket) for bucket in self._sets)

    def set_occupancy(self, set_index: int) -> int:
        """Number of lines resident in one associativity set."""
        return len(self._sets[set_index])

    def lines(self):
        """Iterate over every resident line index."""
        for bucket in self._sets:
            yield from bucket.keys()

    def lru_snapshot(self) -> tuple[tuple[int, ...], ...]:
        """Per-set lines in replacement order (next victim first).

        The fast engine's :class:`~repro.hw.fastpath.FastCacheArray`
        produces the same shape from its recency counters, so the
        differential tests can compare full replacement state across
        engines.
        """
        return tuple(tuple(bucket.keys()) for bucket in self._sets)

    def clear(self) -> None:
        """Empty the cache (used between profiling runs)."""
        for bucket in self._sets:
            bucket.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheArray({self.name}, {self.geometry.size}B, "
            f"{self.geometry.ways}-way, occ={self.occupancy()})"
        )
