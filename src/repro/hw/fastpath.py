"""Batched fast-path engine for the access-simulation hot loop.

Every evaluation number in the reproduction derives from pushing millions
of memory accesses through the MESI hierarchy, and the reference
implementation (:mod:`repro.hw.cache` / :mod:`repro.hw.hierarchy`) pays
for its readability on every single access: an ``OrderedDict`` reorder
per cache probe, a ``set`` allocation per directory consultation, and an
:class:`~repro.hw.events.AccessResult` object per event.  This module
provides the fast path:

- :class:`LineInterner` maps sparse global line addresses to dense ids,
  so directory state lives in flat lists instead of hash tables;
- :class:`FastCacheArray` replaces the per-access ``OrderedDict`` LRU
  churn with array-backed recency counters (parallel tag/stamp arrays
  per set; the victim is the minimum stamp);
- :class:`FastDirectory` keeps holder sets as integer bitmasks;
- :class:`FastHierarchy` is a drop-in :class:`MemoryHierarchy`
  replacement built from the above (``MachineConfig(engine="fast")``);
- :class:`BatchReplayEngine` replays a pre-encoded trace through one
  monolithic loop with everything held in local variables -- the engine
  ``repro.bench`` times and the differential suite checks bit-for-bit
  against the reference path;
- :func:`build_synthetic_trace` shards independent per-CPU event streams
  across ``multiprocessing`` workers (each seeded through
  :class:`repro.util.rng.DeterministicRng` children) and merges them with
  a deterministic cycle-ordered merge, so generated traces are identical
  no matter how many workers produced them.

Equivalence contract: for any event sequence, the fast structures make
exactly the replacement, coherence, and classification decisions the
reference structures make.  ``tests/test_fastpath_equivalence.py`` and
``tests/test_coherence_property.py`` enforce this.
"""

from __future__ import annotations

import heapq
import multiprocessing

from repro.hw.cache import CacheGeometry
from repro.hw.events import (
    AccessResult,
    CacheLevel,
    EvictionRecord,
    InvalidationRecord,
    MissKind,
    TraceEvent,
)
from repro.hw.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.util.rng import DeterministicRng

#: Compact miss-kind codes used by encoded outcomes (0 = hit / no kind).
KIND_NONE = 0
KIND_COLD = 1
KIND_INVALIDATION = 2
KIND_EVICTION = 3

_KIND_CODE = {
    None: KIND_NONE,
    MissKind.COLD: KIND_COLD,
    MissKind.INVALIDATION: KIND_INVALIDATION,
    MissKind.EVICTION: KIND_EVICTION,
}
_KIND_NAME = {
    KIND_COLD: MissKind.COLD.value,
    KIND_INVALIDATION: MissKind.INVALIDATION.value,
    KIND_EVICTION: MissKind.EVICTION.value,
}


class LineInterner:
    """Dense integer ids for the line addresses a trace touches.

    Ids are assigned in first-appearance order, so interning the same
    event sequence always yields the same mapping -- a requirement for
    the bit-for-bit replay guarantee.
    """

    __slots__ = ("_ids", "raw_lines")

    def __init__(self) -> None:
        self._ids: dict[int, int] = {}
        self.raw_lines: list[int] = []

    def intern(self, line: int) -> int:
        """Return the dense id for *line*, assigning one if new."""
        lid = self._ids.get(line)
        if lid is None:
            lid = len(self.raw_lines)
            self._ids[line] = lid
            self.raw_lines.append(line)
        return lid

    def __len__(self) -> int:
        return len(self.raw_lines)


class FastCacheArray:
    """API-compatible :class:`~repro.hw.cache.CacheArray` replacement.

    Each set is a pair of parallel arrays -- resident tags and their
    recency stamps -- instead of an ``OrderedDict``.  A hit overwrites
    one stamp (no reordering); the victim on insert is the tag with the
    minimum stamp.  Stamps come from one per-cache monotonic clock, so
    victim choice is always unique and exactly matches the reference
    array's least-recently-used order.
    """

    def __init__(self, geometry: CacheGeometry, name: str = "cache") -> None:
        self.geometry = geometry
        self.name = name
        self._nsets = geometry.num_sets
        self._tags: list[list[int]] = [[] for _ in range(self._nsets)]
        self._stamps: list[list[int]] = [[] for _ in range(self._nsets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, line: int) -> bool:
        """Probe for *line*; refresh its recency stamp on a hit."""
        s = line % self._nsets
        tags = self._tags[s]
        try:
            i = tags.index(line)
        except ValueError:
            self.misses += 1
            return False
        self._clock += 1
        self._stamps[s][i] = self._clock
        self.hits += 1
        return True

    def contains(self, line: int) -> bool:
        """Probe without disturbing recency or counters."""
        return line in self._tags[line % self._nsets]

    def insert(self, line: int) -> int | None:
        """Insert *line*, returning the evicted victim line if the set was full."""
        s = line % self._nsets
        tags = self._tags[s]
        stamps = self._stamps[s]
        self._clock += 1
        try:
            i = tags.index(line)
        except ValueError:
            i = -1
        if i >= 0:
            stamps[i] = self._clock
            return None
        victim = None
        if len(tags) >= self.geometry.ways:
            i = stamps.index(min(stamps))
            victim = tags.pop(i)
            stamps.pop(i)
            self.evictions += 1
        tags.append(line)
        stamps.append(self._clock)
        return victim

    def remove(self, line: int) -> bool:
        """Drop *line* if present (invalidation); returns whether it was there."""
        s = line % self._nsets
        tags = self._tags[s]
        try:
            i = tags.index(line)
        except ValueError:
            return False
        tags.pop(i)
        self._stamps[s].pop(i)
        return True

    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(tags) for tags in self._tags)

    def set_occupancy(self, set_index: int) -> int:
        """Number of lines resident in one associativity set."""
        return len(self._tags[set_index])

    def lines(self):
        """Iterate over resident lines, oldest-first per set (reference order)."""
        for s, tags in enumerate(self._tags):
            stamps = self._stamps[s]
            for _, line in sorted(zip(stamps, tags)):
                yield line

    def lru_snapshot(self) -> tuple[tuple[int, ...], ...]:
        """Per-set lines in replacement order (next victim first)."""
        return tuple(
            tuple(line for _, line in sorted(zip(self._stamps[s], tags)))
            for s, tags in enumerate(self._tags)
        )

    def clear(self) -> None:
        """Empty the cache (used between profiling runs)."""
        for s in range(self._nsets):
            self._tags[s].clear()
            self._stamps[s].clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FastCacheArray({self.name}, {self.geometry.size}B, "
            f"{self.geometry.ways}-way, occ={self.occupancy()})"
        )


class FastDirectory:
    """Bitmask-backed MESI directory, API-compatible with
    :class:`~repro.hw.coherence.Directory` for everything the hierarchy,
    profilers, and tests consume (``holders_of``, ``record_*``,
    ``take_loss_record``, ``dirty_elsewhere``, loss-record maps, and
    ``invalidation_count``)."""

    def __init__(self, ncores: int) -> None:
        self.ncores = ncores
        self._holders: dict[int, int] = {}
        self._dirty: dict[int, int] = {}
        self.invalidated: list[dict[int, InvalidationRecord]] = [
            {} for _ in range(ncores)
        ]
        self.evicted: list[dict[int, EvictionRecord]] = [{} for _ in range(ncores)]
        self.invalidation_count = 0

    def holders_of(self, line: int) -> set[int]:
        """Cores currently holding *line* in a private cache."""
        mask = self._holders.get(line, 0)
        out = set()
        while mask:
            bit = mask & -mask
            out.add(bit.bit_length() - 1)
            mask ^= bit
        return out

    def record_read(self, cpu: int, line: int) -> None:
        """Note that *cpu* now holds *line* (shared)."""
        self._holders[line] = self._holders.get(line, 0) | (1 << cpu)
        owner = self._dirty.get(line)
        if owner is not None and owner != cpu:
            del self._dirty[line]

    def record_write(
        self,
        cpu: int,
        line: int,
        ip: int,
        addr: int,
        size: int,
        cycle: int,
    ) -> list[int]:
        """Note that *cpu* wrote *line*; invalidate and return other holders."""
        bit = 1 << cpu
        losers_mask = self._holders.get(line, 0) & ~bit
        losers = []
        mask = losers_mask
        while mask:
            low = mask & -mask
            loser = low.bit_length() - 1
            mask ^= low
            losers.append(loser)
            self.invalidated[loser][line] = InvalidationRecord(
                writer_cpu=cpu,
                writer_ip=ip,
                writer_addr=addr,
                writer_size=size,
                cycle=cycle,
            )
            self.invalidation_count += 1
        self._holders[line] = bit
        self._dirty[line] = cpu
        return losers

    def record_eviction(self, cpu: int, line: int, set_index: int, cycle: int) -> None:
        """Note that *cpu* lost *line* to set pressure in its private cache."""
        mask = self._holders.get(line)
        if mask is not None:
            self._holders[line] = mask & ~(1 << cpu)
            if self._dirty.get(line) == cpu:
                del self._dirty[line]
        self.evicted[cpu][line] = EvictionRecord(set_index=set_index, cycle=cycle)

    def take_loss_record(
        self, cpu: int, line: int
    ) -> tuple[InvalidationRecord | None, EvictionRecord | None]:
        """Pop and return why *cpu* last lost *line* (invalidation wins)."""
        inv = self.invalidated[cpu].pop(line, None)
        ev = self.evicted[cpu].pop(line, None)
        if inv is not None:
            return inv, None
        if ev is not None:
            return None, ev
        return None, None

    def dirty_elsewhere(self, cpu: int, line: int) -> int | None:
        """Return the core holding *line* dirty, if it is not *cpu*."""
        owner = self._dirty.get(line)
        if owner is not None and owner != cpu:
            return owner
        return None


class FastHierarchy(MemoryHierarchy):
    """Drop-in :class:`MemoryHierarchy` built from the fast structures.

    Selected with ``MachineConfig(engine="fast")``.  Behaviour is
    bit-identical to the reference hierarchy -- same levels, latencies,
    miss classifications, loss records, and counter values -- it just
    avoids the per-access ``OrderedDict`` reorders and ``set``
    allocations on the hot path.
    """

    def __init__(self, config: HierarchyConfig) -> None:
        super().__init__(config)
        self.l1 = [
            FastCacheArray(config.l1_geometry(), f"L1.{i}")
            for i in range(config.ncores)
        ]
        self.l2 = [
            FastCacheArray(config.l2_geometry(), f"L2.{i}")
            for i in range(config.ncores)
        ]
        self.l3 = FastCacheArray(config.l3_geometry(), "L3")
        self.directory = FastDirectory(config.ncores)

    def _access_line(
        self,
        cpu: int,
        line: int,
        is_write: bool,
        ip: int,
        addr: int,
        size: int,
        cycle: int,
    ) -> AccessResult:
        lat = self.latencies
        if self.l1[cpu].lookup(line):
            latency = lat.l1
            if is_write:
                latency += self._write_upgrade(cpu, line, ip, addr, size, cycle)
            return AccessResult(level=CacheLevel.L1, latency=latency)

        l2 = self.l2[cpu]
        if l2.lookup(line):
            l2.remove(line)
            self._insert_private(cpu, line, cycle)
            latency = lat.l2
            if is_write:
                latency += self._write_upgrade(cpu, line, ip, addr, size, cycle)
            return AccessResult(level=CacheLevel.L2, latency=latency)

        directory = self.directory
        inv = directory.invalidated[cpu].pop(line, None)
        ev = directory.evicted[cpu].pop(line, None)
        if inv is not None:
            miss_kind = MissKind.INVALIDATION
            ev = None
        elif ev is not None:
            miss_kind = MissKind.EVICTION
        else:
            miss_kind = MissKind.COLD

        owner = directory._dirty.get(line)
        if owner is not None and owner != cpu:
            level = CacheLevel.FOREIGN
            latency = lat.foreign
            self.l3.insert(line)
        elif self.l3.lookup(line):
            level = CacheLevel.L3
            latency = lat.l3
        elif directory._holders.get(line, 0) & ~(1 << cpu):
            level = CacheLevel.FOREIGN
            latency = lat.foreign_clean
        else:
            level = CacheLevel.DRAM
            latency = lat.dram

        if is_write:
            losers = directory.record_write(cpu, line, ip, addr, size, cycle)
            for loser in losers:
                self.l1[loser].remove(line)
                self.l2[loser].remove(line)
        else:
            directory.record_read(cpu, line)

        self._insert_private(cpu, line, cycle)
        return AccessResult(
            level=level,
            latency=latency,
            miss_kind=miss_kind,
            invalidation=inv,
            eviction=ev,
        )

    def _write_upgrade(
        self, cpu: int, line: int, ip: int, addr: int, size: int, cycle: int
    ) -> int:
        losers = self.directory.record_write(cpu, line, ip, addr, size, cycle)
        if not losers:
            return 0
        for loser in losers:
            self.l1[loser].remove(line)
            self.l2[loser].remove(line)
        return self.latencies.upgrade

    def flush_all(self) -> None:
        """Empty every cache and forget coherence state (run boundary)."""
        for cache in self.l1:
            cache.clear()
        for cache in self.l2:
            cache.clear()
        self.l3.clear()
        self.directory = FastDirectory(self.config.ncores)


# ----------------------------------------------------------------------
# Trace encoding
# ----------------------------------------------------------------------


def encode_trace(
    events: list[TraceEvent],
    config: HierarchyConfig,
    interner: LineInterner | None = None,
) -> tuple[list[tuple], LineInterner]:
    """Pre-digest a trace for :class:`BatchReplayEngine`.

    Splits each access into the lines it touches, interns every line
    address, and precomputes each line's L1/L2/L3 set index, so the
    replay loop does no division and no hashing of sparse addresses.
    Encoded events are ``(cpu, is_write, ip, addr, size, cycle, parts)``
    with ``parts`` a tuple of ``(line_id, l1_set, l2_set, l3_set)``.
    """
    if interner is None:
        interner = LineInterner()
    intern = interner.intern
    line_size = config.line_size
    nsets1 = config.l1_geometry().num_sets
    nsets2 = config.l2_geometry().num_sets
    nsets3 = config.l3_geometry().num_sets
    # Traces revisit the same lines constantly; memoise each line's
    # (id, set indices) so per-event work is two dict probes.
    part_of: dict[int, tuple[int, int, int, int]] = {}
    single: dict[int, tuple] = {}
    encoded = []
    append = encoded.append
    for ev in events:
        addr = ev.addr
        size = ev.size
        first = addr // line_size
        last = (addr + size - 1) // line_size if size > 1 else first
        if first == last:
            parts = single.get(first)
            if parts is None:
                parts = (
                    (intern(first), first % nsets1, first % nsets2, first % nsets3),
                )
                single[first] = parts
        else:
            parts = tuple(
                part_of.get(line)
                or part_of.setdefault(
                    line,
                    (intern(line), line % nsets1, line % nsets2, line % nsets3),
                )
                for line in range(first, last + 1)
            )
        append((ev.cpu, ev.is_write, ev.ip, addr, size, ev.cycle, parts))
    return encoded, interner


def outcome_of(result: AccessResult) -> tuple:
    """Flatten an :class:`AccessResult` to the batch engine's outcome shape.

    ``(level, kind_code, latency, invalidation_tuple, eviction_tuple)`` --
    the differential tests compare these across engines access by access.
    """
    inv = result.invalidation
    ev = result.eviction
    return (
        int(result.level),
        _KIND_CODE[result.miss_kind],
        result.latency,
        None
        if inv is None
        else (inv.writer_cpu, inv.writer_ip, inv.writer_addr, inv.writer_size, inv.cycle),
        None if ev is None else (ev.set_index, ev.cycle),
    )


def replay_reference(
    events: list[TraceEvent],
    config: HierarchyConfig,
    collect: bool = False,
) -> tuple[MemoryHierarchy, list[tuple] | None]:
    """Replay a trace through a fresh reference hierarchy (the baseline)."""
    hierarchy = MemoryHierarchy(config)
    access = hierarchy.access
    if not collect:
        for ev in events:
            access(ev.cpu, ev.addr, ev.size, ev.is_write, ev.ip, ev.cycle)
        return hierarchy, None
    outcomes = [
        outcome_of(access(ev.cpu, ev.addr, ev.size, ev.is_write, ev.ip, ev.cycle))
        for ev in events
    ]
    return hierarchy, outcomes


# ----------------------------------------------------------------------
# The batched replay engine
# ----------------------------------------------------------------------


class BatchReplayEngine:
    """Replays an encoded trace through flat-array MESI state.

    One call to :meth:`run` is the entire hot loop: per-CPU tag/stamp
    arrays for L1/L2, one pair for L3, directory holder bitmasks and
    dirty owners in lists indexed by interned line id, and plain-int
    counters.  No objects are allocated for hits, and nothing is hashed
    except the (rare) loss-record maps.
    """

    def __init__(self, config: HierarchyConfig, interner: LineInterner) -> None:
        self.config = config
        self.interner = interner
        ncores = config.ncores
        g1, g2, g3 = (
            config.l1_geometry(),
            config.l2_geometry(),
            config.l3_geometry(),
        )
        self._geoms = (g1, g2, g3)
        self.l1_tags = [[[] for _ in range(g1.num_sets)] for _ in range(ncores)]
        self.l1_stamps = [[[] for _ in range(g1.num_sets)] for _ in range(ncores)]
        self.l2_tags = [[[] for _ in range(g2.num_sets)] for _ in range(ncores)]
        self.l2_stamps = [[[] for _ in range(g2.num_sets)] for _ in range(ncores)]
        self.l3_tags = [[] for _ in range(g3.num_sets)]
        self.l3_stamps = [[] for _ in range(g3.num_sets)]
        n = len(interner)
        self.holders = [0] * n
        self.dirty = [-1] * n
        self.inv_records: list[dict[int, tuple]] = [{} for _ in range(ncores)]
        self.ev_records: list[dict[int, tuple]] = [{} for _ in range(ncores)]
        self.invalidation_count = 0
        self.l1_hits = [0] * ncores
        self.l1_misses = [0] * ncores
        self.l1_evictions = [0] * ncores
        self.l2_hits = [0] * ncores
        self.l2_misses = [0] * ncores
        self.l2_evictions = [0] * ncores
        self.l3_hits = 0
        self.l3_misses = 0
        self.l3_evictions = 0
        self.accesses = 0
        self.level_counts = [0] * (max(CacheLevel) + 1)
        self.kind_counts = [0] * 4
        self._clock = 0

    def run(self, encoded: list[tuple], collect: bool = False) -> list[tuple] | None:
        """Replay every encoded event; optionally collect per-event outcomes."""
        # Local bindings: every container the loop touches is a local.
        cfg = self.config
        lat = cfg.latencies
        lat_l1, lat_l2, lat_l3 = lat.l1, lat.l2, lat.l3
        lat_foreign, lat_foreign_clean = lat.foreign, lat.foreign_clean
        lat_dram, lat_upgrade = lat.dram, lat.upgrade
        g1, g2, g3 = self._geoms
        l1_ways, l2_ways, l3_ways = g1.ways, g2.ways, g3.ways
        nsets2, nsets3 = g2.num_sets, g3.num_sets
        raw_of = self.interner.raw_lines
        l1_tags, l1_stamps = self.l1_tags, self.l1_stamps
        l2_tags, l2_stamps = self.l2_tags, self.l2_stamps
        l3_tags, l3_stamps = self.l3_tags, self.l3_stamps
        holders, dirty = self.holders, self.dirty
        inv_records, ev_records = self.inv_records, self.ev_records
        l1_hits, l1_misses, l1_ev = self.l1_hits, self.l1_misses, self.l1_evictions
        l2_hits, l2_misses, l2_ev = self.l2_hits, self.l2_misses, self.l2_evictions
        level_counts, kind_counts = self.level_counts, self.kind_counts
        clock = self._clock
        inv_count = self.invalidation_count
        accesses = self.accesses
        l3h, l3m, l3e = self.l3_hits, self.l3_misses, self.l3_evictions
        outcomes = [] if collect else None

        for cpu, wr, ip, addr, size, cycle, parts in encoded:
            bit = 1 << cpu
            not_bit = ~bit
            t1c, s1c = l1_tags[cpu], l1_stamps[cpu]
            t2c, s2c = l2_tags[cpu], l2_stamps[cpu]
            best_level = 0
            best_kind = KIND_NONE
            best_inv = best_ev = None
            total_latency = 0
            for lid, set1, set2, set3 in parts:
                inv_rec = ev_rec = None
                kind = KIND_NONE
                tags = t1c[set1]
                try:
                    i = tags.index(lid)
                except ValueError:
                    i = -1
                if i >= 0:
                    # L1 hit.
                    clock += 1
                    s1c[set1][i] = clock
                    l1_hits[cpu] += 1
                    level = 1
                    latency = lat_l1
                    if wr:
                        losers = holders[lid] & not_bit
                        if losers:
                            latency += lat_upgrade
                            mask = losers
                            while mask:
                                low = mask & -mask
                                loser = low.bit_length() - 1
                                mask ^= low
                                inv_records[loser][lid] = (cpu, ip, addr, size, cycle)
                                inv_count += 1
                                lt = l1_tags[loser][set1]
                                try:
                                    j = lt.index(lid)
                                    lt.pop(j)
                                    l1_stamps[loser][set1].pop(j)
                                except ValueError:
                                    lt2 = l2_tags[loser][set2]
                                    try:
                                        j = lt2.index(lid)
                                        lt2.pop(j)
                                        l2_stamps[loser][set2].pop(j)
                                    except ValueError:
                                        pass
                        holders[lid] = bit
                        dirty[lid] = cpu
                else:
                    l1_misses[cpu] += 1
                    tags2 = t2c[set2]
                    try:
                        i = tags2.index(lid)
                    except ValueError:
                        i = -1
                    if i >= 0:
                        # L2 hit: promote to L1 (exclusive hierarchy).
                        l2_hits[cpu] += 1
                        tags2.pop(i)
                        s2c[set2].pop(i)
                        level = 2
                        latency = lat_l2
                        if wr:
                            losers = holders[lid] & not_bit
                            if losers:
                                latency += lat_upgrade
                                mask = losers
                                while mask:
                                    low = mask & -mask
                                    loser = low.bit_length() - 1
                                    mask ^= low
                                    inv_records[loser][lid] = (
                                        cpu,
                                        ip,
                                        addr,
                                        size,
                                        cycle,
                                    )
                                    inv_count += 1
                                    lt = l1_tags[loser][set1]
                                    try:
                                        j = lt.index(lid)
                                        lt.pop(j)
                                        l1_stamps[loser][set1].pop(j)
                                    except ValueError:
                                        lt2 = l2_tags[loser][set2]
                                        try:
                                            j = lt2.index(lid)
                                            lt2.pop(j)
                                            l2_stamps[loser][set2].pop(j)
                                        except ValueError:
                                            pass
                            holders[lid] = bit
                            dirty[lid] = cpu
                    else:
                        # Local miss: classify, pick the serve level,
                        # update the directory -- reference order.
                        l2_misses[cpu] += 1
                        inv_rec = inv_records[cpu].pop(lid, None)
                        ev_rec = ev_records[cpu].pop(lid, None)
                        if inv_rec is not None:
                            kind = KIND_INVALIDATION
                            ev_rec = None
                        elif ev_rec is not None:
                            kind = KIND_EVICTION
                        else:
                            kind = KIND_COLD
                        owner = dirty[lid]
                        if owner >= 0 and owner != cpu:
                            level = 4
                            latency = lat_foreign
                            # Dirty line served to another core: write it
                            # back into the shared L3.
                            t3 = l3_tags[set3]
                            clock += 1
                            try:
                                j = t3.index(lid)
                                l3_stamps[set3][j] = clock
                            except ValueError:
                                st3 = l3_stamps[set3]
                                if len(t3) >= l3_ways:
                                    k = st3.index(min(st3))
                                    t3.pop(k)
                                    st3.pop(k)
                                    l3e += 1
                                t3.append(lid)
                                st3.append(clock)
                        else:
                            t3 = l3_tags[set3]
                            try:
                                j = t3.index(lid)
                            except ValueError:
                                j = -1
                            if j >= 0:
                                clock += 1
                                l3_stamps[set3][j] = clock
                                l3h += 1
                                level = 3
                                latency = lat_l3
                            else:
                                l3m += 1
                                if holders[lid] & not_bit:
                                    level = 4
                                    latency = lat_foreign_clean
                                else:
                                    level = 5
                                    latency = lat_dram
                        if wr:
                            losers = holders[lid] & not_bit
                            mask = losers
                            while mask:
                                low = mask & -mask
                                loser = low.bit_length() - 1
                                mask ^= low
                                inv_records[loser][lid] = (cpu, ip, addr, size, cycle)
                                inv_count += 1
                                lt = l1_tags[loser][set1]
                                try:
                                    j = lt.index(lid)
                                    lt.pop(j)
                                    l1_stamps[loser][set1].pop(j)
                                except ValueError:
                                    lt2 = l2_tags[loser][set2]
                                    try:
                                        j = lt2.index(lid)
                                        lt2.pop(j)
                                        l2_stamps[loser][set2].pop(j)
                                    except ValueError:
                                        pass
                            holders[lid] = bit
                            dirty[lid] = cpu
                        else:
                            holders[lid] |= bit
                            owner = dirty[lid]
                            if owner >= 0 and owner != cpu:
                                dirty[lid] = -1
                    # Promote/fill into L1, cascading evictions downward
                    # (shared by the L2-hit and local-miss paths).
                    tags = t1c[set1]
                    clock += 1
                    if len(tags) >= l1_ways:
                        st1 = s1c[set1]
                        k = st1.index(min(st1))
                        victim = tags.pop(k)
                        st1.pop(k)
                        l1_ev[cpu] += 1
                        tags.append(lid)
                        st1.append(clock)
                        vset2 = raw_of[victim] % nsets2
                        vt2 = t2c[vset2]
                        vs2 = s2c[vset2]
                        clock += 1
                        try:
                            j = vt2.index(victim)
                            vs2[j] = clock
                        except ValueError:
                            if len(vt2) >= l2_ways:
                                k = vs2.index(min(vs2))
                                victim2 = vt2.pop(k)
                                vs2.pop(k)
                                l2_ev[cpu] += 1
                                vt2.append(victim)
                                vs2.append(clock)
                                # Line leaves the private domain: release
                                # the holder bit, log why, spill to L3.
                                raw2 = raw_of[victim2]
                                holders[victim2] &= not_bit
                                if dirty[victim2] == cpu:
                                    dirty[victim2] = -1
                                ev_records[cpu][victim2] = (raw2 % nsets2, cycle)
                                vset3 = raw2 % nsets3
                                t3 = l3_tags[vset3]
                                clock += 1
                                try:
                                    j = t3.index(victim2)
                                    l3_stamps[vset3][j] = clock
                                except ValueError:
                                    st3 = l3_stamps[vset3]
                                    if len(t3) >= l3_ways:
                                        k = st3.index(min(st3))
                                        t3.pop(k)
                                        st3.pop(k)
                                        l3e += 1
                                    t3.append(victim2)
                                    st3.append(clock)
                            else:
                                vt2.append(victim)
                                vs2.append(clock)
                    else:
                        tags.append(lid)
                        s1c[set1].append(clock)
                # Merge multi-line parts exactly like the reference:
                # latencies add, the worst level's classification wins.
                total_latency += latency
                if level > best_level:
                    best_level = level
                    best_kind = kind
                    best_inv = inv_rec
                    best_ev = ev_rec
            accesses += 1
            level_counts[best_level] += 1
            if best_kind:
                kind_counts[best_kind] += 1
            if collect:
                outcomes.append(
                    (best_level, best_kind, total_latency, best_inv, best_ev)
                )

        self._clock = clock
        self.invalidation_count = inv_count
        self.accesses = accesses
        self.l3_hits, self.l3_misses, self.l3_evictions = l3h, l3m, l3e
        return outcomes

    def run_traced(
        self,
        encoded: list[tuple],
        probe,
        collect: bool = False,
        chunk: int = 4096,
    ) -> list[tuple] | None:
        """Replay in chunks, ticking a :class:`repro.trace.SimProbe` between
        them.  All replay state lives on the instance, so chunked calls to
        :meth:`run` are event-for-event identical to one call; the hot loop
        itself stays untouched.
        """
        outcomes = [] if collect else None
        for start in range(0, len(encoded), chunk):
            batch = encoded[start : start + chunk]
            result = self.run(batch, collect=collect)
            if collect:
                outcomes.extend(result)
            probe.tick_events(len(batch))
        return outcomes

    # ------------------------------------------------------------------
    # Snapshots mirroring the reference hierarchy's comparison surface
    # ------------------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """Same shape as :meth:`HierarchyStats.snapshot`."""
        return {
            "accesses": self.accesses,
            "levels": {
                level.name: self.level_counts[level] for level in CacheLevel
            },
            "miss_kinds": {
                _KIND_NAME[code]: self.kind_counts[code]
                for code in (KIND_COLD, KIND_INVALIDATION, KIND_EVICTION)
            },
        }

    def cache_counters(self) -> dict[str, tuple[int, int, int]]:
        """Same shape as :meth:`MemoryHierarchy.cache_counters`."""
        counters = {}
        for cpu in range(self.config.ncores):
            counters[f"L1.{cpu}"] = (
                self.l1_hits[cpu],
                self.l1_misses[cpu],
                self.l1_evictions[cpu],
            )
        for cpu in range(self.config.ncores):
            counters[f"L2.{cpu}"] = (
                self.l2_hits[cpu],
                self.l2_misses[cpu],
                self.l2_evictions[cpu],
            )
        counters["L3"] = (self.l3_hits, self.l3_misses, self.l3_evictions)
        return counters

    def replacement_snapshot(self) -> dict[str, tuple]:
        """Same shape as :meth:`MemoryHierarchy.replacement_snapshot`."""
        raw_of = self.interner.raw_lines

        def order(tag_sets, stamp_sets):
            return tuple(
                tuple(
                    raw_of[lid]
                    for _, lid in sorted(zip(stamp_sets[s], tags))
                )
                for s, tags in enumerate(tag_sets)
            )

        snapshot = {}
        for cpu in range(self.config.ncores):
            snapshot[f"L1.{cpu}"] = order(self.l1_tags[cpu], self.l1_stamps[cpu])
        for cpu in range(self.config.ncores):
            snapshot[f"L2.{cpu}"] = order(self.l2_tags[cpu], self.l2_stamps[cpu])
        snapshot["L3"] = order(self.l3_tags, self.l3_stamps)
        return snapshot

    def loss_records(self) -> tuple[list[dict], list[dict]]:
        """Remaining (invalidated, evicted) maps keyed by raw line address."""
        raw_of = self.interner.raw_lines
        inv = [
            {raw_of[lid]: rec for lid, rec in records.items()}
            for records in self.inv_records
        ]
        ev = [
            {raw_of[lid]: rec for lid, rec in records.items()}
            for records in self.ev_records
        ]
        return inv, ev


def replay_fast(
    events: list[TraceEvent],
    config: HierarchyConfig,
    collect: bool = False,
) -> tuple[BatchReplayEngine, list[tuple] | None]:
    """Encode a trace and replay it through a fresh batch engine."""
    encoded, interner = encode_trace(events, config)
    engine = BatchReplayEngine(config, interner)
    outcomes = engine.run(encoded, collect=collect)
    return engine, outcomes


# ----------------------------------------------------------------------
# Sharded per-CPU stream generation + deterministic merge
# ----------------------------------------------------------------------


def synthetic_stream(
    seed: int,
    cpu: int,
    n_events: int,
    *,
    seq_base: int = 0,
    seq_step: int = 1,
    shared_lines: int = 32,
    private_lines: int = 256,
    line_size: int = 64,
    write_fraction: float = 0.3,
    shared_fraction: float = 0.25,
    straddle_fraction: float = 0.05,
) -> list[TraceEvent]:
    """One CPU's independent access stream, fully determined by (seed, cpu).

    Draws from a :class:`DeterministicRng` child named for the CPU, so the
    stream is identical whether it is generated inline or inside a
    ``multiprocessing`` worker.  The mix exercises every coherence path:
    shared lines (invalidations and foreign serves), a per-CPU private
    region (evictions once it exceeds the private caches), writes, and
    occasional line-straddling accesses.
    """
    rng = DeterministicRng(seed, "synthetic-trace").child(f"cpu{cpu}")
    private_base = (1 << 20) * (cpu + 1)
    events = []
    cycle = 0
    seq = seq_base
    for _ in range(n_events):
        cycle += rng.randint(1, 40)
        if rng.random() < shared_fraction:
            line = rng.randint(0, shared_lines - 1)
        else:
            line = private_base + rng.randint(0, private_lines - 1)
        if rng.random() < straddle_fraction:
            offset, size = line_size - 8, 16
        else:
            offset, size = 8 * rng.randint(0, (line_size // 8) - 2), 8
        events.append(
            TraceEvent(
                seq=seq,
                cycle=cycle,
                cpu=cpu,
                addr=line * line_size + offset,
                size=size,
                is_write=rng.random() < write_fraction,
                ip=0x40_0000 + cpu,
            )
        )
        seq += seq_step
    return events


def merge_streams(streams: list[list[TraceEvent]]) -> list[TraceEvent]:
    """Deterministic cycle-ordered merge of per-CPU event streams.

    Each input stream must be cycle-sorted (per-CPU streams are, by
    construction); ties are broken by ``seq``, which is unique across
    streams, so the merged order is a pure function of the events.
    """
    return list(heapq.merge(*streams, key=lambda ev: (ev.cycle, ev.seq)))


def _stream_shard(args: tuple) -> list[TraceEvent]:
    """Worker entry point for sharded stream generation (must be picklable)."""
    seed, cpu, n_events, ncores, kwargs = args
    return synthetic_stream(
        seed, cpu, n_events, seq_base=cpu, seq_step=ncores, **kwargs
    )


def build_synthetic_trace(
    seed: int,
    ncores: int,
    events_per_cpu: int,
    workers: int = 0,
    **kwargs,
) -> list[TraceEvent]:
    """Generate a multi-CPU trace, optionally sharding across processes.

    With ``workers > 1`` each per-CPU stream is generated in a
    ``multiprocessing`` pool; because every stream is a pure function of
    ``(seed, cpu)`` and the merge is cycle-ordered with seq tie-breaks,
    the result is bit-identical to the serial path (a pool failure --
    e.g. a sandbox without fork -- silently degrades to serial, keeping
    the same output).
    """
    shard_args = [
        (seed, cpu, events_per_cpu, ncores, kwargs) for cpu in range(ncores)
    ]
    streams: list[list[TraceEvent]] | None = None
    if workers > 1:
        try:
            with multiprocessing.Pool(min(workers, ncores)) as pool:
                streams = pool.map(_stream_shard, shard_args)
        except OSError:
            streams = None
    if streams is None:
        streams = [_stream_shard(args) for args in shard_args]
    return merge_streams(streams)
