"""x86-style hardware debug registers (watchpoints).

Each core exposes four debug registers; each register watches a 1-8 byte
range and traps every load/store that touches it.  DProf uses them to
record *object access histories*: it arms the same range on every core
(any core might touch the object), traps each access at ~1,000 cycles, and
pieces together whole-object histories from these narrow windows
(Section 5.3).  The 4-register / 8-byte limits are faithfully enforced
because they are what force DProf's pairwise-sampling design.

Debug registers are also a contended, lossy resource: other kernel agents
steal them, and traps can be swallowed.  With a fault injector installed
(:meth:`repro.hw.machine.Machine.install_faults`), arming can fail with a
steal and armed watches can misfire, counted in ``arm_steals`` /
``traps_missed`` for data-quality reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.hw.events import AccessResult, Instr

#: Number of debug address registers per core (DR0-DR3).
NUM_DEBUG_REGISTERS = 4

#: Widest range one debug register can watch, in bytes.
MAX_WATCH_BYTES = 8

#: Cycle cost of taking one debug-register trap (paper's measurement).
DEFAULT_TRAP_CYCLES = 1_000

WatchHandler = Callable[[int, "Instr", "AccessResult", int], None]


@dataclass(slots=True)
class Watch:
    """An armed watchpoint: [lo, hi) plus the trap handler."""

    watch_id: int
    lo: int
    hi: int
    slot: int
    handler: WatchHandler

    def overlaps(self, addr: int, size: int) -> bool:
        """True when [addr, addr+size) intersects the watched range."""
        return addr < self.hi and addr + max(size, 1) > self.lo


class DebugRegisterFile:
    """The four debug registers of one core."""

    def __init__(self, cpu: int) -> None:
        self.cpu = cpu
        self.slots: list[Watch | None] = [None] * NUM_DEBUG_REGISTERS

    def free_slot(self) -> int | None:
        """Lowest unused register index, or None when all four are busy."""
        for i, slot in enumerate(self.slots):
            if slot is None:
                return i
        return None

    def arm(self, slot: int, watch: Watch) -> None:
        """Install *watch* in register *slot*."""
        if not 0 <= slot < NUM_DEBUG_REGISTERS:
            raise SimulationError(f"debug register slot {slot} out of range")
        if self.slots[slot] is not None:
            raise SimulationError(f"debug register {slot} on cpu {self.cpu} busy")
        self.slots[slot] = watch

    def disarm(self, slot: int) -> None:
        """Clear register *slot*."""
        self.slots[slot] = None


class WatchManager:
    """Machine-wide watchpoint coordination.

    DProf always arms the same range on *every* core simultaneously (an
    object may be touched from any core), so the manager allocates one slot
    index common to all cores per watch and keeps a line-indexed lookup
    table for a cheap hot-path check: the executor consults
    :attr:`watched_lines` before paying for a full overlap test.
    """

    def __init__(
        self,
        ncores: int,
        line_size: int,
        trap_cycles: int = DEFAULT_TRAP_CYCLES,
        max_watch_bytes: int | None = MAX_WATCH_BYTES,
    ) -> None:
        self.line_size = line_size
        self.trap_cycles = trap_cycles
        #: Widest armable range; None models the paper's wished-for
        #: "variable-size debug register" (Section 7), which removes the
        #: need for pairwise sampling entirely.
        self.max_watch_bytes = max_watch_bytes
        self.files = [DebugRegisterFile(cpu) for cpu in range(ncores)]
        self.watched_lines: dict[int, list[Watch]] = {}
        self.traps_delivered = 0
        self.traps_missed = 0
        self.arm_steals = 0
        #: Installed by the machine when a fault plan is active.
        self.faults = None
        self._next_id = 1

    @property
    def any_armed(self) -> bool:
        """Fast check used by the executor's hot path."""
        return bool(self.watched_lines)

    def free_slot(self) -> int | None:
        """A slot index free on every core, or None."""
        for i in range(NUM_DEBUG_REGISTERS):
            if all(f.slots[i] is None for f in self.files):
                return i
        return None

    def arm_all_cores(self, lo: int, length: int, handler: WatchHandler) -> Watch:
        """Arm [lo, lo+length) on every core; returns the watch handle.

        Raises :class:`SimulationError` when the range is wider than one
        debug register allows or no slot is free on all cores.
        """
        limit = self.max_watch_bytes
        if length < 1 or (limit is not None and length > limit):
            raise SimulationError(
                f"debug registers watch 1-{limit} bytes, asked {length}"
            )
        slot = self.free_slot()
        if slot is None:
            raise SimulationError("no debug register slot free on all cores")
        if self.faults is not None and self.faults.steal_debug_slot():
            # Another agent (kgdb, perf, ...) grabbed the register between
            # the free-slot check and the arm broadcast.
            self.arm_steals += 1
            raise SimulationError(
                f"debug register slot {slot} stolen by another agent"
            )
        watch = Watch(
            watch_id=self._next_id, lo=lo, hi=lo + length, slot=slot, handler=handler
        )
        self._next_id += 1
        for f in self.files:
            f.arm(slot, watch)
        for line in range(lo // self.line_size, (lo + length - 1) // self.line_size + 1):
            self.watched_lines.setdefault(line, []).append(watch)
        return watch

    def disarm(self, watch: Watch) -> None:
        """Remove *watch* from every core and the lookup table."""
        for f in self.files:
            if f.slots[watch.slot] is watch:
                f.disarm(watch.slot)
        for line in list(self.watched_lines.keys()):
            entries = self.watched_lines[line]
            entries = [w for w in entries if w.watch_id != watch.watch_id]
            if entries:
                self.watched_lines[line] = entries
            else:
                del self.watched_lines[line]

    def check(
        self, cpu: int, instr: Instr, result: AccessResult, cycle: int
    ) -> int:
        """Fire handlers for watches overlapping the access.

        Returns the total trap overhead charged to the issuing core.
        """
        first = instr.addr // self.line_size
        last = (instr.addr + max(instr.size, 1) - 1) // self.line_size
        overhead = 0
        seen: set[int] = set()
        for line in range(first, last + 1):
            for watch in self.watched_lines.get(line, ()):
                if watch.watch_id in seen:
                    continue
                if watch.overlaps(instr.addr, instr.size):
                    seen.add(watch.watch_id)
                    if self.faults is not None and self.faults.miss_watch_trap():
                        # Watchpoint misfire: the access goes untrapped, so
                        # the history silently loses this element.
                        self.traps_missed += 1
                        continue
                    self.traps_delivered += 1
                    overhead += self.trap_cycles
                    watch.handler(cpu, instr, result, cycle)
        return overhead
