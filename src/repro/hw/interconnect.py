"""Cross-core communication cost model.

DProf's object-access-history collection is dominated by cross-core
communication: arming debug registers requires an IPI broadcast to every
core (the paper measures ~130,000 cycles on 16 cores), and reserving a
to-be-allocated object with the memory subsystem costs further cross-core
round trips (part of the ~220,000-cycle per-object setup).  This module
centralizes those costs so the overhead benchmarks (Tables 6.7-6.10) and
the profiler share one model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InterconnectCosts:
    """Cycle costs of cross-core coordination.

    Defaults reproduce the paper's measurements on 16 cores:
    ``ipi_base + 16 * ipi_per_core`` ~= 130,000 cycles for a debug-register
    broadcast, and ``reserve_object`` ~= 90,000 cycles to coordinate with
    the memory subsystem, summing to the paper's ~220,000-cycle object
    setup.
    """

    ipi_base: int = 2_000
    ipi_per_core: int = 8_000
    reserve_object: int = 90_000

    def broadcast_cost(self, ncores: int) -> int:
        """Cost of notifying every core to update its debug registers."""
        return self.ipi_base + self.ipi_per_core * ncores

    def object_setup_cost(self, ncores: int) -> int:
        """Total cost of reserving an object and arming all cores."""
        return self.reserve_object + self.broadcast_cost(ncores)
