"""Core event types exchanged between the machine, caches, and profilers."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, IntEnum


class CacheLevel(IntEnum):
    """Where a memory access was ultimately served from.

    ``FOREIGN`` means another core's private cache supplied the line via a
    cache-to-cache transfer -- the expensive case the paper's data flow view
    is designed to expose.
    """

    L1 = 1
    L2 = 2
    L3 = 3
    FOREIGN = 4
    DRAM = 5

    @property
    def is_local_hit(self) -> bool:
        """True when the access hit a cache private to the issuing core."""
        return self in (CacheLevel.L1, CacheLevel.L2)


class MissKind(Enum):
    """Ground-truth cause of an L1/L2 miss, known only to the simulator.

    Real hardware does not report this; DProf has to infer it from path
    traces (Section 4.3 of the paper).  The simulator records it so tests
    can check DProf's inference against the truth.
    """

    COLD = "cold"
    INVALIDATION = "invalidation"
    EVICTION = "eviction"


@dataclass(frozen=True, slots=True)
class InvalidationRecord:
    """Why a core lost a line: a remote write invalidated its copy."""

    writer_cpu: int
    writer_ip: int
    writer_addr: int
    writer_size: int
    cycle: int


@dataclass(frozen=True, slots=True)
class EvictionRecord:
    """Why a core lost a line: set pressure evicted it from its L2."""

    set_index: int
    cycle: int


@dataclass(slots=True)
class AccessResult:
    """Outcome of one memory access through the hierarchy."""

    level: CacheLevel
    latency: int
    miss_kind: MissKind | None = None
    invalidation: InvalidationRecord | None = None
    eviction: EvictionRecord | None = None

    @property
    def l1_miss(self) -> bool:
        """True when the access missed the issuing core's L1."""
        return self.level != CacheLevel.L1

    @property
    def l2_miss(self) -> bool:
        """True when the access missed both private levels."""
        return self.level not in (CacheLevel.L1, CacheLevel.L2)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded hierarchy access, sufficient to replay it exactly.

    ``seq`` is the global record order (the machine's execution order);
    replaying a recorded trace in ``seq`` order through a fresh hierarchy
    reproduces the original run's cache state bit-for-bit.  Generated
    (synthetic) streams instead define their canonical order by
    ``(cycle, seq)`` -- see :func:`repro.hw.fastpath.merge_streams`.
    """

    seq: int
    cycle: int
    cpu: int
    addr: int
    size: int
    is_write: bool
    ip: int


@dataclass(slots=True)
class Instr:
    """One simulated instruction.

    ``kind`` is ``'load'``, ``'store'``, or ``'exec'`` (pure compute).
    ``fn`` is the symbolic name of the kernel function containing the
    instruction and ``ip`` its fake instruction pointer; profilers resolve
    ``ip`` back to ``fn`` through the symbol table.  ``work`` is the compute
    cost in cycles, charged in addition to any memory latency.
    """

    kind: str
    fn: str
    ip: int
    addr: int = 0
    size: int = 0
    work: int = 1

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.kind != "exec"

    @property
    def is_write(self) -> bool:
        """True for stores."""
        return self.kind == "store"


@dataclass(slots=True)
class Pause:
    """Yielded by a thread to sleep for a number of cycles.

    Models blocking: a polling device loop, a spinlock backoff, or a server
    waiting for requests.  The machine wakes the thread once the owning
    core's clock passes the deadline.
    """

    cycles: int
