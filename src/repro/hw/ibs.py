"""Instruction-Based Sampling (IBS) unit.

AMD IBS randomly tags roughly every Nth instruction entering the pipeline;
when the tagged instruction retires, the hardware raises an interrupt and
reports the instruction address, the data address for memory operations,
whether the access hit in the cache, where it was served from, and the
load latency.  DProf builds its access samples (Table 5.1) from exactly
this record.

The simulated unit reproduces the interface and the cost: each delivered
sample charges the interrupted core ~2,000 cycles (the paper's measured
interrupt cost -- half reading IBS registers, half interrupt entry/exit
plus address-to-type resolution), which is what makes profiling overhead
proportional to the sampling rate (Figure 6-2).

It also reproduces the lossiness: real IBS discards tagged ops that never
retire, and racy MSR reads can return garbage latencies.  When a
:class:`~repro.faults.plan.FaultInjector` is installed (see
:meth:`repro.hw.machine.Machine.install_faults`), tagged ops may be
dropped before the interrupt fires (no sample, no cost) or have their
latency field corrupted, with ``samples_dropped`` / ``samples_corrupted``
counting both so data-quality reports can quantify the loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.hw.events import AccessResult, CacheLevel, Instr
from repro.util.rng import DeterministicRng

#: Cycle cost of one IBS interrupt on the paper's test machine.
DEFAULT_IBS_INTERRUPT_CYCLES = 2_000


@dataclass(slots=True)
class IbsSample:
    """One tagged-instruction record, as the hardware would report it."""

    cycle: int
    cpu: int
    ip: int
    fn: str
    kind: str
    addr: int
    size: int
    level: CacheLevel | None
    latency: int

    @property
    def is_memory(self) -> bool:
        """True when the tagged instruction was a load or store."""
        return self.kind != "exec"

    @property
    def l1_miss(self) -> bool:
        """True when the tagged memory access missed the local L1."""
        return self.level is not None and self.level != CacheLevel.L1


IbsHandler = Callable[[IbsSample], None]


class IbsUnit:
    """Per-core IBS sampling engine.

    ``interval`` is the mean number of instructions between tags; real
    hardware randomizes the exact count, which the unit reproduces with
    deterministic jitter so experiments replay exactly.  An interval of 0
    disables sampling.
    """

    def __init__(
        self,
        cpu: int,
        rng: DeterministicRng,
        interval: int = 0,
        interrupt_cycles: int = DEFAULT_IBS_INTERRUPT_CYCLES,
    ) -> None:
        self.cpu = cpu
        self.rng = rng
        self.interval = interval
        self.interrupt_cycles = interrupt_cycles
        self.handler: IbsHandler | None = None
        self.samples_taken = 0
        self.samples_dropped = 0
        self.samples_corrupted = 0
        #: Installed by the machine when a fault plan is active.
        self.faults = None
        self._countdown = rng.jitter(interval) if interval > 0 else 0

    @property
    def enabled(self) -> bool:
        """Sampling happens only with a positive interval and a handler."""
        return self.interval > 0 and self.handler is not None

    def configure(self, interval: int, handler: IbsHandler | None) -> None:
        """(Re)program the sampling interval and delivery handler."""
        self.interval = interval
        self.handler = handler
        self._countdown = self.rng.jitter(interval) if interval > 0 else 0

    def on_instruction(
        self, instr: Instr, result: AccessResult | None, cycle: int
    ) -> int:
        """Advance the tag counter; deliver a sample when it expires.

        Returns the overhead cycles the interrupt cost the core (0 when no
        sample fired).
        """
        if not self.enabled:
            return 0
        self._countdown -= 1
        if self._countdown > 0:
            return 0
        self._countdown = self.rng.jitter(self.interval)
        if self.faults is not None and self.faults.drop_ibs_sample(self.cpu):
            # The tagged op never retired: no interrupt, no sample, no cost.
            self.samples_dropped += 1
            return 0
        self.samples_taken += 1
        latency = result.latency if result is not None else 0
        if self.faults is not None and result is not None:
            corrupted = self.faults.corrupt_ibs_latency(self.cpu, latency)
            if corrupted is not None:
                latency = corrupted
                self.samples_corrupted += 1
        sample = IbsSample(
            cycle=cycle,
            cpu=self.cpu,
            ip=instr.ip,
            fn=instr.fn,
            kind=instr.kind,
            addr=instr.addr,
            size=instr.size,
            level=result.level if result is not None else None,
            latency=latency,
        )
        self.handler(sample)  # type: ignore[misc]  # enabled implies handler
        return self.interrupt_cycles
