"""The simulated machine: cores, hierarchy, profiling units, event loop.

Threads are Python generators that yield :class:`~repro.hw.events.Instr`
(execute one instruction) or :class:`~repro.hw.events.Pause` (sleep for
some cycles).  Each thread is pinned to one core -- matching the paper's
experimental setup, where every memcached/Apache instance and every NIC
queue was pinned.  The event loop always advances the core whose clock is
furthest behind, so cross-core interactions (lock contention, cache-line
bouncing) interleave consistently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.errors import ConfigError, SimulationError
from repro.hw.core import Core
from repro.hw.debugreg import MAX_WATCH_BYTES, WatchManager
from repro.hw.events import AccessResult, Instr, Pause
from repro.hw.hierarchy import HierarchyConfig, Latencies, MemoryHierarchy
from repro.hw.interconnect import InterconnectCosts
from repro.hw.memory import AddressSpace
from repro.util.rng import DeterministicRng

ThreadBody = Generator["Instr | Pause", None, None]
AccessObserver = Callable[[int, Instr, AccessResult, int], None]
InstrObserver = Callable[[int, Instr, "AccessResult | None", int], None]


@dataclass(frozen=True)
class MachineConfig:
    """Top-level machine configuration.

    Defaults model the paper's testbed shape: 16 cores, private L1/L2,
    shared L3.  ``quantum`` is how many instructions a thread runs before
    the scheduler re-picks a core; small values interleave cores finely at
    some simulation-speed cost.
    """

    ncores: int = 16
    seed: int = 42
    quantum: int = 16
    #: Access-simulation engine: ``"reference"`` (readable OrderedDict/set
    #: implementation) or ``"fast"`` (:mod:`repro.hw.fastpath`, bit-identical
    #: results from array-backed recency counters and bitmask directory).
    engine: str = "reference"
    line_size: int = 64
    l1_size: int = 16 * 1024
    l1_ways: int = 8
    l2_size: int = 64 * 1024
    l2_ways: int = 8
    l3_size: int = 512 * 1024
    l3_ways: int = 16
    latencies: Latencies = field(default_factory=Latencies)
    interconnect: InterconnectCosts = field(default_factory=InterconnectCosts)
    #: Model the paper's Section 7 wish: debug registers that can watch a
    #: whole object instead of 8 bytes.  Off by default (real x86).
    variable_debug_registers: bool = False

    def __post_init__(self) -> None:
        if self.ncores <= 0:
            raise ConfigError("ncores must be positive")
        if self.quantum <= 0:
            raise ConfigError("quantum must be positive")
        if self.engine not in ("reference", "fast"):
            raise ConfigError(
                f"unknown engine {self.engine!r} (choose 'reference' or 'fast')"
            )

    def hierarchy_config(self) -> HierarchyConfig:
        """Derive the memory-hierarchy configuration."""
        return HierarchyConfig(
            ncores=self.ncores,
            line_size=self.line_size,
            l1_size=self.l1_size,
            l1_ways=self.l1_ways,
            l2_size=self.l2_size,
            l2_ways=self.l2_ways,
            l3_size=self.l3_size,
            l3_ways=self.l3_ways,
            latencies=self.latencies,
        )


class Thread:
    """A kernel thread pinned to one core."""

    RUNNABLE = "runnable"
    PAUSED = "paused"
    DONE = "done"

    def __init__(self, name: str, cpu: int, body: ThreadBody) -> None:
        self.name = name
        self.cpu = cpu
        self.body = body
        self.state = Thread.RUNNABLE
        self.wake_at = 0

    @property
    def done(self) -> bool:
        """True once the generator has been exhausted."""
        return self.state == Thread.DONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Thread({self.name}, cpu={self.cpu}, {self.state})"


class Machine:
    """Assembles cores, caches, and profiling units; runs threads."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or MachineConfig()
        self.rng = DeterministicRng(self.config.seed, "machine")
        self.cores = [
            Core(cpu, self.rng.child(f"core{cpu}")) for cpu in range(self.config.ncores)
        ]
        if self.config.engine == "fast":
            # Imported here: fastpath depends on this module's siblings.
            from repro.hw.fastpath import FastHierarchy

            self.hierarchy: MemoryHierarchy = FastHierarchy(
                self.config.hierarchy_config()
            )
        else:
            self.hierarchy = MemoryHierarchy(self.config.hierarchy_config())
        self.address_space = AddressSpace()
        self.watches = WatchManager(
            self.config.ncores,
            self.config.line_size,
            max_watch_bytes=(
                None if self.config.variable_debug_registers else MAX_WATCH_BYTES
            ),
        )
        self.interconnect = self.config.interconnect
        self._run_queues: list[deque[Thread]] = [
            deque() for _ in range(self.config.ncores)
        ]
        self.threads: list[Thread] = []
        self.access_observers: list[AccessObserver] = []
        self.instr_observers: list[InstrObserver] = []
        self.total_instructions = 0
        #: Optional :class:`repro.trace.SimProbe`; ticked once per
        #: scheduler step (a quantum of instructions), never per event.
        self.trace_probe = None

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------

    def spawn(self, name: str, cpu: int, body: ThreadBody) -> Thread:
        """Create a thread pinned to *cpu* and make it runnable."""
        if not 0 <= cpu < self.config.ncores:
            raise SimulationError(f"cpu {cpu} out of range")
        thread = Thread(name, cpu, body)
        self.threads.append(thread)
        self._run_queues[cpu].append(thread)
        return thread

    def add_access_observer(self, observer: AccessObserver) -> None:
        """Observe every memory access (cpu, instr, result, cycle)."""
        self.access_observers.append(observer)

    def remove_access_observer(self, observer: AccessObserver) -> None:
        """Stop observing memory accesses."""
        self.access_observers.remove(observer)

    def add_instr_observer(self, observer: InstrObserver) -> None:
        """Observe every instruction, memory or not."""
        self.instr_observers.append(observer)

    def remove_instr_observer(self, observer: InstrObserver) -> None:
        """Stop observing instructions."""
        self.instr_observers.remove(observer)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def run(
        self,
        until_cycle: int | None = None,
        stop_when: Callable[[], bool] | None = None,
        max_steps: int | None = None,
    ) -> None:
        """Run threads until a bound is hit or every thread finishes.

        ``until_cycle`` stops scheduling a core once its clock passes the
        bound; ``stop_when`` is polled between quanta; ``max_steps`` bounds
        scheduler iterations as a runaway backstop.
        """
        steps = 0
        probe = self.trace_probe
        while True:
            if stop_when is not None and stop_when():
                return
            if max_steps is not None and steps >= max_steps:
                return
            steps += 1
            if probe is not None:
                probe.tick(self)
            core = self._pick_core(until_cycle)
            if core is None:
                return
            thread = self._next_thread(core)
            if thread is None:
                # Every thread on this core sleeps: jump to the next wake.
                self._advance_to_wake(core, until_cycle)
                continue
            self._run_quantum(core, thread)

    def elapsed_cycles(self) -> int:
        """Wall-clock proxy: the furthest-ahead core's cycle count."""
        return max(core.cycle for core in self.cores)

    def _pick_core(self, until_cycle: int | None) -> Core | None:
        best: Core | None = None
        for core in self.cores:
            queue = self._run_queues[core.cpu]
            if not any(not t.done for t in queue):
                continue
            if until_cycle is not None and core.cycle >= until_cycle:
                continue
            if best is None or core.cycle < best.cycle:
                best = core
        return best

    def _next_thread(self, core: Core) -> Thread | None:
        queue = self._run_queues[core.cpu]
        for _ in range(len(queue)):
            thread = queue[0]
            queue.rotate(-1)
            if thread.done:
                queue.remove(thread)
                continue
            if thread.state == Thread.PAUSED:
                if thread.wake_at <= core.cycle:
                    thread.state = Thread.RUNNABLE
                else:
                    continue
            return thread
        return None

    def _advance_to_wake(self, core: Core, until_cycle: int | None) -> None:
        queue = self._run_queues[core.cpu]
        wakes = [t.wake_at for t in queue if t.state == Thread.PAUSED]
        if not wakes:
            return
        target = min(wakes)
        if until_cycle is not None:
            target = min(target, until_cycle)
        if target > core.cycle:
            core.cycle = target

    def _run_quantum(self, core: Core, thread: Thread) -> None:
        for _ in range(self.config.quantum):
            try:
                item = next(thread.body)
            except StopIteration:
                thread.state = Thread.DONE
                return
            if isinstance(item, Pause):
                thread.state = Thread.PAUSED
                thread.wake_at = core.cycle + max(item.cycles, 1)
                return
            self.execute(core, item)

    # ------------------------------------------------------------------
    # Instruction execution
    # ------------------------------------------------------------------

    def execute(self, core: Core, instr: Instr) -> AccessResult | None:
        """Execute one instruction on *core*, firing all attached units."""
        core.instructions += 1
        self.total_instructions += 1
        cost = instr.work
        result: AccessResult | None = None
        if instr.is_memory:
            core.mem_accesses += 1
            result = self.hierarchy.access(
                core.cpu, instr.addr, instr.size, instr.is_write, instr.ip, core.cycle
            )
            cost += result.latency
        core.cycle += cost

        if result is not None and self.watches.any_armed:
            trap_cost = self.watches.check(core.cpu, instr, result, core.cycle)
            if trap_cost:
                core.charge(trap_cost, overhead=True)

        ibs_cost = core.ibs.on_instruction(instr, result, core.cycle)
        if ibs_cost:
            core.charge(ibs_cost, overhead=True)

        for observer in self.instr_observers:
            observer(core.cpu, instr, result, core.cycle)
        if result is not None:
            for observer in self.access_observers:
                observer(core.cpu, instr, result, core.cycle)
        return result

    # ------------------------------------------------------------------
    # Profiling support
    # ------------------------------------------------------------------

    def configure_ibs(self, interval: int, handler) -> None:
        """Program IBS on every core with a shared delivery handler."""
        for core in self.cores:
            core.ibs.configure(interval, handler)

    def install_faults(self, injector) -> None:
        """Attach a fault injector to every lossy hardware unit.

        The injector (see :class:`repro.faults.plan.FaultInjector`) is
        consulted by each core's IBS unit and by the watch manager; pass
        the same object to the profiler layers that need it so one plan
        drives the whole pipeline.
        """
        for core in self.cores:
            core.ibs.faults = injector
        self.watches.faults = injector

    def clear_faults(self) -> None:
        """Detach any installed fault injector (hardware becomes perfect)."""
        for core in self.cores:
            core.ibs.faults = None
        self.watches.faults = None

    def ibs_delivery_counts(self) -> tuple[int, int, int]:
        """(delivered, dropped, corrupted) IBS samples across all cores."""
        delivered = sum(core.ibs.samples_taken for core in self.cores)
        dropped = sum(core.ibs.samples_dropped for core in self.cores)
        corrupted = sum(core.ibs.samples_corrupted for core in self.cores)
        return delivered, dropped, corrupted

    def disable_ibs(self) -> None:
        """Stop IBS sampling on every core."""
        for core in self.cores:
            core.ibs.configure(0, None)

    def total_overhead_cycles(self) -> int:
        """Profiling overhead accumulated across all cores."""
        return sum(core.overhead_cycles for core in self.cores)

    def total_cycles(self) -> int:
        """Sum of all core clocks (busy time proxy)."""
        return sum(core.cycle for core in self.cores)

    def reset_counters(self) -> None:
        """Zero per-core counters without touching caches or threads."""
        for core in self.cores:
            core.instructions = 0
            core.mem_accesses = 0
            core.overhead_cycles = 0
