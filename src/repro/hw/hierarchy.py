"""Multi-level memory hierarchy with MESI coherence.

Models an AMD-style *exclusive* private hierarchy, matching the paper's
16-core AMD testbed: each core owns an L1 and an L2 (a line lives in one or
the other, and promotion/demotion moves it between them), backed by a
shared L3 that acts as a victim cache for private evictions, backed by
DRAM.  A :class:`~repro.hw.coherence.Directory` arbitrates ownership: a
write invalidates every other core's copy, and a read that hits a line
dirty in another core's private cache is served by a cache-to-cache
("foreign") transfer -- the ~200-cycle case DProf's data flow view exists
to expose.

Every access returns an :class:`~repro.hw.events.AccessResult` carrying the
level served, the latency charged, and -- for local misses -- the
ground-truth cause (cold / invalidation / eviction) that real hardware
cannot report.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.errors import ConfigError, SimulationError
from repro.hw.cache import CacheArray, CacheGeometry
from repro.hw.coherence import Directory
from repro.hw.events import AccessResult, CacheLevel, MissKind, TraceEvent


@dataclass(frozen=True)
class Latencies:
    """Cycle cost of serving an access from each place.

    Defaults are scaled to the magnitudes the paper reports: ~3 ns local L1
    and ~200 ns foreign-cache loads (Table 4.1), treating one cycle as one
    nanosecond.  ``upgrade`` is the extra cost of a write hitting a line
    that other cores share (the invalidation round-trip).
    """

    l1: int = 3
    l2: int = 14
    l3: int = 40
    foreign: int = 200
    foreign_clean: int = 120
    dram: int = 250
    upgrade: int = 60

    def for_level(self, level: CacheLevel) -> int:
        """Base latency for a given serve level (dirty-foreign for FOREIGN)."""
        return {
            CacheLevel.L1: self.l1,
            CacheLevel.L2: self.l2,
            CacheLevel.L3: self.l3,
            CacheLevel.FOREIGN: self.foreign,
            CacheLevel.DRAM: self.dram,
        }[level]


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latency configuration for the whole hierarchy.

    Cache sizes default to a scaled-down hierarchy (see DESIGN.md): the
    simulated workloads push thousands rather than millions of objects, so
    proportionally smaller caches reproduce the same capacity and conflict
    phenomena the paper observed at production traffic volumes.
    """

    ncores: int = 16
    line_size: int = 64
    l1_size: int = 16 * 1024
    l1_ways: int = 8
    l2_size: int = 64 * 1024
    l2_ways: int = 8
    l3_size: int = 512 * 1024
    l3_ways: int = 16
    latencies: Latencies = field(default_factory=Latencies)

    def __post_init__(self) -> None:
        if self.ncores <= 0:
            raise ConfigError("ncores must be positive")

    def l1_geometry(self) -> CacheGeometry:
        """Geometry of each private L1."""
        return CacheGeometry(self.l1_size, self.l1_ways, self.line_size)

    def l2_geometry(self) -> CacheGeometry:
        """Geometry of each private L2."""
        return CacheGeometry(self.l2_size, self.l2_ways, self.line_size)

    def l3_geometry(self) -> CacheGeometry:
        """Geometry of the shared L3."""
        return CacheGeometry(self.l3_size, self.l3_ways, self.line_size)


class HierarchyStats:
    """Aggregate hit/miss counters across the hierarchy.

    Beyond the level/miss-kind tallies the differential harness diffs,
    the stats also accumulate per-level latency sums and a per-line
    accessor bitmask -- the raw inputs :mod:`repro.metrics` derives MPKI,
    average miss latency, and the sharing ratio from.  Both live engines
    share this accounting because :class:`FastHierarchy` inherits
    :meth:`MemoryHierarchy.access`, so derived metrics are engine-exact
    by construction.
    """

    def __init__(self) -> None:
        self.accesses = 0
        self.level_counts: dict[CacheLevel, int] = {level: 0 for level in CacheLevel}
        self.miss_kind_counts: dict[MissKind, int] = {kind: 0 for kind in MissKind}
        #: Cycles spent serving accesses, bucketed by the level that
        #: served them (a split access charges its summed latency to the
        #: worst level encountered, mirroring how the stall is reported).
        self.latency_by_level: dict[CacheLevel, int] = {
            level: 0 for level in CacheLevel
        }
        #: line index -> bitmask of cpus that ever touched the line.
        self._line_users: dict[int, int] = {}

    def record(
        self,
        result: AccessResult,
        cpu: int | None = None,
        first_line: int | None = None,
        last_line: int | None = None,
    ) -> None:
        """Fold one access outcome into the counters."""
        self.accesses += 1
        self.level_counts[result.level] += 1
        self.latency_by_level[result.level] += result.latency
        if result.miss_kind is not None:
            self.miss_kind_counts[result.miss_kind] += 1
        if cpu is not None and first_line is not None:
            bit = 1 << cpu
            users = self._line_users
            for line in range(first_line, (last_line or first_line) + 1):
                users[line] = users.get(line, 0) | bit

    @property
    def l1_miss_rate(self) -> float:
        """Fraction of accesses not served by the issuing core's L1."""
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.level_counts[CacheLevel.L1] / self.accesses

    def snapshot(self) -> dict:
        """Plain-dict view of every counter, for comparison and JSON.

        The differential harness (tests/test_fastpath_equivalence.py and
        ``repro.bench``) diffs two engines' snapshots; any key-for-key
        mismatch is an equivalence failure.
        """
        return {
            "accesses": self.accesses,
            "levels": {level.name: n for level, n in self.level_counts.items()},
            "miss_kinds": {
                kind.value: n for kind, n in self.miss_kind_counts.items()
            },
        }

    def metrics_counters(self) -> dict:
        """Raw counters for :mod:`repro.metrics`, superset of snapshot().

        Kept separate from :meth:`snapshot` so the replay engine's
        equivalence contract (``stats_snapshot() == snapshot()``) stays
        untouched.
        """
        lines_total = len(self._line_users)
        lines_shared = sum(
            1 for mask in self._line_users.values() if mask & (mask - 1)
        )
        counters = self.snapshot()
        counters["latency_by_level"] = {
            level.name: n for level, n in self.latency_by_level.items()
        }
        counters["lines_total"] = lines_total
        counters["lines_shared"] = lines_shared
        return counters


class MemoryHierarchy:
    """Per-core L1/L2 (exclusive), shared victim L3, MESI directory."""

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        self.line_size = config.line_size
        self.l1 = [
            CacheArray(config.l1_geometry(), f"L1.{i}") for i in range(config.ncores)
        ]
        self.l2 = [
            CacheArray(config.l2_geometry(), f"L2.{i}") for i in range(config.ncores)
        ]
        self.l3 = CacheArray(config.l3_geometry(), "L3")
        self.directory = Directory(config.ncores)
        self.latencies = config.latencies
        self.stats = HierarchyStats()
        #: When set to a list, every ``access()`` call appends a
        #: :class:`~repro.hw.events.TraceEvent` before simulating it, so
        #: the run can later be replayed through another engine.  Prefer
        #: :meth:`record_trace`, which guarantees detachment.
        self.trace_sink: list[TraceEvent] | None = None

    @contextlib.contextmanager
    def record_trace(self, sink: list[TraceEvent] | None = None):
        """Attach a trace sink for the duration of a ``with`` block.

        Detaches in a ``finally``, so a run that raises mid-session (a
        crashed workload, an injected fault escalating) cannot leave the
        sink attached and silently pollute the next recording in the
        same process.  Nesting is refused: a sink swap mid-recording
        would split one run's trace across two lists.
        """
        if self.trace_sink is not None:
            raise SimulationError("trace recording already active")
        sink = [] if sink is None else sink
        self.trace_sink = sink
        try:
            yield sink
        finally:
            self.trace_sink = None

    # ------------------------------------------------------------------
    # Main access path
    # ------------------------------------------------------------------

    def access(
        self,
        cpu: int,
        addr: int,
        size: int,
        is_write: bool,
        ip: int,
        cycle: int,
    ) -> AccessResult:
        """Run one access through the hierarchy and return its outcome.

        Accesses spanning multiple lines (a field straddling a line
        boundary) touch each line in turn; the reported level is the worst
        one encountered and latencies add up, mirroring how a split access
        stalls on its slowest half.
        """
        sink = self.trace_sink
        if sink is not None:
            sink.append(
                TraceEvent(
                    seq=len(sink),
                    cycle=cycle,
                    cpu=cpu,
                    addr=addr,
                    size=size,
                    is_write=is_write,
                    ip=ip,
                )
            )
        first = addr // self.line_size
        last = (addr + max(size, 1) - 1) // self.line_size
        result = self._access_line(cpu, first, is_write, ip, addr, size, cycle)
        for line in range(first + 1, last + 1):
            extra = self._access_line(cpu, line, is_write, ip, addr, size, cycle)
            result.latency += extra.latency
            if extra.level > result.level:
                result.level = extra.level
                result.miss_kind = extra.miss_kind
                result.invalidation = extra.invalidation
                result.eviction = extra.eviction
        self.stats.record(result, cpu=cpu, first_line=first, last_line=last)
        return result

    def _access_line(
        self,
        cpu: int,
        line: int,
        is_write: bool,
        ip: int,
        addr: int,
        size: int,
        cycle: int,
    ) -> AccessResult:
        lat = self.latencies
        l1 = self.l1[cpu]
        l2 = self.l2[cpu]

        if l1.lookup(line):
            latency = lat.l1
            if is_write:
                latency += self._write_upgrade(cpu, line, ip, addr, size, cycle)
            return AccessResult(level=CacheLevel.L1, latency=latency)

        if l2.lookup(line):
            # Exclusive hierarchy: promote to L1, demoting an L1 victim.
            l2.remove(line)
            self._insert_private(cpu, line, cycle)
            latency = lat.l2
            if is_write:
                latency += self._write_upgrade(cpu, line, ip, addr, size, cycle)
            return AccessResult(level=CacheLevel.L2, latency=latency)

        # Local miss: recover the ground-truth cause before the directory
        # state is mutated by the fill below.
        inv, ev = self.directory.take_loss_record(cpu, line)
        if inv is not None:
            miss_kind = MissKind.INVALIDATION
        elif ev is not None:
            miss_kind = MissKind.EVICTION
        else:
            miss_kind = MissKind.COLD

        dirty_owner = self.directory.dirty_elsewhere(cpu, line)
        if dirty_owner is not None:
            level = CacheLevel.FOREIGN
            latency = lat.foreign
            # Serving a dirty line writes it back into the shared L3.
            self.l3.insert(line)
        elif self.l3.lookup(line):
            level = CacheLevel.L3
            latency = lat.l3
        elif self.directory.holders_of(line) - {cpu}:
            # Clean copy exists only in another core's private cache.
            level = CacheLevel.FOREIGN
            latency = lat.foreign_clean
        else:
            level = CacheLevel.DRAM
            latency = lat.dram

        if is_write:
            losers = self.directory.record_write(cpu, line, ip, addr, size, cycle)
            for loser in losers:
                self.l1[loser].remove(line)
                self.l2[loser].remove(line)
        else:
            self.directory.record_read(cpu, line)

        self._insert_private(cpu, line, cycle)
        return AccessResult(
            level=level,
            latency=latency,
            miss_kind=miss_kind,
            invalidation=inv,
            eviction=ev,
        )

    def _write_upgrade(
        self, cpu: int, line: int, ip: int, addr: int, size: int, cycle: int
    ) -> int:
        """Invalidate other holders on a write hit; return the extra cost."""
        other = self.directory.holders_of(line) - {cpu}
        losers = self.directory.record_write(cpu, line, ip, addr, size, cycle)
        for loser in losers:
            self.l1[loser].remove(line)
            self.l2[loser].remove(line)
        return self.latencies.upgrade if other else 0

    def _insert_private(self, cpu: int, line: int, cycle: int) -> None:
        """Insert *line* into the core's L1, cascading evictions downward."""
        victim = self.l1[cpu].insert(line)
        if victim is None or victim == line:
            return
        victim2 = self.l2[cpu].insert(victim)
        if victim2 is None:
            return
        # The line leaves the private domain entirely: record why (set
        # pressure), drop it into the shared victim L3, and release the
        # directory holder bit.
        set_index = self.l2[cpu].geometry.set_of(victim2)
        self.directory.record_eviction(cpu, victim2, set_index, cycle)
        self.l3.insert(victim2)

    # ------------------------------------------------------------------
    # Introspection helpers (tests, working-set validation)
    # ------------------------------------------------------------------

    def cache_counters(self) -> dict[str, tuple[int, int, int]]:
        """Per-cache (hits, misses, evictions), keyed by cache name."""
        counters: dict[str, tuple[int, int, int]] = {}
        for cache in [*self.l1, *self.l2, self.l3]:
            counters[cache.name] = (cache.hits, cache.misses, cache.evictions)
        return counters

    def replacement_snapshot(self) -> dict[str, tuple]:
        """Full LRU state of every cache array, keyed by cache name.

        Two engines that agree on this after a run agree on every future
        eviction decision -- the strongest equivalence short of diffing
        each access.
        """
        return {
            cache.name: cache.lru_snapshot()
            for cache in [*self.l1, *self.l2, self.l3]
        }

    def core_holds(self, cpu: int, addr: int) -> bool:
        """True when the line containing *addr* sits in cpu's L1 or L2."""
        line = addr // self.line_size
        return self.l1[cpu].contains(line) or self.l2[cpu].contains(line)

    def private_occupancy(self, cpu: int) -> int:
        """Lines resident across the core's private L1+L2."""
        return self.l1[cpu].occupancy() + self.l2[cpu].occupancy()

    def flush_all(self) -> None:
        """Empty every cache and forget coherence state (run boundary)."""
        for cache in self.l1:
            cache.clear()
        for cache in self.l2:
            cache.clear()
        self.l3.clear()
        self.directory = Directory(self.config.ncores)
