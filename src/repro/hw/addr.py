"""Address arithmetic: cache lines and associativity sets.

All simulated addresses are plain integers in a flat physical address
space.  A *line* is identified by ``addr // line_size``; an associativity
set by ``line % num_sets``.  DProf's working-set view (Section 4.2) needs
exactly this mapping to build its associativity-set histogram, so the same
helpers are reused by both the hardware model and the profiler.
"""

from __future__ import annotations

from typing import Iterator

PAGE_SIZE = 4096


def line_of(addr: int, line_size: int) -> int:
    """Cache line index containing *addr*."""
    return addr // line_size


def line_base(addr: int, line_size: int) -> int:
    """First byte address of the line containing *addr*."""
    return (addr // line_size) * line_size


def lines_spanned(addr: int, size: int, line_size: int) -> Iterator[int]:
    """Yield every line index touched by the range [addr, addr+size).

    A zero-byte access still touches the line containing *addr*, which
    matches how debug-register watchpoints behave.
    """
    first = addr // line_size
    last = (addr + max(size, 1) - 1) // line_size
    for line in range(first, last + 1):
        yield line


def set_index(line: int, num_sets: int) -> int:
    """Associativity set a line maps to."""
    return line % num_sets


def page_of(addr: int) -> int:
    """Page number containing *addr* (4 KiB pages)."""
    return addr // PAGE_SIZE


def align_up(addr: int, alignment: int) -> int:
    """Round *addr* up to the next multiple of *alignment*."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return (addr + alignment - 1) // alignment * alignment
