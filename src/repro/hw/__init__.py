"""Simulated multicore hardware.

The paper's DProf implementation relies on three hardware facilities:

1. a multicore cache hierarchy whose misses it wants to explain,
2. AMD Instruction-Based Sampling (IBS), which randomly tags instructions
   and reports their data address, cache level served, and access latency,
3. x86 debug registers, which trap every load/store to a watched range.

This package simulates all three.  The simulation is event-accurate rather
than cycle-accurate: each core owns a cycle clock that advances by the
compute and memory cost of every instruction it executes, and a MESI
directory arbitrates line ownership between cores.  Unlike real hardware,
the simulation also records the *ground-truth cause* of every miss
(cold / invalidation / eviction), which the test suite uses to validate
DProf's statistical inference.
"""

from repro.hw.events import AccessResult, CacheLevel, Instr, MissKind, Pause, TraceEvent
from repro.hw.cache import CacheArray, CacheGeometry
from repro.hw.fastpath import (
    BatchReplayEngine,
    FastCacheArray,
    FastDirectory,
    FastHierarchy,
    LineInterner,
    build_synthetic_trace,
    encode_trace,
    merge_streams,
    replay_fast,
    replay_reference,
)
from repro.hw.hierarchy import HierarchyConfig, Latencies, MemoryHierarchy
from repro.hw.machine import Machine, MachineConfig, Thread

__all__ = [
    "AccessResult",
    "CacheLevel",
    "Instr",
    "MissKind",
    "Pause",
    "TraceEvent",
    "CacheArray",
    "CacheGeometry",
    "BatchReplayEngine",
    "FastCacheArray",
    "FastDirectory",
    "FastHierarchy",
    "LineInterner",
    "build_synthetic_trace",
    "encode_trace",
    "merge_streams",
    "replay_fast",
    "replay_reference",
    "HierarchyConfig",
    "Latencies",
    "MemoryHierarchy",
    "Machine",
    "MachineConfig",
    "Thread",
]
