"""Intel PEBS-style precise event-based sampling.

The paper notes DProf is hardware-portable: "Both Intel PEBS and AMD IBS
can capture the addresses used by load and store instructions and access
latencies for load instructions.  DProf can use PEBS on Intel hardware to
collect statistics."  PEBS differs from IBS in ways that matter to a
profiler:

- it samples only instructions matching a *programmed event* (e.g. loads
  whose latency exceeds a threshold -- Intel's load-latency facility),
  rather than tagging arbitrary instructions;
- Intel's counter set is richer: it can count lines fetched in the
  Modified state from remote caches (HITM), which is how Intel PTU
  detects false sharing.

The simulated unit is built as a machine observer (no core changes): it
filters memory accesses by event, applies a sampling interval with
jitter, charges an interrupt per delivered sample, and maintains per-line
HITM counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.hw.events import AccessResult, CacheLevel, Instr
from repro.hw.machine import Machine
from repro.util.rng import DeterministicRng

#: Cycle cost of one PEBS assist (comparable to an IBS interrupt).
DEFAULT_PEBS_INTERRUPT_CYCLES = 1_800


@dataclass(frozen=True)
class PebsEvent:
    """What the counter is programmed to sample.

    ``kind`` selects loads, stores, or both; ``latency_threshold`` models
    the load-latency facility (only accesses at least this slow match);
    ``hitm_only`` restricts to remote-modified fetches (the PTU
    false-sharing event).
    """

    kind: str = "loads"  # 'loads' | 'stores' | 'all'
    latency_threshold: int = 0
    hitm_only: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("loads", "stores", "all"):
            raise ConfigError(f"unknown PEBS event kind {self.kind!r}")

    def matches(self, instr: Instr, result: AccessResult) -> bool:
        """Does this access match the programmed event?"""
        if self.kind == "loads" and instr.is_write:
            return False
        if self.kind == "stores" and not instr.is_write:
            return False
        if result.latency < self.latency_threshold:
            return False
        if self.hitm_only and result.level != CacheLevel.FOREIGN:
            return False
        return True


@dataclass(slots=True)
class PebsSample:
    """One precise sample: like an IBS record, plus the HITM flag."""

    cycle: int
    cpu: int
    ip: int
    fn: str
    addr: int
    size: int
    is_write: bool
    level: CacheLevel
    latency: int

    @property
    def hitm(self) -> bool:
        """Line was supplied by a remote cache (Modified-state fetch)."""
        return self.level == CacheLevel.FOREIGN

    @property
    def l1_miss(self) -> bool:
        """The access missed the local L1."""
        return self.level != CacheLevel.L1


PebsHandler = Callable[[PebsSample], None]


class PebsUnit:
    """Machine-wide PEBS sampling plus HITM line counters.

    Unlike the per-core IBS units (which the machine owns), PEBS attaches
    as an access observer; ``attach``/``detach`` control its lifetime.
    """

    def __init__(
        self,
        machine: Machine,
        event: PebsEvent,
        interval: int,
        handler: PebsHandler,
        seed: int = 7,
        interrupt_cycles: int = DEFAULT_PEBS_INTERRUPT_CYCLES,
    ) -> None:
        if interval <= 0:
            raise ConfigError("PEBS interval must be positive")
        self.machine = machine
        self.event = event
        self.interval = interval
        self.handler = handler
        self.interrupt_cycles = interrupt_cycles
        self.rng = DeterministicRng(seed, "pebs")
        self.samples_taken = 0
        #: line index -> HITM fetch count (always-on counter, free).
        self.hitm_by_line: Counter = Counter()
        #: line index -> L1-miss count (the PTU pairing counter).
        self.miss_by_line: Counter = Counter()
        self._countdown = self.rng.jitter(interval)
        self._attached = False

    def attach(self) -> None:
        """Start observing memory accesses."""
        if not self._attached:
            self.machine.add_access_observer(self._on_access)
            self._attached = True

    def detach(self) -> None:
        """Stop observing."""
        if self._attached:
            self.machine.remove_access_observer(self._on_access)
            self._attached = False

    def _on_access(
        self, cpu: int, instr: Instr, result: AccessResult, cycle: int
    ) -> None:
        line = instr.addr // self.machine.config.line_size
        if result.level == CacheLevel.FOREIGN:
            self.hitm_by_line[line] += 1
        if result.l1_miss:
            self.miss_by_line[line] += 1
        if not self.event.matches(instr, result):
            return
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.rng.jitter(self.interval)
        self.samples_taken += 1
        self.machine.cores[cpu].charge(self.interrupt_cycles, overhead=True)
        self.handler(
            PebsSample(
                cycle=cycle,
                cpu=cpu,
                ip=instr.ip,
                fn=instr.fn,
                addr=instr.addr,
                size=instr.size,
                is_write=instr.is_write,
                level=result.level,
                latency=result.latency,
            )
        )

    # ------------------------------------------------------------------
    # The Intel-counter analysis PTU performs
    # ------------------------------------------------------------------

    def sharing_suspect_lines(self, min_hitm: int = 4) -> list[tuple[int, int, int]]:
        """Cache lines that look falsely/truly shared.

        Intel PTU's recipe: combine local-miss counts with remote
        Modified-state fetches; lines with both are sharing suspects.
        Returns (line, hitm_count, miss_count) ranked by HITM.
        """
        out = []
        for line, hitm in self.hitm_by_line.most_common():
            if hitm < min_hitm:
                break
            out.append((line, hitm, self.miss_by_line.get(line, 0)))
        return out
