"""Command-line interface: run the reproduction's workloads and views.

Usage::

    python -m repro.cli memcached [--cores N] [--fixed] [--duration CYCLES]
    python -m repro.cli apache    [--cores N] [--period CYCLES] [--admission N]
    python -m repro.cli diagnose  [--cores N]

``memcached`` and ``apache`` run the case-study workloads under DProf and
print the data profile plus throughput (with or without the paper's
fixes); ``diagnose`` runs the automated diagnosis pipeline against the
misconfigured memcached workload.

Every command accepts ``--inject-faults SPEC`` (e.g.
``--inject-faults ibs_drop=0.1,history_truncation=0.2,seed=7``) to run
the pipeline over deterministically lossy hardware; the run then prints a
data-quality report and the exit code reflects the damage (0 = full data,
3 = degraded, 4 = less than half the intended data survived).
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import LockStatReport
from repro.dprof import DataQuality, Diagnosis, DProf, DProfConfig
from repro.errors import FaultInjectionError
from repro.faults import FaultPlan
from repro.fixes import apply_admission_control, install_local_queue_selection
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel
from repro.workloads import ApacheConfig, ApacheWorkload, MemcachedWorkload


def _fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    """Parse --inject-faults; exits with a usage error on a bad spec."""
    spec = getattr(args, "inject_faults", None)
    if not spec:
        return None
    try:
        return FaultPlan.parse(spec)
    except FaultInjectionError as exc:
        raise SystemExit(f"--inject-faults: {exc}")


def _report_quality(dprof: DProf, plan: FaultPlan | None) -> int:
    """Print the quality report when faulted; return the session exit code."""
    quality: DataQuality = dprof.data_quality()
    if plan is not None or quality.degraded:
        print()
        print(quality.render())
    return quality.exit_code()


def _profiled_memcached(
    cores: int,
    fixed: bool,
    duration: int,
    interval: int,
    faults: FaultPlan | None = None,
    engine: str = "reference",
):
    kernel = Kernel(MachineConfig(ncores=cores, seed=11, engine=engine))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    if fixed:
        install_local_queue_selection(workload.stack.dev)
    dprof = DProf(kernel, DProfConfig(ibs_interval=interval), faults=faults)
    dprof.attach()
    result = workload.run(duration, warmup_cycles=duration // 5)
    dprof.detach()
    return kernel, workload, dprof, result


def cmd_memcached(args: argparse.Namespace) -> int:
    plan = _fault_plan(args)
    kernel, _workload, dprof, result = _profiled_memcached(
        args.cores,
        args.fixed,
        args.duration,
        args.interval,
        faults=plan,
        engine=args.engine,
    )
    label = "fixed (local TX queues)" if args.fixed else "stock (skb_tx_hash)"
    print(f"memcached on {args.cores} cores, {label}")
    print(f"throughput: {result.throughput:.1f} requests/Mcycle")
    print()
    print(dprof.data_profile().render(args.top))
    print()
    print(LockStatReport(kernel.lockstat, kernel.machine.total_cycles()).render(5))
    return _report_quality(dprof, plan)


def cmd_apache(args: argparse.Namespace) -> int:
    plan = _fault_plan(args)
    kernel = Kernel(MachineConfig(ncores=args.cores, seed=11, engine=args.engine))
    workload = ApacheWorkload(
        kernel, config=ApacheConfig(arrival_period=args.period)
    )
    workload.setup()
    if args.admission:
        apply_admission_control(workload.listeners.values(), args.admission)
    dprof = DProf(kernel, DProfConfig(ibs_interval=args.interval), faults=plan)
    dprof.attach()
    result = workload.run(args.duration, warmup_cycles=args.duration)
    dprof.detach()
    mode = f"admission={args.admission}" if args.admission else "stock backlog"
    print(
        f"apache on {args.cores} cores, 1 conn / {args.period} cycles/core, {mode}"
    )
    print(f"throughput: {result.throughput:.1f} requests/Mcycle")
    print(f"mean accept wait: {workload.mean_accept_wait():,.0f} cycles")
    print(f"connections dropped: {workload.total_dropped()}")
    print()
    print(dprof.data_profile().render(args.top))
    return _report_quality(dprof, plan)


def cmd_diagnose(args: argparse.Namespace) -> int:
    plan = _fault_plan(args)
    kernel = Kernel(MachineConfig(ncores=args.cores, seed=52, engine=args.engine))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    workload.start()
    kernel.run(until_cycle=150_000)
    dprof = DProf(kernel, DProfConfig(ibs_interval=args.interval), faults=plan)
    dprof.attach()
    kernel.run(until_cycle=kernel.elapsed_cycles() + 600_000)
    dprof.collect_histories(
        "skbuff", sets=3, hot_chunks=4, member_offsets=[0], pair=True
    )
    kernel.run(
        until_cycle=kernel.elapsed_cycles() + 15_000_000,
        stop_when=lambda: dprof.histories_done,
    )
    dprof.detach()
    print(Diagnosis(dprof).render(args.top))
    return _report_quality(dprof, plan)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DProf reproduction workloads"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_flag(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--engine",
            choices=("reference", "fast"),
            default="reference",
            help=(
                "access-simulation engine; 'fast' uses repro.hw.fastpath, "
                "which is bit-identical to 'reference' but quicker "
                "(equivalence is enforced by tests/test_fastpath_equivalence.py)"
            ),
        )

    def add_fault_flag(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--inject-faults",
            metavar="SPEC",
            default=None,
            help=(
                "deterministic fault plan, e.g. "
                "ibs_drop=0.1,history_truncation=0.2,seed=7 "
                "(models: ibs_drop, ibs_latency, debugreg_steal, "
                "trap_miss, history_truncation)"
            ),
        )

    mc = sub.add_parser("memcached", help="run the Section 6.1 workload")
    mc.add_argument("--cores", type=int, default=8)
    mc.add_argument("--fixed", action="store_true", help="apply the +57%% fix")
    mc.add_argument("--duration", type=int, default=600_000)
    mc.add_argument("--interval", type=int, default=400)
    mc.add_argument("--top", type=int, default=8)
    add_engine_flag(mc)
    add_fault_flag(mc)
    mc.set_defaults(func=cmd_memcached)

    ap = sub.add_parser("apache", help="run the Section 6.2 workload")
    ap.add_argument("--cores", type=int, default=8)
    ap.add_argument("--period", type=int, default=22_000)
    ap.add_argument("--admission", type=int, default=0, help="backlog cap (0=off)")
    ap.add_argument("--duration", type=int, default=1_000_000)
    ap.add_argument("--interval", type=int, default=400)
    ap.add_argument("--top", type=int, default=8)
    add_engine_flag(ap)
    add_fault_flag(ap)
    ap.set_defaults(func=cmd_apache)

    dg = sub.add_parser("diagnose", help="automated diagnosis on memcached")
    dg.add_argument("--cores", type=int, default=8)
    dg.add_argument("--interval", type=int, default=300)
    dg.add_argument("--top", type=int, default=6)
    add_engine_flag(dg)
    add_fault_flag(dg)
    dg.set_defaults(func=cmd_diagnose)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
