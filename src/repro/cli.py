"""Command-line interface: run the reproduction's workloads and views.

Usage::

    python -m repro.cli memcached [--cores N] [--fixed] [--duration CYCLES]
    python -m repro.cli apache    [--cores N] [--period CYCLES] [--admission N]
    python -m repro.cli diagnose  [--cores N]
    python -m repro.cli list-scenarios

    python -m repro.cli serve     [--workers N] [--port P] [--store DIR]
    python -m repro.cli cluster   [--node-id NAME] [--store DIR] [...]
    python -m repro.cli submit    --scenario NAME [--wait] [...]
    python -m repro.cli status    [JOB_ID]
    python -m repro.cli fetch     JOB_ID [--view NAME] [--type TYPE]
    python -m repro.cli run-once  --scenario NAME [--store DIR]

``memcached`` and ``apache`` run the case-study workloads under DProf and
print the data profile plus throughput (with or without the paper's
fixes); ``diagnose`` runs the automated diagnosis pipeline against the
misconfigured memcached workload.

``serve`` turns the process into a long-running profiling service
(:mod:`repro.serve`); ``submit``/``status``/``fetch`` are its client
trio, and ``run-once`` executes one job spec inline through the exact
code path the service workers use -- its stored archive is bit-identical
to what a server produces for the same spec.

Every profiling command accepts ``--inject-faults SPEC`` (e.g.
``--inject-faults ibs_drop=0.1,history_truncation=0.2,seed=7``) to run
the pipeline over deterministically lossy hardware; one-shot runs then
print a data-quality report and exit 0/3/4 (full/degraded/poor), while
service jobs report status ok/degraded/failed instead.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from repro import __version__
from repro.baselines import LockStatReport
from repro.config import RunConfig
from repro.dprof.diagnosis import Diagnosis
from repro.dprof.profiler import DProf
from repro.dprof.quality import DataQuality
from repro.errors import FaultInjectionError, ProtocolError, ServeError, TraceError
from repro.faults import FaultPlan
from repro.fixes import apply_admission_control, install_local_queue_selection
from repro.kernel import Kernel
from repro.workloads import (
    SCENARIO_DEFAULTS,
    ApacheConfig,
    ApacheWorkload,
    MemcachedWorkload,
)


def _fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    """Parse --inject-faults; exits with a usage error on a bad spec."""
    spec = getattr(args, "inject_faults", None)
    if not spec:
        return None
    try:
        return FaultPlan.parse(spec)
    except FaultInjectionError as exc:
        raise SystemExit(f"--inject-faults: {exc}")


def _report_quality(dprof: DProf, plan: FaultPlan | None) -> int:
    """Print the quality report when faulted; return the session exit code."""
    quality: DataQuality = dprof.data_quality()
    if plan is not None or quality.degraded:
        print()
        print(quality.render())
    return quality.exit_code()


def _run_config(args: argparse.Namespace, seed: int) -> RunConfig:
    """The unified RunConfig implied by a command's shared flags."""
    return RunConfig(seed=seed, engine=args.engine, analysis=args.analysis)


def _profiled_memcached(
    cores: int,
    fixed: bool,
    duration: int,
    interval: int,
    faults: FaultPlan | None = None,
    run: RunConfig | None = None,
):
    run = run or RunConfig(seed=11)
    kernel = Kernel(run.machine_config(ncores=cores))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    if fixed:
        install_local_queue_selection(workload.stack.dev)
    dprof = DProf(
        kernel,
        run.dprof_config(ibs_interval=interval),
        faults=faults,
    )
    dprof.attach()
    result = workload.run(duration, warmup_cycles=duration // 5)
    dprof.detach()
    return kernel, workload, dprof, result


def cmd_memcached(args: argparse.Namespace) -> int:
    plan = _fault_plan(args)
    kernel, _workload, dprof, result = _profiled_memcached(
        args.cores,
        args.fixed,
        args.duration,
        args.interval,
        faults=plan,
        run=_run_config(args, seed=11),
    )
    label = "fixed (local TX queues)" if args.fixed else "stock (skb_tx_hash)"
    print(f"memcached on {args.cores} cores, {label}")
    print(f"throughput: {result.throughput:.1f} requests/Mcycle")
    print()
    print(dprof.data_profile().render(args.top))
    print()
    print(LockStatReport(kernel.lockstat, kernel.machine.total_cycles()).render(5))
    return _report_quality(dprof, plan)


def cmd_apache(args: argparse.Namespace) -> int:
    plan = _fault_plan(args)
    run = _run_config(args, seed=11)
    kernel = Kernel(run.machine_config(ncores=args.cores))
    workload = ApacheWorkload(
        kernel, config=ApacheConfig(arrival_period=args.period)
    )
    workload.setup()
    if args.admission:
        apply_admission_control(workload.listeners.values(), args.admission)
    dprof = DProf(
        kernel,
        run.dprof_config(ibs_interval=args.interval),
        faults=plan,
    )
    dprof.attach()
    result = workload.run(args.duration, warmup_cycles=args.duration)
    dprof.detach()
    mode = f"admission={args.admission}" if args.admission else "stock backlog"
    print(
        f"apache on {args.cores} cores, 1 conn / {args.period} cycles/core, {mode}"
    )
    print(f"throughput: {result.throughput:.1f} requests/Mcycle")
    print(f"mean accept wait: {workload.mean_accept_wait():,.0f} cycles")
    print(f"connections dropped: {workload.total_dropped()}")
    print()
    print(dprof.data_profile().render(args.top))
    return _report_quality(dprof, plan)


def cmd_diagnose(args: argparse.Namespace) -> int:
    plan = _fault_plan(args)
    run = _run_config(args, seed=52)
    kernel = Kernel(run.machine_config(ncores=args.cores))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    workload.start()
    kernel.run(until_cycle=150_000)
    dprof = DProf(
        kernel,
        run.dprof_config(ibs_interval=args.interval),
        faults=plan,
    )
    dprof.attach()
    kernel.run(until_cycle=kernel.elapsed_cycles() + 600_000)
    dprof.collect_histories(
        "skbuff", sets=3, hot_chunks=4, member_offsets=[0], pair=True
    )
    kernel.run(
        until_cycle=kernel.elapsed_cycles() + 15_000_000,
        stop_when=lambda: dprof.histories_done,
    )
    dprof.detach()
    print(Diagnosis(dprof).render(args.top))
    return _report_quality(dprof, plan)


def cmd_list_scenarios(_args: argparse.Namespace) -> int:
    """Print the SCENARIOS registry: defaults, description, parameters.

    Kernel families are parameterized, so each scenario also lists its
    parameter schema (the spec knobs and their defaults) on an indented
    ``params:`` line.
    """
    print(
        f"{'scenario':<16} {'cores':>5} {'duration':>9} {'interval':>8}  description"
    )
    for name in sorted(SCENARIO_DEFAULTS):
        defaults = SCENARIO_DEFAULTS[name]
        print(
            f"{name:<16} {defaults.cores:>5} {defaults.duration:>9} "
            f"{defaults.interval:>8}  {defaults.description}"
        )
        print(f"{'':<16} params: {defaults.params}")
    return 0


# ----------------------------------------------------------------------
# Profiling-as-a-service commands (repro.serve)
# ----------------------------------------------------------------------


def _spec_from_args(args: argparse.Namespace):
    """A validated JobSpec from submit/run-once flags (SystemExit on junk)."""
    from repro.serve.jobs import JobSpec

    run = RunConfig(
        seed=args.seed,
        engine=args.engine,
        analysis=args.analysis,
        trace=bool(getattr(args, "trace", False)),
    )
    try:
        return JobSpec.create(
            scenario=args.scenario,
            cores=args.cores,
            duration=args.duration,
            interval=args.interval,
            fault_spec=args.inject_faults,
            priority=getattr(args, "priority", 0),
            run=run,
        )
    except ServeError as exc:
        raise SystemExit(f"bad job spec: {exc}")


def _rpc(args: argparse.Namespace, message: dict) -> dict:
    """One request to the server named by --host/--port; SystemExit on
    connection or protocol trouble so scripts get a clean error."""
    from repro.serve.protocol import request_once

    try:
        return request_once(args.host, args.port, message, timeout=args.timeout)
    except (ConnectionError, OSError, ProtocolError) as exc:
        raise SystemExit(f"cannot reach server at {args.host}:{args.port}: {exc}")


def _rpc_resilient(
    args: argparse.Namespace,
    message: dict,
    *,
    sleep=time.sleep,
    clock=time.monotonic,
    rng=None,
) -> dict:
    """:func:`_rpc` plus client-side resilience (``--retry N``).

    Connection failures and ``queue_full`` backpressure rejects are
    retried with capped exponential backoff and full jitter; a server
    ``retry_after_s`` hint overrides the exponential term (the server
    knows its queue better than we do).  ``--retry 0`` keeps the old
    fail-fast behavior.  The overall budget is ``--timeout`` per
    attempt, bounded by one shared monotonic deadline.
    """
    from repro.serve.protocol import request_once
    from repro.serve.retry import RetryPolicy

    retries = max(0, getattr(args, "retry", 0) or 0)
    if retries == 0:
        return _rpc(args, message)
    kwargs = {"rng": rng} if rng is not None else {}
    policy = RetryPolicy(
        attempts=retries + 1,
        timeout_s=args.timeout * (retries + 1),
        **kwargs,
    )
    deadline = clock() + policy.timeout_s
    attempt = 0
    last = "no attempt made"
    for attempt in range(policy.attempts):
        hint = None
        try:
            response = request_once(
                args.host, args.port, message, timeout=args.timeout
            )
        except (ConnectionError, OSError, ProtocolError) as exc:
            last = f"cannot reach server at {args.host}:{args.port}: {exc}"
        else:
            if response.get("ok") or response.get("code") != "queue_full":
                # Success, or a reject retrying cannot fix (bad spec,
                # draining): hand it straight back to the caller.
                return response
            last = response.get("error", "queue full")
            hint = response.get("retry_after_s")
        if attempt + 1 >= policy.attempts:
            break
        delay = policy.backoff_s(attempt, hint_s=hint)
        if clock() + delay > deadline:
            break
        sleep(delay)
    raise SystemExit(f"giving up after {attempt + 1} attempt(s): {last}")


def _serve_forever(server, args: argparse.Namespace, banner: str) -> int:
    """Boot a server, announce it, and block until it drains."""

    async def main() -> None:
        await server.start()
        server.install_signal_handlers()
        print(
            f"{banner}: listening on "
            f"{server.host}:{server.port}, {args.workers} workers, "
            f"store {args.store}",
            flush=True,
        )
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as fh:
                fh.write(f"{server.port}\n")
        if args.stdio:
            asyncio.ensure_future(server.serve_stdio())
        await server.finished.wait()
        print(f"{banner}: drained and stopped", flush=True)

    asyncio.run(main())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import ProfilingServer

    server = ProfilingServer(
        args.store,
        workers=args.workers,
        queue_size=args.queue_size,
        host=args.host,
        port=args.port,
        drain_grace_s=args.drain_grace,
        trace=args.trace,
    )
    return _serve_forever(server, args, f"repro.serve v{__version__}")


def cmd_cluster(args: argparse.Namespace) -> int:
    """Run one federated node; peers share the same --store."""
    import os

    from repro.serve.cluster import ClusterConfig, ClusterServer

    node_id = args.node_id or f"node-{os.getpid()}"
    try:
        config = ClusterConfig(
            node_id=node_id,
            heartbeat_interval_s=args.heartbeat_interval,
            suspect_after_s=args.suspect_after,
            dead_after_s=args.dead_after,
            lease_timeout_s=args.lease_timeout,
        )
    except ServeError as exc:
        raise SystemExit(f"bad cluster config: {exc}")
    server = ClusterServer(
        args.store,
        config,
        workers=args.workers,
        queue_size=args.queue_size,
        host=args.host,
        port=args.port,
        drain_grace_s=args.drain_grace,
        trace=args.trace,
    )
    return _serve_forever(
        server, args, f"repro.serve.cluster v{__version__} [{node_id}]"
    )


def cmd_submit(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    response = _rpc_resilient(args, {"op": "submit", **spec.to_wire()})
    if not response.get("ok"):
        retry = response.get("retry_after_s")
        suffix = f" (retry after {retry}s)" if retry is not None else ""
        print(f"rejected: {response.get('error')}{suffix}", file=sys.stderr)
        return 1
    job_id = response["job_id"]
    print(f"submitted {job_id} ({spec.scenario}, seed={spec.seed})")
    if not args.wait:
        return 0
    while True:
        status = _rpc(args, {"op": "status", "job_id": job_id})
        job = status.get("job", {})
        if job.get("state") in ("done", "failed", "requeued"):
            print(
                f"{job_id}: {job['state']}"
                + (f" ({job['status']})" if job.get("status") else "")
                + (f" error: {job['error']}" if job.get("error") else "")
            )
            return 0 if job["state"] == "done" else 1
        time.sleep(args.poll_interval)


def cmd_status(args: argparse.Namespace) -> int:
    if args.job_id:
        response = _rpc(args, {"op": "status", "job_id": args.job_id})
        if not response.get("ok"):
            print(response.get("error"), file=sys.stderr)
            return 1
        print(json.dumps(response["job"], indent=2))
        return 0
    response = _rpc(args, {"op": "status"})
    jobs = response.get("jobs", [])
    print(
        f"{len(jobs)} jobs, queue depth {response.get('queue_depth')}, "
        f"running {response.get('running')}"
    )
    for job in jobs:
        line = (
            f"{job['job_id']}  {job['spec']['scenario']:<10} "
            f"{job['state']:<9}"
        )
        if job.get("status"):
            line += f" {job['status']}"
        if job.get("wall_s") is not None:
            line += f" ({job['wall_s']:.2f}s)"
        print(line)
    return 0


def cmd_fetch(args: argparse.Namespace) -> int:
    message = {
        "op": "fetch",
        "job_id": args.job_id,
        "view": args.view,
        "top": args.top,
    }
    if args.type:
        message["type"] = args.type
    response = _rpc_resilient(args, message)
    if not response.get("ok"):
        print(response.get("error"), file=sys.stderr)
        return 1
    body = response.get("archive") or response.get("rendered") or ""
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(body)
            if not body.endswith("\n"):
                fh.write("\n")
        print(f"wrote {args.view} ({response['digest'][:12]}...) to {args.out}")
    else:
        print(body)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Top-down derived metrics, from any of the three session paths.

    - no target, ``--port``: the server's service counters (back-compat);
    - target is an archive file: offline metrics via ``load_session``;
    - target + ``--port``: the server renders the job's metrics view;
    - target + ``--run``: execute the scenario inline and summarize it.

    All three session paths derive from identical archive bytes, so the
    numbers agree exactly.
    """
    from pathlib import Path

    if args.run:
        from repro.metrics import MetricsSummary
        from repro.serve.workers import execute_job

        if not args.target:
            raise SystemExit("metrics --run needs a scenario name")
        args.scenario = args.target
        spec = _spec_from_args(args)
        status, archive_text, _info = execute_job(spec)
        counters = json.loads(archive_text).get("hw_counters")
        if counters is None:
            print("run produced no hardware counters", file=sys.stderr)
            return 1
        print(MetricsSummary.from_blob(counters).render(), end="")
        return 0 if status != "failed" else 1
    if args.target and Path(args.target).exists():
        from repro.dprof.session_io import load_session

        summary = load_session(args.target).metrics()
        if summary is None:
            print(
                f"{args.target}: archive predates hardware-counter export",
                file=sys.stderr,
            )
            return 1
        print(summary.render(), end="")
        return 0
    if args.port is None:
        raise SystemExit(
            "metrics needs --port (server counters / job view), an archive "
            "path, or --run SCENARIO"
        )
    if args.target:
        response = _rpc_resilient(
            args, {"op": "fetch", "job_id": args.target, "view": "metrics"}
        )
        if not response.get("ok"):
            print(response.get("error"), file=sys.stderr)
            return 1
        print(response.get("rendered", ""))
        return 0
    response = _rpc(args, {"op": "metrics"})
    print(response["rendered"])
    return 0


def cmd_run_once(args: argparse.Namespace) -> int:
    """Execute one job spec inline, through the service's worker path."""
    from repro.serve.workers import execute_job_to_store

    spec = _spec_from_args(args)
    outcome = execute_job_to_store(spec, args.store)
    print(
        f"{spec.scenario} seed={spec.seed} engine={spec.engine}: "
        f"{outcome['status']} in {outcome['wall_s']:.2f}s, "
        f"throughput {outcome['throughput']}, archive {outcome['digest']}"
    )
    print(f"quality: {outcome['quality']}")
    if outcome.get("trace_path"):
        print(f"trace: {outcome['trace_path']}")
    return 0 if outcome["status"] != "failed" else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Render a recorded span trace as a stage-time tree."""
    from pathlib import Path

    from repro.trace import TRACE_SUFFIX, load_trace, render_tree

    target = Path(args.session)
    if target.is_dir():
        # A store directory: pick the trace by digest prefix; without a
        # digest, prefer the server's own trace, else a sole job trace.
        if args.digest:
            matches = sorted(target.glob(f"{args.digest}*{TRACE_SUFFIX}"))
            if not matches:
                raise SystemExit(
                    f"no trace matching {args.digest!r} in {target}"
                )
            target = matches[0]
        elif (target / "server.trace.jsonl").exists():
            target = target / "server.trace.jsonl"
        else:
            matches = sorted(target.glob(f"*{TRACE_SUFFIX}"))
            if len(matches) == 1:
                target = matches[0]
            elif matches:
                names = "\n  ".join(m.name for m in matches)
                raise SystemExit(
                    f"multiple traces in {target}; pick one with "
                    f"--digest:\n  {names}"
                )
            else:
                target = target / "server.trace.jsonl"
    elif target.suffixes[-2:] == [".session", ".json"]:
        # A session archive: its trace sits next to it.
        target = target.with_name(
            target.name[: -len(".session.json")] + TRACE_SUFFIX
        )
    if not target.exists():
        raise SystemExit(f"no trace file at {target}")
    try:
        manifest, spans = load_trace(target)
    except TraceError as exc:
        raise SystemExit(f"cannot read trace: {exc}")
    print(render_tree(spans, manifest, top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DProf reproduction workloads"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def run_flags_parent(engine_default: str) -> argparse.ArgumentParser:
        """The one definition of the shared --engine/--analysis/
        --inject-faults trio, attached to subcommands via ``parents=``
        so flags and help text cannot drift between commands.  Only the
        engine *default* differs: workload commands favor the readable
        reference engine, service commands the fast one.
        """
        parent = argparse.ArgumentParser(add_help=False)
        parent.add_argument(
            "--engine",
            choices=("reference", "fast"),
            default=engine_default,
            help=(
                "access-simulation engine; 'fast' uses repro.hw.fastpath, "
                "which is bit-identical to 'reference' but quicker "
                "(equivalence is enforced by tests/test_fastpath_equivalence.py)"
            ),
        )
        parent.add_argument(
            "--analysis",
            choices=("indexed", "reference"),
            default="indexed",
            help=(
                "analysis pipeline; 'indexed' clusters histories via an "
                "inverted index and shards by type across processes, "
                "bit-identical to 'reference' but quicker (equivalence is "
                "enforced by tests/test_analysis_equivalence.py)"
            ),
        )
        parent.add_argument(
            "--inject-faults",
            metavar="SPEC",
            default=None,
            help=(
                "deterministic fault plan, e.g. "
                "ibs_drop=0.1,history_truncation=0.2,seed=7 "
                "(models: ibs_drop, ibs_latency, debugreg_steal, "
                "trap_miss, history_truncation)"
            ),
        )
        return parent

    workload_flags = run_flags_parent("reference")
    service_flags = run_flags_parent("fast")

    mc = sub.add_parser(
        "memcached", help="run the Section 6.1 workload", parents=[workload_flags]
    )
    mc.add_argument("--cores", type=int, default=8)
    mc.add_argument("--fixed", action="store_true", help="apply the +57%% fix")
    mc.add_argument("--duration", type=int, default=600_000)
    mc.add_argument("--interval", type=int, default=400)
    mc.add_argument("--top", type=int, default=8)
    mc.set_defaults(func=cmd_memcached)

    ap = sub.add_parser(
        "apache", help="run the Section 6.2 workload", parents=[workload_flags]
    )
    ap.add_argument("--cores", type=int, default=8)
    ap.add_argument("--period", type=int, default=22_000)
    ap.add_argument("--admission", type=int, default=0, help="backlog cap (0=off)")
    ap.add_argument("--duration", type=int, default=1_000_000)
    ap.add_argument("--interval", type=int, default=400)
    ap.add_argument("--top", type=int, default=8)
    ap.set_defaults(func=cmd_apache)

    dg = sub.add_parser(
        "diagnose", help="automated diagnosis on memcached", parents=[workload_flags]
    )
    dg.add_argument("--cores", type=int, default=8)
    dg.add_argument("--interval", type=int, default=300)
    dg.add_argument("--top", type=int, default=6)
    dg.set_defaults(func=cmd_diagnose)

    ls = sub.add_parser(
        "list-scenarios", help="list service scenarios and their defaults"
    )
    ls.set_defaults(func=cmd_list_scenarios)

    def add_client_flags(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--host", default="127.0.0.1")
        sub_parser.add_argument("--port", type=int, required=True)
        sub_parser.add_argument(
            "--timeout", type=float, default=10.0, help="socket timeout (s)"
        )
        sub_parser.add_argument(
            "--retry", type=int, default=0, metavar="N",
            help=(
                "retry connection failures and queue-full rejects up to N "
                "times with exponential backoff + jitter (honors the "
                "server's retry_after_s hint; 0 = fail fast)"
            ),
        )

    def add_spec_flags(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "scenario", choices=sorted(SCENARIO_DEFAULTS)
        )
        sub_parser.add_argument(
            "--cores", type=int, default=None,
            help="cores (default: scenario default)",
        )
        sub_parser.add_argument(
            "--duration", type=int, default=None, metavar="CYCLES",
            help="measured window (default: scenario default)",
        )
        sub_parser.add_argument("--interval", type=int, default=None)
        sub_parser.add_argument("--seed", type=int, default=11)
        sub_parser.add_argument(
            "--trace", action="store_true",
            help="record a span trace next to the session archive",
        )

    def add_serve_flags(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--host", default="127.0.0.1")
        sub_parser.add_argument(
            "--port", type=int, default=0, help="TCP port (0 = pick a free one)"
        )
        sub_parser.add_argument("--workers", type=int, default=2)
        sub_parser.add_argument("--queue-size", type=int, default=32)
        sub_parser.add_argument(
            "--store", default="serve-store", help="session archive directory"
        )
        sub_parser.add_argument(
            "--drain-grace", type=float, default=30.0, metavar="SECONDS",
            help="how long SIGTERM waits for in-flight jobs before requeueing",
        )
        sub_parser.add_argument(
            "--port-file", default=None, metavar="FILE",
            help="write the bound port here once listening",
        )
        sub_parser.add_argument(
            "--stdio", action="store_true",
            help="also accept JSON-lines requests on stdin/stdout",
        )
        sub_parser.add_argument(
            "--trace", action="store_true",
            help="record server-side spans (written to the store at drain)",
        )

    sv = sub.add_parser(
        "serve", help="run the profiling-as-a-service server"
    )
    add_serve_flags(sv)
    sv.set_defaults(func=cmd_serve)

    cl = sub.add_parser(
        "cluster",
        help="run one federated cluster node (peers share one --store)",
    )
    add_serve_flags(cl)
    cl.add_argument(
        "--node-id", default=None,
        help="unique node name (default: node-<pid>)",
    )
    cl.add_argument(
        "--heartbeat-interval", type=float, default=0.5, metavar="SECONDS",
        help="heartbeat + lease renewal cadence",
    )
    cl.add_argument(
        "--suspect-after", type=float, default=2.0, metavar="SECONDS",
        help="silence before a peer is suspected",
    )
    cl.add_argument(
        "--dead-after", type=float, default=5.0, metavar="SECONDS",
        help="silence before a peer is declared dead (leaves the ring)",
    )
    cl.add_argument(
        "--lease-timeout", type=float, default=8.0, metavar="SECONDS",
        help="unrenewed-lease age before a dead peer's jobs are reclaimed",
    )
    cl.set_defaults(func=cmd_cluster)

    sm = sub.add_parser(
        "submit", help="submit a job to a running server", parents=[service_flags]
    )
    add_client_flags(sm)
    add_spec_flags(sm)
    sm.add_argument("--priority", type=int, default=0)
    sm.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    sm.add_argument("--poll-interval", type=float, default=0.2)
    sm.set_defaults(func=cmd_submit)

    st = sub.add_parser("status", help="job status from a running server")
    add_client_flags(st)
    st.add_argument("job_id", nargs="?", default=None)
    st.set_defaults(func=cmd_status)

    ft = sub.add_parser(
        "fetch", help="fetch a finished job's profile from the server"
    )
    add_client_flags(ft)
    ft.add_argument("job_id", help="job id or archive digest")
    ft.add_argument(
        "--view",
        choices=(
            "data-profile", "working-set", "miss-class", "data-flow",
            "quality", "metrics", "archive",
        ),
        default="data-profile",
    )
    ft.add_argument(
        "--type", default=None, help="type name for miss-class / data-flow"
    )
    ft.add_argument("--top", type=int, default=8)
    ft.add_argument(
        "--out", default=None, metavar="FILE", help="write to FILE not stdout"
    )
    ft.set_defaults(func=cmd_fetch)

    mt = sub.add_parser(
        "metrics",
        help="top-down session metrics (archive, job, or inline run), or "
        "service counters from a server",
        parents=[service_flags],
    )
    mt.add_argument(
        "target", nargs="?", default=None,
        help="job id/digest (with --port), an archive path, or a scenario "
        "name (with --run); omit for the server's service counters",
    )
    mt.add_argument("--host", default="127.0.0.1")
    mt.add_argument(
        "--port", type=int, default=None,
        help="server to query for job views / service counters",
    )
    mt.add_argument(
        "--timeout", type=float, default=10.0, help="socket timeout (s)"
    )
    mt.add_argument("--retry", type=int, default=0, metavar="N")
    mt.add_argument(
        "--run", action="store_true",
        help="execute the target scenario inline and summarize it",
    )
    mt.add_argument("--cores", type=int, default=None)
    mt.add_argument("--duration", type=int, default=None, metavar="CYCLES")
    mt.add_argument("--interval", type=int, default=None)
    mt.add_argument("--seed", type=int, default=11)
    mt.set_defaults(func=cmd_metrics, scenario=None, trace=False, priority=0)

    ro = sub.add_parser(
        "run-once",
        help="execute one job spec inline via the service worker path",
        parents=[service_flags],
    )
    add_spec_flags(ro)
    ro.add_argument(
        "--store", default="serve-store", help="session archive directory"
    )
    ro.set_defaults(func=cmd_run_once)

    tr = sub.add_parser(
        "trace",
        help="render a recorded span trace (stage tree + critical path)",
    )
    tr.add_argument(
        "session",
        help=(
            "a .trace.jsonl file, a .session.json archive (reads the "
            "trace next to it), or a store directory"
        ),
    )
    tr.add_argument(
        "--digest", default=None,
        help="archive digest prefix when SESSION is a store directory",
    )
    tr.add_argument(
        "--top", type=int, default=0,
        help="show only the N slowest children per span (0 = all)",
    )
    tr.set_defaults(func=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
