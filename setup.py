"""Legacy setup shim: lets ``pip install -e .`` work offline without wheel."""

from setuptools import setup

setup()
