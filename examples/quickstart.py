#!/usr/bin/env python3
"""Quickstart: profile a tiny workload with DProf.

Builds a 4-core machine and runs a deliberately bad workload:

- every core read-modify-writes one shared ``hit_counter`` (true sharing);
- one core churns through a log whose live set exceeds the private caches
  (capacity pressure).

DProf's data profile pins the misses on the two culprit types, the miss
classification separates the sharing problem from the capacity problem,
and the data flow view shows the counter's cache line bouncing between
cores -- the paper's core pitch in miniature.

Run:  python examples/quickstart.py
"""

from repro.api import DProf, DProfConfig, MachineConfig
from repro.dprof.views import MissClass
from repro.kernel import Kernel, StructType

COUNTER_TYPE = StructType(
    "hit_counter",
    [("hits", 8), ("last_cpu", 4)],
    object_size=64,
    description="shared statistics counter",
)

RECORD_TYPE = StructType(
    "log_record",
    [("timestamp", 8), ("payload", 120)],
    object_size=128,
    description="append-only log record",
)

#: Live log records kept around: sized past the private L1+L2 capacity.
LOG_LIVE_SET = 700


def alloc_counter(kernel, cache, holder):
    """Allocate the shared counter (so DProf can watch it from birth)."""
    counter = yield from cache.alloc(0)
    holder.append(counter)
    yield kernel.env.write("counter_init", counter, "hits")


def counter_thread(kernel, holder, cpu, iterations=400):
    """Every core hammers the same counter: textbook true sharing."""
    env = kernel.env
    counter = holder[0]
    for _ in range(iterations):
        yield env.read("account_hit", counter, "hits")
        yield env.write("account_hit", counter, "hits")
        yield env.work("account_hit", 30)


def free_counter(kernel, cache, holder):
    """Free the counter, completing its object access history."""
    yield from cache.free(0, holder[0])


def logger_thread(kernel, cache, cpu, records=5200):
    """One core churns log records with a too-large live set."""
    env = kernel.env
    live = []
    for _ in range(records):
        record = yield from cache.alloc(cpu)
        yield env.write("log_append", record, "timestamp")
        yield env.write_range("log_append", record, 8, 8)
        live.append(record)
        if len(live) > LOG_LIVE_SET:
            old = live.pop(0)
            yield env.read("log_flush", old, "timestamp")
            yield from cache.free(cpu, old)


def main():
    kernel = Kernel(MachineConfig(ncores=4, seed=7))
    counter_cache = kernel.slab.create_cache(COUNTER_TYPE)
    record_cache = kernel.slab.create_cache(RECORD_TYPE)

    dprof = DProf(kernel, DProfConfig(ibs_interval=40))
    dprof.attach()

    # Phase A: the log churn.  DProf monitors one object at a time
    # (Section 5.3), so the short-lived type is profiled first -- a job
    # watching a long-lived object would block the queue until its free.
    dprof.collect_histories("log_record", sets=3, member_offsets=[0, 8])
    kernel.spawn("logger", 0, logger_thread(kernel, record_cache, 0))
    kernel.run()

    # Phase B: the shared counter.  Watch its hot field from the moment
    # it is allocated; the history completes when the counter is freed.
    dprof.collect_histories("hit_counter", sets=1, member_offsets=[0])
    holder = []
    kernel.spawn("init", 0, alloc_counter(kernel, counter_cache, holder))
    kernel.run()
    for cpu in range(4):
        kernel.spawn(f"counter.{cpu}", cpu, counter_thread(kernel, holder, cpu))
    kernel.run()
    kernel.spawn("fini", 0, free_counter(kernel, counter_cache, holder))
    kernel.run()
    dprof.detach()

    print("=" * 72)
    print("DATA PROFILE (types ranked by share of all L1 misses)")
    print("=" * 72)
    profile = dprof.data_profile()
    print(profile.render(6))

    print()
    print("=" * 72)
    print("MISS CLASSIFICATION")
    print("=" * 72)
    classifications = {}
    for type_name in ("hit_counter", "log_record"):
        mc = dprof.miss_classification(type_name)
        classifications[type_name] = mc
        label = mc.dominant.value if mc.total else "no classified misses"
        print(f"{type_name:>16}: dominant cause = {label}")

    print()
    print("=" * 72)
    print("WORKING SET")
    print("=" * 72)
    print(dprof.working_set().render(6))

    print()
    print("=" * 72)
    print("DATA FLOW (hit_counter)")
    print("=" * 72)
    print(dprof.data_flow("hit_counter").render_text())

    # The quickstart's claims, verified:
    assert profile.row_for("hit_counter").bounce, "counter should bounce"
    assert classifications["hit_counter"].dominant == MissClass.TRUE_SHARING
    assert classifications["log_record"].dominant == MissClass.CAPACITY
    print()
    print("Diagnosis: hit_counter suffers TRUE SHARING (bounce + remote")
    print("invalidations); log_record suffers CAPACITY misses (live set")
    print("larger than the cache).  Exactly what the workload was built to do.")


if __name__ == "__main__":
    main()
