#!/usr/bin/env python3
"""Case study 2 (paper Section 6.2): Apache's working-set drop-off.

Reproduces the investigation:

1. run Apache at its peak load, then past the drop-off point, and watch
   throughput *fall* as offered load rises;
2. profile both operating points with DProf and diff the views: the
   tcp_sock working set explodes and its access latency rises -- the
   accept queue lets sockets go cold before Apache touches them
   (differential analysis, Tables 6.4 vs 6.5);
3. check lock-stat on the same run: it blames futexes, which have nothing
   to do with it (Table 6.6);
4. apply admission control (cap the accept backlog) and re-measure at
   the same offered load (paper: +16%).

Run:  python examples/apache_case_study.py      (takes a few minutes)
"""

from repro.api import DProf, DProfConfig, MachineConfig
from repro.baselines import LockStatReport
from repro.fixes import apply_admission_control
from repro.kernel import Kernel
from repro.workloads import ApacheConfig, ApacheWorkload

NCORES = 16
PEAK_PERIOD = 22_000
DROPOFF_PERIOD = 11_000


def profiled_run(period, seed, warmup, admission=None):
    """One profiled Apache run; returns (kernel, workload, dprof, thr)."""
    kernel = Kernel(MachineConfig(ncores=NCORES, seed=seed))
    workload = ApacheWorkload(kernel, config=ApacheConfig(arrival_period=period))
    workload.setup()
    if admission is not None:
        apply_admission_control(workload.listeners.values(), admission)
    workload.start()
    start = kernel.elapsed_cycles()
    workload.schedule_arrivals(warmup + 4_000_000, start_cycle=start)
    kernel.run(until_cycle=start + warmup)
    dprof = DProf(kernel, DProfConfig(ibs_interval=200))
    dprof.attach()
    base = workload.counter.total
    measure_start = kernel.elapsed_cycles()
    kernel.run(until_cycle=measure_start + 3_000_000)
    throughput = (workload.counter.total - base) * 1e6 / (
        kernel.elapsed_cycles() - measure_start
    )
    dprof.detach()
    return kernel, workload, dprof, throughput


def tcp_sock_latency(dprof):
    samples = [s for s in dprof.sampler.samples if s.type_name == "tcp_sock"]
    if not samples:
        return 0.0
    return sum(s.latency for s in samples) / len(samples)


def tcp_sock_lifetime(dprof):
    lifetimes = [
        e.free_cycle - e.alloc_cycle
        for e in dprof.address_set.by_type().get("tcp_sock", [])
        if e.free_cycle is not None
    ]
    if not lifetimes:
        return 0.0
    return sum(lifetimes) / len(lifetimes)


def main():
    print("Running Apache at peak load...")
    _k1, peak_wl, peak_dprof, peak_thr = profiled_run(
        PEAK_PERIOD, seed=61, warmup=2_000_000
    )
    print("Running Apache past the drop-off point...")
    drop_kernel, drop_wl, drop_dprof, drop_thr = profiled_run(
        DROPOFF_PERIOD, seed=62, warmup=3_500_000
    )

    print()
    print("=" * 72)
    print("THE SYMPTOM: more offered load, less throughput")
    print("=" * 72)
    print(f"peak load    (1 conn / {PEAK_PERIOD} cycles/core): {peak_thr:8.1f} req/Mcycle")
    print(f"overloaded   (1 conn / {DROPOFF_PERIOD} cycles/core): {drop_thr:8.1f} req/Mcycle")

    print()
    print("=" * 72)
    print("DPROF DIFFERENTIAL ANALYSIS (compare Tables 6.4 and 6.5)")
    print("=" * 72)
    print("-- at peak --")
    print(peak_dprof.data_profile().render(6))
    print()
    print("-- at drop-off --")
    print(drop_dprof.data_profile().render(6))

    peak_tcp = peak_dprof.data_profile().row_for("tcp_sock")
    drop_tcp = drop_dprof.data_profile().row_for("tcp_sock")
    print()
    print(
        f"tcp_sock working set: {peak_tcp.working_set_bytes / 1e6:.2f}MB -> "
        f"{drop_tcp.working_set_bytes / 1e6:.2f}MB "
        f"({drop_tcp.working_set_bytes / peak_tcp.working_set_bytes:.1f}x)"
    )
    print(
        f"tcp_sock mean access latency: {tcp_sock_latency(peak_dprof):.0f} -> "
        f"{tcp_sock_latency(drop_dprof):.0f} cycles (paper: 50 -> 150)"
    )
    print(
        f"tcp_sock mean lifetime: {tcp_sock_lifetime(peak_dprof):,.0f} -> "
        f"{tcp_sock_lifetime(drop_dprof):,.0f} cycles"
    )
    print(
        f"mean accept-queue wait: {peak_wl.mean_accept_wait():,.0f} -> "
        f"{drop_wl.mean_accept_wait():,.0f} cycles"
    )
    print("\n-> The accept queue is the culprit: by the time Apache accepts a")
    print("   connection, its tcp_sock lines have been flushed from the caches")
    print("   close to the core.")

    print()
    print("=" * 72)
    print("WHAT LOCK-STAT SAYS (compare Table 6.6)")
    print("=" * 72)
    report = LockStatReport(drop_kernel.lockstat, drop_kernel.machine.total_cycles())
    print(report.render(4))
    print("\n-> futexes: Apache's worker handoff. True, but irrelevant.")

    print()
    print("=" * 72)
    print("THE FIX: admission control (accept backlog capped at 8)")
    print("=" * 72)
    _k3, fixed_wl, _d3, fixed_thr = profiled_run(
        DROPOFF_PERIOD, seed=63, warmup=3_500_000, admission=8
    )
    improvement = fixed_thr / drop_thr - 1
    print(f"drop-off throughput:   {drop_thr:8.1f} req/Mcycle")
    print(f"admission throughput:  {fixed_thr:8.1f} req/Mcycle")
    print(f"improvement:           {improvement:8.1%}   (paper: +16%)")
    print(f"connections shed early: {fixed_wl.total_dropped()}")
    assert improvement > 0.05


if __name__ == "__main__":
    main()
