#!/usr/bin/env python3
"""Profile once, analyze anywhere: session archives.

The paper notes DProf keeps raw samples in RAM and that DCPI's
spill-to-disk techniques apply.  This example profiles a small memcached
run, saves the session to JSON, then rebuilds every view *from the file
alone* -- no machine, no kernel, no workload -- and verifies the offline
views agree with the live ones.

Run:  python examples/offline_analysis.py
"""

import tempfile
from pathlib import Path

from repro.api import DProf, DProfConfig, MachineConfig
from repro.dprof.session_io import load_session, save_session
from repro.kernel import Kernel
from repro.workloads import MemcachedWorkload


def profile_and_save(path: Path):
    kernel = Kernel(MachineConfig(ncores=4, seed=29))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    workload.start()
    kernel.run(until_cycle=120_000)
    dprof = DProf(kernel, DProfConfig(ibs_interval=250))
    dprof.attach()
    kernel.run(until_cycle=kernel.elapsed_cycles() + 400_000)
    dprof.collect_histories("skbuff", sets=2, hot_chunks=4, member_offsets=[0])
    kernel.run(
        until_cycle=kernel.elapsed_cycles() + 8_000_000,
        stop_when=lambda: dprof.histories_done,
    )
    dprof.detach()
    save_session(dprof, path)
    return dprof


def main():
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "memcached-session.json"
        print("Profiling a 4-core memcached run and saving the session...")
        live = profile_and_save(path)
        print(f"archive: {path.stat().st_size / 1024:.1f} KiB of JSON")
        print()

        offline = load_session(path)

        print("=" * 72)
        print("DATA PROFILE, REBUILT FROM THE FILE")
        print("=" * 72)
        restored = offline.data_profile()
        print(restored.render(6))

        print()
        print("=" * 72)
        print("DATA FLOW (skbuff), REBUILT FROM THE FILE")
        print("=" * 72)
        print(offline.data_flow("skbuff").render_text())

        # The offline views agree with the live session exactly.
        live_profile = live.data_profile()
        for row in live_profile.rows:
            other = restored.row_for(row.type_name)
            assert other is not None
            assert abs(other.miss_share - row.miss_share) < 1e-9
        live_keys = [t.path_key() for t in live.path_traces("skbuff")]
        offline_keys = [t.path_key() for t in offline.path_traces("skbuff")]
        assert live_keys == offline_keys
        print()
        print("Offline views match the live session exactly: profile on the")
        print("test machine, analyze on your laptop.")


if __name__ == "__main__":
    main()
