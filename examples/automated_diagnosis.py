#!/usr/bin/env python3
"""Automated diagnosis: the case-study methodology as a library call.

The paper's case studies follow a script by hand: rank types by misses,
classify each hot type, and for bouncing types walk the data flow view
backwards from the first cross-CPU transition.  `repro.dprof.diagnosis`
encodes the script; this example points it at the misconfigured memcached
workload and prints the machine-generated findings -- which name the
transmit path, unprompted.

Run:  python examples/automated_diagnosis.py     (about a minute)
"""

from repro.api import DProf, DProfConfig, Diagnosis, MachineConfig
from repro.kernel import Kernel
from repro.workloads import MemcachedWorkload

NCORES = 8


def main():
    kernel = Kernel(MachineConfig(ncores=NCORES, seed=52))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    workload.start()
    kernel.run(until_cycle=150_000)

    dprof = DProf(kernel, DProfConfig(ibs_interval=300))
    dprof.attach()
    kernel.run(until_cycle=kernel.elapsed_cycles() + 600_000)
    # Pairwise histories for the packet type: the cross-member orderings
    # the data flow evidence is built from.
    dprof.collect_histories(
        "skbuff", sets=3, hot_chunks=4, member_offsets=[0], pair=True
    )
    kernel.run(
        until_cycle=kernel.elapsed_cycles() + 15_000_000,
        stop_when=lambda: dprof.histories_done,
    )
    dprof.detach()

    report = Diagnosis(dprof).render(max_types=6)
    print(report)

    findings = {f.type_name: f for f in Diagnosis(dprof).findings(6)}
    assert findings["size-1024"].bounces
    skbuff = findings["skbuff"]
    suspects = set(skbuff.suspect_functions) | {
        src for src, _ in skbuff.cross_cpu_transitions
    }
    assert suspects & {"dev_queue_xmit", "skb_tx_hash", "pfifo_fast_enqueue"}
    print()
    print("-> The findings point straight at the transmit-queue decision")
    print("   (dev_queue_xmit / skb_tx_hash), which is where the paper's")
    print("   +57% fix goes.  See examples/memcached_case_study.py.")


if __name__ == "__main__":
    main()
