#!/usr/bin/env python3
"""Case study 1 (paper Section 6.1): finding memcached's hidden bottleneck.

Reproduces the full investigation narrative:

1. run 16 pinned memcached instances on a stock kernel and observe the
   missing scalability;
2. profile with DProf: the data profile shows packet payloads and skbuffs
   bouncing between cores even though the setup was built to avoid all
   cross-core sharing;
3. read the skbuff data flow view: packets cross CPUs between
   ``pfifo_fast_enqueue`` and ``pfifo_fast_dequeue`` -- the TX queue
   choice is wrong;
4. look just *above* the enqueue in the flow graph: ``skb_tx_hash`` picks
   the queue by hashing, so responses land on remote queues;
5. apply the fix (a driver-local queue selection function) and measure
   the throughput recovery (paper: +57%).

Also prints what lock-stat and OProfile say about the same run, so you
can judge the paper's comparison yourself.

Run:  python examples/memcached_case_study.py      (takes a minute or two)
"""

from repro.api import DProf, DProfConfig, MachineConfig
from repro.baselines import LockStatReport, OProfile
from repro.fixes import install_local_queue_selection
from repro.kernel import Kernel
from repro.workloads import MemcachedWorkload

NCORES = 16


def profiled_stock_run():
    """Run the stock kernel under DProf + OProfile; return everything."""
    kernel = Kernel(MachineConfig(ncores=NCORES, seed=11))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    oprofile = OProfile(kernel.machine)
    oprofile.attach()
    workload.start()
    kernel.run(until_cycle=200_000)

    dprof = DProf(kernel, DProfConfig(ibs_interval=400))
    dprof.attach()
    base = workload.counter.total
    start = kernel.elapsed_cycles()
    kernel.run(until_cycle=start + 1_000_000)
    throughput = (workload.counter.total - base) * 1e6 / (
        kernel.elapsed_cycles() - start
    )
    # Object access histories for the two suspicious types; pairwise
    # sets give the cross-member orderings the data flow view needs.
    dprof.collect_histories("skbuff", sets=3, hot_chunks=6, member_offsets=[0])
    kernel.run(
        until_cycle=kernel.elapsed_cycles() + 15_000_000,
        stop_when=lambda: dprof.histories_done,
    )
    dprof.collect_histories(
        "skbuff", sets=5, hot_chunks=4, member_offsets=[0], pair=True
    )
    kernel.run(
        until_cycle=kernel.elapsed_cycles() + 25_000_000,
        stop_when=lambda: dprof.histories_done,
    )
    dprof.detach()
    oprofile.detach()
    return kernel, workload, dprof, oprofile, throughput


def fixed_run():
    """Stock kernel + the local queue selection fix; return throughput."""
    kernel = Kernel(MachineConfig(ncores=NCORES, seed=11))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    install_local_queue_selection(workload.stack.dev)
    result = workload.run(1_000_000, warmup_cycles=200_000)
    return result.throughput, workload


def main():
    print("Running the stock kernel under DProf (this simulates ~45M cycles)...")
    kernel, workload, dprof, oprofile, stock_throughput = profiled_stock_run()

    print()
    print("=" * 72)
    print("STEP 1 -- DProf data profile (compare with the paper's Table 6.1)")
    print("=" * 72)
    profile = dprof.data_profile()
    print(profile.render(8))
    payload = profile.row_for("size-1024")
    print(
        f"\n-> {payload.type_name} has {payload.miss_share:.0%} of all L1 misses"
        f" and bounces between cores. Packets should never leave their core!"
    )

    print()
    print("=" * 72)
    print("STEP 2 -- skbuff data flow view (compare with Figure 6-1)")
    print("=" * 72)
    flow = dprof.data_flow("skbuff")
    print(flow.render_text())
    bold = {(e.src, e.dst) for e in flow.cpu_change_edges()}
    if ("pfifo_fast_enqueue", "pfifo_fast_dequeue") in bold:
        print("\n-> skbuffs JUMP CPUs between enqueue and dequeue.")
    suspects = flow.functions_before("pfifo_fast_enqueue")
    print(f"-> functions to inspect (upstream of the enqueue): {sorted(suspects)}")
    print("-> skb_tx_hash is right there: the default hashes packets to")
    print("   a random TX queue instead of the local one.")

    print()
    print("=" * 72)
    print("WHAT THE BASELINES SAY ABOUT THE SAME RUN")
    print("=" * 72)
    print(LockStatReport(kernel.lockstat, kernel.machine.total_cycles()).render(5))
    print()
    print(oprofile.render(12, exclude=frozenset({"memcached_get"})))
    print("\n-> Qdisc-lock contention and 20+ warm functions; neither names")
    print("   the data type nor the decision point.")

    print()
    print("=" * 72)
    print("STEP 3 -- apply the fix: ixgbe_select_queue() returns the local queue")
    print("=" * 72)
    fixed_throughput, fixed_workload = fixed_run()
    improvement = fixed_throughput / stock_throughput - 1
    print(f"stock throughput: {stock_throughput:10.1f} requests/Mcycle")
    print(f"fixed throughput: {fixed_throughput:10.1f} requests/Mcycle")
    print(f"improvement:      {improvement:10.1%}   (paper: +57%)")
    print(
        f"alien frees: stock={workload.stack.skbuff_cache.alien_frees}, "
        f"fixed={fixed_workload.stack.skbuff_cache.alien_frees}"
    )
    assert improvement > 0.3


if __name__ == "__main__":
    main()
