#!/usr/bin/env python3
"""A tour of the four cache-miss classes and DProf's classification.

Runs the four synthetic microworkloads (true sharing, false sharing,
conflict, capacity) on one machine each, and shows two things side by
side for every case:

- the **simulator's ground truth** (the hardware model records exactly
  why every miss happened -- something real hardware cannot do);
- **DProf's inference** from its two raw data sources, the way the real
  tool has to work.

This is the validation experiment behind the reproduction: DProf's
statistical classification must agree with the machine's ground truth.

Run:  python examples/miss_classification_tour.py
"""

from collections import Counter

from repro.api import DProf, DProfConfig, MachineConfig
from repro.dprof.views import MissClass
from repro.hw.events import MissKind
from repro.kernel import Kernel
from repro.workloads.synthetic import (
    capacity_workload,
    conflict_workload,
    false_sharing_workload,
    true_sharing_workload,
)


def ground_truth(kernel, addr_range):
    """Attach an observer recording ground-truth miss kinds in a range."""
    lo, hi = addr_range
    kinds = Counter()

    def observer(cpu, instr, result, cycle):
        if lo <= instr.addr < hi and result.miss_kind is not None:
            kinds[result.miss_kind] += 1

    kernel.machine.add_access_observer(observer)
    return kinds


def show(name, kinds, extra=""):
    total = sum(kinds.values()) or 1
    parts = ", ".join(
        f"{kind.value}: {count} ({count / total:.0%})"
        for kind, count in kinds.most_common()
    )
    print(f"  ground truth  -> {parts or 'no misses'}")
    if extra:
        print(f"  dprof         -> {extra}")


def main():
    print("=" * 72)
    print("1. TRUE SHARING -- every core RMWs the same counter field")
    print("=" * 72)
    kernel = Kernel(MachineConfig(ncores=4, seed=31))
    shared = true_sharing_workload(kernel, iterations=300)
    kinds = ground_truth(kernel, (shared.base, shared.end))
    kernel.run()
    dominant = kinds.most_common(1)[0][0]
    show("true sharing", kinds)
    assert dominant == MissKind.INVALIDATION
    print("  -> remote writes invalidate the line: INVALIDATION misses.\n")

    print("=" * 72)
    print("2. FALSE SHARING -- each core owns a slot, all in one line")
    print("=" * 72)
    kernel = Kernel(MachineConfig(ncores=4, seed=32))
    packed = false_sharing_workload(kernel, iterations=300)
    kinds = ground_truth(kernel, (packed.base, packed.end))
    overlap = Counter()

    def overlap_observer(cpu, instr, result, cycle):
        inv = result.invalidation
        if inv is None or not packed.base <= instr.addr < packed.end:
            return
        writer = set(range(inv.writer_addr, inv.writer_addr + inv.writer_size))
        mine = set(range(instr.addr, instr.addr + instr.size))
        overlap["true" if writer & mine else "false"] += 1

    kernel.machine.add_access_observer(overlap_observer)
    kernel.run()
    show("false sharing", kinds)
    print(
        f"  writer/reader byte ranges: {overlap['false']} disjoint (false "
        f"sharing), {overlap['true']} overlapping (true sharing)"
    )
    assert overlap["false"] > 0 and overlap["true"] == 0
    print("  -> invalidations where the writer touched *different* bytes of")
    print("     the same line: FALSE sharing; pad or split the structure.\n")

    print("=" * 72)
    print("3. CONFLICT -- more same-set lines than the cache has ways")
    print("=" * 72)
    kernel = Kernel(MachineConfig(ncores=2, seed=33))
    addrs = conflict_workload(kernel, iterations=40)
    kinds = ground_truth(kernel, (min(addrs), max(addrs) + 64))
    kernel.run()
    show("conflict", kinds)
    evictions = kinds[MissKind.EVICTION]
    assert evictions > 0 and kinds[MissKind.INVALIDATION] == 0
    geo = kernel.machine.hierarchy.l2[0].geometry
    sets_used = {geo.set_of(a // 64) for a in addrs}
    print(f"  all {len(addrs)} lines map to associativity set(s) {sets_used}")
    print("  -> evictions concentrated in one set: CONFLICT misses; spread")
    print("     the allocations over more sets.\n")

    print("=" * 72)
    print("4. CAPACITY -- a working set larger than the private caches")
    print("=" * 72)
    kernel = Kernel(MachineConfig(ncores=2, seed=34))
    base, size = capacity_workload(kernel, iterations=3)
    kinds = ground_truth(kernel, (base, base + size))
    sets_hit = set()
    kernel.machine.add_access_observer(
        lambda cpu, instr, result, cycle: sets_hit.add(result.eviction.set_index)
        if result.eviction
        else None
    )
    kernel.run()
    show("capacity", kinds)
    geo = kernel.machine.hierarchy.l2[0].geometry
    print(
        f"  evictions landed in {len(sets_hit)}/{geo.num_sets} associativity "
        f"sets (uniform pressure)"
    )
    assert len(sets_hit) > geo.num_sets * 0.8
    print("  -> evictions everywhere, no invalidations: CAPACITY misses;")
    print("     shrink the working set or process data in blocks.\n")

    print("=" * 72)
    print("DPROF'S VIEW OF A MIXED WORKLOAD")
    print("=" * 72)
    # One machine running sharing + capacity together: DProf separates
    # them by type, which is the whole point of data profiling.
    kernel = Kernel(MachineConfig(ncores=4, seed=35))
    dprof = DProf(kernel, DProfConfig(ibs_interval=30))
    dprof.attach()
    shared = true_sharing_workload(kernel, iterations=500)
    capacity_workload(kernel, iterations=4)
    kernel.run()
    dprof.detach()
    profile = dprof.data_profile()
    print(profile.render(4))
    row = profile.row_for("shared_counter")
    assert row is not None and row.bounce
    print("-> shared_counter bounces between CPUs and tops the profile.")
    print("   (The streaming buffer is raw untyped memory, so DProf cannot")
    print("   attribute it -- the same limitation the paper notes for")
    print("   allocations outside the typed kernel pools.)")


if __name__ == "__main__":
    main()
