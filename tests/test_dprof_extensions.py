"""Tests for the Section 7 extensions: wide registers + cache snapshots."""

import pytest

from repro.dprof import DProf, DProfConfig
from repro.dprof.extensions import (
    CacheContentsInspector,
    collect_whole_object_histories,
    estimation_error,
    pairwise_job_count,
    whole_object_job_count,
)
from repro.errors import ProfilingError, SimulationError
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel, StructType

WIDGET = StructType("xwidget", [("a", 8), ("b", 8), ("c", 8)], object_size=64)


def make_kernel(variable=False, ncores=2):
    return Kernel(
        MachineConfig(ncores=ncores, seed=41, variable_debug_registers=variable)
    )


def churn(kernel, cache, cpu, n):
    env = kernel.env

    def body():
        for _ in range(n):
            o = yield from cache.alloc(cpu)
            yield env.write("init_fn", o, "a")
            yield env.read("use_fn", o, "b")
            yield env.write("send_fn", o, "c")
            yield from cache.free(cpu, o)

    return body()


class TestVariableDebugRegisters:
    def test_wide_watch_rejected_on_stock_hardware(self):
        k = make_kernel(variable=False)
        with pytest.raises(SimulationError):
            k.machine.watches.arm_all_cores(0x1000, 64, lambda *a: None)

    def test_wide_watch_allowed_when_enabled(self):
        k = make_kernel(variable=True)
        hits = []
        k.machine.watches.arm_all_cores(
            0x100000, 4096, lambda c, i, r, cy: hits.append(i.addr)
        )
        env = k.env
        k.spawn(
            "t",
            0,
            iter(
                [
                    env.read_at("fn", "a", 0x100000, 8),
                    env.read_at("fn", "b", 0x100800, 8),
                    env.read_at("fn", "c", 0x200000, 8),  # outside
                ]
            ),
        )
        k.run()
        assert hits == [0x100000, 0x100800]

    def test_whole_object_history_is_exact_and_ordered(self):
        k = make_kernel(variable=True)
        cache = k.slab.create_cache(WIDGET)
        dprof = DProf(k, DProfConfig(ibs_interval=0 or 1000))
        dprof.attach()
        jobs = collect_whole_object_histories(dprof, "xwidget", objects=3)
        assert jobs == 3
        k.spawn("churn", 0, churn(k, cache, 0, 10))
        k.run()
        dprof.detach()
        histories = dprof.history.histories_for("xwidget")
        assert len(histories) == 3
        for h in histories:
            # Every access to the object was captured, in true order.
            fns = [k.symbols.resolve(el.ip) for el in h.elements]
            assert fns == ["init_fn", "use_fn", "send_fn"]
            offsets = [el.offset for el in h.elements]
            assert offsets == [0, 8, 16]

    def test_whole_object_requires_the_extension(self):
        k = make_kernel(variable=False)
        k.slab.create_cache(WIDGET)
        dprof = DProf(k)
        dprof.attach()
        with pytest.raises(ProfilingError):
            collect_whole_object_histories(dprof, "xwidget", objects=1)
        dprof.detach()

    def test_job_count_comparison(self):
        # The quantitative content of the Section 7 wish: one job instead
        # of thousands (skbuff: 2016 pairs; tcp_sock: 79800).
        assert pairwise_job_count(256) == 2016
        assert pairwise_job_count(1600) == 79800
        assert whole_object_job_count(256) == 1


class TestCacheContentsInspector:
    def test_snapshot_resolves_resident_types(self):
        k = make_kernel()
        cache = k.slab.create_cache(WIDGET)
        held = []

        def body():
            for _ in range(8):
                o = yield from cache.alloc(0)
                yield k.env.write("touch", o, "a")
                held.append(o)

        k.spawn("t", 0, body())
        k.run()
        snap = CacheContentsInspector(k.machine, k.slab).snapshot()
        assert snap.lines_for("xwidget") >= 8
        # Ranked output includes the widget near the top.
        assert "xwidget" in dict(snap.top(5))

    def test_snapshot_counts_unresolved_lines(self):
        k = make_kernel()
        base = k.machine.address_space.alloc_region(4096, label="raw")
        k.spawn(
            "t", 0, iter([k.env.read_at("fn", "x", base, 8)])
        )
        k.run()
        snap = CacheContentsInspector(k.machine, k.slab).snapshot()
        assert snap.unresolved_lines >= 1

    def test_mean_residency_averages(self):
        k = make_kernel()
        inspector = CacheContentsInspector(k.machine, k.slab)
        cache = k.slab.create_cache(WIDGET)
        held = []

        def body():
            for _ in range(4):
                o = yield from cache.alloc(0)
                yield k.env.write("touch", o, "a")
                held.append(o)

        k.spawn("t", 0, body())
        k.run()
        snaps = [inspector.snapshot(), inspector.snapshot()]
        mean = inspector.mean_residency(snaps)
        assert mean["xwidget"] == snaps[0].lines_for("xwidget")

    def test_estimation_error_metric(self):
        errors = estimation_error({"a": 8.0, "b": 0.0}, {"a": 10.0, "b": 4.0})
        assert errors["a"] == pytest.approx(0.2)
        assert errors["b"] == pytest.approx(1.0)
        assert estimation_error({}, {"z": 0.0}) == {}
