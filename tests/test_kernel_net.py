"""Integration tests for the simulated network stack."""

import pytest

from repro.hw.events import Pause
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel
from repro.kernel.net import NetStack
from repro.kernel.net.stack import Arrival
from repro.kernel.net.tcp import (
    ListenSock,
    inet_csk_accept,
    tcp_close,
    tcp_recvmsg,
    tcp_sendmsg,
    tcp_v4_rcv,
)
from repro.kernel.net.types import MMAP_FILE_TYPE
from repro.kernel.net.udp import udp_rcv, udp_recvmsg, udp_sendmsg, udp_sock_create


def make_stack(ncores=4, seed=7):
    k = Kernel(MachineConfig(ncores=ncores, seed=seed))
    return k, NetStack(k)


def drive(kernel, cpu, gen):
    out = {}

    def wrapper():
        out["value"] = yield from gen

    kernel.spawn("drv", cpu, wrapper())
    kernel.run()
    return out.get("value")


# ----------------------------------------------------------------------
# UDP path
# ----------------------------------------------------------------------


class TestUdpPath:
    def setup_method(self):
        self.k, self.stack = make_stack()
        self.sock = drive(self.k, 0, udp_sock_create(self.stack, 0, 11211))
        self.stack.deliver = self._deliver

    def _deliver(self, stack, cpu, rxq, skb, arrival):
        yield from udp_rcv(stack, cpu, self.sock, skb)

    def test_rx_delivers_to_socket(self):
        self.stack.dev.rx_queues[0].arrivals.append(Arrival(due=0, flow_hash=5))
        rx = self.stack.dev.rx_queues[0]
        drive(self.k, 0, self.stack.ixgbe_clean_rx_irq(0, rx))
        assert len(self.sock.receive_queue) == 1
        assert self.stack.rx_processed == 1

    def test_recvmsg_consumes_and_frees(self):
        self.stack.dev.rx_queues[0].arrivals.append(Arrival(due=0, flow_hash=5))
        rx = self.stack.dev.rx_queues[0]
        drive(self.k, 0, self.stack.ixgbe_clean_rx_irq(0, rx))
        skb = drive(self.k, 0, udp_recvmsg(self.stack, 0, self.sock))
        assert skb is not None
        assert not skb.obj.alive  # skb freed after copy-out
        assert not skb.payload.alive
        assert len(self.sock.receive_queue) == 0

    def test_recvmsg_empty_returns_none(self):
        assert drive(self.k, 0, udp_recvmsg(self.stack, 0, self.sock)) is None

    def test_sendmsg_enqueues_on_hashed_queue(self):
        skb = drive(self.k, 0, udp_sendmsg(self.stack, 0, self.sock, 128, flow_hash=7))
        assert skb.sock is self.sock
        expected_queue = 7 % self.stack.dev.num_queues
        assert len(self.stack.dev.tx_queues[expected_queue].qdisc.skbs) == 1

    def test_tx_completion_frees_and_notifies(self):
        completions = []
        self.stack.on_tx_complete_cb = lambda skb, cpu: completions.append(cpu)
        drive(self.k, 0, udp_sendmsg(self.stack, 0, self.sock, 128, flow_hash=3))
        txq = self.stack.dev.tx_queues[3]

        def drain():
            from repro.kernel.net.netdevice import ixgbe_clean_tx_irq, qdisc_run

            yield from qdisc_run(self.stack, 3, self.stack.dev, txq)
            yield from ixgbe_clean_tx_irq(self.stack, 3, self.stack.dev, txq)

        drive(self.k, 3, drain())
        assert completions == [3]
        assert self.stack.tx_completed == 1

    def test_remote_tx_causes_alien_frees(self):
        # Response hashed to core 5 (a different NUMA node than core 0):
        # freeing at TX-completion time takes the SLAB alien path.
        k, stack = make_stack(ncores=8)
        sock = drive(k, 0, udp_sock_create(stack, 0, 11211))
        drive(k, 0, udp_sendmsg(stack, 0, sock, 128, flow_hash=5))
        txq = stack.dev.tx_queues[5]

        def drain():
            from repro.kernel.net.netdevice import ixgbe_clean_tx_irq, qdisc_run

            yield from qdisc_run(stack, 5, stack.dev, txq)
            yield from ixgbe_clean_tx_irq(stack, 5, stack.dev, txq)

        drive(k, 5, drain())
        assert stack.skbuff_cache.alien_frees == 1
        assert stack.size1024_cache.alien_frees == 1


# ----------------------------------------------------------------------
# TX queue selection
# ----------------------------------------------------------------------


def test_select_queue_override_keeps_local():
    k, stack = make_stack()
    sock = drive(k, 0, udp_sock_create(stack, 0, 11211))

    def local_queue(stack_, cpu, dev, skb):
        yield stack_.env.work("ixgbe_select_queue", 2)
        return cpu

    stack.dev.select_queue = local_queue
    drive(k, 0, udp_sendmsg(stack, 0, sock, 128, flow_hash=9))
    assert len(stack.dev.tx_queues[0].qdisc.skbs) == 1  # local, not 9 % n


# ----------------------------------------------------------------------
# TCP path
# ----------------------------------------------------------------------


class TestTcpPath:
    def setup_method(self):
        self.k, self.stack = make_stack()
        self.listener = ListenSock(self.stack, 0, 80, backlog=4)
        self.file = self.k.slab.new_static(MMAP_FILE_TYPE, "file.0")

    def _arrive(self, flow_hash=1):
        def body():
            from repro.kernel.net.skbuff import alloc_skb

            skb = yield from alloc_skb(self.stack, 0, 64)
            skb.flow_hash = flow_hash
            conn = yield from tcp_v4_rcv(self.stack, 0, self.listener, skb, flow_hash)
            return conn

        return drive(self.k, 0, body())

    def test_syn_creates_connection_on_queue(self):
        conn = self._arrive()
        assert conn is not None
        assert conn.obj.otype.name == "tcp_sock"
        assert len(self.listener.accept_queue) == 1

    def test_backlog_overflow_drops(self):
        for i in range(4):
            assert self._arrive(flow_hash=i) is not None
        dropped = self._arrive(flow_hash=99)
        assert dropped is None
        assert self.listener.dropped == 1
        assert len(self.listener.accept_queue) == 4

    def test_accept_pops_fifo(self):
        c1 = self._arrive(flow_hash=1)
        c2 = self._arrive(flow_hash=2)
        got = drive(self.k, 0, inet_csk_accept(self.stack, 0, self.listener))
        assert got is c1
        got2 = drive(self.k, 0, inet_csk_accept(self.stack, 0, self.listener))
        assert got2 is c2
        assert drive(self.k, 0, inet_csk_accept(self.stack, 0, self.listener)) is None

    def test_full_request_lifecycle(self):
        conn = self._arrive(flow_hash=2)
        got = drive(self.k, 0, inet_csk_accept(self.stack, 0, self.listener))
        assert got is conn

        def serve():
            yield from tcp_recvmsg(self.stack, 0, conn)
            yield from tcp_sendmsg(self.stack, 0, conn, 1024, self.file)
            yield from tcp_close(self.stack, 0, conn)

        drive(self.k, 0, serve())
        assert not conn.obj.alive  # tcp_sock freed
        # Response used a fast-clone skbuff hashed to queue 2 (flow hash).
        assert len(self.stack.dev.tx_queues[2].qdisc.skbs) == 1
        assert self.stack.fclone_cache.total_allocs == 1

    def test_tcp_response_stays_on_flow_queue(self):
        # flow_hash == rx core means tx is local: no bounce for TCP.
        conn = self._arrive(flow_hash=0)
        drive(self.k, 0, inet_csk_accept(self.stack, 0, self.listener))

        def serve():
            yield from tcp_recvmsg(self.stack, 0, conn)
            yield from tcp_sendmsg(self.stack, 0, conn, 1024, self.file)

        drive(self.k, 0, serve())
        assert len(self.stack.dev.tx_queues[0].qdisc.skbs) == 1


# ----------------------------------------------------------------------
# Softirq loops end to end
# ----------------------------------------------------------------------


def test_closed_loop_udp_echo_end_to_end():
    k, stack = make_stack(ncores=2)
    socks = {}

    def setup(cpu):
        socks[cpu] = yield from udp_sock_create(stack, cpu, 11211 + cpu)

    for cpu in range(2):
        k.spawn(f"setup{cpu}", cpu, setup(cpu))
    k.run()

    def deliver(stack_, cpu, rxq, skb, arrival):
        yield from udp_rcv(stack_, cpu, socks[cpu], skb)

    stack.deliver = deliver
    served = [0]

    def server(cpu):
        while True:
            skb = yield from udp_recvmsg(stack, cpu, socks[cpu])
            if skb is None:
                yield Pause(200)
                continue
            yield from udp_sendmsg(stack, cpu, socks[cpu], 128, flow_hash=skb.flow_hash)
            served[0] += 1

    for cpu in range(2):
        for i in range(50):
            stack.dev.rx_queues[cpu].arrivals.append(
                Arrival(due=i * 800, flow_hash=cpu + 2 * i)
            )
    stack.spawn_softirq_threads()
    for cpu in range(2):
        k.spawn(f"srv{cpu}", cpu, server(cpu))
    k.run(until_cycle=300_000)
    assert stack.rx_processed == 100
    assert served[0] > 50
    assert stack.tx_completed > 50
