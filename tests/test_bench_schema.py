"""Schema validation for BENCH_dprof.json documents."""

import copy
import json

import pytest

from repro.bench import validate_report, write_report
from repro.errors import BenchFormatError


def _valid_document():
    return {
        "benchmark": "repro.bench",
        "python": "3.11.7",
        "machine": {
            "ncores": 4,
            "seed": 11,
            "line_size": 64,
            "l1_size": 32768,
            "l2_size": 262144,
            "l3_size": 8388608,
        },
        "scenarios": [
            {
                "name": "memcached",
                "events": 1000,
                "duration_cycles": 150000,
                "repeats": 1,
                "reference_s": 0.5,
                "encode_s": 0.01,
                "fast_s": 0.1,
                "reference_events_per_s": 2000.0,
                "fast_events_per_s": 10000.0,
                "speedup": 5.0,
                "speedup_including_encode": 4.5,
                "accuracy": {"identical": True},
            }
        ],
        "all_identical": True,
        "service_throughput": {
            "scenario": "memcached",
            "jobs": 8,
            "workers": 4,
            "duration_cycles": 150000,
            "wall_s": 1.5,
            "jobs_per_minute": 320.0,
            "statuses": {"ok": 8},
        },
    }


def _valid_analysis_section():
    return {
        "scenarios": [
            {
                "name": "memcached",
                "histories": 960,
                "types": 4,
                "repeats": 3,
                "reference_s": 0.8,
                "indexed_s": 0.2,
                "sharded_s": 0.25,
                "speedup_indexed": 4.0,
                "speedup": 4.0,
                "identical": True,
            }
        ],
        "all_identical": True,
        "view_cache": {
            "view": "working-set",
            "repeats": 3,
            "cold_s": 0.4,
            "warm_s": 0.001,
            "speedup": 400.0,
            "hits": 3,
            "misses": 1,
            "hit_rate": 0.75,
        },
    }


def test_valid_document_passes():
    validate_report(_valid_document())


def test_analysis_section_validates():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    validate_report(document)


def test_analysis_view_cache_is_optional():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    del document["analysis"]["view_cache"]
    validate_report(document)


def test_rejects_analysis_missing_identity_flag():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    del document["analysis"]["all_identical"]
    with pytest.raises(BenchFormatError, match="all_identical"):
        validate_report(document)


def test_rejects_empty_analysis_scenarios():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    document["analysis"]["scenarios"] = []
    with pytest.raises(BenchFormatError, match="no scenario rows"):
        validate_report(document)


def test_rejects_analysis_row_missing_speedup():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    del document["analysis"]["scenarios"][0]["speedup"]
    with pytest.raises(BenchFormatError, match="speedup"):
        validate_report(document)


def test_rejects_malformed_view_cache_block():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    document["analysis"]["view_cache"]["hit_rate"] = "most"
    with pytest.raises(BenchFormatError, match="hit_rate"):
        validate_report(document)


def test_service_block_is_optional():
    document = _valid_document()
    del document["service_throughput"]
    validate_report(document)


def test_rejects_non_dict_root():
    with pytest.raises(BenchFormatError, match="not an object"):
        validate_report(["not", "a", "report"])


def test_rejects_missing_top_level_field():
    document = _valid_document()
    del document["all_identical"]
    with pytest.raises(BenchFormatError, match="all_identical"):
        validate_report(document)


def test_rejects_wrong_type():
    document = _valid_document()
    document["machine"]["ncores"] = "four"
    with pytest.raises(BenchFormatError, match="ncores"):
        validate_report(document)


def test_rejects_empty_scenarios():
    document = _valid_document()
    document["scenarios"] = []
    with pytest.raises(BenchFormatError, match="no scenario rows"):
        validate_report(document)


def test_rejects_scenario_missing_accuracy_flag():
    document = _valid_document()
    document["scenarios"][0]["accuracy"] = {}
    with pytest.raises(BenchFormatError, match="identical"):
        validate_report(document)


def test_rejects_malformed_service_block():
    document = _valid_document()
    del document["service_throughput"]["jobs_per_minute"]
    with pytest.raises(BenchFormatError, match="jobs_per_minute"):
        validate_report(document)


def test_write_report_refuses_partial_and_writes_valid(tmp_path):
    document = _valid_document()
    partial = copy.deepcopy(document)
    del partial["scenarios"][0]["speedup"]
    out = tmp_path / "bench.json"
    with pytest.raises(BenchFormatError):
        write_report(partial, str(out))
    assert not out.exists()  # refused before any bytes hit disk
    write_report(document, str(out))
    assert json.loads(out.read_text())["all_identical"] is True


def test_checked_in_baseline_validates():
    """The repo's committed BENCH_dprof.json satisfies the schema."""
    from pathlib import Path

    baseline = Path(__file__).resolve().parent.parent / "BENCH_dprof.json"
    validate_report(json.loads(baseline.read_text()))
