"""Schema validation for BENCH_dprof.json documents."""

import copy
import json

import pytest

from repro.bench import merge_report, validate_report, write_report
from repro.errors import BenchFormatError


def _valid_document():
    return {
        "benchmark": "repro.bench",
        "python": "3.11.7",
        "machine": {
            "ncores": 4,
            "seed": 11,
            "line_size": 64,
            "l1_size": 32768,
            "l2_size": 262144,
            "l3_size": 8388608,
        },
        "scenarios": [
            {
                "name": "memcached",
                "events": 1000,
                "duration_cycles": 150000,
                "repeats": 1,
                "reference_s": 0.5,
                "encode_s": 0.01,
                "fast_s": 0.1,
                "reference_events_per_s": 2000.0,
                "fast_events_per_s": 10000.0,
                "speedup": 5.0,
                "speedup_including_encode": 4.5,
                "accuracy": {"identical": True},
            }
        ],
        "all_identical": True,
        "service_throughput": {
            "scenario": "memcached",
            "jobs": 8,
            "workers": 4,
            "duration_cycles": 150000,
            "wall_s": 1.5,
            "jobs_per_minute": 320.0,
            "statuses": {"ok": 8},
        },
    }


def _valid_analysis_section():
    return {
        "scenarios": [
            {
                "name": "memcached",
                "histories": 960,
                "types": 4,
                "repeats": 3,
                "reference_s": 0.8,
                "indexed_s": 0.2,
                "sharded_s": 0.25,
                "speedup_indexed": 4.0,
                "speedup": 4.0,
                "identical": True,
            }
        ],
        "all_identical": True,
        "view_cache": {
            "view": "working-set",
            "repeats": 3,
            "cold_s": 0.4,
            "warm_s": 0.001,
            "speedup": 400.0,
            "hits": 3,
            "misses": 1,
            "hit_rate": 0.75,
        },
    }


def test_valid_document_passes():
    validate_report(_valid_document())


def test_analysis_section_validates():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    validate_report(document)


def test_analysis_view_cache_is_optional():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    del document["analysis"]["view_cache"]
    validate_report(document)


def test_rejects_analysis_missing_identity_flag():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    del document["analysis"]["all_identical"]
    with pytest.raises(BenchFormatError, match="all_identical"):
        validate_report(document)


def test_rejects_empty_analysis_scenarios():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    document["analysis"]["scenarios"] = []
    with pytest.raises(BenchFormatError, match="no scenario rows"):
        validate_report(document)


def test_rejects_analysis_row_missing_speedup():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    del document["analysis"]["scenarios"][0]["speedup"]
    with pytest.raises(BenchFormatError, match="speedup"):
        validate_report(document)


def test_rejects_malformed_view_cache_block():
    document = _valid_document()
    document["analysis"] = _valid_analysis_section()
    document["analysis"]["view_cache"]["hit_rate"] = "most"
    with pytest.raises(BenchFormatError, match="hit_rate"):
        validate_report(document)


def test_service_block_is_optional():
    document = _valid_document()
    del document["service_throughput"]
    validate_report(document)


def test_rejects_non_dict_root():
    with pytest.raises(BenchFormatError, match="not an object"):
        validate_report(["not", "a", "report"])


def test_rejects_missing_top_level_field():
    document = _valid_document()
    del document["all_identical"]
    with pytest.raises(BenchFormatError, match="all_identical"):
        validate_report(document)


def test_rejects_wrong_type():
    document = _valid_document()
    document["machine"]["ncores"] = "four"
    with pytest.raises(BenchFormatError, match="ncores"):
        validate_report(document)


def test_rejects_empty_scenarios():
    document = _valid_document()
    document["scenarios"] = []
    with pytest.raises(BenchFormatError, match="no scenario rows"):
        validate_report(document)


def test_rejects_scenario_missing_accuracy_flag():
    document = _valid_document()
    document["scenarios"][0]["accuracy"] = {}
    with pytest.raises(BenchFormatError, match="identical"):
        validate_report(document)


def test_rejects_malformed_service_block():
    document = _valid_document()
    del document["service_throughput"]["jobs_per_minute"]
    with pytest.raises(BenchFormatError, match="jobs_per_minute"):
        validate_report(document)


def _valid_load_sweep_section():
    return {
        "scenario": "synthetic",
        "duration_cycles": 60000,
        "workers": 4,
        "jobs_per_rate": 24,
        "arrivals": "poisson-open-loop",
        "rates": [
            {
                "offered_rate_per_s": 4.0,
                "realized_rate_per_s": 4.1,
                "jobs": 24,
                "accepted": 24,
                "rejected": 0,
                "completed": 24,
                "achieved_rate_per_s": 4.0,
                "p50_s": 0.12,
                "p95_s": 0.2,
                "p99_s": 0.31,
            }
        ],
        "knee": {"offered_rate_per_s": 4.0, "reason": "rejected 2/24"},
    }


def test_load_sweep_section_validates():
    document = _valid_document()
    document["load_sweep"] = _valid_load_sweep_section()
    validate_report(document)
    document["load_sweep"]["knee"] = None  # unsaturated sweep is fine
    validate_report(document)


def test_rejects_load_sweep_without_rates():
    document = _valid_document()
    document["load_sweep"] = _valid_load_sweep_section()
    document["load_sweep"]["rates"] = []
    with pytest.raises(BenchFormatError, match="no rate steps"):
        validate_report(document)


def test_rejects_load_step_missing_percentile():
    document = _valid_document()
    document["load_sweep"] = _valid_load_sweep_section()
    del document["load_sweep"]["rates"][0]["p99_s"]
    with pytest.raises(BenchFormatError, match="p99_s"):
        validate_report(document)


def test_rejects_knee_without_rate():
    document = _valid_document()
    document["load_sweep"] = _valid_load_sweep_section()
    document["load_sweep"]["knee"] = {"reason": "vibes"}
    with pytest.raises(BenchFormatError, match="offered_rate_per_s"):
        validate_report(document)


def test_trajectory_validates_and_rejects_malformed_entries():
    document = _valid_document()
    document["trajectory"] = [
        {
            "recorded_at": "2026-08-08T12:00:00+0000",
            "python": "3.12.1",
            "commit": None,
            "sections": ["scenarios"],
        }
    ]
    validate_report(document)
    document["trajectory"][0]["sections"] = "scenarios"
    with pytest.raises(BenchFormatError, match="sections"):
        validate_report(document)
    document["trajectory"] = {"oops": True}
    with pytest.raises(BenchFormatError, match="not a list"):
        validate_report(document)


def test_merge_report_preserves_old_sections_and_appends_trajectory():
    old = _valid_document()
    old["analysis"] = _valid_analysis_section()
    old["trajectory"] = [
        {
            "recorded_at": "2026-01-01T00:00:00+0000",
            "python": "3.12.0",
            "commit": "abc1234",
            "sections": ["analysis", "scenarios"],
        }
    ]
    new = _valid_document()
    new["scenarios"][0]["speedup"] = 9.0  # the re-run refreshed this
    del new["service_throughput"]

    merged = merge_report(new, old)
    # New sections win; old-only sections survive the overlay.
    assert merged["scenarios"][0]["speedup"] == 9.0
    assert merged["analysis"] == old["analysis"]
    assert merged["service_throughput"] == old["service_throughput"]
    # History grows by exactly one entry naming the refreshed sections.
    assert len(merged["trajectory"]) == 2
    entry = merged["trajectory"][-1]
    assert entry["sections"] == ["all_identical", "scenarios"]
    assert entry["python"] == new["python"]
    validate_report(merged)


def test_write_report_appends_per_commit_trajectory(tmp_path):
    out = tmp_path / "bench.json"
    write_report(_valid_document(), str(out))
    first = json.loads(out.read_text())
    assert len(first["trajectory"]) == 1

    second_doc = _valid_document()
    second_doc["load_sweep"] = _valid_load_sweep_section()
    write_report(second_doc, str(out))
    second = json.loads(out.read_text())
    assert len(second["trajectory"]) == 2
    assert "load_sweep" in second["trajectory"][-1]["sections"]
    assert second["load_sweep"]["arrivals"] == "poisson-open-loop"
    validate_report(second)


def test_write_report_refuses_to_clobber_corrupt_baseline(tmp_path):
    out = tmp_path / "bench.json"
    out.write_text("{torn")
    with pytest.raises(BenchFormatError, match="refusing to overwrite"):
        write_report(_valid_document(), str(out))
    assert out.read_text() == "{torn"  # untouched


def test_write_report_refuses_partial_and_writes_valid(tmp_path):
    document = _valid_document()
    partial = copy.deepcopy(document)
    del partial["scenarios"][0]["speedup"]
    out = tmp_path / "bench.json"
    with pytest.raises(BenchFormatError):
        write_report(partial, str(out))
    assert not out.exists()  # refused before any bytes hit disk
    write_report(document, str(out))
    assert json.loads(out.read_text())["all_identical"] is True


def test_checked_in_baseline_validates():
    """The repo's committed BENCH_dprof.json satisfies the schema."""
    from pathlib import Path

    baseline = Path(__file__).resolve().parent.parent / "BENCH_dprof.json"
    validate_report(json.loads(baseline.read_text()))


def test_smoke_without_out_writes_no_report(tmp_path, monkeypatch):
    # `python -m repro.bench --smoke` (no --out) must be read-only: the
    # committed BENCH_dprof.json is a curated baseline, not a side effect.
    from repro.bench.__main__ import main as bench_main

    sentinel = tmp_path / "BENCH_dprof.json"
    sentinel.write_text('{"do-not-touch": true}')
    before = sentinel.read_bytes()
    monkeypatch.chdir(tmp_path)
    rc = bench_main(
        [
            "--smoke",
            "--scenario", "kernel-counters",
            "--duration", "5000",
            "--ncores", "2",
            "--service-jobs", "0",
        ]
    )
    assert rc == 0
    assert sentinel.read_bytes() == before
    # Nothing else appeared in the working directory either.
    assert sorted(p.name for p in tmp_path.iterdir()) == ["BENCH_dprof.json"]


def test_smoke_with_out_writes_only_the_named_file(tmp_path, monkeypatch):
    from repro.bench.__main__ import main as bench_main

    monkeypatch.chdir(tmp_path)
    out = tmp_path / "report.json"
    rc = bench_main(
        [
            "--smoke",
            "--scenario", "kernel-counters",
            "--duration", "5000",
            "--ncores", "2",
            "--service-jobs", "0",
            "--out", str(out),
        ]
    )
    assert rc == 0
    document = json.loads(out.read_text())
    validate_report(document)
    assert [s["name"] for s in document["scenarios"]] == ["kernel-counters"]
