"""Tests for the kernel instruction-emission DSL."""

import pytest

from repro.errors import ConfigError
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel, StructType

WIDGET = StructType("kwidget", [("a", 8), ("buf", 120)], object_size=128)


def make_kernel():
    return Kernel(MachineConfig(ncores=2, seed=15))


def test_read_write_build_typed_instructions():
    k = make_kernel()
    obj = k.slab.new_static(WIDGET, "w")
    rd = k.env.read("fn", obj, "a")
    wr = k.env.write("fn", obj, "a")
    assert rd.kind == "load" and wr.kind == "store"
    assert rd.addr == obj.base and rd.size == 8
    assert rd.ip != wr.ip  # distinct sites for read vs write
    assert k.symbols.resolve(rd.ip) == "fn"


def test_same_site_same_ip_across_objects():
    k = make_kernel()
    a = k.slab.new_static(WIDGET, "a")
    b = k.slab.new_static(WIDGET, "b")
    assert k.env.read("fn", a, "a").ip == k.env.read("fn", b, "a").ip


def test_range_accesses_validate_bounds():
    k = make_kernel()
    obj = k.slab.new_static(WIDGET, "w")
    instr = k.env.read_range("fn", obj, 8, 8)
    assert instr.addr == obj.base + 8
    with pytest.raises(ConfigError):
        k.env.read_range("fn", obj, 126, 8)


def test_work_is_pure_compute():
    k = make_kernel()
    instr = k.env.work("fn", 500)
    assert instr.kind == "exec"
    assert not instr.is_memory
    assert instr.work == 500


def test_bulk_strides_one_access_per_line():
    k = make_kernel()
    obj = k.slab.new_static(WIDGET, "w")
    instrs = list(k.env.bulk("fn", obj, 0, 128, write=True))
    assert len(instrs) == 2  # 128 bytes at 64-byte stride
    assert all(i.is_write for i in instrs)
    assert instrs[0].addr == obj.base
    assert instrs[1].addr == obj.base + 64


def test_bulk_partial_tail():
    k = make_kernel()
    obj = k.slab.new_static(WIDGET, "w")
    instrs = list(k.env.bulk("fn", obj, 0, 70, write=False, stride=64))
    assert len(instrs) == 2
    assert instrs[1].size == 6  # only 6 bytes remain past offset 64


def test_raw_address_accesses():
    k = make_kernel()
    base = k.machine.address_space.alloc_region(64, label="raw")
    rd = k.env.read_at("fn", "probe", base, 8)
    assert rd.addr == base
    assert k.symbols.resolve_site(rd.ip) == ("fn", "probe")


def test_cycle_reads_core_clock():
    k = make_kernel()
    assert k.env.cycle(0) == 0
    k.spawn("t", 0, iter([k.env.work("fn", 123)]))
    k.run()
    assert k.env.cycle(0) == 123
