"""Public-API surface checks: exports exist and are importable."""

import importlib

import pytest


PUBLIC_MODULES = [
    "repro",
    "repro.hw",
    "repro.kernel",
    "repro.kernel.net",
    "repro.dprof",
    "repro.dprof.views",
    "repro.baselines",
    "repro.workloads",
    "repro.fixes",
    "repro.util",
    "repro.cli",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_top_level_version():
    import repro

    assert repro.__version__


def test_errors_hierarchy():
    from repro import errors

    for name in (
        "ConfigError",
        "SimulationError",
        "AllocationError",
        "ResolveError",
        "ProfilingError",
    ):
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)


def test_public_entry_points_have_docstrings():
    from repro.dprof import DProf
    from repro.hw.machine import Machine
    from repro.kernel import Kernel

    for cls in (DProf, Machine, Kernel):
        assert cls.__doc__
        for attr_name in dir(cls):
            if attr_name.startswith("_"):
                continue
            attr = getattr(cls, attr_name)
            if callable(attr):
                assert attr.__doc__, f"{cls.__name__}.{attr_name} lacks a docstring"
