"""Unit tests for debug register files and the watch manager internals."""

import pytest

from repro.errors import SimulationError
from repro.hw.debugreg import DebugRegisterFile, Watch, WatchManager


def handler(*args):
    pass


def make_watch(watch_id=1, lo=0x1000, length=4, slot=0):
    return Watch(watch_id=watch_id, lo=lo, hi=lo + length, slot=slot, handler=handler)


class TestDebugRegisterFile:
    def test_free_slot_progression(self):
        f = DebugRegisterFile(0)
        assert f.free_slot() == 0
        f.arm(0, make_watch(slot=0))
        assert f.free_slot() == 1
        for i in range(1, 4):
            f.arm(i, make_watch(watch_id=i + 1, slot=i))
        assert f.free_slot() is None

    def test_double_arm_same_slot_rejected(self):
        f = DebugRegisterFile(0)
        f.arm(0, make_watch())
        with pytest.raises(SimulationError):
            f.arm(0, make_watch(watch_id=2))

    def test_out_of_range_slot_rejected(self):
        f = DebugRegisterFile(0)
        with pytest.raises(SimulationError):
            f.arm(7, make_watch())

    def test_disarm_frees_slot(self):
        f = DebugRegisterFile(0)
        f.arm(0, make_watch())
        f.disarm(0)
        assert f.free_slot() == 0


class TestWatchOverlap:
    def test_overlap_boundaries(self):
        w = make_watch(lo=0x100, length=4)  # [0x100, 0x104)
        assert w.overlaps(0x100, 1)
        assert w.overlaps(0x103, 1)
        assert not w.overlaps(0x104, 1)
        assert not w.overlaps(0xFC, 4)
        assert w.overlaps(0xFC, 5)
        assert w.overlaps(0xFE, 8)

    def test_zero_size_access_treated_as_one_byte(self):
        w = make_watch(lo=0x100, length=4)
        assert w.overlaps(0x100, 0)
        assert not w.overlaps(0x104, 0)


class TestWatchManagerIndex:
    def test_line_index_spans_ranges(self):
        mgr = WatchManager(ncores=2, line_size=64)
        w = mgr.arm_all_cores(0x103C, 8, handler)  # straddles lines 64, 65
        assert set(mgr.watched_lines) == {0x103C // 64, (0x103C + 7) // 64}
        mgr.disarm(w)
        assert mgr.watched_lines == {}

    def test_two_watches_same_line_both_fire(self):
        mgr = WatchManager(ncores=1, line_size=64)
        fired = []
        mgr.arm_all_cores(0x1000, 4, lambda c, i, r, cy: fired.append("a"))
        mgr.arm_all_cores(0x1004, 4, lambda c, i, r, cy: fired.append("b"))

        class FakeInstr:
            addr = 0x1002
            size = 4
            is_write = False

        overhead = mgr.check(0, FakeInstr(), None, 0)
        # Access [0x1002, 0x1006) overlaps both watches.
        assert sorted(fired) == ["a", "b"]
        assert overhead == 2 * mgr.trap_cycles

    def test_same_watch_not_fired_twice_for_straddling_access(self):
        mgr = WatchManager(ncores=1, line_size=64)
        fired = []
        mgr.arm_all_cores(0x103C, 8, lambda c, i, r, cy: fired.append(1))

        class FakeInstr:
            addr = 0x1038
            size = 16  # spans both indexed lines
            is_write = True

        mgr.check(0, FakeInstr(), None, 0)
        assert fired == [1]
