"""Ground-truth differential tier for the generated kernel families.

Every family in ``KERNEL_FAMILIES`` ships a closed-form model
(``expected_metrics``) of the top-down metrics the simulator must
produce.  This tier runs each family through the same DProf attachment
path the service uses, on both engines and at analysis workers {1, 4},
and asserts the measured :class:`MetricsSummary` against the model --
exact where the model declares exact, within the declared band where
thread interleaving makes the number statistical.

The per-family tolerance declarations live in ``BANDED_METRICS`` below:
a family may only band the metrics listed for it; everything else in
its model must be exact.  That keeps tolerance creep visible in review.
"""

import json

import pytest

from repro.dprof.profiler import DProf, DProfConfig
from repro.dprof.session_io import OfflineSession, export_session
from repro.errors import ConfigError
from repro.hw.machine import MachineConfig
from repro.metrics import MetricsSummary
from repro.workloads import SCENARIOS, build_kernel
from repro.workloads.kernels import (
    KERNEL_DEFAULT_DURATION,
    KERNEL_FAMILIES,
    KernelSpec,
    expected_metrics,
    metric_value,
    spec_for_duration,
)

ENGINES = ("reference", "fast")
WORKER_COUNTS = (1, 4)
FAMILIES = tuple(sorted(KERNEL_FAMILIES))

#: Which metrics each family is allowed to model as a band rather than
#: an exact value.  Single-core families and padded counters are fully
#: deterministic; the falsely-shared families depend on the scheduler's
#: interleaving, so only their coherence-traffic metrics get bands.
BANDED_METRICS = {
    "kernel-strided": frozenset(),
    "kernel-stream": frozenset(),
    "kernel-chase": frozenset(),
    "kernel-counters": frozenset(),
    "kernel-pingpong": frozenset(
        {"level:FOREIGN", "level:L1", "miss_kind:invalidation",
         "l1_miss_rate", "avg_miss_latency", "cycles_per_access", "cycles"}
    ),
    "kernel-ring": frozenset(
        {"level:FOREIGN", "level:L1", "miss_kind:invalidation",
         "l1_miss_rate", "avg_miss_latency", "cycles_per_access", "cycles"}
    ),
}

# One simulated run per (family, engine, workers) cell, shared by every
# assertion over that cell.
_RUNS: dict = {}


def _run_cell(name: str, engine: str, workers: int):
    key = (name, engine, workers)
    if key not in _RUNS:
        spec = spec_for_duration(name, KERNEL_DEFAULT_DURATION)
        kernel = build_kernel(max(spec.cores, 2), seed=11, engine=engine)
        dprof = DProf(
            kernel,
            DProfConfig(
                ibs_interval=400, analysis="indexed", analysis_workers=workers
            ),
        )
        dprof.attach()
        try:
            SCENARIOS[name](kernel, KERNEL_DEFAULT_DURATION)
        finally:
            dprof.detach()
        live = MetricsSummary.from_machine(kernel.machine)
        blob = json.loads(json.dumps(export_session(dprof)))
        _RUNS[key] = (spec, kernel.machine.config, live, blob)
    return _RUNS[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", FAMILIES)
def test_simulator_matches_ground_truth_model(name, engine, workers):
    spec, machine_config, live, _blob = _run_cell(name, engine, workers)
    model = expected_metrics(spec, machine_config)
    assert model, f"{name}: empty ground-truth model"
    failures = []
    for metric, expectation in sorted(model.items()):
        value = metric_value(live, metric)
        if not expectation.check(value):
            failures.append(
                f"{metric}: got {value}, expected "
                f"[{expectation.lo}, {expectation.hi}]"
            )
    assert not failures, (
        f"{name} on {engine} (workers={workers}) diverged from its "
        f"ground-truth model:\n  " + "\n  ".join(failures)
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", FAMILIES)
def test_archived_metrics_equal_live_metrics(name, engine, workers):
    _spec, _cfg, live, blob = _run_cell(name, engine, workers)
    offline = OfflineSession(blob, analysis_workers=workers).metrics()
    assert offline is not None
    assert offline.to_blob() == live.to_blob()
    assert offline.render() == live.render()


@pytest.mark.parametrize("name", FAMILIES)
def test_engines_agree_on_every_metric(name):
    _s1, _c1, reference, _b1 = _run_cell(name, "reference", 1)
    _s2, _c2, fast, _b2 = _run_cell(name, "fast", 1)
    assert reference.to_blob() == fast.to_blob()


@pytest.mark.parametrize("name", FAMILIES)
def test_band_usage_matches_declaration(name):
    spec = spec_for_duration(name, KERNEL_DEFAULT_DURATION)
    model = expected_metrics(spec, MachineConfig(ncores=max(spec.cores, 2)))
    banded = {m for m, e in model.items() if not e.is_exact}
    assert banded <= BANDED_METRICS[name], (
        f"{name} bands undeclared metrics: "
        f"{sorted(banded - BANDED_METRICS[name])}"
    )
    exact = {m for m, e in model.items() if e.is_exact}
    # The headline counters are always modelled exactly.
    assert {"accesses", "instructions", "lines_total"} <= exact


def test_strided_miss_rate_follows_stride_over_line_law():
    # The paper-adjacent law: steady-state L1 miss rate of a strided
    # walk is min(1, stride / line_size) once the footprint thrashes L1.
    cfg = MachineConfig(ncores=2)
    for stride in (16, 32, 64):
        spec = KernelSpec(
            family="kernel-strided", footprint=32 * 1024, stride=stride,
            cores=1, iterations=4,
        )
        kernel = build_kernel(2, seed=11, engine="fast")
        from repro.workloads.kernels import drive_spec

        drive_spec(kernel, spec)
        summary = MetricsSummary.from_machine(kernel.machine)
        model = expected_metrics(spec, cfg)
        expectation = model["l1_miss_rate"]
        assert expectation.is_exact
        assert expectation.check(summary.l1_miss_rate)
        assert summary.l1_miss_rate == pytest.approx(
            min(1.0, stride / cfg.line_size)
        )


def test_packed_counters_share_one_line():
    # padding < line_size packs every core's counter into one line:
    # sharing_ratio 1.0, a single resident line, and the model says so.
    spec = KernelSpec(
        family="kernel-counters", cores=4, padding=8, iterations=50,
    )
    kernel = build_kernel(4, seed=11, engine="fast")
    from repro.workloads.kernels import drive_spec

    drive_spec(kernel, spec)
    summary = MetricsSummary.from_machine(kernel.machine)
    assert summary.lines_total == 1
    assert summary.sharing_ratio == 1.0
    model = expected_metrics(spec, kernel.machine.config)
    for metric, expectation in model.items():
        assert expectation.check(metric_value(summary, metric)), metric


def test_walk_model_refuses_unmodelled_regimes():
    # Footprints between L2-steady and DRAM-streaming have no closed
    # form; the model must refuse rather than guess.
    awkward = KernelSpec(
        family="kernel-strided", footprint=96 * 1024, stride=64,
        cores=1, iterations=2,
    )
    with pytest.raises(ConfigError):
        expected_metrics(awkward, MachineConfig(ncores=2))
