"""Tests for the deterministic RNG streams."""

from repro.util.rng import DeterministicRng


def test_same_seed_same_stream():
    a = DeterministicRng(7, "x")
    b = DeterministicRng(7, "x")
    assert [a.randint(0, 100) for _ in range(20)] == [
        b.randint(0, 100) for _ in range(20)
    ]


def test_different_labels_differ():
    a = DeterministicRng(7, "x")
    b = DeterministicRng(7, "y")
    assert [a.randint(0, 10**6) for _ in range(8)] != [
        b.randint(0, 10**6) for _ in range(8)
    ]


def test_child_streams_are_independent_of_draw_order():
    root = DeterministicRng(3)
    child_first = root.child("ibs")
    seq1 = [child_first.randint(0, 10**6) for _ in range(5)]

    root2 = DeterministicRng(3)
    root2.randint(0, 100)  # extra draw on the parent must not matter
    child_second = root2.child("ibs")
    seq2 = [child_second.randint(0, 10**6) for _ in range(5)]
    assert seq1 == seq2


def test_jitter_stays_positive_and_near_base():
    rng = DeterministicRng(1)
    for _ in range(100):
        v = rng.jitter(1000, fraction=0.25)
        assert 750 <= v <= 1250
    assert rng.jitter(0) == 0
    assert rng.jitter(1) >= 1


def test_choice_and_sample():
    rng = DeterministicRng(5)
    seq = [10, 20, 30]
    assert rng.choice(seq) in seq
    picked = rng.sample(list(range(100)), 10)
    assert len(set(picked)) == 10
