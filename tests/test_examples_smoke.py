"""Smoke tests: the runnable examples execute end-to-end.

Only the fast examples run here (the two full case studies take minutes
and are exercised by the benchmark suite's equivalent fixtures).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    path = EXAMPLES / name
    assert path.exists(), f"{name} missing"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart_runs_and_diagnoses(capsys):
    out = run_example("quickstart.py", capsys)
    assert "DATA PROFILE" in out
    assert "true sharing" in out
    assert "TRUE SHARING" in out
    assert "CAPACITY" in out


@pytest.mark.slow
def test_miss_classification_tour_runs(capsys):
    out = run_example("miss_classification_tour.py", capsys)
    assert "TRUE SHARING" in out
    assert "FALSE SHARING" in out
    assert "CONFLICT" in out
    assert "CAPACITY" in out
    assert "shared_counter" in out


def test_all_examples_importable_as_modules():
    # Syntax/import sanity for every example, including the slow ones.
    sys.path.insert(0, str(EXAMPLES))
    try:
        for path in sorted(EXAMPLES.glob("*.py")):
            compile(path.read_text(), str(path), "exec")
    finally:
        sys.path.pop(0)
