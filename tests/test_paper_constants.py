"""Pin the constants the paper states explicitly.

These tests exist so that casual refactoring cannot silently drift the
reproduction away from the paper's stated parameters.
"""

from repro.hw.debugreg import DEFAULT_TRAP_CYCLES, MAX_WATCH_BYTES, NUM_DEBUG_REGISTERS
from repro.hw.ibs import DEFAULT_IBS_INTERRUPT_CYCLES
from repro.hw.interconnect import InterconnectCosts
from repro.dprof.history import DEFAULT_CHUNK_SIZE, all_pairs, chunks_for_type
from repro.kernel.net.types import (
    NET_DEVICE_TYPE,
    SIZE_1024_TYPE,
    SKBUFF_FCLONE_TYPE,
    SKBUFF_TYPE,
    TCP_SOCK_TYPE,
    UDP_SOCK_TYPE,
)
from repro.kernel.slab import ARRAY_CACHE_TYPE


def test_object_sizes_match_thesis_tables():
    # Sizes from Tables 6.1 and 6.7.
    assert SKBUFF_TYPE.size == 256
    assert SKBUFF_FCLONE_TYPE.size == 512
    assert SIZE_1024_TYPE.size == 1024
    assert UDP_SOCK_TYPE.size == 1024
    assert TCP_SOCK_TYPE.size == 1600
    assert NET_DEVICE_TYPE.size == 128
    assert ARRAY_CACHE_TYPE.size == 128


def test_ibs_interrupt_cost_is_2000_cycles():
    # Section 6.3: "The cost of an IBS interrupt is about 2,000 cycles".
    assert DEFAULT_IBS_INTERRUPT_CYCLES == 2_000


def test_debug_register_limits_match_x86():
    # Section 5.3 / 7: four registers, eight bytes each, ~1,000-cycle trap.
    assert NUM_DEBUG_REGISTERS == 4
    assert MAX_WATCH_BYTES == 8
    assert DEFAULT_TRAP_CYCLES == 1_000


def test_debug_setup_costs_match_section_6_4():
    costs = InterconnectCosts()
    # "The core responsible for setting up debug registers incurs a cost
    # of 130,000 cycles" (16 cores)...
    assert abs(costs.broadcast_cost(16) - 130_000) <= 10_000
    # ..."It costs about 220,000 cycles to setup an object for profiling."
    assert abs(costs.object_setup_cost(16) - 220_000) <= 15_000


def test_history_set_sizes_match_section_6_4():
    # "a skbuff is 256 bytes long and its history set is composed of 64
    # histories with debug register configured to monitor length of 4".
    assert DEFAULT_CHUNK_SIZE == 4
    assert len(chunks_for_type(256)) == 64
    assert len(chunks_for_type(1600)) == 400  # tcp_sock: 32000/80 sets
    assert len(chunks_for_type(1024)) == 256  # size-1024: 8128/32 sets
    assert len(chunks_for_type(512)) == 128  # skbuff_fclone: 10240/80

    # Table 6.10's pairwise counts.
    assert len(all_pairs(chunks_for_type(256))) == 2016  # paper: 2017/1
    assert len(all_pairs(chunks_for_type(1600))) == 79800  # paper: 79801/1


def test_sample_record_sizes_match_section_6_3_and_6_4():
    # "Each access sample is 88 bytes" / "32 bytes per element".
    from repro.dprof.access_sampler import AccessSampleCollector
    from repro.dprof.history import HistoryCollector
    from repro.dprof.resolver import TypeResolver
    from repro.hw.machine import Machine, MachineConfig
    from repro.kernel import Kernel

    k = Kernel(MachineConfig(ncores=2, seed=1))
    sampler = AccessSampleCollector(k.machine, TypeResolver(k.slab))
    collector = HistoryCollector(k.machine, k.slab)
    assert sampler.memory_bytes == 0
    assert collector.memory_bytes == 0
    # The constants are embedded in the accounting properties.
    sampler.samples.append(object())
    assert sampler.memory_bytes == 88
