"""Tests for address resolution and IBS-driven access sampling."""

from repro.dprof.access_sampler import AccessSampleCollector
from repro.dprof.resolver import TypeResolver
from repro.hw.machine import Machine, MachineConfig
from repro.kernel import Kernel, StructType

WIDGET = StructType("widget", [("a", 8), ("b", 8), ("big", 100)], object_size=128)


def alloc_one(kernel, cache, cpu=0):
    out = []

    def body():
        o = yield from cache.alloc(cpu)
        out.append(o)

    kernel.spawn("alloc", cpu, body())
    kernel.run()
    return out[0]


class TestResolver:
    def test_resolves_slab_object_with_offset(self):
        k = Kernel(MachineConfig(ncores=2, seed=1))
        cache = k.slab.create_cache(WIDGET)
        obj = alloc_one(k, cache)
        resolver = TypeResolver(k.slab)
        res = resolver.resolve(obj.base + 24)
        assert res is not None
        assert res.type_name == "widget"
        assert res.offset == 24
        assert res.base == obj.base
        assert res.live

    def test_resolves_freed_memory_to_its_pool_type(self):
        k = Kernel(MachineConfig(ncores=2, seed=1))
        cache = k.slab.create_cache(WIDGET)
        obj = alloc_one(k, cache)
        k.spawn("free", 0, cache.free(0, obj))
        k.run()
        res = TypeResolver(k.slab).resolve(obj.base + 4)
        assert res is not None
        assert res.type_name == "widget"
        assert not res.live

    def test_unknown_address_counts_unresolved(self):
        k = Kernel(MachineConfig(ncores=2, seed=1))
        resolver = TypeResolver(k.slab)
        assert resolver.resolve(0x5) is None
        assert resolver.unresolved == 1


class TestAccessSampler:
    def make_setup(self):
        k = Kernel(MachineConfig(ncores=2, seed=1))
        cache = k.slab.create_cache(WIDGET)
        obj = alloc_one(k, cache)
        sampler = AccessSampleCollector(k.machine, TypeResolver(k.slab), chunk_size=4)
        return k, obj, sampler

    def spin_accesses(self, k, obj, n=3000):
        env = k.env

        def body():
            for _ in range(n):
                yield env.read("reader_fn", obj, "a")
                yield env.write("writer_fn", obj, "b")

        k.spawn("traffic", 0, body())
        k.run()

    def test_samples_resolved_and_typed(self):
        k, obj, sampler = self.make_setup()
        sampler.start(interval=20)
        self.spin_accesses(k, obj)
        sampler.stop()
        assert len(sampler.samples) > 50
        assert all(s.type_name == "widget" for s in sampler.samples)
        offsets = {s.offset for s in sampler.samples}
        assert offsets <= {0, 8}

    def test_stats_keyed_by_type_chunk_ip(self):
        k, obj, sampler = self.make_setup()
        sampler.start(interval=10)
        self.spin_accesses(k, obj)
        sampler.stop()
        read_ip = k.symbols.ip_for("reader_fn", "R.widget.a")
        stats = sampler.stats_for("widget", 0, read_ip)
        assert stats is not None
        assert stats.count > 10
        # After the first touch everything is an L1 hit on one core.
        assert stats.miss_probability < 0.1

    def test_miss_share_tracks_types(self):
        k, obj, sampler = self.make_setup()
        sampler.start(interval=10)
        self.spin_accesses(k, obj)
        sampler.stop()
        assert 0.0 <= sampler.miss_share("widget") <= 1.0
        assert sampler.miss_share("nonexistent") == 0.0

    def test_popular_chunks_ranked(self):
        k, obj, sampler = self.make_setup()
        sampler.start(interval=10)
        self.spin_accesses(k, obj)
        sampler.stop()
        chunks = sampler.popular_chunks("widget", 2)
        assert set(chunks) <= {0, 8}

    def test_stop_ends_collection(self):
        k, obj, sampler = self.make_setup()
        sampler.start(interval=10)
        self.spin_accesses(k, obj, n=200)
        sampler.stop()
        count = len(sampler.samples)
        self.spin_accesses(k, obj, n=200)
        assert len(sampler.samples) == count

    def test_memory_accounting_88_bytes_per_sample(self):
        k, obj, sampler = self.make_setup()
        sampler.start(interval=10)
        self.spin_accesses(k, obj, n=500)
        sampler.stop()
        assert sampler.memory_bytes == 88 * len(sampler.samples)

    def test_sample_spilling_bounds_memory(self):
        from repro.dprof.access_sampler import AccessSampleCollector
        from repro.dprof.resolver import TypeResolver
        from repro.hw.machine import MachineConfig
        from repro.kernel import Kernel

        k = Kernel(MachineConfig(ncores=2, seed=1))
        cache = k.slab.create_cache(WIDGET)
        obj = alloc_one(k, cache)
        sampler = AccessSampleCollector(
            k.machine, TypeResolver(k.slab), max_resident_samples=10
        )
        sampler.start(interval=5)
        env = k.env

        def body():
            for _ in range(2000):
                yield env.read("reader_fn", obj, "a")

        k.spawn("t", 0, body())
        k.run()
        sampler.stop()
        # Raw samples capped; aggregated stats keep counting everything.
        assert len(sampler.samples) == 10
        assert sampler.samples_spilled > 100
        ip = k.symbols.ip_for("reader_fn", "R.widget.a")
        stats = sampler.stats_for("widget", 0, ip)
        assert stats.count == 10 + sampler.samples_spilled
