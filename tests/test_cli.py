"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_has_subcommands():
    parser = build_parser()
    args = parser.parse_args(["memcached", "--cores", "4", "--fixed"])
    assert args.cores == 4
    assert args.fixed
    args = parser.parse_args(["apache", "--period", "18000", "--admission", "8"])
    assert args.period == 18000
    assert args.admission == 8
    args = parser.parse_args(["diagnose"])
    assert args.command == "diagnose"


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.slow
def test_cli_memcached_stock_runs(capsys):
    rc = main(["memcached", "--cores", "4", "--duration", "250000"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput:" in out
    assert "Data profile view" in out
    assert "size-1024" in out
    assert "Lock statistics" in out


@pytest.mark.slow
def test_cli_memcached_fixed_runs(capsys):
    rc = main(["memcached", "--cores", "4", "--duration", "250000", "--fixed"])
    assert rc == 0
    assert "fixed (local TX queues)" in capsys.readouterr().out


@pytest.mark.slow
def test_cli_apache_runs(capsys):
    rc = main(
        ["apache", "--cores", "4", "--duration", "400000", "--period", "25000"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "apache on 4 cores" in out
    assert "mean accept wait" in out
