"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_has_subcommands():
    parser = build_parser()
    args = parser.parse_args(["memcached", "--cores", "4", "--fixed"])
    assert args.cores == 4
    assert args.fixed
    args = parser.parse_args(["apache", "--period", "18000", "--admission", "8"])
    assert args.period == 18000
    assert args.admission == 8
    args = parser.parse_args(["diagnose"])
    assert args.command == "diagnose"


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.slow
def test_cli_memcached_stock_runs(capsys):
    rc = main(["memcached", "--cores", "4", "--duration", "250000"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput:" in out
    assert "Data profile view" in out
    assert "size-1024" in out
    assert "Lock statistics" in out


@pytest.mark.slow
def test_cli_memcached_fixed_runs(capsys):
    rc = main(["memcached", "--cores", "4", "--duration", "250000", "--fixed"])
    assert rc == 0
    assert "fixed (local TX queues)" in capsys.readouterr().out


def test_bad_fault_spec_exits_with_usage_error():
    with pytest.raises(SystemExit, match="unknown fault model"):
        main(
            [
                "memcached",
                "--cores",
                "2",
                "--duration",
                "100000",
                "--inject-faults",
                "cosmic_rays=0.5",
            ]
        )


@pytest.mark.slow
@pytest.mark.filterwarnings("ignore::repro.errors.DegradedDataWarning")
def test_cli_faulted_run_reports_quality_and_degraded_exit(capsys):
    rc = main(
        [
            "memcached",
            "--cores",
            "4",
            "--duration",
            "250000",
            "--interval",
            "50",
            "--inject-faults",
            "ibs_drop=0.1,seed=7",
        ]
    )
    assert rc == 3
    out = capsys.readouterr().out
    assert "Data quality report" in out
    assert "FaultPlan(seed=7" in out
    assert "confidence:" in out


@pytest.mark.slow
def test_cli_apache_runs(capsys):
    rc = main(
        ["apache", "--cores", "4", "--duration", "400000", "--period", "25000"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "apache on 4 cores" in out
    assert "mean accept wait" in out
