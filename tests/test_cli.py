"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_has_subcommands():
    parser = build_parser()
    args = parser.parse_args(["memcached", "--cores", "4", "--fixed"])
    assert args.cores == 4
    assert args.fixed
    args = parser.parse_args(["apache", "--period", "18000", "--admission", "8"])
    assert args.period == 18000
    assert args.admission == 8
    args = parser.parse_args(["diagnose"])
    assert args.command == "diagnose"


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.slow
def test_cli_memcached_stock_runs(capsys):
    rc = main(["memcached", "--cores", "4", "--duration", "250000"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput:" in out
    assert "Data profile view" in out
    assert "size-1024" in out
    assert "Lock statistics" in out


@pytest.mark.slow
def test_cli_memcached_fixed_runs(capsys):
    rc = main(["memcached", "--cores", "4", "--duration", "250000", "--fixed"])
    assert rc == 0
    assert "fixed (local TX queues)" in capsys.readouterr().out


def test_bad_fault_spec_exits_with_usage_error():
    with pytest.raises(SystemExit, match="unknown fault model"):
        main(
            [
                "memcached",
                "--cores",
                "2",
                "--duration",
                "100000",
                "--inject-faults",
                "cosmic_rays=0.5",
            ]
        )


@pytest.mark.slow
@pytest.mark.filterwarnings("ignore::repro.errors.DegradedDataWarning")
def test_cli_faulted_run_reports_quality_and_degraded_exit(capsys):
    rc = main(
        [
            "memcached",
            "--cores",
            "4",
            "--duration",
            "250000",
            "--interval",
            "50",
            "--inject-faults",
            "ibs_drop=0.1,seed=7",
        ]
    )
    assert rc == 3
    out = capsys.readouterr().out
    assert "Data quality report" in out
    assert "FaultPlan(seed=7" in out
    assert "confidence:" in out


@pytest.mark.slow
def test_cli_apache_runs(capsys):
    rc = main(
        ["apache", "--cores", "4", "--duration", "400000", "--period", "25000"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "apache on 4 cores" in out
    assert "mean accept wait" in out


def test_cli_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_cli_list_scenarios(capsys):
    rc = main(["list-scenarios"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in ("memcached", "apache", "synthetic"):
        assert name in out
    assert "duration" in out  # header with per-scenario defaults


def test_parser_has_service_subcommands():
    parser = build_parser()
    args = parser.parse_args(["serve", "--workers", "3", "--queue-size", "9"])
    assert args.workers == 3
    assert args.queue_size == 9
    args = parser.parse_args(
        ["submit", "--port", "7777", "memcached", "--seed", "3", "--wait"]
    )
    assert args.port == 7777
    assert args.wait
    args = parser.parse_args(["fetch", "--port", "7777", "job-1", "--view", "quality"])
    assert args.view == "quality"
    args = parser.parse_args(["run-once", "synthetic", "--seed", "2"])
    assert args.command == "run-once"


def test_cli_run_once_executes_and_stores(tmp_path, capsys):
    rc = main(
        [
            "run-once", "synthetic",
            "--seed", "5",
            "--duration", "80000",
            "--store", str(tmp_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "ok" in out
    assert "archive" in out
    assert list(tmp_path.glob("*.session.json"))


def test_cli_submit_rejects_bad_spec():
    with pytest.raises(SystemExit, match="bad job spec"):
        main(
            [
                "run-once", "synthetic",
                "--seed", "1",
                "--inject-faults", "warp_drive=1",
            ]
        )


# ----------------------------------------------------------------------
# Client-side resilience: _rpc_resilient retry/backoff behavior
# ----------------------------------------------------------------------


def _client_args(retry=3, timeout=5.0):
    import argparse

    return argparse.Namespace(
        host="127.0.0.1", port=1, timeout=timeout, retry=retry
    )


class _FixedJitter:
    def random(self):
        return 1.0  # full ceiling, no randomness in the schedule


def _patch_rpc(monkeypatch, responses):
    """request_once returns/raises the next scripted item per call."""
    calls = []

    def fake_request_once(host, port, message, timeout=30.0):
        calls.append(dict(message))
        item = responses.pop(0)
        if isinstance(item, Exception):
            raise item
        return item

    monkeypatch.setattr(
        "repro.serve.protocol.request_once", fake_request_once
    )
    return calls


def test_rpc_resilient_retries_queue_full_then_succeeds(monkeypatch):
    from repro.cli import _rpc_resilient

    calls = _patch_rpc(
        monkeypatch,
        [
            {"ok": False, "code": "queue_full", "retry_after_s": 0.5},
            {"ok": False, "code": "queue_full", "retry_after_s": 0.5},
            {"ok": True, "job_id": "job-1"},
        ],
    )
    slept = []
    response = _rpc_resilient(
        _client_args(retry=3),
        {"op": "submit"},
        sleep=slept.append,
        clock=lambda: 0.0,
        rng=_FixedJitter(),
    )
    assert response["ok"] and response["job_id"] == "job-1"
    assert len(calls) == 3
    # The server's retry_after_s hint drives the backoff ceiling.
    assert slept == [0.5, 0.5]


def test_rpc_resilient_retries_connection_errors(monkeypatch):
    from repro.cli import _rpc_resilient

    _patch_rpc(
        monkeypatch,
        [ConnectionRefusedError("down"), {"ok": True, "job_id": "job-2"}],
    )
    response = _rpc_resilient(
        _client_args(retry=2),
        {"op": "submit"},
        sleep=lambda s: None,
        clock=lambda: 0.0,
        rng=_FixedJitter(),
    )
    assert response["ok"]


def test_rpc_resilient_gives_up_after_budget(monkeypatch):
    from repro.cli import _rpc_resilient

    calls = _patch_rpc(
        monkeypatch,
        [{"ok": False, "code": "queue_full", "retry_after_s": 0.1}] * 3,
    )
    with pytest.raises(SystemExit, match="giving up after 3 attempt"):
        _rpc_resilient(
            _client_args(retry=2),
            {"op": "submit"},
            sleep=lambda s: None,
            clock=lambda: 0.0,
            rng=_FixedJitter(),
        )
    assert len(calls) == 3


def test_rpc_resilient_does_not_retry_hard_rejects(monkeypatch):
    from repro.cli import _rpc_resilient

    calls = _patch_rpc(
        monkeypatch, [{"ok": False, "code": "draining", "error": "draining"}]
    )
    response = _rpc_resilient(
        _client_args(retry=5),
        {"op": "submit"},
        sleep=lambda s: None,
        clock=lambda: 0.0,
    )
    assert response["code"] == "draining"
    assert len(calls) == 1  # a reject retrying cannot fix is immediate


def test_rpc_resilient_stops_at_deadline(monkeypatch):
    from repro.cli import _rpc_resilient

    calls = _patch_rpc(
        monkeypatch,
        [{"ok": False, "code": "queue_full", "retry_after_s": 60.0}] * 10,
    )
    now = [0.0]

    def sleep(seconds):
        now[0] += seconds

    # Budget is timeout x (retry+1) = 10 s; the 60 s hint is capped to
    # the 5 s max delay, so the deadline cuts the run to 3 of 10 tries.
    with pytest.raises(SystemExit, match="giving up after 3 attempt"):
        _rpc_resilient(
            _client_args(retry=9, timeout=1.0),
            {"op": "submit"},
            sleep=sleep,
            clock=lambda: now[0],
            rng=_FixedJitter(),
        )
    assert len(calls) == 3


def test_rpc_resilient_zero_retries_is_fail_fast(monkeypatch):
    from repro.cli import _rpc_resilient

    def refuse(host, port, message, timeout=30.0):
        raise ConnectionRefusedError("down")

    monkeypatch.setattr("repro.serve.protocol.request_once", refuse)
    with pytest.raises(SystemExit, match="cannot reach server"):
        _rpc_resilient(_client_args(retry=0), {"op": "submit"})


def test_cluster_parser_flags():
    parser = build_parser()
    args = parser.parse_args(
        [
            "cluster", "--node-id", "n1",
            "--heartbeat-interval", "0.2",
            "--suspect-after", "0.8",
            "--dead-after", "1.6",
            "--lease-timeout", "1.6",
            "--workers", "2",
        ]
    )
    assert args.command == "cluster"
    assert args.node_id == "n1"
    assert args.heartbeat_interval == 0.2
    assert args.lease_timeout == 1.6
    args = parser.parse_args(["submit", "--port", "1", "--retry", "4", "synthetic"])
    assert args.retry == 4


def test_cli_list_scenarios_shows_params_and_kernel_families(capsys):
    rc = main(["list-scenarios"])
    assert rc == 0
    out = capsys.readouterr().out
    from repro.workloads import SCENARIO_DEFAULTS

    for name, defaults in SCENARIO_DEFAULTS.items():
        assert name in out
        assert defaults.params in out
    # One params: line per scenario, indented under its row.
    assert out.count("params:") == len(SCENARIO_DEFAULTS)
    for family in ("kernel-strided", "kernel-pingpong", "kernel-ring"):
        assert family in out


def test_parser_metrics_and_fetch_metrics_view():
    parser = build_parser()
    args = parser.parse_args(["metrics", "--port", "7777", "job-1"])
    assert args.target == "job-1"
    assert args.port == 7777
    args = parser.parse_args(["metrics", "kernel-ring", "--run", "--seed", "3"])
    assert args.run and args.seed == 3
    args = parser.parse_args(
        ["fetch", "--port", "7777", "job-1", "--view", "metrics"]
    )
    assert args.view == "metrics"


def test_cli_metrics_requires_a_source():
    with pytest.raises(SystemExit, match="metrics needs --port"):
        main(["metrics"])
    with pytest.raises(SystemExit, match="needs a scenario name"):
        main(["metrics", "--run"])


def test_cli_metrics_archive_path_matches_inline_run(tmp_path, capsys):
    # Path A: run-once lands an archive in the store...
    rc = main(
        [
            "run-once", "kernel-counters",
            "--seed", "11",
            "--store", str(tmp_path),
        ]
    )
    assert rc == 0
    capsys.readouterr()
    (archive,) = tmp_path.glob("*.session.json")
    rc = main(["metrics", str(archive)])
    assert rc == 0
    from_archive = capsys.readouterr().out

    # ...Path B: the same spec executed inline by `metrics --run`.
    rc = main(["metrics", "kernel-counters", "--run", "--seed", "11"])
    assert rc == 0
    from_run = capsys.readouterr().out

    assert from_archive.startswith("== top-down metrics ")
    assert from_archive == from_run
    assert "MPKI" in from_archive and "sharing" in from_archive
