"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_has_subcommands():
    parser = build_parser()
    args = parser.parse_args(["memcached", "--cores", "4", "--fixed"])
    assert args.cores == 4
    assert args.fixed
    args = parser.parse_args(["apache", "--period", "18000", "--admission", "8"])
    assert args.period == 18000
    assert args.admission == 8
    args = parser.parse_args(["diagnose"])
    assert args.command == "diagnose"


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.slow
def test_cli_memcached_stock_runs(capsys):
    rc = main(["memcached", "--cores", "4", "--duration", "250000"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput:" in out
    assert "Data profile view" in out
    assert "size-1024" in out
    assert "Lock statistics" in out


@pytest.mark.slow
def test_cli_memcached_fixed_runs(capsys):
    rc = main(["memcached", "--cores", "4", "--duration", "250000", "--fixed"])
    assert rc == 0
    assert "fixed (local TX queues)" in capsys.readouterr().out


def test_bad_fault_spec_exits_with_usage_error():
    with pytest.raises(SystemExit, match="unknown fault model"):
        main(
            [
                "memcached",
                "--cores",
                "2",
                "--duration",
                "100000",
                "--inject-faults",
                "cosmic_rays=0.5",
            ]
        )


@pytest.mark.slow
@pytest.mark.filterwarnings("ignore::repro.errors.DegradedDataWarning")
def test_cli_faulted_run_reports_quality_and_degraded_exit(capsys):
    rc = main(
        [
            "memcached",
            "--cores",
            "4",
            "--duration",
            "250000",
            "--interval",
            "50",
            "--inject-faults",
            "ibs_drop=0.1,seed=7",
        ]
    )
    assert rc == 3
    out = capsys.readouterr().out
    assert "Data quality report" in out
    assert "FaultPlan(seed=7" in out
    assert "confidence:" in out


@pytest.mark.slow
def test_cli_apache_runs(capsys):
    rc = main(
        ["apache", "--cores", "4", "--duration", "400000", "--period", "25000"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "apache on 4 cores" in out
    assert "mean accept wait" in out


def test_cli_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_cli_list_scenarios(capsys):
    rc = main(["list-scenarios"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in ("memcached", "apache", "synthetic"):
        assert name in out
    assert "duration" in out  # header with per-scenario defaults


def test_parser_has_service_subcommands():
    parser = build_parser()
    args = parser.parse_args(["serve", "--workers", "3", "--queue-size", "9"])
    assert args.workers == 3
    assert args.queue_size == 9
    args = parser.parse_args(
        ["submit", "--port", "7777", "memcached", "--seed", "3", "--wait"]
    )
    assert args.port == 7777
    assert args.wait
    args = parser.parse_args(["fetch", "--port", "7777", "job-1", "--view", "quality"])
    assert args.view == "quality"
    args = parser.parse_args(["run-once", "synthetic", "--seed", "2"])
    assert args.command == "run-once"


def test_cli_run_once_executes_and_stores(tmp_path, capsys):
    rc = main(
        [
            "run-once", "synthetic",
            "--seed", "5",
            "--duration", "80000",
            "--store", str(tmp_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "ok" in out
    assert "archive" in out
    assert list(tmp_path.glob("*.session.json"))


def test_cli_submit_rejects_bad_spec():
    with pytest.raises(SystemExit, match="bad job spec"):
        main(
            [
                "run-once", "synthetic",
                "--seed", "1",
                "--inject-faults", "warp_drive=1",
            ]
        )
