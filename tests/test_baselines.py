"""Tests for the OProfile and lock-stat baseline tools."""

from repro.baselines import LockStatReport, OProfile
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel, StructType
from repro.kernel.locks import SpinLock

THING = StructType("thing", [("lock", 4), ("value", 8)], object_size=64)


def test_oprofile_attributes_cycles_to_functions():
    k = Kernel(MachineConfig(ncores=2, seed=3))
    obj = k.slab.new_static(THING, "thing")
    prof = OProfile(k.machine)
    prof.attach()
    env = k.env

    def body():
        for _ in range(100):
            yield env.work("hot_fn", 50)
            yield env.read("cold_fn", obj, "value")

    k.spawn("t", 0, body())
    k.run()
    prof.detach()
    rows = {r.fn: r for r in prof.rows()}
    assert rows["hot_fn"].clk_share > rows["cold_fn"].clk_share
    assert abs(sum(r.clk_share for r in prof.rows()) - 1.0) < 1e-9


def test_oprofile_l2_miss_attribution():
    k = Kernel(MachineConfig(ncores=2, seed=3))
    cfg = k.machine.config
    base = k.machine.address_space.alloc_region(cfg.l3_size * 2, label="big")
    prof = OProfile(k.machine)
    prof.attach()
    env = k.env

    def streamer():
        # Stream far beyond every cache: every access is an L2(+L3) miss.
        for rep in range(2):
            for addr in range(base, base + cfg.l2_size * 2, 64):
                yield env.read_at("streamer_fn", "probe", addr, 8)

    def spinner():
        for _ in range(100):
            yield env.work("spin_fn", 10)

    k.spawn("s", 0, streamer())
    k.spawn("w", 1, spinner())
    k.run()
    prof.detach()
    rows = {r.fn: r for r in prof.rows()}
    assert rows["streamer_fn"].l2_misses > 0
    assert rows.get("spin_fn") is None or rows["spin_fn"].l2_misses == 0
    assert rows["streamer_fn"].l2_miss_share > 0.9


def test_oprofile_detach_stops_counting():
    k = Kernel(MachineConfig(ncores=2, seed=3))
    prof = OProfile(k.machine)
    prof.attach()
    env = k.env
    k.spawn("a", 0, iter([env.work("fn", 10)]))
    k.run()
    prof.detach()
    before = prof.total_cycles
    k.spawn("b", 0, iter([env.work("fn", 10)]))
    k.run()
    assert prof.total_cycles == before


def test_oprofile_render_table():
    k = Kernel(MachineConfig(ncores=2, seed=3))
    prof = OProfile(k.machine)
    prof.attach()
    k.spawn("a", 0, iter([k.env.work("render_fn", 10)]))
    k.run()
    out = prof.render(5)
    assert "render_fn" in out
    assert "% CLK" in out


def test_lockstat_report_aggregates_instances():
    k = Kernel(MachineConfig(ncores=2, seed=3))
    a = k.slab.new_static(THING, "a")
    b = k.slab.new_static(THING, "b")
    lock_a = SpinLock("Qdisc lock (0)", a, "lock", k.lockstat)
    lock_b = SpinLock("Qdisc lock (1)", b, "lock", k.lockstat)

    def body(lock, fn):
        for _ in range(10):
            yield from lock.acquire(k.env, fn, 0)
            yield from lock.release(k.env, fn, 0)

    k.spawn("a", 0, body(lock_a, "xmit"))
    k.run()
    k.spawn("b", 0, body(lock_b, "run"))
    k.run()
    report = LockStatReport(k.lockstat, k.machine.total_cycles())
    row = report.row_for("Qdisc lock")
    assert row is not None
    assert row.acquisitions == 20
    assert set(row.top_functions()) == {"xmit", "run"}
    assert 0.0 <= row.overhead <= 1.0


def test_lockstat_report_render():
    k = Kernel(MachineConfig(ncores=2, seed=3))
    a = k.slab.new_static(THING, "a")
    lock = SpinLock("futex lock", a, "lock", k.lockstat)

    def body():
        yield from lock.acquire(k.env, "do_futex", 0)
        yield from lock.release(k.env, "do_futex", 0)

    k.spawn("t", 0, body())
    k.run()
    out = LockStatReport(k.lockstat, k.machine.total_cycles()).render()
    assert "futex lock" in out
    assert "do_futex" in out
