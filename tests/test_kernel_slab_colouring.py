"""Tests for SLAB cache colouring and NUMA-node structure."""

from repro.hw.machine import MachineConfig
from repro.kernel import Kernel, StructType

SMALL = StructType("cwidget", [("a", 8)], object_size=64)


def grow_slabs(kernel, cache, count):
    def body():
        held = []
        for _ in range(count * cache.objs_per_slab):
            held.append((yield from cache.alloc(0)))

    kernel.spawn("g", 0, body())
    kernel.run()


def test_successive_slabs_are_coloured():
    k = Kernel(MachineConfig(ncores=2, seed=3))
    cache = k.slab.create_cache(SMALL)
    grow_slabs(k, cache, 6)
    offsets = {slab.base % 4096 for slab in cache.slabs}
    # Colouring staggers slab starts by line-sized offsets.
    assert len(offsets) >= 4
    for slab in cache.slabs:
        assert slab.base % 64 == 0  # still line-aligned


def test_colouring_spreads_associativity_sets():
    k = Kernel(MachineConfig(ncores=2, seed=3))
    cache = k.slab.create_cache(SMALL)
    # Each 64B-object slab covers 64 consecutive sets; colours shift the
    # start line, so coverage grows with the number of slabs grown.
    grow_slabs(k, cache, 24)
    geo = k.machine.hierarchy.l2[0].geometry
    sets_used = set()
    for slab in cache.slabs:
        for obj in slab.objects:
            sets_used.add(geo.set_of(obj.base // 64))
    # Objects cover most of the cache's sets rather than aliasing.
    assert len(sets_used) > geo.num_sets * 0.6


def test_coloured_objects_still_resolve():
    k = Kernel(MachineConfig(ncores=2, seed=3))
    cache = k.slab.create_cache(SMALL)
    grow_slabs(k, cache, 3)
    for slab in cache.slabs:
        for obj in slab.objects:
            assert k.slab.find_object(obj.base + 1) is obj


def test_node_structure_matches_cores_per_node():
    k = Kernel(MachineConfig(ncores=16, seed=3))
    assert k.slab.num_nodes == 4
    assert k.slab.node_of(0) == 0
    assert k.slab.node_of(3) == 0
    assert k.slab.node_of(4) == 1
    assert k.slab.node_of(15) == 3
    cache = k.slab.create_cache(SMALL)
    assert len(cache.list_lock) == 4
    assert len(cache.shared_free) == 4
    assert len(cache.alien_caches) == 4


def test_small_machines_get_single_node():
    k = Kernel(MachineConfig(ncores=2, seed=3))
    assert k.slab.num_nodes == 1


def test_without_colouring_slabs_alias(monkeypatch):
    # The counterfactual: disable colouring and page-aligned slabs alias
    # onto a fraction of the associativity sets -- the conflict pattern
    # colouring exists to prevent.
    from repro.kernel.slab import KmemCache

    monkeypatch.setattr(KmemCache, "NUM_COLOURS", 1)
    k = Kernel(MachineConfig(ncores=2, seed=3))
    cache = k.slab.create_cache(SMALL)
    grow_slabs(k, cache, 24)
    geo = k.machine.hierarchy.l2[0].geometry
    sets_used = set()
    for slab in cache.slabs:
        for obj in slab.objects:
            sets_used.add(geo.set_of(obj.base // 64))
    assert len(sets_used) <= geo.num_sets * 0.55
