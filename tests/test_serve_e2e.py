"""End-to-end service tests: a real server subprocess driven over TCP.

These are the acceptance tests for ``repro.serve``: concurrent mixed
bursts with zero lost/duplicated jobs, results bit-identical to one-shot
runs, and a clean SIGTERM drain that requeues or finishes everything
in flight.
"""

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import JobSpec, request_once
from repro.serve.store import SessionStore
from repro.serve.workers import execute_job

HOST = "127.0.0.1"
BOOT_TIMEOUT_S = 20.0
#: Small windows keep each job ~0.1 s so bursts stay fast.
DURATION = 100_000


def _start_server(tmp_path, workers=2, queue_size=64, drain_grace=10.0):
    """Boot ``repro.cli serve`` and wait for the port file."""
    port_file = tmp_path / "port"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workers", str(workers),
            "--queue-size", str(queue_size),
            "--store", str(tmp_path / "store"),
            "--drain-grace", str(drain_grace),
            "--port-file", str(port_file),
        ],
        cwd=Path(__file__).resolve().parent.parent,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return proc, int(port_file.read_text())
        if proc.poll() is not None:
            raise AssertionError(f"server died at boot:\n{proc.stdout.read()}")
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("server did not write its port file in time")


def _stop(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10)
    if proc.stdout:
        proc.stdout.close()


def _rpc(port, message, timeout=10.0):
    return request_once(HOST, port, message, timeout=timeout)


def _submit(port, scenario, seed, **extra):
    spec = {"scenario": scenario, "seed": seed, "duration": DURATION, **extra}
    response = _rpc(port, {"op": "submit", **spec})
    assert response.get("ok"), response
    return response["job_id"]


def _wait_all(port, job_ids, timeout_s=60.0):
    """Poll until every job reaches a terminal state; returns id -> job."""
    deadline = time.monotonic() + timeout_s
    jobs = {}
    while time.monotonic() < deadline:
        response = _rpc(port, {"op": "status"})
        jobs = {j["job_id"]: j for j in response["jobs"]}
        states = {jobs[i]["state"] for i in job_ids if i in jobs}
        if states <= {"done", "failed", "requeued"} and len(jobs) >= len(job_ids):
            return jobs
        time.sleep(0.1)
    raise AssertionError(f"jobs did not settle: { {i: jobs.get(i, {}).get('state') for i in job_ids} }")


@pytest.mark.slow
def test_serve_submit_fetch_and_metrics(tmp_path):
    proc, port = _start_server(tmp_path)
    try:
        assert _rpc(port, {"op": "ping"})["ok"]
        job_id = _submit(port, "synthetic", seed=5)
        jobs = _wait_all(port, [job_id])
        assert jobs[job_id]["state"] == "done"
        assert jobs[job_id]["status"] == "ok"

        fetched = _rpc(port, {"op": "fetch", "job_id": job_id})
        assert fetched["ok"]
        assert "Data profile view" in fetched["rendered"]

        # The archive view returns the raw bytes, addressable by digest too.
        by_digest = _rpc(
            port,
            {"op": "fetch", "job_id": jobs[job_id]["digest"], "view": "archive"},
        )
        assert by_digest["ok"]
        assert json.loads(by_digest["archive"])

        metrics = _rpc(port, {"op": "metrics"})
        assert metrics["counters"]["jobs_done"] == 1
        assert metrics["counters"]["reconciled"] is True
        assert "repro_serve_jobs_done 1" in metrics["rendered"]
    finally:
        _stop(proc)


@pytest.mark.slow
def test_serve_results_bit_identical_to_one_shot(tmp_path):
    """A fetched archive equals executing the same spec in-process."""
    spec = JobSpec.create(
        scenario="memcached", seed=23, duration=DURATION, engine="fast"
    )
    _, local_text, _ = execute_job(spec)

    proc, port = _start_server(tmp_path)
    try:
        response = _rpc(port, {"op": "submit", **spec.to_wire()})
        job_id = response["job_id"]
        jobs = _wait_all(port, [job_id])
        served = _rpc(port, {"op": "fetch", "job_id": job_id, "view": "archive"})
        assert served["archive"] == local_text
    finally:
        _stop(proc)
    # And the on-disk archive is the same bytes under its content digest.
    store = SessionStore(tmp_path / "store")
    assert store.read_text(jobs[job_id]["digest"]) == local_text


@pytest.mark.slow
def test_serve_concurrent_mixed_burst(tmp_path):
    """20 mixed jobs on 4 workers: none lost, none duplicated, one degraded."""
    proc, port = _start_server(tmp_path, workers=4)
    try:
        job_ids = []
        scenarios = ["memcached", "apache", "synthetic"]
        for i in range(19):
            job_ids.append(_submit(port, scenarios[i % 3], seed=100 + i))
        job_ids.append(
            _submit(
                port, "memcached", seed=200,
                fault_spec="ibs_drop=0.3,seed=3",
            )
        )
        assert len(set(job_ids)) == 20  # no duplicated ids

        jobs = _wait_all(port, job_ids, timeout_s=120.0)
        assert len(jobs) == 20  # no lost jobs
        states = [jobs[i]["state"] for i in job_ids]
        assert states == ["done"] * 20
        statuses = [jobs[i]["status"] for i in job_ids]
        assert statuses[:19] == ["ok"] * 19
        assert statuses[19] == "degraded"

        metrics = _rpc(port, {"op": "metrics"})["counters"]
        assert metrics["jobs_submitted"] == 20
        assert metrics["jobs_done"] == 20
        assert metrics["jobs_degraded"] == 1
        assert metrics["reconciled"] is True
        # Equal specs dedup in the content-addressed store; distinct seeds
        # mean every job here is unique.
        assert len(SessionStore(tmp_path / "store").digests()) == 20
    finally:
        _stop(proc)


@pytest.mark.slow
def test_serve_sigterm_drains_and_requeues(tmp_path):
    """SIGTERM mid-burst: every job finishes or is requeued, books balance."""
    proc, port = _start_server(tmp_path, workers=2, drain_grace=10.0)
    try:
        job_ids = [
            _submit(port, "apache", seed=300 + i) for i in range(10)
        ]
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        assert proc.returncode == 0
    finally:
        _stop(proc)

    store = SessionStore(tmp_path / "store")
    requeued = store.read_requeue()
    finished = len(store.digests())
    # Every submitted job is either archived or persisted for requeue.
    assert finished + len(requeued) >= len(job_ids)
    for spec in requeued:
        assert spec["scenario"] == "apache"
        JobSpec.from_wire(spec)  # still valid for resubmission


def _worker_pids(server_pid):
    """The server's pool workers (direct children, minus the mp
    resource tracker)."""
    pids = []
    for children in Path(f"/proc/{server_pid}/task").glob("*/children"):
        try:
            pids += [int(p) for p in children.read_text().split()]
        except OSError:
            continue
    workers = []
    for pid in pids:
        try:
            cmdline = Path(f"/proc/{pid}/cmdline").read_bytes().decode()
        except OSError:
            continue
        if "resource_tracker" not in cmdline:
            workers.append(pid)
    return workers


@pytest.mark.slow
def test_serve_worker_death_during_drain_still_requeues(tmp_path):
    """Regression: a worker SIGKILLed *during* the drain grace wait used
    to leave its job force_pushed onto the already-drained queue, so it
    never reached requeue.json.  The drain must re-drain and persist it."""
    import os

    proc, port = _start_server(tmp_path, workers=1, drain_grace=15.0)
    try:
        # One long job (~3 s) so it is still in flight when drain starts.
        job_id = _submit(port, "synthetic", seed=600, duration=3_000_000)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            job = _rpc(port, {"op": "status", "job_id": job_id})["job"]
            if job["state"] == "running":
                break
            time.sleep(0.05)
        assert job["state"] == "running"
        workers = _worker_pids(proc.pid)
        assert workers, "no pool worker found"

        proc.send_signal(signal.SIGTERM)
        time.sleep(0.4)  # drain is now inside its grace wait
        for pid in workers:
            os.kill(pid, signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == 0
    finally:
        _stop(proc)

    requeued = SessionStore(tmp_path / "store").read_requeue()
    assert len(requeued) == 1
    spec = JobSpec.from_wire(requeued[0])
    assert spec.seed == 600 and spec.duration == 3_000_000


@pytest.mark.slow
def test_serve_rejects_when_draining_is_clean(tmp_path):
    """The shutdown op answers, then the server exits by itself."""
    proc, port = _start_server(tmp_path)
    try:
        response = _rpc(port, {"op": "shutdown"})
        assert response["ok"]
        proc.wait(timeout=30)
        assert proc.returncode == 0
    finally:
        _stop(proc)


@pytest.mark.slow
def test_serve_queue_backpressure(tmp_path):
    """A full queue rejects with retry_after_s instead of blocking."""
    proc, port = _start_server(tmp_path, workers=1, queue_size=2)
    try:
        rejected = None
        for i in range(12):
            response = _rpc(
                port,
                {
                    "op": "submit", "scenario": "apache",
                    "seed": 400 + i, "duration": DURATION,
                },
            )
            if not response.get("ok"):
                rejected = response
                break
        assert rejected is not None, "queue never filled"
        assert rejected["code"] == "queue_full"
        assert rejected["retry_after_s"] > 0
    finally:
        _stop(proc)
