"""Tests for set-associative cache arrays and geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.hw.cache import CacheArray, CacheGeometry


def test_geometry_derives_sets_and_lines():
    g = CacheGeometry(size=16 * 1024, ways=8, line_size=64)
    assert g.num_lines == 256
    assert g.num_sets == 32
    assert g.set_of(0) == 0
    assert g.set_of(33) == 1


def test_geometry_rejects_bad_shapes():
    with pytest.raises(ConfigError):
        CacheGeometry(size=1000, ways=8, line_size=64)  # not a multiple
    with pytest.raises(ConfigError):
        CacheGeometry(size=0, ways=8, line_size=64)
    with pytest.raises(ConfigError):
        CacheGeometry(size=1024, ways=-1, line_size=64)


def test_lookup_miss_then_hit():
    c = CacheArray(CacheGeometry(1024, 2, 64))
    assert not c.lookup(5)
    c.insert(5)
    assert c.lookup(5)
    assert c.hits == 1
    assert c.misses == 1


def test_lru_eviction_within_set():
    # 2-way cache: third line in the same set evicts the least recent.
    g = CacheGeometry(size=2 * 64 * 4, ways=2, line_size=64)  # 4 sets
    c = CacheArray(g)
    nsets = g.num_sets
    a, b, d = 0, nsets, 2 * nsets  # all map to set 0
    c.insert(a)
    c.insert(b)
    assert c.insert(d) == a  # a is LRU
    assert not c.contains(a)
    assert c.contains(b) and c.contains(d)


def test_lookup_refreshes_lru():
    g = CacheGeometry(size=2 * 64 * 4, ways=2, line_size=64)
    c = CacheArray(g)
    nsets = g.num_sets
    a, b, d = 0, nsets, 2 * nsets
    c.insert(a)
    c.insert(b)
    c.lookup(a)  # a becomes most-recent
    assert c.insert(d) == b


def test_insert_existing_line_refreshes_without_eviction():
    g = CacheGeometry(size=2 * 64 * 4, ways=2, line_size=64)
    c = CacheArray(g)
    nsets = g.num_sets
    c.insert(0)
    c.insert(nsets)
    assert c.insert(0) is None  # refresh, no eviction
    assert c.occupancy() == 2


def test_remove_and_clear():
    c = CacheArray(CacheGeometry(1024, 2, 64))
    c.insert(1)
    assert c.remove(1)
    assert not c.remove(1)
    c.insert(2)
    c.clear()
    assert c.occupancy() == 0


def test_set_occupancy_tracks_per_set():
    g = CacheGeometry(size=4 * 64 * 8, ways=4, line_size=64)  # 8 sets
    c = CacheArray(g)
    c.insert(0)
    c.insert(8)
    c.insert(1)
    assert c.set_occupancy(0) == 2
    assert c.set_occupancy(1) == 1


@given(st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=500))
def test_occupancy_never_exceeds_capacity(lines):
    g = CacheGeometry(size=8 * 64 * 4, ways=4, line_size=64)
    c = CacheArray(g)
    for line in lines:
        c.insert(line)
        assert c.occupancy() <= g.num_lines
        for s in range(g.num_sets):
            assert c.set_occupancy(s) <= g.ways


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
def test_most_recent_insert_always_resident(lines):
    g = CacheGeometry(size=2 * 64 * 8, ways=2, line_size=64)
    c = CacheArray(g)
    for line in lines:
        c.insert(line)
        assert c.contains(line)
