"""Tests for the wakeup machinery: wait queues, epoll, futexes."""

from repro.hw.machine import MachineConfig
from repro.kernel import Kernel
from repro.kernel.net import NetStack
from repro.kernel.net.wakeup import (
    EventPoll,
    Futex,
    WaitQueue,
    ep_poll_callback,
    futex_wait,
    futex_wake,
    sys_epoll_wait,
    wake_up_sync_key,
)


def make_stack(ncores=2):
    k = Kernel(MachineConfig(ncores=ncores, seed=19))
    return k, NetStack(k)


def drive(kernel, cpu, gen):
    out = {}

    def wrapper():
        out["value"] = yield from gen

    kernel.spawn("d", cpu, wrapper())
    kernel.run()
    return out.get("value")


def test_epoll_callback_queues_ready_source():
    k, stack = make_stack()
    ep = EventPoll(stack, "t")
    drive(k, 0, ep_poll_callback(stack, 0, ep, "sock-a"))
    drive(k, 0, ep_poll_callback(stack, 0, ep, "sock-b"))
    ready = drive(k, 0, sys_epoll_wait(stack, 0, ep))
    assert ready == ["sock-a", "sock-b"]
    # The ready list is drained.
    assert drive(k, 0, sys_epoll_wait(stack, 0, ep)) == []


def test_epoll_lock_stats_recorded():
    k, stack = make_stack()
    ep = EventPoll(stack, "t")
    drive(k, 0, ep_poll_callback(stack, 0, ep, "s"))
    drive(k, 0, sys_epoll_wait(stack, 0, ep))
    stats = {s.name for s in k.lockstat.all_stats()}
    assert "epoll lock" in stats
    assert "wait queue lock" in stats  # the callback wakes the waitqueue


def test_wait_queue_wakeup_touches_queue_head():
    k, stack = make_stack()
    wq = WaitQueue(stack, "t")
    seen = []
    k.machine.add_access_observer(
        lambda cpu, instr, result, cycle: seen.append(instr.addr)
    )
    drive(k, 0, wake_up_sync_key(stack, 0, wq))
    head_addr, _size = wq.obj.field_addr("task_list_head")
    assert head_addr in seen


def test_futex_wait_wake_pair():
    k, stack = make_stack()
    futex = Futex(stack, "t")
    drive(k, 0, futex_wait(stack, 0, futex))
    drive(k, 1, futex_wake(stack, 1, futex))
    stat = k.lockstat.stat("futex lock")
    assert stat.acquisitions == 2
    callers = set(stat.acquirer_functions.keys())
    assert {"futex_wait", "futex_wake"} <= callers


def test_futex_objects_are_typed_and_resolvable():
    k, stack = make_stack()
    futex = Futex(stack, "t")
    obj = k.slab.find_object(futex.obj.base + 4)
    assert obj is futex.obj
    assert obj.otype.name == "futex"


def test_cross_core_wakeup_bounces_the_queue_lock():
    k, stack = make_stack()
    wq = WaitQueue(stack, "t")

    def waker(cpu, times):
        for _ in range(times):
            yield from wake_up_sync_key(stack, cpu, wq)
            # Think time keeps both cores' clocks advancing together so
            # their wakeups genuinely interleave.
            yield k.env.work("caller", 60)

    k.spawn("a", 0, waker(0, 30))
    k.spawn("b", 1, waker(1, 30))
    k.run()
    # The lock word line moved between cores: invalidations happened.
    assert k.machine.hierarchy.directory.invalidation_count > 5
