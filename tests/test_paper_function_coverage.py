"""The simulated kernel implements the paper's function vocabulary.

The thesis's tables and figures name specific Linux kernel functions
(Table 6.3 lists 29; Figure 6-1 and the lock-stat tables name more).
This test pins the reproduction's coverage: running the two workloads
must execute (and therefore expose to the profilers) the functions the
paper's analysis depends on.
"""

from repro.baselines import OProfile
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel
from repro.workloads import ApacheConfig, ApacheWorkload, MemcachedWorkload

#: Functions the memcached analysis names (Table 6.2, 6.3, Figure 6-1).
MEMCACHED_FUNCTIONS = {
    "kfree",
    "ixgbe_clean_rx_irq",
    "__alloc_skb",
    "ixgbe_xmit_frame",
    "kmem_cache_free",
    "udp_recvmsg",
    "dev_queue_xmit",
    "ixgbe_clean_tx_irq",
    "skb_put",
    "ep_poll_callback",
    "copy_user_generic_string",
    "__kfree_skb",
    "skb_tx_hash",
    "sock_def_write_space",
    "ip_rcv",
    "lock_sock_nested",
    "eth_type_trans",
    "dev_kfree_skb_irq",
    "__qdisc_run",
    "skb_copy_datagram_iovec",
    "__wake_up_sync_key",
    "skb_dma_map",
    "kmem_cache_alloc_node",
    "udp_sendmsg",
    "pfifo_fast_enqueue",
    "pfifo_fast_dequeue",
    "dev_hard_start_xmit",
    "sys_epoll_wait",
    "ep_scan_ready_list",
    "cache_alloc_refill",
    "__drain_alien_cache",
}

#: Functions the Apache analysis names (Table 6.6 and Section 6.2).
APACHE_FUNCTIONS = {
    "tcp_v4_rcv",
    "tcp_v4_syn_recv_sock",
    "inet_csk_accept",
    "tcp_recvmsg",
    "tcp_sendmsg",
    "tcp_transmit_skb",
    "tcp_close",
    "do_futex",
    "futex_wait",
    "futex_wake",
    "schedule",
    "context_switch",
}


def executed_functions(kernel, workload_runner):
    prof = OProfile(kernel.machine)
    prof.attach()
    workload_runner()
    prof.detach()
    return set(prof.cycles_by_fn.keys())


def test_memcached_exercises_paper_functions():
    kernel = Kernel(MachineConfig(ncores=8, seed=61))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    fns = executed_functions(
        kernel, lambda: workload.run(500_000, warmup_cycles=100_000)
    )
    missing = MEMCACHED_FUNCTIONS - fns
    assert not missing, f"paper functions never executed: {sorted(missing)}"


def test_apache_exercises_paper_functions():
    kernel = Kernel(MachineConfig(ncores=8, seed=62))
    workload = ApacheWorkload(kernel, config=ApacheConfig(arrival_period=22_000))
    workload.setup()
    fns = executed_functions(
        kernel, lambda: workload.run(800_000, warmup_cycles=200_000)
    )
    missing = APACHE_FUNCTIONS - fns
    assert not missing, f"paper functions never executed: {sorted(missing)}"


def test_paper_type_vocabulary_present():
    kernel = Kernel(MachineConfig(ncores=4, seed=63))
    from repro.kernel.net import NetStack

    NetStack(kernel)
    names = set(kernel.slab.caches.keys())
    assert {
        "skbuff",
        "skbuff_fclone",
        "size-1024",
        "udp_sock",
        "tcp_sock",
        "task_struct",
    } <= names
    # Allocator bookkeeping types exist as static objects; ``slab``
    # descriptors appear once a first slab has been grown.
    statics = set(kernel.slab.static_objects_by_type().keys())
    assert {"array_cache", "kmem_list3", "net_device"} <= statics

    def grow_one():
        obj = yield from kernel.slab.cache("skbuff").alloc(0)
        yield from kernel.slab.cache("skbuff").free(0, obj)

    kernel.spawn("g", 0, grow_one())
    kernel.run()
    assert "slab" in set(kernel.slab.static_objects_by_type().keys())
