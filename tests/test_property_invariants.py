"""Property-based tests on cross-cutting system invariants.

These drive random sequences through the allocator, the hierarchy, and
the path-trace builder, checking invariants that must hold regardless of
the sequence.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dprof.pathtrace import PathTraceBuilder
from repro.dprof.records import HistoryElement, ObjectAccessHistory
from repro.hw.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel, StructType
from repro.kernel.symbols import SymbolTable

WIDGET = StructType("pwidget", [("a", 8), ("b", 8)], object_size=64)

slow = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# Hierarchy invariants
# ----------------------------------------------------------------------


@slow
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # cpu
            st.integers(min_value=0, max_value=255),  # line index
            st.booleans(),  # write?
        ),
        min_size=1,
        max_size=400,
    )
)
def test_hierarchy_coherence_invariants(accesses):
    h = MemoryHierarchy(
        HierarchyConfig(
            ncores=4,
            l1_size=1024,
            l1_ways=2,
            l2_size=4096,
            l2_ways=4,
            l3_size=16384,
            l3_ways=8,
        )
    )
    for i, (cpu, line, write) in enumerate(accesses):
        h.access(cpu, line * 64, 8, write, ip=i, cycle=i)
        # Invariant 1: a line is never in both L1 and L2 of one core
        # (exclusive hierarchy).
        for c in range(4):
            assert not (h.l1[c].contains(line) and h.l2[c].contains(line))
        # Invariant 2: after a write, no *other* core holds the line.
        if write:
            for c in range(4):
                if c != cpu:
                    assert not h.l1[c].contains(line)
                    assert not h.l2[c].contains(line)
        # Invariant 3: the writer holds the line it just accessed.
        assert h.l1[cpu].contains(line)
    # Invariant 4: directory holders are consistent with cache contents.
    for line in {line for _c, line, _w in accesses}:
        holders = h.directory.holders_of(line)
        for c in range(4):
            present = h.l1[c].contains(line) or h.l2[c].contains(line)
            if present:
                assert c in holders


@slow
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=1), st.booleans()),
        min_size=1,
        max_size=200,
    )
)
def test_slab_alloc_free_invariants(ops):
    """Random alloc/free interleavings: liveness and address uniqueness."""
    kernel = Kernel(MachineConfig(ncores=2, seed=77))
    cache = kernel.slab.create_cache(WIDGET)
    live: list = []

    def body():
        for cpu_choice, do_alloc in ops:
            if do_alloc or not live:
                obj = yield from cache.alloc(0)
                assert obj.alive
                live.append(obj)
            else:
                obj = live.pop()
                yield from cache.free(0, obj)
                assert not obj.alive

    kernel.spawn("ops", 0, body())
    kernel.run()
    # Live objects all distinct and resolvable.
    bases = [o.base for o in live]
    assert len(set(bases)) == len(bases)
    for obj in live:
        assert kernel.slab.find_object(obj.base + 3) is obj
    assert cache.live_objects() == len(live)


# ----------------------------------------------------------------------
# Path-trace builder invariants
# ----------------------------------------------------------------------


@st.composite
def history_strategy(draw):
    chunk_pool = [(0, 4), (8, 4), (16, 4)]
    n_chunks = draw(st.integers(min_value=1, max_value=2))
    chunks = tuple(sorted(draw(st.permutations(chunk_pool))[:n_chunks]))
    n_elements = draw(st.integers(min_value=0, max_value=6))
    elements = []
    t = 0
    for _ in range(n_elements):
        chunk = draw(st.sampled_from(list(chunks)))
        t += draw(st.integers(min_value=1, max_value=20))
        elements.append(
            HistoryElement(
                offset=chunk[0],
                ip=draw(st.integers(min_value=1, max_value=4)),
                cpu=draw(st.integers(min_value=0, max_value=1)),
                time=t,
                is_write=draw(st.booleans()),
            )
        )
    h = ObjectAccessHistory(
        type_name="t",
        object_base=0x1000,
        object_cookie=draw(st.integers(min_value=1, max_value=10**6)),
        offsets=chunks,
        alloc_cpu=0,
        alloc_cycle=0,
    )
    h.elements = elements
    h.free_cycle = t + 1
    return h


@slow
@given(st.lists(history_strategy(), min_size=0, max_size=12))
def test_pathtrace_builder_conservation(histories):
    """Merging conserves events: total trace weight matches members."""
    symbols = SymbolTable()
    for ip in range(1, 5):
        symbols._ip_to_sym[ip] = (f"fn{ip}", "s")  # register fake symbols
    builder = PathTraceBuilder(symbols)
    traces = builder.build("t", histories)
    nonempty = [h for h in histories if h.complete and h.elements]
    # Frequencies sum to the number of non-empty member histories (empty
    # histories produce no events and merge into empty families).
    assert sum(t.frequency for t in traces) <= len(histories)
    if nonempty:
        assert traces, "non-empty histories must yield at least one trace"
    for trace in traces:
        # Entries are well-formed.
        for entry in trace.entries:
            assert entry.offsets[0] <= entry.offsets[1]
            assert entry.mean_time >= 0
        # Within any chunk, merged mean times are non-decreasing.
        per_chunk: dict = {}
        for entry in trace.entries:
            per_chunk.setdefault(entry.offsets[0] // 8, []).append(entry.mean_time)


@slow
@given(st.lists(history_strategy(), min_size=1, max_size=10))
def test_pathtrace_builder_deterministic(histories):
    symbols = SymbolTable()
    for ip in range(1, 5):
        symbols._ip_to_sym[ip] = (f"fn{ip}", "s")
    a = PathTraceBuilder(symbols).build("t", histories)
    b = PathTraceBuilder(symbols).build("t", histories)
    assert [t.path_key() for t in a] == [t.path_key() for t in b]
    assert [t.frequency for t in a] == [t.frequency for t in b]


# ----------------------------------------------------------------------
# Machine determinism
# ----------------------------------------------------------------------


def test_full_stack_determinism_with_profiling():
    """Two identical profiled runs produce identical observable state."""

    def run_once():
        from repro.dprof import DProf, DProfConfig
        from repro.workloads import MemcachedWorkload

        kernel = Kernel(MachineConfig(ncores=4, seed=123))
        workload = MemcachedWorkload(kernel)
        workload.setup()
        dprof = DProf(kernel, DProfConfig(ibs_interval=300))
        dprof.attach()
        workload.start()
        kernel.run(until_cycle=200_000)
        dprof.detach()
        return (
            workload.counter.total,
            len(dprof.sampler.samples),
            kernel.machine.total_instructions,
            [c.cycle for c in kernel.machine.cores],
        )

    assert run_once() == run_once()
