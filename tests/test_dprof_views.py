"""Tests for the four DProf views in isolation."""

from repro.dprof.cachesim import WorkingSetSimResult
from repro.dprof.records import PathTrace, PathTraceEntry
from repro.dprof.views import (
    DataFlowView,
    DataProfileRow,
    DataProfileView,
    MissClass,
    MissClassifier,
    WorkingSetRow,
    WorkingSetView,
)
from repro.hw.cache import CacheGeometry
from repro.hw.events import CacheLevel


def entry(fn, lo=0, hi=8, cpu_changed=False, write=False, miss_level=None, t=0.0):
    probs = {CacheLevel.L1: 1.0}
    latency = 3.0
    if miss_level is not None:
        probs = {CacheLevel.L1: 0.2, miss_level: 0.8}
        latency = 160.0
    return PathTraceEntry(
        ip=hash(fn) % 10**6,
        fn=fn,
        cpu_changed=cpu_changed,
        offsets=(lo, hi),
        is_write=write,
        mean_time=t,
        hit_probabilities=probs,
        mean_latency=latency,
        sample_count=10,
    )


class TestDataProfileView:
    def rows(self):
        return [
            DataProfileRow("skbuff", "packet", 1000.0, 0.05, True),
            DataProfileRow("size-1024", "payload", 5000.0, 0.45, True),
            DataProfileRow("udp_sock", "socket", 1024.0, 0.02, False),
        ]

    def test_sorted_by_miss_share(self):
        view = DataProfileView(self.rows(), total_l1_misses=100)
        assert [r.type_name for r in view.rows] == ["size-1024", "skbuff", "udp_sock"]

    def test_covered_share_and_lookup(self):
        view = DataProfileView(self.rows(), total_l1_misses=100)
        assert abs(view.covered_share(2) - 0.50) < 1e-9
        assert view.row_for("skbuff").bounce
        assert view.row_for("missing") is None

    def test_render_contains_table_shape(self):
        out = DataProfileView(self.rows(), 100).render(2)
        assert "size-1024" in out
        assert "45.00%" in out
        assert "Total" in out
        assert "yes" in out and "no" not in out.split("Total")[1]


class TestWorkingSetView:
    def make_sim(self):
        sim = WorkingSetSimResult(geometry=CacheGeometry(4096, 4, 64))
        sim.distinct_lines_per_set = {0: 20, 1: 2, 2: 2, 3: 2}
        from collections import Counter

        sim.set_type_instances = {0: Counter({"hot_type": 18, "other": 2})}
        sim.mean_resident_lines = {"hot_type": 12.0}
        return sim

    def test_conflict_set_types(self):
        view = WorkingSetView(
            [WorkingSetRow("hot_type", 4096.0, 32.0, 12.0)], self.make_sim(), 1000
        )
        assert view.conflict_sets() == [0]
        assert view.types_in_conflict_sets()["hot_type"] == 18

    def test_render(self):
        view = WorkingSetView(
            [WorkingSetRow("hot_type", 4096.0, 32.0, 12.0)], self.make_sim(), 1000
        )
        out = view.render()
        assert "hot_type" in out
        assert "conflict-suspect" in out


class TestMissClassifier:
    def quiet_sim(self):
        return WorkingSetSimResult(geometry=CacheGeometry(4096, 4, 64))

    def test_true_sharing_detected(self):
        # Remote write to [0, 8), then a miss reading the same bytes.
        trace = PathTrace(
            "t",
            [
                entry("writer", 0, 8, write=True),
                entry("reader", 0, 8, cpu_changed=True, miss_level=CacheLevel.FOREIGN),
            ],
            frequency=10,
        )
        mc = MissClassifier(self.quiet_sim()).classify("t", [trace])
        assert mc.dominant == MissClass.TRUE_SHARING

    def test_false_sharing_detected(self):
        # Remote write to bytes 0-8; miss on bytes 32-40 of the same line.
        trace = PathTrace(
            "t",
            [
                entry("writer", 0, 8, write=True),
                entry("reader", 32, 40, cpu_changed=True, miss_level=CacheLevel.FOREIGN),
            ],
            frequency=10,
        )
        mc = MissClassifier(self.quiet_sim()).classify("t", [trace])
        assert mc.dominant == MissClass.FALSE_SHARING

    def test_same_epoch_write_is_not_invalidation(self):
        trace = PathTrace(
            "t",
            [
                entry("writer", 0, 8, write=True),
                entry("reader", 0, 8, miss_level=CacheLevel.DRAM),  # same CPU
            ],
            frequency=10,
        )
        mc = MissClassifier(self.quiet_sim()).classify("t", [trace])
        assert mc.dominant in (MissClass.OTHER, MissClass.CAPACITY)

    def test_capacity_when_sets_uniformly_pressured(self):
        sim = self.quiet_sim()
        sim.distinct_lines_per_set = {i: 10 for i in range(16)}
        trace = PathTrace(
            "t", [entry("reader", 0, 8, miss_level=CacheLevel.DRAM)], frequency=5
        )
        mc = MissClassifier(sim).classify("t", [trace])
        assert mc.dominant == MissClass.CAPACITY

    def test_conflict_when_type_in_hot_sets(self):
        from collections import Counter

        sim = self.quiet_sim()
        sim.distinct_lines_per_set = {0: 40, 1: 2, 2: 2, 3: 2}
        sim.set_type_instances = {0: Counter({"t": 30})}
        trace = PathTrace(
            "t", [entry("reader", 0, 8, miss_level=CacheLevel.L3)], frequency=5
        )
        mc = MissClassifier(sim).classify("t", [trace])
        assert mc.dominant == MissClass.CONFLICT

    def test_no_misses_no_weights(self):
        trace = PathTrace("t", [entry("reader", 0, 8)], frequency=5)
        mc = MissClassifier(self.quiet_sim()).classify("t", [trace])
        assert mc.total == 0
        assert mc.dominant == MissClass.OTHER
        assert mc.share(MissClass.CAPACITY) == 0.0


class TestDataFlowView:
    def make_traces(self):
        tx_path = PathTrace(
            "skbuff",
            [
                entry("udp_sendmsg", t=10),
                entry("pfifo_fast_enqueue", t=20, write=True),
                entry(
                    "pfifo_fast_dequeue",
                    t=30,
                    cpu_changed=True,
                    miss_level=CacheLevel.FOREIGN,
                ),
                entry("dev_hard_start_xmit", t=40),
            ],
            frequency=90,
        )
        rx_path = PathTrace(
            "skbuff",
            [entry("udp_rcv", t=5), entry("udp_recvmsg", t=15)],
            frequency=10,
        )
        return [tx_path, rx_path]

    def test_graph_structure(self):
        view = DataFlowView("skbuff", self.make_traces())
        assert "udp_sendmsg" in view.nodes
        assert view.nodes["kalloc"].visits == 100
        assert ("pfifo_fast_enqueue", "pfifo_fast_dequeue") in view.edges

    def test_cpu_change_edges_marked(self):
        view = DataFlowView("skbuff", self.make_traces())
        bold = {(e.src, e.dst) for e in view.cpu_change_edges()}
        assert ("pfifo_fast_enqueue", "pfifo_fast_dequeue") in bold

    def test_hot_nodes(self):
        view = DataFlowView("skbuff", self.make_traces())
        hot = {n.name for n in view.hot_nodes(latency_threshold=100)}
        assert "pfifo_fast_dequeue" in hot
        assert "udp_sendmsg" not in hot

    def test_functions_before_limits_search_scope(self):
        view = DataFlowView("skbuff", self.make_traces())
        before = view.functions_before("pfifo_fast_enqueue")
        assert "udp_sendmsg" in before
        assert "dev_hard_start_xmit" not in before

    def test_dot_and_text_renderings(self):
        view = DataFlowView("skbuff", self.make_traces())
        dot = view.to_dot()
        assert dot.startswith('digraph "skbuff"')
        assert "penwidth=3" in dot  # bold cross-CPU edge
        text = view.render_text()
        assert "==CPU==>" in text
        assert "[HOT]" in text
