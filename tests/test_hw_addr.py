"""Tests for address arithmetic helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.addr import align_up, line_base, line_of, lines_spanned, page_of, set_index


def test_line_of_and_base():
    assert line_of(0, 64) == 0
    assert line_of(63, 64) == 0
    assert line_of(64, 64) == 1
    assert line_base(130, 64) == 128


def test_lines_spanned_single_line():
    assert list(lines_spanned(0, 8, 64)) == [0]
    assert list(lines_spanned(56, 8, 64)) == [0]


def test_lines_spanned_straddles():
    assert list(lines_spanned(60, 8, 64)) == [0, 1]
    assert list(lines_spanned(0, 128, 64)) == [0, 1]
    assert list(lines_spanned(0, 129, 64)) == [0, 1, 2]


def test_zero_size_access_touches_one_line():
    assert list(lines_spanned(100, 0, 64)) == [1]


def test_set_index_wraps():
    assert set_index(5, 4) == 1
    assert set_index(4, 4) == 0


def test_page_of():
    assert page_of(0) == 0
    assert page_of(4095) == 0
    assert page_of(4096) == 1


def test_align_up():
    assert align_up(0, 64) == 0
    assert align_up(1, 64) == 64
    assert align_up(64, 64) == 64
    with pytest.raises(ValueError):
        align_up(10, 0)


@given(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=1, max_value=4096),
)
def test_lines_spanned_covers_range(addr, size):
    lines = list(lines_spanned(addr, size, 64))
    # First line contains addr; last contains the final byte.
    assert lines[0] == addr // 64
    assert lines[-1] == (addr + size - 1) // 64
    # Contiguous.
    assert lines == list(range(lines[0], lines[-1] + 1))


@given(st.integers(min_value=0, max_value=10**9), st.sampled_from([1, 2, 4, 8, 64, 4096]))
def test_align_up_properties(addr, alignment):
    aligned = align_up(addr, alignment)
    assert aligned >= addr
    assert aligned % alignment == 0
    assert aligned - addr < alignment
