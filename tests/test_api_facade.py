"""repro.api facade: pinned surface, deprecation shims, RunConfig adapters."""

import importlib
import json
import sys
import warnings

import pytest

from repro.config import RunConfig
from repro.dprof.profiler import DProf, DProfConfig
from repro.dprof.session_io import export_session
from repro.errors import ConfigError
from repro.hw.machine import MachineConfig
from repro.serve.jobs import JobSpec
from repro.workloads import SCENARIOS, build_kernel

#: The public API contract.  Additions belong at the right spot in
#: repro.api.__all__ AND here; removals/renames are breaking changes.
EXPECTED_ALL = (
    "ANALYSIS_MODES",
    "ClusterConfig",
    "ClusterServer",
    "DProf",
    "DProfConfig",
    "DataQuality",
    "Diagnosis",
    "Finding",
    "JobSpec",
    "KERNEL_FAMILIES",
    "KernelSpec",
    "MachineConfig",
    "MetricsSummary",
    "NULL_TRACER",
    "OfflineSession",
    "ProfilingServer",
    "RetryExhaustedError",
    "RetryPolicy",
    "RunConfig",
    "SCENARIOS",
    "ServeClient",
    "SessionStore",
    "SimProbe",
    "Tracer",
    "analyze_histories",
    "build_kernel",
    "collect_history_session",
    "critical_path",
    "execute_job",
    "execute_job_to_store",
    "expected_metrics",
    "export_session",
    "load_session",
    "load_trace",
    "machine_counters",
    "reconcile_serve",
    "render_tree",
    "request_once",
    "stage_totals",
)


def test_api_all_is_pinned():
    import repro.api

    assert repro.api.__all__ == EXPECTED_ALL


def test_api_names_resolve_and_match_defining_modules():
    import repro.api

    for name in EXPECTED_ALL:
        assert getattr(repro.api, name) is not None
    # Facade names are re-exports, not copies.
    assert repro.api.DProf is DProf
    assert repro.api.JobSpec is JobSpec
    assert repro.api.RunConfig is RunConfig
    assert repro.api.SCENARIOS is SCENARIOS


def test_api_imports_clean_under_deprecation_errors():
    saved = {
        name: sys.modules.pop(name)
        for name in list(sys.modules)
        if name == "repro.api"
    }
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.import_module("repro.api")
    finally:
        sys.modules.update(saved)


@pytest.mark.parametrize(
    ("package", "name"),
    [("repro.dprof", "DProf"), ("repro.serve", "JobSpec")],
)
def test_deep_import_emits_exactly_one_deprecation_warning(package, name):
    saved = sys.modules.pop(package, None)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.import_module(package)
            getattr(module, name)
        relevant = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(relevant) == 1, [str(w.message) for w in caught]
        assert "repro.api" in str(relevant[0].message)
        # Second access is cached: no further warning.
        with warnings.catch_warnings(record=True) as again:
            warnings.simplefilter("always")
            getattr(module, name)
        assert not again
    finally:
        if saved is not None:
            # Re-importing rebound the parent package's attribute to the
            # throwaway module; restore both views or later tests resolve
            # a stale `repro.serve`/`repro.dprof` with no submodule attrs.
            sys.modules[package] = saved
            parent, _, child = package.rpartition(".")
            setattr(sys.modules[parent], child, saved)


def test_shim_unknown_name_raises_attribute_error():
    import repro.dprof
    import repro.serve

    with pytest.raises(AttributeError):
        repro.dprof.no_such_name
    with pytest.raises(AttributeError):
        repro.serve.no_such_name


# ----------------------------------------------------------------------
# RunConfig: validation and bit-identical adapters
# ----------------------------------------------------------------------


def test_run_config_validates_eagerly():
    with pytest.raises(ConfigError):
        RunConfig(engine="warp")
    with pytest.raises(ConfigError):
        RunConfig(analysis="psychic")
    with pytest.raises(ConfigError):
        RunConfig(analysis_workers=-1)


def test_run_config_adapters_match_legacy_configs():
    run = RunConfig(seed=7, engine="fast", analysis="reference", analysis_workers=2)
    assert run.machine_config(ncores=2) == MachineConfig(
        ncores=2, seed=7, engine="fast"
    )
    legacy = DProfConfig(analysis="reference", analysis_workers=2)
    assert run.dprof_config() == legacy
    # The profiler seed stays DProfConfig's own default (it is an
    # independent knob), unless overridden explicitly.
    assert run.dprof_config().seed == DProfConfig().seed
    assert run.dprof_config(seed=1).seed == 1


def test_job_spec_from_run_config_matches_legacy_kwargs():
    run = RunConfig(seed=21, engine="fast", analysis="indexed")
    via_run = JobSpec.create(scenario="synthetic", duration=30_000, run=run)
    legacy = JobSpec.create(
        scenario="synthetic",
        duration=30_000,
        seed=21,
        engine="fast",
        analysis="indexed",
    )
    assert via_run == legacy
    assert via_run.digest() == legacy.digest()
    # Explicit kwargs win over the RunConfig values.
    override = JobSpec.create(
        scenario="synthetic", duration=30_000, run=run, seed=5
    )
    assert override.seed == 5


def _session_via(config_builder):
    kernel = build_kernel(2, seed=17, engine="fast")
    machine_config, dprof_config = config_builder()
    assert kernel.machine.config.line_size == machine_config.line_size
    dprof = DProf(kernel, dprof_config)
    dprof.attach()
    try:
        SCENARIOS["synthetic"](kernel, 30_000)
    finally:
        dprof.detach()
    return json.dumps(export_session(dprof), sort_keys=True)


def test_run_config_sessions_bit_identical_to_legacy():
    run = RunConfig(seed=17, engine="fast", analysis="indexed")
    via_run = _session_via(
        lambda: (run.machine_config(ncores=2), run.dprof_config())
    )
    via_legacy = _session_via(
        lambda: (
            MachineConfig(ncores=2, seed=17, engine="fast"),
            DProfConfig(analysis="indexed"),
        )
    )
    assert via_run == via_legacy


def test_dprof_accepts_run_config_directly():
    kernel = build_kernel(2, seed=17, engine="fast")
    dprof = DProf(kernel, RunConfig(seed=17, engine="fast"))
    assert isinstance(dprof.config, DProfConfig)
    assert dprof.config.analysis == "indexed"
