"""Tests for streaming statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import Histogram, OnlineStats, mean, percentile, weighted_mean


def test_online_stats_basic():
    s = OnlineStats()
    for v in [1.0, 2.0, 3.0, 4.0]:
        s.add(v)
    assert s.count == 4
    assert math.isclose(s.mean, 2.5)
    assert s.min == 1.0
    assert s.max == 4.0
    assert math.isclose(s.variance, 1.25)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_online_stats_matches_direct_computation(values):
    s = OnlineStats()
    for v in values:
        s.add(v)
    direct_mean = sum(values) / len(values)
    assert math.isclose(s.mean, direct_mean, rel_tol=1e-9, abs_tol=1e-6)
    assert s.min == min(values)
    assert s.max == max(values)


@given(
    st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=50),
    st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=50),
)
def test_online_stats_merge_equals_combined(xs, ys):
    a = OnlineStats()
    b = OnlineStats()
    combined = OnlineStats()
    for v in xs:
        a.add(v)
        combined.add(v)
    for v in ys:
        b.add(v)
        combined.add(v)
    a.merge(b)
    assert a.count == combined.count
    assert math.isclose(a.mean, combined.mean, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(a.variance, combined.variance, rel_tol=1e-6, abs_tol=1e-3)


def test_merge_with_empty_sides():
    a = OnlineStats()
    b = OnlineStats()
    b.add(5.0)
    a.merge(b)
    assert a.count == 1 and a.mean == 5.0
    empty = OnlineStats()
    a.merge(empty)
    assert a.count == 1


def test_histogram_shares_and_top():
    h = Histogram()
    h.add("a", 3)
    h.add("b", 1)
    assert h.total == 4
    assert h.share("a") == 0.75
    assert h.share("missing") == 0.0
    assert h.top(1) == [("a", 3)]
    assert len(h) == 2
    assert h.count("b") == 1


def test_histogram_empty_share_is_zero():
    h = Histogram()
    assert h.share("x") == 0.0
    assert h.total == 0


def test_mean_helpers():
    assert mean([]) == 0.0
    assert mean([2, 4]) == 3.0
    assert weighted_mean([]) == 0.0
    assert weighted_mean([(10, 1), (20, 3)]) == 17.5


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50.0)


@pytest.mark.parametrize("q", [-0.001, -5.0, 100.001, 200.0])
def test_percentile_rejects_q_outside_range(q):
    with pytest.raises(ValueError):
        percentile([1.0, 2.0], q)


@pytest.mark.parametrize("q", [0.0, 50.0, 100.0])
def test_percentile_single_element(q):
    assert percentile([7.5], q) == 7.5


def test_percentile_interpolates_between_ranks():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0.0) == 10.0
    assert percentile(values, 100.0) == 40.0
    assert percentile(values, 50.0) == 25.0
    assert math.isclose(percentile(values, 25.0), 17.5)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_percentile_stays_within_bounds(values, q):
    values.sort()
    result = percentile(values, q)
    # The lerp can round a few ulps past an endpoint; allow that only.
    tol = 1e-9 * max(1.0, abs(values[0]), abs(values[-1]))
    assert values[0] - tol <= result <= values[-1] + tol
