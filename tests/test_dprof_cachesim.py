"""Tests for DProf's offline working-set cache simulation."""

from repro.dprof.cachesim import DProfCacheSim
from repro.dprof.records import AddressSet, PathTrace, PathTraceEntry
from repro.hw.cache import CacheGeometry
from repro.util.rng import DeterministicRng


def make_sim(size=4096, ways=4):
    return DProfCacheSim(CacheGeometry(size, ways, 64), DeterministicRng(1, "t"))


def entry(ip, lo, hi, t, write=False):
    return PathTraceEntry(
        ip=ip,
        fn=f"fn{ip}",
        cpu_changed=False,
        offsets=(lo, hi),
        is_write=write,
        mean_time=t,
    )


def test_objects_without_traces_touch_their_lines():
    aset = AddressSet()
    aset.record_alloc("t", 0, 128, 1, 0, 0)  # two lines: 0 and 1
    result = make_sim().simulate(aset, {})
    assert result.objects_simulated == 1
    assert sum(result.distinct_lines_per_set.values()) == 2


def test_traced_objects_replay_trace_accesses_over_full_footprint():
    aset = AddressSet()
    aset.record_alloc("t", 0, 256, 1, 0, 0)
    trace = PathTrace("t", [entry(1, 0, 8, 10), entry(2, 128, 136, 20)], frequency=1)
    result = make_sim().simulate(aset, {"t": [trace]})
    # The whole 4-line object counts toward the working set; the trace
    # replays extra accesses to lines 0 and 2 (they don't add new lines).
    assert sum(result.distinct_lines_per_set.values()) == 4
    # Trace accesses happened: more accesses than the alloc touch alone.
    assert result.accesses_simulated == 4 + 2


def test_free_removes_lines_from_cache():
    aset = AddressSet()
    aset.record_alloc("t", 0, 64, 1, 0, 0)
    aset.record_free(0, 1, 0, 100)
    # A second object whose line maps to the same set, allocated later.
    aset.record_alloc("t", 4096, 64, 2, 0, 200)
    result = make_sim().simulate(aset, {})
    # Distinct lines ever stored counts both.
    assert sum(result.distinct_lines_per_set.values()) == 2


def test_conflict_sets_detected_when_one_set_overloaded():
    geometry = CacheGeometry(4096, 4, 64)  # 16 sets
    aset = AddressSet()
    # 12 objects whose lines all map to set 0 (stride = 16 lines).
    for i in range(12):
        aset.record_alloc("hot", i * 16 * 64, 64, 1, 0, i)
    # A few objects spread over other sets.
    for i in range(1, 4):
        aset.record_alloc("cold", i * 64, 64, 1, 0, 100 + i)
    sim = DProfCacheSim(geometry, DeterministicRng(1, "t"))
    result = sim.simulate(aset, {})
    assert 0 in result.conflict_sets()
    assert not result.capacity_pressured()
    types = dict(result.types_in_set(0))
    assert types.get("hot", 0) == 12


def test_capacity_pressure_when_all_sets_overloaded():
    geometry = CacheGeometry(4096, 4, 64)  # 64 lines total
    aset = AddressSet()
    # 4x the cache capacity, spread uniformly.
    for i in range(256):
        aset.record_alloc("big", i * 64, 64, 1, 0, i)
    sim = DProfCacheSim(geometry, DeterministicRng(1, "t"))
    result = sim.simulate(aset, {})
    assert result.capacity_pressured()
    # Uniform overload: conflict heuristic (2x average) does not fire.
    assert result.conflict_sets() == []


def test_mean_resident_lines_by_type():
    geometry = CacheGeometry(4096, 4, 64)
    aset = AddressSet()
    for i in range(8):
        aset.record_alloc("a", i * 64, 64, 1, 0, i)
    sim = DProfCacheSim(geometry, DeterministicRng(1, "t"))
    sim.SNAPSHOT_EVERY = 2
    result = sim.simulate(aset, {})
    assert result.mean_resident_lines.get("a", 0) > 0


def test_sampling_caps_object_count():
    aset = AddressSet()
    for i in range(100):
        aset.record_alloc("t", i * 64, 64, 1, 0, i)
    sim = make_sim()
    result = sim.simulate(aset, {}, max_objects=10)
    assert result.objects_simulated == 10
