"""Differential tests: the fast engine must be bit-identical to the reference.

Three layers of comparison, each across 5 seeds and all three scenarios
(memcached, apache, synthetic):

1. *Live machines*: a full workload run with ``engine="fast"`` must land
   on exactly the same hierarchy stats, cache counters, invalidation
   count, and DProf top-10 data-profile ranking as ``engine="reference"``.
2. *Replays*: the trace recorded from the reference run, replayed through
   :func:`replay_reference` and :func:`replay_fast`, must agree on every
   per-access outcome (level, miss classification, latency, loss
   records), all counters, the complete LRU state of every cache, and the
   residual loss-record maps.
3. *Trace generation*: sharded (multiprocessing) and serial synthetic
   stream generation must produce byte-identical, cycle-ordered traces.

Any nonzero delta anywhere fails; there is no tolerance.
"""

from __future__ import annotations

from dataclasses import astuple

import pytest

from repro.dprof import DProf, DProfConfig
from repro.hw.fastpath import (
    build_synthetic_trace,
    merge_streams,
    replay_fast,
    replay_reference,
    synthetic_stream,
)
from repro.workloads import SCENARIOS, build_kernel

SEEDS = (3, 7, 11, 23, 42)
DURATION = 60_000
NCORES = 4
IBS_INTERVAL = 29  # runs are instruction-sparse; sample densely


def profiled_run(engine: str, scenario: str, seed: int, *, record: bool = False):
    """One live workload run under DProf; optionally record the trace.

    Returns (comparable_state, trace, hierarchy_config): everything in
    ``comparable_state`` must match exactly between engines.
    """
    kernel = build_kernel(NCORES, seed=seed, engine=engine)
    trace: list | None = [] if record else None
    if record:
        kernel.machine.hierarchy.trace_sink = trace
    dprof = DProf(kernel, DProfConfig(ibs_interval=IBS_INTERVAL))
    dprof.attach()
    result = SCENARIOS[scenario](kernel, DURATION)
    dprof.detach()
    hierarchy = kernel.machine.hierarchy
    ranking = [
        (r.type_name, r.miss_share, r.bounce, r.sample_count, r.working_set_bytes)
        for r in dprof.data_profile().top(10)
    ]
    state = {
        "stats": hierarchy.stats.snapshot(),
        "counters": hierarchy.cache_counters(),
        "lru": hierarchy.replacement_snapshot(),
        "invalidations": hierarchy.directory.invalidation_count,
        "top10": ranking,
        "requests": result.requests_completed,
        "elapsed": result.elapsed_cycles,
    }
    return state, trace, kernel.machine.config.hierarchy_config()


def reference_loss_records(hierarchy):
    """The reference directory's residual loss maps as plain tuples."""
    inv = [
        {line: astuple(rec) for line, rec in per_cpu.items()}
        for per_cpu in hierarchy.directory.invalidated
    ]
    ev = [
        {line: astuple(rec) for line, rec in per_cpu.items()}
        for per_cpu in hierarchy.directory.evicted
    ]
    return inv, ev


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_engines_equivalent(scenario: str, seed: int) -> None:
    """Live runs, replays, and DProf rankings agree bit for bit."""
    ref_state, events, config = profiled_run(
        "reference", scenario, seed, record=True
    )
    fast_state, _, _ = profiled_run("fast", scenario, seed)
    assert fast_state == ref_state

    assert events, "reference run recorded no trace"
    ref_hier, ref_outcomes = replay_reference(events, config, collect=True)
    engine, fast_outcomes = replay_fast(events, config, collect=True)

    # Per-access agreement: level served, miss classification, latency,
    # and the loss record attached to each miss.
    assert fast_outcomes == ref_outcomes
    # End-state agreement, including full LRU order of every cache set.
    assert engine.stats_snapshot() == ref_hier.stats.snapshot()
    assert engine.cache_counters() == ref_hier.cache_counters()
    assert engine.replacement_snapshot() == ref_hier.replacement_snapshot()
    assert engine.invalidation_count == ref_hier.directory.invalidation_count
    assert engine.loss_records() == reference_loss_records(ref_hier)
    # The trace replay must also reproduce the live run it came from.
    assert ref_hier.stats.snapshot() == ref_state["stats"]
    assert ref_hier.cache_counters() == ref_state["counters"]


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_trace_equivalence(seed: int) -> None:
    """Replay equivalence holds on generated multi-core traces too."""
    # private_lines must exceed the private-cache capacity (L1+L2 =
    # 1280 lines) or the trace never produces an eviction-classed miss.
    events = build_synthetic_trace(seed, NCORES, 2_000, private_lines=1_536)
    config = build_kernel(NCORES, seed=seed).machine.config.hierarchy_config()
    ref_hier, ref_outcomes = replay_reference(events, config, collect=True)
    engine, fast_outcomes = replay_fast(events, config, collect=True)
    assert fast_outcomes == ref_outcomes
    assert engine.stats_snapshot() == ref_hier.stats.snapshot()
    assert engine.replacement_snapshot() == ref_hier.replacement_snapshot()
    # The trace must exercise every miss class to be a meaningful check.
    kinds = ref_hier.stats.snapshot()["miss_kinds"]
    assert all(kinds.get(k, 0) > 0 for k in ("cold", "invalidation", "eviction"))


def test_sharded_generation_matches_serial() -> None:
    """Multiprocessing sharding is invisible: identical traces out."""
    serial = build_synthetic_trace(17, NCORES, 800, workers=0)
    sharded = build_synthetic_trace(17, NCORES, 800, workers=NCORES)
    assert sharded == serial
    # Canonical order: (cycle, seq) nondecreasing, seqs unique.
    keys = [(ev.cycle, ev.seq) for ev in serial]
    assert keys == sorted(keys)
    assert len({ev.seq for ev in serial}) == len(serial)


def test_merge_is_deterministic_cycle_order() -> None:
    """merge_streams is a pure function of the per-CPU streams."""
    streams = [
        synthetic_stream(17, cpu, 300, seq_base=cpu, seq_step=NCORES)
        for cpu in range(NCORES)
    ]
    merged = merge_streams(streams)
    assert merged == merge_streams(list(reversed(streams)))
    assert [(ev.cycle, ev.seq) for ev in merged] == sorted(
        (ev.cycle, ev.seq) for stream in streams for ev in stream
    )
