"""Tests for spinlocks and lock statistics."""

import pytest

from repro.errors import SimulationError
from repro.hw.events import Pause
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel, StructType
from repro.kernel.locks import SpinLock

LOCKED_TYPE = StructType("locked_thing", [("lock", 4), ("value", 8)], object_size=64)


def make_setup(ncores=2):
    k = Kernel(MachineConfig(ncores=ncores, seed=5))
    obj = k.slab.new_static(LOCKED_TYPE, "thing")
    lock = SpinLock("test lock", obj, "lock", k.lockstat)
    return k, obj, lock


def test_acquire_release_uncontended():
    k, obj, lock = make_setup()

    def body():
        yield from lock.acquire(k.env, "fn_a", 0)
        assert lock.held and lock.holder_cpu == 0
        yield from lock.release(k.env, "fn_a", 0)
        assert not lock.held

    k.spawn("t", 0, body())
    k.run()
    st = k.lockstat.stat("test lock")
    assert st.acquisitions == 1
    assert st.contentions == 0


def test_mutual_exclusion_under_contention():
    k, obj, lock = make_setup()
    in_critical = [0]
    max_seen = [0]

    def body(cpu):
        for _ in range(30):
            yield from lock.acquire(k.env, f"fn{cpu}", cpu)
            in_critical[0] += 1
            max_seen[0] = max(max_seen[0], in_critical[0])
            yield k.env.write(f"fn{cpu}", obj, "value")
            # A critical section long enough to span scheduling quanta, so
            # the other core's acquire genuinely contends.
            for _ in range(40):
                yield k.env.work(f"fn{cpu}", 5)
            in_critical[0] -= 1
            yield from lock.release(k.env, f"fn{cpu}", cpu)

    k.spawn("a", 0, body(0))
    k.spawn("b", 1, body(1))
    k.run()
    assert max_seen[0] == 1  # never two holders
    st = k.lockstat.stat("test lock")
    assert st.acquisitions == 60
    assert st.contentions > 0
    assert st.wait_cycles > 0
    assert st.hold_cycles > 0


def test_lockstat_tracks_acquirer_functions():
    k, obj, lock = make_setup()

    def body():
        yield from lock.acquire(k.env, "alpha", 0)
        yield from lock.release(k.env, "alpha", 0)
        yield from lock.acquire(k.env, "beta", 0)
        yield from lock.release(k.env, "beta", 0)

    k.spawn("t", 0, body())
    k.run()
    fns = set(k.lockstat.stat("test lock").acquirer_functions.keys())
    assert {"alpha", "beta"} <= fns


def test_release_unheld_raises():
    k, obj, lock = make_setup()

    def body():
        with pytest.raises(SimulationError):
            yield from lock.release(k.env, "fn", 0)
        yield k.env.work("fn", 1)

    k.spawn("t", 0, body())
    k.run()


def test_release_by_wrong_cpu_raises():
    k, obj, lock = make_setup()

    def holder():
        yield from lock.acquire(k.env, "fn", 0)
        yield Pause(10_000)

    def intruder():
        yield k.env.work("fn", 200)  # let the holder take it first
        with pytest.raises(SimulationError):
            yield from lock.release(k.env, "fn", 1)

    k.spawn("h", 0, holder())
    k.spawn("i", 1, intruder())
    k.run(until_cycle=5_000)


def test_contended_lock_generates_coherence_traffic():
    k, obj, lock = make_setup()

    def body(cpu):
        for _ in range(50):
            yield from lock.acquire(k.env, "fn", cpu)
            yield k.env.work("fn", 30)
            yield from lock.release(k.env, "fn", cpu)

    k.spawn("a", 0, body(0))
    k.spawn("b", 1, body(1))
    k.run()
    # The lock word bounces: invalidations must have occurred.
    assert k.machine.hierarchy.directory.invalidation_count > 10
