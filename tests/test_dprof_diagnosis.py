"""Tests for the automated diagnosis layer."""

from repro.dprof import DProf, DProfConfig
from repro.dprof.diagnosis import Diagnosis, Finding, REMEDIES
from repro.dprof.views import MissClass
from repro.hw.machine import MachineConfig
from repro.kernel import Kernel
from repro.workloads.synthetic import true_sharing_workload


def profiled_true_sharing():
    kernel = Kernel(MachineConfig(ncores=4, seed=51))
    dprof = DProf(kernel, DProfConfig(ibs_interval=30))
    dprof.attach()
    true_sharing_workload(kernel, iterations=400)
    kernel.run()
    dprof.detach()
    return kernel, dprof


def test_diagnosis_flags_bouncing_type():
    _kernel, dprof = profiled_true_sharing()
    findings = Diagnosis(dprof).findings()
    assert findings
    top = findings[0]
    assert top.type_name == "shared_counter"
    assert top.bounces
    assert top.dominant_class in (MissClass.TRUE_SHARING, MissClass.FALSE_SHARING)
    assert top.remedy == REMEDIES[top.dominant_class]


def test_diagnosis_render_is_readable():
    _kernel, dprof = profiled_true_sharing()
    report = Diagnosis(dprof).render()
    assert "DProf diagnosis" in report
    assert "shared_counter" in report
    assert "remedy:" in report


def test_diagnosis_threshold_filters_noise():
    _kernel, dprof = profiled_true_sharing()
    high_bar = Diagnosis(dprof, miss_share_threshold=2.0)  # impossible bar
    assert high_bar.findings() == []
    assert "No significant" in high_bar.render()


def test_finding_render_contains_evidence():
    finding = Finding(
        type_name="skbuff",
        miss_share=0.052,
        working_set_bytes=20.55e6,
        bounces=True,
        dominant_class=MissClass.TRUE_SHARING,
        class_shares={MissClass.TRUE_SHARING: 0.9, MissClass.CAPACITY: 0.1},
        cross_cpu_transitions=[("pfifo_fast_enqueue", "pfifo_fast_dequeue")],
        suspect_functions=["dev_queue_xmit", "skb_tx_hash", "udp_sendmsg"],
        remedy=REMEDIES[MissClass.TRUE_SHARING],
    )
    out = finding.render()
    assert "5.2% of all L1 misses" in out
    assert "pfifo_fast_enqueue -> pfifo_fast_dequeue" in out
    assert "skb_tx_hash" in out
    assert "true sharing 90%" in out


def test_diagnosis_on_memcached_finds_the_paper_bug():
    """End-to-end: the diagnosis points at the TX path, unprompted."""
    from repro.workloads import MemcachedWorkload

    kernel = Kernel(MachineConfig(ncores=8, seed=52))
    workload = MemcachedWorkload(kernel)
    workload.setup()
    workload.start()
    kernel.run(until_cycle=150_000)
    dprof = DProf(kernel, DProfConfig(ibs_interval=300))
    dprof.attach()
    kernel.run(until_cycle=kernel.elapsed_cycles() + 500_000)
    dprof.collect_histories("skbuff", sets=3, hot_chunks=4, member_offsets=[0], pair=True)
    kernel.run(
        until_cycle=kernel.elapsed_cycles() + 15_000_000,
        stop_when=lambda: dprof.histories_done,
    )
    dprof.detach()

    findings = {f.type_name: f for f in Diagnosis(dprof).findings()}
    assert "size-1024" in findings
    assert findings["size-1024"].bounces
    skbuff = findings.get("skbuff")
    assert skbuff is not None
    # The sharing evidence names the transmit path.
    txish = {src for src, _dst in skbuff.cross_cpu_transitions} | set(
        skbuff.suspect_functions
    )
    assert txish & {"dev_queue_xmit", "pfifo_fast_enqueue", "skb_tx_hash", "skb_put"}
