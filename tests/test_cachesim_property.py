"""Property-based tests for DProf's offline cache simulation."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dprof.cachesim import DProfCacheSim
from repro.dprof.records import AddressSet
from repro.hw.cache import CacheGeometry
from repro.util.rng import DeterministicRng

slow = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def address_sets(draw):
    aset = AddressSet()
    n = draw(st.integers(min_value=1, max_value=40))
    for i in range(n):
        base = draw(st.integers(min_value=0, max_value=2**20)) * 64
        size = draw(st.sampled_from([64, 128, 256, 1024]))
        alloc = draw(st.integers(min_value=0, max_value=10**6))
        aset.record_alloc(
            draw(st.sampled_from(["a", "b", "c"])), base, size, 1, 0, alloc
        )
        if draw(st.booleans()):
            aset.record_free(base, 1, 0, alloc + draw(st.integers(1, 10**5)))
    return aset


@slow
@given(address_sets())
def test_sim_counters_are_consistent(aset):
    geometry = CacheGeometry(8 * 1024, 4, 64)
    sim = DProfCacheSim(geometry, DeterministicRng(1, "p"))
    result = sim.simulate(aset, {})
    # Every distinct-line count is positive and set indices are in range.
    for set_index, count in result.distinct_lines_per_set.items():
        assert 0 <= set_index < geometry.num_sets
        assert count >= 1
    # Objects simulated never exceeds the address-set population.
    assert result.objects_simulated <= len(aset.entries)
    # Accesses at least touch each sampled object's footprint once.
    assert result.accesses_simulated >= result.objects_simulated
    # Per-set type instances never exceed the total object count.
    for counter in result.set_type_instances.values():
        assert sum(counter.values()) <= result.objects_simulated * 4


@slow
@given(address_sets())
def test_sim_is_deterministic(aset):
    geometry = CacheGeometry(8 * 1024, 4, 64)
    a = DProfCacheSim(geometry, DeterministicRng(2, "x")).simulate(aset, {})
    b = DProfCacheSim(geometry, DeterministicRng(2, "x")).simulate(aset, {})
    assert a.distinct_lines_per_set == b.distinct_lines_per_set
    assert a.mean_resident_lines == b.mean_resident_lines


@slow
@given(address_sets(), st.floats(min_value=1.1, max_value=8.0))
def test_conflict_sets_monotone_in_factor(aset, factor):
    geometry = CacheGeometry(8 * 1024, 4, 64)
    result = DProfCacheSim(geometry, DeterministicRng(3, "m")).simulate(aset, {})
    loose = set(result.conflict_sets(1.05))
    tight = set(result.conflict_sets(factor))
    # Raising the threshold can only shrink the suspect set.
    assert tight <= loose
