"""Tests for session-archive corruption recovery.

A damaged archive must either load partially (with the damage recorded
in the session's DataQuality) or raise SessionFormatError naming the
path -- never leak a bare JSONDecodeError/KeyError traceback.
"""

import json
import shutil
import warnings

import pytest

from repro.dprof import DProf, DProfConfig
from repro.dprof.session_io import (
    CHECKSUMMED_SECTIONS,
    FORMAT_VERSION,
    OfflineSession,
    export_session,
    load_session,
    save_session,
)
from repro.errors import DegradedDataWarning, ProfilingError, SessionFormatError
from repro.faults import corrupt_section, flip_byte, tear_file
from repro.util.rng import DeterministicRng

from tests.test_dprof_profiler import build_udp_machine


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    """A small profiled UDP session saved to disk (copied per test)."""
    k, _stack = build_udp_machine()
    dprof = DProf(k, DProfConfig(ibs_interval=200))
    dprof.attach()
    k.run(until_cycle=120_000)
    dprof.collect_histories("skbuff", sets=1, hot_chunks=2)
    k.run(until_cycle=2_000_000, stop_when=lambda: dprof.histories_done)
    dprof.detach()
    path = tmp_path_factory.mktemp("archive") / "session.json"
    save_session(dprof, path)
    return path


@pytest.fixture
def copy(archive, tmp_path):
    target = tmp_path / "session.json"
    shutil.copy(archive, target)
    return target


class TestUnusableArchives:
    def test_torn_file_raises_session_format_error(self, copy):
        tear_file(copy, keep_fraction=0.5)
        with pytest.raises(SessionFormatError) as exc_info:
            load_session(copy)
        assert str(copy) in str(exc_info.value)
        # The hierarchy holds: callers catching ProfilingError see it too.
        assert isinstance(exc_info.value, ProfilingError)

    def test_missing_file_raises_session_format_error(self, tmp_path):
        with pytest.raises(SessionFormatError, match="cannot read"):
            load_session(tmp_path / "nope.json")

    def test_non_object_root_raises(self, copy):
        copy.write_text("[1, 2, 3]")
        with pytest.raises(SessionFormatError, match="root is not an object"):
            load_session(copy)

    def test_unknown_version_raises(self, copy):
        blob = json.loads(copy.read_text())
        blob["version"] = FORMAT_VERSION + 1
        copy.write_text(json.dumps(blob))
        with pytest.raises(SessionFormatError) as exc_info:
            load_session(copy)
        assert exc_info.value.section == "version"

    def test_corrupt_core_metadata_raises(self, copy):
        blob = json.loads(copy.read_text())
        blob["window"] = 123  # not a [start, end] pair
        copy.write_text(json.dumps(blob))
        with pytest.raises(SessionFormatError) as exc_info:
            load_session(copy)
        assert exc_info.value.section == "window"


class TestPartialRecovery:
    @pytest.mark.parametrize("section", CHECKSUMMED_SECTIONS)
    def test_flipped_value_in_section_recovers_partially(self, copy, section):
        corrupt_section(copy, section, DeterministicRng(5, "corrupt"))
        session = load_session(copy)
        assert section in session.data_quality.sections_failed
        assert session.data_quality.degraded
        # Every view still returns, annotated instead of raising.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedDataWarning)
            profile = session.data_profile()
            mc = session.miss_classification("skbuff")
            flow = session.data_flow("skbuff")
        assert profile.rows is not None
        assert mc.type_name == "skbuff"
        assert flow.nodes
        assert profile.quality is session.data_quality

    def test_lost_stats_zero_data_profile_confidence(self, copy):
        corrupt_section(copy, "stats", DeterministicRng(5, "corrupt"))
        session = load_session(copy)
        assert session.data_quality.confidence("data_profile") == 0.0
        assert session.data_quality.exit_code() == 4

    def test_degraded_offline_view_warns(self, copy):
        corrupt_section(copy, "histories", DeterministicRng(5, "corrupt"))
        session = load_session(copy)
        with pytest.warns(DegradedDataWarning, match="offline data profile"):
            session.data_profile()

    def test_missing_section_recovers_as_failed(self, copy):
        blob = json.loads(copy.read_text())
        del blob["histories"]
        copy.write_text(json.dumps(blob))
        session = load_session(copy)
        assert "histories" in session.data_quality.sections_failed
        assert session.histories == []

    @pytest.mark.parametrize("seed", range(8))
    def test_random_byte_flip_never_leaks_a_traceback(self, copy, seed):
        flip_byte(copy, DeterministicRng(seed, "flip"))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedDataWarning)
            try:
                session = load_session(copy)
            except SessionFormatError:
                return  # structurally unusable: the typed error is the contract
            # Loadable: views must still come back.
            session.data_profile()
            session.data_flow("skbuff")


class TestBackwardCompatibility:
    def test_v1_archive_without_checksums_loads_clean(self, copy):
        blob = json.loads(copy.read_text())
        blob["version"] = 1
        del blob["checksums"]
        del blob["data_quality"]
        copy.write_text(json.dumps(blob))
        session = load_session(copy)
        assert session.data_quality.sections_failed == ()
        assert not session.data_quality.degraded
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedDataWarning)
            assert session.data_profile().rows

    def test_v2_clean_roundtrip_not_degraded(self, copy):
        session = load_session(copy)
        assert session.data_quality.sections_failed == ()
        assert not session.data_quality.degraded
